"""Table 2: create_report on the 15 Kaggle-shaped datasets, both tools.

The paper reports that DataPrep.EDA generates profile reports 4-20x faster
than Pandas-profiling, with larger wins on numerical-heavy datasets.  This
benchmark regenerates the table on synthetic datasets with the published
shapes (row-scaled by ``REPRO_BENCH_SCALE``) and prints the measured
head-to-head comparison next to the paper's published timings.
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import TABLE2_ROW_SCALE, print_header
from repro.baselines import eager_profile_report
from repro.datasets import load_kaggle_like
from repro.datasets.kaggle import TABLE2_DATASETS
from repro.report import create_report

#: Measured seconds per (dataset, tool), filled in as benchmarks run and
#: printed as the final table.
_RESULTS: Dict[str, Dict[str, float]] = {}

_DATASET_NAMES = [entry.name for entry in TABLE2_DATASETS]


def _load(name: str):
    return load_kaggle_like(name, row_scale=TABLE2_ROW_SCALE)


def _record(name: str, tool: str, seconds: float) -> None:
    _RESULTS.setdefault(name, {})[tool] = seconds


@pytest.mark.parametrize("name", _DATASET_NAMES)
def test_table2_dataprep_report(benchmark, name):
    """DataPrep.EDA's create_report + HTML rendering on one dataset."""
    frame = _load(name)

    def run():
        started = time.perf_counter()
        html = create_report(frame).to_html()
        _record(name, "dataprep", time.perf_counter() - started)
        return len(html)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("name", _DATASET_NAMES)
def test_table2_baseline_report(benchmark, name):
    """The eager baseline profiler (rendered) on the same dataset."""
    frame = _load(name)

    def run():
        started = time.perf_counter()
        report = eager_profile_report(frame, render=True)
        _record(name, "baseline", time.perf_counter() - started)
        return len(report.html or "")

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


def test_table2_summary_table(benchmark):
    """Print the regenerated Table 2 and check the headline shape.

    Shape checks: DataPrep.EDA wins on nearly every dataset, and the mean
    speedup on the numerical-heavy datasets the paper calls out (credit,
    basketball, diabetes) exceeds the mean speedup on the rest.
    """
    if len(_RESULTS) < len(_DATASET_NAMES) or any(
            len(values) < 2 for values in _RESULTS.values()):
        pytest.skip("run the per-dataset benchmarks first (whole-file run)")

    def summarize():
        print_header(f"Table 2 — create_report comparison "
                     f"(row scale {TABLE2_ROW_SCALE})")
        print(f"{'dataset':12s} {'rows':>8s} {'cols':>5s} {'baseline[s]':>12s} "
              f"{'dataprep[s]':>12s} {'faster':>7s} {'paper':>7s}")
        speedups = {}
        for entry in TABLE2_DATASETS:
            measured = _RESULTS[entry.name]
            speedup = measured["baseline"] / max(measured["dataprep"], 1e-9)
            speedups[entry.name] = speedup
            print(f"{entry.name:12s} {int(entry.n_rows * TABLE2_ROW_SCALE):>8d} "
                  f"{entry.n_columns:>5d} {measured['baseline']:>12.2f} "
                  f"{measured['dataprep']:>12.2f} {speedup:>6.1f}x "
                  f"{entry.paper_speedup:>6.1f}x")
        return speedups

    speedups = benchmark.pedantic(summarize, rounds=1, iterations=1)

    # DataPrep.EDA should win on the clear majority of datasets (the paper
    # reports wins on all 15; tiny fixed costs can flip near-instant datasets).
    wins = sum(1 for value in speedups.values() if value > 1.0)
    assert wins >= 11, f"DataPrep.EDA won on only {wins}/15 datasets"

    numerical_heavy = {"credit", "basketball", "diabetes"}
    heavy = [speedups[name] for name in numerical_heavy]
    rest = [value for name, value in speedups.items()
            if name not in numerical_heavy]
    assert sum(heavy) / len(heavy) > sum(rest) / len(rest), \
        "numerical-heavy datasets should show the largest speedups"
