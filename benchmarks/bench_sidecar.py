"""Parsed-chunk disk sidecar: warm re-scans skip CSV decoding entirely.

Projection and predicate pushdown shrink what a scan parses; the chunk
sidecar removes the parse itself on every scan after the first.  Two claims,
sized so CI can smoke both on every push:

1. **Zero decode** — a warm re-scan with a cold in-memory cache serves every
   chunk from the binary sidecar: ``sidecar_hits == chunks``, zero misses,
   zero CSV bytes decoded (the counters in ``meta["sidecar"]`` and the
   module totals agree), and results identical to the cold run.  At bench
   scale the warm scan beats the cold one ≥3x.
2. **Warm out-of-core ≈ in-memory** — with the sidecar populated, a
   streaming ``create_report`` over the scan costs at most 2x the same
   report on the fully in-memory frame: the decode gap between the two
   modes is gone, leaving only the chunked execution overhead.
"""

from __future__ import annotations

import csv
import math
import os
import time

import numpy as np

import pytest

from benchmarks.conftest import print_header
from repro import create_report, plot, read_csv, scan_csv
from repro.frame.sidecar import reset_stats, stats_snapshot
from repro.graph import TaskCache, set_global_cache

N_ROWS = int(os.environ.get("REPRO_BENCH_SIDECAR_ROWS", "60000"))
CHUNK_ROWS = 4_000

#: CI gate: the warm scan must beat the cold scan by this factor.
MIN_WARM_SPEEDUP = 3.0

#: Claim 2 gate: warm out-of-core report within 2x of in-memory.
MAX_OUTOFCORE_RATIO = 2.0

CONFIG = {
    "cache.enabled": False,     # isolate the disk sidecar from the
    "compute.scheduler": "threaded",    # in-memory cross-call cache
}


def _total_chunks() -> int:
    return math.ceil(N_ROWS / CHUNK_ROWS)


@pytest.fixture(scope="module")
def sidecar_csv(tmp_path_factory) -> str:
    """A mixed-dtype CSV: numeric, categorical and datetime columns."""
    rng = np.random.default_rng(7)
    path = str(tmp_path_factory.mktemp("sidecar_bench") / "mixed.csv")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["price", "size", "rating", "city", "listed"])
        block = 10_000
        written = 0
        start = np.datetime64("2021-01-01T00:00:00")
        while written < N_ROWS:
            rows = min(block, N_ROWS - written)
            price = rng.normal(250_000, 60_000, rows).round(2)
            size = rng.normal(1_800, 400, rows).round(1)
            rating = rng.integers(1, 6, rows)
            city = rng.choice(["vancouver", "toronto", "montreal"], rows)
            listed = [str(start + np.timedelta64(
                (written + i) % 360, "D")) for i in range(rows)]
            writer.writerows(zip(price.tolist(), size.tolist(),
                                 rating.tolist(), city, listed))
            written += rows
    return path


def _cold_route(tmp_path) -> dict:
    """A config whose sidecar directory is fresh (guaranteed cold)."""
    return {**CONFIG, "cache.disk_dir": str(tmp_path / "chunk-cache")}


def _timed_plot(path: str, config: dict) -> tuple:
    """One cold-in-memory-cache overview plot (full-width: all columns)."""
    set_global_cache(TaskCache())   # cold in-memory cache every run
    scan = scan_csv(path, chunk_rows=CHUNK_ROWS)
    started = time.perf_counter()
    result = plot(scan, mode="intermediates", config=config)
    return time.perf_counter() - started, result


def test_sidecar_warm_scan_decodes_zero_csv_bytes(sidecar_csv, tmp_path):
    """CI smoke: hit/miss counters, zero warm decode, ≥3x warm speedup."""
    total = _total_chunks()
    config = _cold_route(tmp_path)

    reset_stats()
    cold_seconds, cold = _timed_plot(sidecar_csv, config)
    cold_stats = cold.meta["sidecar"]
    assert cold_stats["enabled"] is True
    # Every chunk is decoded and spilled exactly once; multi-stage plans
    # may then re-read chunks from the just-written sidecar (hits > 0
    # within the cold run is expected intra-run reuse).
    assert cold_stats["sidecar_misses"] == total
    assert stats_snapshot()["stores"] == total

    reset_stats()
    warm_seconds, warm = _timed_plot(sidecar_csv, config)
    warm_stats = warm.meta["sidecar"]
    totals = stats_snapshot()
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    print_header(
        f"Chunk sidecar — {N_ROWS} rows, {total} chunks of {CHUNK_ROWS}")
    print(f"cold scan      {cold_seconds:6.3f} s  "
          f"(misses={cold_stats['sidecar_misses']}, stores={total})")
    print(f"warm scan      {warm_seconds:6.3f} s  "
          f"(hits={warm_stats['sidecar_hits']}, "
          f"avoided={warm_stats['bytes_decoded_avoided']} CSV bytes)")
    print(f"speedup        {speedup:6.1f}x  (required ≥ {MIN_WARM_SPEEDUP}x)")

    assert warm_stats["sidecar_hits"] >= total
    assert warm_stats["sidecar_misses"] == 0
    assert totals["csv_bytes_decoded"] == 0
    assert warm_stats["bytes_decoded_avoided"] > 0
    assert warm.items == cold.items
    assert speedup >= MIN_WARM_SPEEDUP


def test_sidecar_warm_outofcore_report_near_inmemory(sidecar_csv, tmp_path):
    """Warm out-of-core ``create_report`` within 2x of the in-memory run."""
    config = _cold_route(tmp_path)

    set_global_cache(TaskCache())
    scan = scan_csv(sidecar_csv, chunk_rows=CHUNK_ROWS)
    create_report(scan, config=config)      # cold: populate the sidecar

    set_global_cache(TaskCache())
    scan = scan_csv(sidecar_csv, chunk_rows=CHUNK_ROWS)
    started = time.perf_counter()
    warm_report = create_report(scan, config=config)
    warm_seconds = time.perf_counter() - started

    set_global_cache(TaskCache())
    frame = read_csv(sidecar_csv)
    started = time.perf_counter()
    memory_report = create_report(frame, config=dict(CONFIG))
    memory_seconds = time.perf_counter() - started

    ratio = warm_seconds / max(memory_seconds, 1e-9)
    print_header("Chunk sidecar — warm out-of-core report vs in-memory")
    print(f"in-memory      {memory_seconds:6.2f} s")
    print(f"warm scan      {warm_seconds:6.2f} s  "
          f"(sidecar hits={warm_report.sidecar_stats['sidecar_hits']}, "
          f"misses={warm_report.sidecar_stats['sidecar_misses']})")
    print(f"ratio          {ratio:6.2f}x  (required ≤ {MAX_OUTOFCORE_RATIO}x)")

    assert warm_report.sidecar_stats["sidecar_misses"] == 0
    assert warm_report.section_names == memory_report.section_names
    assert ratio <= MAX_OUTOFCORE_RATIO
