"""Figure 6(b): report generation time while scaling data size and cores.

The paper scales the bitcoin dataset from 10M to 100M rows and shows both
tools scaling linearly, with DataPrep.EDA about six times faster throughout.
The sweep here uses smaller row counts (see ``SCALING_ROWS``) but checks the
same two claims: near-linear growth for both tools and a stable DataPrep.EDA
advantage.

The second half of the paper's scaling claim is *core-count* scaling: the
task graph exposes per-chunk parallelism, so the right execution substrate
turns more workers into proportionally less wall-clock.  The worker-scaling
benchmarks below run the streaming report path (multi-file ``scan_csv`` →
``create_report``) under ``compute.scheduler="process"`` at increasing
worker counts — the chunk parse + sketch bundles are pure Python and
GIL-bound, so only the multiprocess backend can scale them.  The asserted
speedups are conservative (hardware-dependence, CI noise); the printed
table shows the actual curve.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Sequence

import numpy as np
import pytest

from benchmarks.conftest import SCALING_ROWS, print_header
from repro.baselines import eager_profile_report
from repro.datasets import bitcoin_dataset
from repro.frame.io import scan_csv, write_csv
from repro.graph import TaskCache, set_global_cache
from repro.report import create_report

#: (tool, n_rows) -> measured seconds.
_RESULTS: Dict[str, Dict[int, float]] = {"dataprep": {}, "baseline": {}}

_DATAPREP_CONFIG = {
    "compute.use_graph": "always",
    "compute.partition_rows": 50_000,
}


@pytest.mark.parametrize("n_rows", SCALING_ROWS)
def test_fig6b_dataprep_scaling(benchmark, n_rows):
    """DataPrep.EDA create_report at one data size."""
    frame = bitcoin_dataset(n_rows=n_rows, seed=2)

    def run():
        started = time.perf_counter()
        report = create_report(frame, config=_DATAPREP_CONFIG)
        html = report.to_html()
        _RESULTS["dataprep"][n_rows] = time.perf_counter() - started
        return len(html)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("n_rows", SCALING_ROWS)
def test_fig6b_baseline_scaling(benchmark, n_rows):
    """The eager baseline profiler at one data size."""
    frame = bitcoin_dataset(n_rows=n_rows, seed=2)

    def run():
        started = time.perf_counter()
        report = eager_profile_report(frame, render=True,
                                      kendall_max_rows=100_000)
        _RESULTS["baseline"][n_rows] = time.perf_counter() - started
        return len(report.html or "")

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


def test_fig6b_summary(benchmark):
    """Print the Figure 6(b) series and check linear scaling + the gap."""
    if any(len(series) < len(SCALING_ROWS) for series in _RESULTS.values()):
        pytest.skip("run the scaling benchmarks first (whole-file run)")

    def summarize():
        print_header("Figure 6(b) — report generation time vs data size "
                     "(bitcoin-shaped data)")
        print(f"{'rows':>10s} {'baseline[s]':>12s} {'dataprep[s]':>12s} {'ratio':>7s}")
        for n_rows in SCALING_ROWS:
            baseline = _RESULTS["baseline"][n_rows]
            dataprep = _RESULTS["dataprep"][n_rows]
            print(f"{n_rows:>10,d} {baseline:>12.2f} {dataprep:>12.2f} "
                  f"{baseline / max(dataprep, 1e-9):>6.1f}x")
        return dict(_RESULTS)

    results = benchmark.pedantic(summarize, rounds=1, iterations=1)

    # Claim 1: DataPrep.EDA is faster at every size (paper: ~6x).
    for n_rows in SCALING_ROWS:
        assert results["dataprep"][n_rows] < results["baseline"][n_rows]

    # Claim 2: both tools scale roughly linearly — the time at the largest
    # size should not exceed (size ratio x 2.5) times the time at the smallest
    # non-trivial size (fixed overheads make small sizes sub-linear).
    smallest, largest = SCALING_ROWS[1], SCALING_ROWS[-1]
    size_ratio = largest / smallest
    for tool in ("dataprep", "baseline"):
        growth = results[tool][largest] / max(results[tool][smallest], 1e-9)
        assert growth <= size_ratio * 2.5, \
            f"{tool} grew super-linearly: {growth:.1f}x for {size_ratio:.1f}x data"


# --------------------------------------------------------------------------- #
# Worker-count scaling on the streaming report path (process scheduler).
# --------------------------------------------------------------------------- #

#: Rows per file of the three-file worker-scaling dataset (override with
#: REPRO_BENCH_WORKER_ROWS; three files make the scan itself multi-file).
WORKER_ROWS_PER_FILE = int(os.environ.get("REPRO_BENCH_WORKER_ROWS", "25000"))

#: Chunk granularity: small enough that every worker always has chunks
#: queued, large enough that per-chunk numpy work dominates dispatch.
WORKER_SCALING_CHUNK_ROWS = 6_000


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def worker_scaling_csvs(tmp_path_factory) -> Sequence[str]:
    """Three bitcoin-shaped CSV files (one logical multi-file dataset)."""
    directory = tmp_path_factory.mktemp("fig6b_workers")
    paths = []
    for index in range(3):
        frame = bitcoin_dataset(n_rows=WORKER_ROWS_PER_FILE, seed=10 + index)
        path = str(directory / f"bitcoin-part-{index}.csv")
        write_csv(frame, path)
        paths.append(path)
    return paths


def _streaming_report_seconds(paths: Sequence[str], workers: int) -> float:
    """One cold streaming report under the process scheduler."""
    set_global_cache(TaskCache())     # no cross-run reuse: measure the engine
    started = time.perf_counter()
    scan = scan_csv(list(paths), chunk_rows=WORKER_SCALING_CHUNK_ROWS,
                    inference_rows=2_000)
    create_report(scan, config={"compute.scheduler": "process",
                                "compute.max_workers": workers,
                                "cache.enabled": False,
                                # Parse work must be real in every round;
                                # the disk sidecar would warm later rounds.
                                "cache.disk_enabled": False})
    return time.perf_counter() - started


def _print_worker_curve(times: Dict[int, float]) -> None:
    base = times[min(times)]
    print(f"{'workers':>8s} {'seconds':>9s} {'speedup':>8s}")
    for workers in sorted(times):
        print(f"{workers:>8d} {times[workers]:>9.2f} "
              f"{base / max(times[workers], 1e-9):>7.2f}x")


def test_fig6b_worker_scaling(benchmark, worker_scaling_csvs):
    """Streaming report speedup at 4 process workers vs 1 (needs >= 4 cores)."""
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"needs >= 4 usable cores to demonstrate scaling, "
                    f"have {cores}")

    def run():
        return {workers: _streaming_report_seconds(worker_scaling_csvs, workers)
                for workers in (1, 2, 4)}

    times = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_header("Figure 6(b) — streaming report vs process worker count "
                 f"({3 * WORKER_ROWS_PER_FILE:,d} rows, 3 files)")
    _print_worker_curve(times)
    speedup = times[1] / max(times[4], 1e-9)
    assert speedup > 1.5, \
        f"4 workers only {speedup:.2f}x faster than 1 (expected > 1.5x)"


def test_fig6b_worker_scaling_smoke(benchmark, worker_scaling_csvs):
    """CI sanity check: 2 process workers beat 1 on the streaming report."""
    cores = _usable_cores()
    if cores < 2:
        pytest.skip(f"needs >= 2 usable cores, have {cores}")

    def run():
        return {workers: _streaming_report_seconds(worker_scaling_csvs, workers)
                for workers in (1, 2)}

    times = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_header("Figure 6(b) smoke — streaming report, 1 vs 2 process workers")
    _print_worker_curve(times)
    speedup = times[1] / max(times[2], 1e-9)
    assert speedup > 1.15, \
        f"2 workers only {speedup:.2f}x faster than 1 (expected > 1.15x)"
