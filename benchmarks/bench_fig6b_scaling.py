"""Figure 6(b): report generation time while scaling the data size.

The paper scales the bitcoin dataset from 10M to 100M rows and shows both
tools scaling linearly, with DataPrep.EDA about six times faster throughout.
The sweep here uses smaller row counts (see ``SCALING_ROWS``) but checks the
same two claims: near-linear growth for both tools and a stable DataPrep.EDA
advantage.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np
import pytest

from benchmarks.conftest import SCALING_ROWS, print_header
from repro.baselines import eager_profile_report
from repro.datasets import bitcoin_dataset
from repro.report import create_report

#: (tool, n_rows) -> measured seconds.
_RESULTS: Dict[str, Dict[int, float]] = {"dataprep": {}, "baseline": {}}

_DATAPREP_CONFIG = {
    "compute.use_graph": "always",
    "compute.partition_rows": 50_000,
}


@pytest.mark.parametrize("n_rows", SCALING_ROWS)
def test_fig6b_dataprep_scaling(benchmark, n_rows):
    """DataPrep.EDA create_report at one data size."""
    frame = bitcoin_dataset(n_rows=n_rows, seed=2)

    def run():
        started = time.perf_counter()
        report = create_report(frame, config=_DATAPREP_CONFIG)
        html = report.to_html()
        _RESULTS["dataprep"][n_rows] = time.perf_counter() - started
        return len(html)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("n_rows", SCALING_ROWS)
def test_fig6b_baseline_scaling(benchmark, n_rows):
    """The eager baseline profiler at one data size."""
    frame = bitcoin_dataset(n_rows=n_rows, seed=2)

    def run():
        started = time.perf_counter()
        report = eager_profile_report(frame, render=True,
                                      kendall_max_rows=100_000)
        _RESULTS["baseline"][n_rows] = time.perf_counter() - started
        return len(report.html or "")

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


def test_fig6b_summary(benchmark):
    """Print the Figure 6(b) series and check linear scaling + the gap."""
    if any(len(series) < len(SCALING_ROWS) for series in _RESULTS.values()):
        pytest.skip("run the scaling benchmarks first (whole-file run)")

    def summarize():
        print_header("Figure 6(b) — report generation time vs data size "
                     "(bitcoin-shaped data)")
        print(f"{'rows':>10s} {'baseline[s]':>12s} {'dataprep[s]':>12s} {'ratio':>7s}")
        for n_rows in SCALING_ROWS:
            baseline = _RESULTS["baseline"][n_rows]
            dataprep = _RESULTS["dataprep"][n_rows]
            print(f"{n_rows:>10,d} {baseline:>12.2f} {dataprep:>12.2f} "
                  f"{baseline / max(dataprep, 1e-9):>6.1f}x")
        return dict(_RESULTS)

    results = benchmark.pedantic(summarize, rounds=1, iterations=1)

    # Claim 1: DataPrep.EDA is faster at every size (paper: ~6x).
    for n_rows in SCALING_ROWS:
        assert results["dataprep"][n_rows] < results["baseline"][n_rows]

    # Claim 2: both tools scale roughly linearly — the time at the largest
    # size should not exceed (size ratio x 2.5) times the time at the smallest
    # non-trivial size (fixed overheads make small sizes sub-linear).
    smallest, largest = SCALING_ROWS[1], SCALING_ROWS[-1]
    size_ratio = largest / smallest
    for tool in ("dataprep", "baseline"):
        growth = results[tool][largest] / max(results[tool][smallest], 1e-9)
        assert growth <= size_ratio * 2.5, \
            f"{tool} grew super-linearly: {growth:.1f}x for {size_ratio:.1f}x data"
