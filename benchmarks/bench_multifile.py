"""Multi-file scanning: throughput, warm-cache replay, cross-process keys.

Three claims of the multi-file ``FrameSource`` backend, sized to run in
seconds so CI can smoke it on every push:

1. **Scan throughput** — ``scan_csv([a, b, c])`` performs one quote-aware
   layout pass per file plus one bounded preview parse; the cost scales
   with the bytes on disk, not with the analysis that follows.
2. **Warm-cache replay** — a second ``create_report`` built from *brand
   new* ``scan_csv`` handles over the unchanged files is served largely
   from the cross-call intermediate cache: partition task keys derive from
   ``(path, byte ranges, (size, mtime_ns) stamp)``, not from object
   identity, so re-opening the dataset does not re-parse it.
3. **Cross-process key stability** — the same derivation in a separate
   python process yields byte-identical cache keys, the property that
   would let a persisted cache stay warm across sessions.
"""

from __future__ import annotations

import csv
import os
import subprocess
import sys
import time
from typing import List

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro import create_report, scan_csv
from repro.graph import TaskCache, set_global_cache
from repro.graph.cache import assign_cache_keys
from repro.graph.delayed import merge_graphs
from repro.graph.partition import PartitionedFrame

#: Number of part files and target on-disk bytes per file (smoke-sized).
N_FILES = 3
FILE_BYTES = 1_200_000

CHUNK_ROWS = 10_000


@pytest.fixture(scope="module")
def part_files(tmp_path_factory) -> List[str]:
    """N_FILES CSV parts with a shared schema (one logical dataset)."""
    directory = tmp_path_factory.mktemp("multifile_bench")
    rng = np.random.default_rng(5)
    paths = []
    for index in range(N_FILES):
        path = str(directory / f"part-{index}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["price", "size", "rating", "city"])
            while os.path.getsize(path) < FILE_BYTES:
                block = 20_000
                writer.writerows(zip(
                    rng.normal(250_000, 60_000, block).round(2),
                    rng.normal(1_800, 400, block).round(1),
                    rng.integers(1, 6, block),
                    rng.choice(["vancouver", "toronto", "montreal"], block)))
                handle.flush()
        paths.append(path)
    return paths


def _partition_cache_keys(paths: List[str]) -> List[str]:
    """Stable cache keys of every partition parse task of the dataset."""
    source = scan_csv(paths, chunk_rows=CHUNK_ROWS)
    partitioned = PartitionedFrame.from_source(source)
    graph, keys = merge_graphs(partitioned.partitions)
    cache_keys = assign_cache_keys(graph)
    return [cache_keys[key] for key in keys]


_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from benchmarks.bench_multifile import _partition_cache_keys
for key in _partition_cache_keys({paths!r}):
    print(key)
"""


def test_multifile_scan_throughput_and_warm_replay(part_files):
    total_bytes = sum(os.path.getsize(path) for path in part_files)

    # 1. Layout-scan throughput over all files.
    started = time.perf_counter()
    source = scan_csv(part_files, chunk_rows=CHUNK_ROWS)
    scan_seconds = time.perf_counter() - started
    n_rows = source.n_rows

    # 2. Cold report, then a warm replay from brand-new scan handles.
    set_global_cache(TaskCache())
    started = time.perf_counter()
    cold = create_report(source)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = create_report(scan_csv(part_files, chunk_rows=CHUNK_ROWS))
    warm_seconds = time.perf_counter() - started

    cold_hits = sum(report.cache_hits for report in cold.execution_reports)
    warm_hits = sum(report.cache_hits for report in warm.execution_reports)
    warm_executed = sum(report.tasks_executed
                        for report in warm.execution_reports)
    cold_executed = sum(report.tasks_executed
                        for report in cold.execution_reports)

    print_header(
        f"Multi-file scan — {len(part_files)} files, "
        f"{total_bytes / 1e6:.1f} MB, {n_rows} rows")
    print(f"layout scan   {scan_seconds:8.2f} s  "
          f"({total_bytes / 1e6 / max(scan_seconds, 1e-9):.0f} MB/s)")
    print(f"cold report   {cold_seconds:8.2f} s  "
          f"(tasks executed {cold_executed}, cache hits {cold_hits})")
    print(f"warm replay   {warm_seconds:8.2f} s  "
          f"(tasks executed {warm_executed}, cache hits {warm_hits})")

    assert cold.section_names == warm.section_names
    assert n_rows > 0
    # The warm replay must be served from the cache: fresh handles, same
    # (path, byte range, stamp) keys.
    assert warm_hits > 0, "fresh scan handles must hit the cross-call cache"
    assert warm_executed < cold_executed, \
        "a warm replay over unchanged files must execute fewer tasks"


def test_multifile_partition_keys_stable_across_processes(part_files):
    """The keys a persisted cache would be addressed by are process-free."""
    local_keys = _partition_cache_keys(part_files)
    assert all(key is not None for key in local_keys), \
        "partition parse tasks must be cacheable"

    src_root = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    script = _SUBPROCESS_SCRIPT.format(src=src_root, paths=list(part_files))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root, os.path.dirname(src_root), env.get("PYTHONPATH", "")])
    result = subprocess.run([sys.executable, "-c", script], env=env,
                            capture_output=True, text=True, check=True)
    remote_keys = result.stdout.split()

    print_header("Cross-process cache-key stability")
    print(f"{len(local_keys)} partition tasks, keys identical: "
          f"{remote_keys == local_keys}")
    assert remote_keys == local_keys
