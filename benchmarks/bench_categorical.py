"""Dictionary-encoded string columns: vectorized categorical kernels.

STRING columns are carried as int32 codes plus a unique-values dictionary,
and every categorical hot path (value counts, categorical summaries, pair
counts, sketch feeds) runs over the codes instead of per-row python
strings.  Three claims, sized so CI can smoke them on every push:

1. **Report speedup** — a string-heavy ``create_report`` over the encoded
   frame beats the same report over the residual object-array carrier by
   ≥2.5x at full size, with identical sections (the encoding must be
   invisible in the results, only in the clock).
2. **Pair-counts kernel** — the fused ``code1 * k + code2`` bincount beats
   the python pair-dict loop by ≥5x at 100k rows.
3. **Sidecar footprint** — the binary sidecar stores a ≤100-distinct
   string column as codes + dictionary blob in ≤½ the bytes of the per-row
   string layout it replaced.

Results land in ``BENCH_categorical.json`` in the working directory.
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np

from benchmarks.conftest import print_header
from repro import create_report
from repro.eda.compute.base import _chunk_pair_counts
from repro.frame.column import Column
from repro.frame.dtypes import DType
from repro.frame.frame import DataFrame
from repro.frame.sidecar import SidecarRoute, chunk_path, store_chunk
from repro.graph import TaskCache, set_global_cache

N_ROWS = int(os.environ.get("REPRO_BENCH_CATEGORICAL_ROWS", "60000"))
PAIR_ROWS = int(os.environ.get("REPRO_BENCH_CATEGORICAL_PAIR_ROWS", "100000"))

#: CI gates.  The timing gates only bind at full size — tiny smoke runs
#: are dominated by fixed overheads, so they get a relaxed floor.
MIN_REPORT_SPEEDUP = 2.5
REPORT_GATE_MIN_ROWS = 40_000
MIN_PAIR_SPEEDUP = 5.0
PAIR_GATE_MIN_ROWS = 100_000
MIN_SIDECAR_SHRINK = 2.0

CONFIG = {
    "cache.enabled": False,
    "compute.scheduler": "threaded",
    "compute.max_workers": 2,
}


def _string_heavy_frame(rows: int) -> DataFrame:
    """One numeric column, four categorical ones (the report's hot paths)."""
    rng = np.random.default_rng(17)
    district = [f"district-{code:03d}" for code in rng.integers(0, 300, rows)]
    agent = [f"agent-{code:02d}" for code in rng.integers(0, 100, rows)]
    return DataFrame({
        "price": rng.normal(250_000, 60_000, rows),
        "city": list(rng.choice(
            ["vancouver", "toronto", "montreal", "calgary", "ottawa",
             "halifax", "winnipeg", "victoria"], rows)),
        "house_type": list(rng.choice(
            ["detached", "condo", "townhouse", "duplex", "loft", "cabin"],
            rows)),
        "district": district,
        "agent": agent,
    })


def _residual(frame: DataFrame) -> DataFrame:
    """The same frame with every string column on the object-array carrier
    (the pre-encoding representation — the benchmark's baseline)."""
    columns = []
    for name in frame.columns:
        column = frame.column(name)
        if column.dtype is DType.STRING:
            columns.append(Column(name, column.data.copy(), DType.STRING,
                                  column.mask.copy()))
        else:
            columns.append(column)
    return DataFrame(columns)


def _timed_report(frame: DataFrame) -> tuple:
    set_global_cache(TaskCache())
    started = time.perf_counter()
    report = create_report(frame, config=dict(CONFIG))
    return time.perf_counter() - started, report


def _assert_identical(encoded, residual, path="items"):
    """Identical results up to two documented divergences: ``memory_bytes``
    (the dictionary footprint is the thing being optimized) and float
    summation order (the object path tallies categories in first-seen order,
    the codes path in sorted-dictionary order — last-ulp entropy drift)."""
    if isinstance(residual, dict):
        keys = set(residual) - {"memory_bytes"}
        assert set(encoded) - {"memory_bytes"} == keys, path
        for key in keys:
            _assert_identical(encoded[key], residual[key], f"{path}.{key}")
        return
    if isinstance(residual, (list, tuple)):
        assert len(encoded) == len(residual), path
        for index, (left, right) in enumerate(zip(encoded, residual)):
            _assert_identical(left, right, f"{path}[{index}]")
        return
    if isinstance(residual, float) or isinstance(encoded, float):
        left, right = float(encoded), float(residual)
        if left != left and right != right:
            return      # NaN == NaN for this comparison
        assert left == right or math.isclose(left, right, rel_tol=1e-9), path
        return
    assert encoded == residual, path


_PAYLOAD = {}


def _emit(**entries) -> None:
    _PAYLOAD.update(entries)
    with open("BENCH_categorical.json", "w", encoding="utf-8") as handle:
        json.dump(_PAYLOAD, handle, indent=2)


def test_string_heavy_report_speedup():
    """CI smoke: encoded report ≥2.5x faster, sections bit-identical."""
    frame = _string_heavy_frame(N_ROWS)
    for name in ("city", "house_type", "district", "agent"):
        assert frame.column(name).is_dictionary

    residual_seconds, residual_report = _timed_report(_residual(frame))
    encoded_seconds, encoded_report = _timed_report(frame)
    speedup = residual_seconds / max(encoded_seconds, 1e-9)

    print_header(f"Categorical report — {N_ROWS} rows, 4 string columns")
    print(f"object baseline  {residual_seconds:6.2f} s")
    print(f"dictionary       {encoded_seconds:6.2f} s")
    print(f"speedup          {speedup:6.1f}x  (required ≥ "
          f"{MIN_REPORT_SPEEDUP}x at ≥{REPORT_GATE_MIN_ROWS} rows)")
    _emit(rows=N_ROWS,
          report_object_seconds=round(residual_seconds, 4),
          report_encoded_seconds=round(encoded_seconds, 4),
          report_speedup=round(speedup, 2))

    # The encoding must never show up in the results.
    assert encoded_report.section_names == residual_report.section_names
    for name in residual_report.section_names:
        _assert_identical(encoded_report.sections[name].items,
                          residual_report.sections[name].items, path=name)
    _assert_identical(encoded_report.interactions,
                      residual_report.interactions, path="interactions")
    if N_ROWS >= REPORT_GATE_MIN_ROWS:
        assert speedup >= MIN_REPORT_SPEEDUP


def test_pair_counts_kernel_speedup():
    """CI smoke: fused-codes bincount vs python pair-dict loop."""
    rng = np.random.default_rng(23)
    first = [f"left-{code:02d}" for code in rng.integers(0, 50, PAIR_ROWS)]
    second = [f"right-{code:02d}" for code in rng.integers(0, 30, PAIR_ROWS)]
    encoded = DataFrame({"a": first, "b": second})
    residual = _residual(encoded)

    started = time.perf_counter()
    slow = _chunk_pair_counts(residual, "a", "b")
    loop_seconds = time.perf_counter() - started
    started = time.perf_counter()
    fast = _chunk_pair_counts(encoded, "a", "b")
    kernel_seconds = time.perf_counter() - started
    speedup = loop_seconds / max(kernel_seconds, 1e-9)

    print_header(f"Pair-counts kernel — {PAIR_ROWS} rows, 50x30 categories")
    print(f"python loop      {loop_seconds * 1e3:8.1f} ms")
    print(f"fused bincount   {kernel_seconds * 1e3:8.1f} ms")
    print(f"speedup          {speedup:6.1f}x  (required ≥ "
          f"{MIN_PAIR_SPEEDUP}x at ≥{PAIR_GATE_MIN_ROWS} rows)")
    _emit(pair_rows=PAIR_ROWS,
          pair_loop_seconds=round(loop_seconds, 5),
          pair_kernel_seconds=round(kernel_seconds, 5),
          pair_speedup=round(speedup, 2))

    assert fast == slow
    assert speedup >= (MIN_PAIR_SPEEDUP if PAIR_ROWS >= PAIR_GATE_MIN_ROWS
                       else 2.0)


def test_sidecar_bytes_shrink_for_low_cardinality(tmp_path):
    """CI smoke: codes + dictionary blob vs the per-row string layout."""
    rng = np.random.default_rng(29)
    rows = max(N_ROWS // 3, 5_000)
    values = [f"category-{code:02d}" for code in rng.integers(0, 100, rows)]
    frame = DataFrame({"label": values})
    assert frame.column("label").nunique() <= 100

    route = SidecarRoute(directory=str(tmp_path / "chunks"))
    source = str(tmp_path / "labels.csv")
    assert store_chunk(source, 0, 1000, (1, 2), frame, tuple(route))
    encoded_bytes = os.path.getsize(chunk_path(source, route, 0, 1000))
    # The layout this replaced: one int64 offset per row plus the UTF-8
    # bytes of every row's value (duplicates written out in full).
    baseline_bytes = 8 * (rows + 1) + sum(
        len(value.encode("utf-8")) for value in values)
    shrink = baseline_bytes / max(encoded_bytes, 1)

    print_header(f"Sidecar footprint — {rows} rows, ≤100 distinct strings")
    print(f"per-row layout   {baseline_bytes:10d} bytes")
    print(f"codes + dict     {encoded_bytes:10d} bytes")
    print(f"shrink           {shrink:6.1f}x  (required ≥ "
          f"{MIN_SIDECAR_SHRINK}x)")
    _emit(sidecar_rows=rows,
          sidecar_baseline_bytes=baseline_bytes,
          sidecar_encoded_bytes=encoded_bytes,
          sidecar_shrink=round(shrink, 2))

    assert shrink >= MIN_SIDECAR_SHRINK
