"""Figure 6(a): comparing execution engines on the bitcoin-shaped dataset.

The paper computes the intermediates of ``plot(df)`` on the 4.7M-row bitcoin
dataset (loaded with Dask's ``read_csv``) with Dask, Modin, Koalas and
PySpark, and finds the lazy shared-graph execution (Dask) fastest, eager
per-operation execution (Modin) slower, and RPC-style engines slowest on a
single node.

The workload here mirrors that setup: the bitcoin-shaped data sits in a CSV
file, partitions are parsed lazily inside the task graph
(:meth:`PartitionedFrame.from_csv`), and the requested values are the
``plot(df)`` intermediates (a summary and a histogram per column).  The lazy
engine parses every partition once and shares it across all intermediates;
the eager engine re-parses per requested value; the cluster-RPC engine pays a
dispatch latency per task.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import BITCOIN_ROWS, print_header
from repro.datasets import bitcoin_dataset
from repro.frame.io import write_csv
from repro.graph import Delayed, PartitionedFrame
from repro.graph.engines import Engine, get_engine
from repro.stats.descriptive import NumericSummary
from repro.stats.histogram import Histogram, compute_histogram

#: Engine name -> measured seconds (filled as the benchmarks run).
_RESULTS: Dict[str, float] = {}

#: The strategies compared, in the order of the paper's Figure 6(a) bars.
ENGINES = ["lazy", "eager", "cluster-rpc"]

#: Rows per CSV partition.
PARTITION_ROWS = 12_500


def _chunk_summary(partition, column: str) -> NumericSummary:
    return NumericSummary.from_column(partition.column(column))


def _combine_summaries(parts: List[NumericSummary]) -> NumericSummary:
    return NumericSummary.merge_all(parts)


def _chunk_histogram(partition, column: str) -> Histogram:
    values = partition.column(column).to_numpy(drop_missing=True)
    return compute_histogram(values.astype(float), 50, (0.0, 1.0e7))


def _combine_histograms(parts: List[Histogram]) -> Histogram:
    return Histogram.merge_all(parts)


def _plot_df_workload(partitioned: PartitionedFrame) -> List[Delayed]:
    """The plot(df) intermediates: a summary and a histogram per column."""
    values: List[Delayed] = []
    for column in partitioned.columns:
        values.append(partitioned.reduction(
            _chunk_summary, _combine_summaries, chunk_args=(column,)))
        values.append(partitioned.reduction(
            _chunk_histogram, _combine_histograms, chunk_args=(column,)))
    return values


@pytest.fixture(scope="module")
def bitcoin_csv_path():
    frame = bitcoin_dataset(n_rows=BITCOIN_ROWS, seed=1)
    directory = tempfile.mkdtemp(prefix="repro_fig6a_")
    path = os.path.join(directory, "bitcoin.csv")
    write_csv(frame, path)
    return path


@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig6a_engine(benchmark, bitcoin_csv_path, engine_name):
    """Compute the plot(df) intermediates with one engine."""
    def run():
        engine: Engine = get_engine(engine_name)
        started = time.perf_counter()
        partitioned = PartitionedFrame.from_csv(bitcoin_csv_path,
                                                partition_rows=PARTITION_ROWS)
        results = engine.compute(_plot_df_workload(partitioned))
        _RESULTS[engine_name] = time.perf_counter() - started
        return len(results)

    produced = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert produced == 16  # 8 columns x (summary + histogram)


def test_fig6a_summary(benchmark):
    """Print the Figure 6(a) bars and check the headline ordering."""
    if len(_RESULTS) < len(ENGINES):
        pytest.skip("run the per-engine benchmarks first (whole-file run)")

    def summarize():
        print_header(f"Figure 6(a) — engines computing plot(df) intermediates "
                     f"({BITCOIN_ROWS:,} bitcoin-shaped rows from CSV)")
        labels = {"lazy": "lazy shared graph (Dask / DataPrep.EDA)",
                  "eager": "eager per-operation (Modin-like)",
                  "cluster-rpc": "RPC dispatch per task (Koalas/PySpark-like)"}
        for engine_name in ENGINES:
            print(f"{labels[engine_name]:44s} {_RESULTS[engine_name]:8.2f} s")
        return dict(_RESULTS)

    results = benchmark.pedantic(summarize, rounds=1, iterations=1)

    # Paper shape: the lazy shared-graph engine wins clearly.  (The relative
    # order of the two alternatives is framework-specific and is not asserted;
    # see EXPERIMENTS.md.)
    assert results["lazy"] < results["eager"]
    assert results["lazy"] < results["cluster-rpc"]
