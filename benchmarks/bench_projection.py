"""Projection pushdown: single-column tasks over a wide scanned CSV.

The paper's promise is task-centric cost: ``plot(df, "x")`` should cost
what *one column* costs.  Before projection pushdown every chunk parse
materialized the whole table, so a single-column plot over a 40-column scan
paid 40 columns of cell collection and dtype coercion per chunk.  This
benchmark pins the two claims of the projection planner, sized so CI can
smoke the counter claim on every push:

1. **Parse work** — ``plot(scan, "x")`` plans and executes *projected*
   parses exclusively (one per chunk, one column wide); with
   ``compute.projection`` disabled, the same call executes full-width
   parses.  Asserted via the new ``projected_parses`` / ``full_parses``
   execution-report counters and the planner's ``columns_pruned``.
2. **Speedup** — the projected single-column plot is ≥3x faster than the
   full-parse path on a wide (40-column) CSV.
"""

from __future__ import annotations

import csv
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro import plot, scan_csv
from repro.graph import TaskCache, set_global_cache

N_COLUMNS = 40
N_ROWS = int(os.environ.get("REPRO_BENCH_PROJECTION_ROWS", "40000"))
CHUNK_ROWS = 4_000

#: Paper-style claim: a single-column plot over a wide scan must beat the
#: full-parse path by at least this factor.
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def wide_csv(tmp_path_factory) -> str:
    """A 40-column CSV: 39 numeric columns plus one categorical."""
    rng = np.random.default_rng(11)
    path = str(tmp_path_factory.mktemp("projection_bench") / "wide.csv")
    names = [f"x{index}" for index in range(N_COLUMNS - 1)] + ["label"]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        block = 10_000
        written = 0
        while written < N_ROWS:
            rows = min(block, N_ROWS - written)
            numeric = rng.normal(0.0, 1.0, (rows, N_COLUMNS - 1)).round(4)
            labels = rng.choice(["alpha", "beta", "gamma"], rows)
            writer.writerows(
                [*row, label] for row, label in zip(numeric.tolist(), labels))
            written += rows
    return path


def _timed_plot(path: str, column: str, projection: bool) -> tuple:
    """Best-of-2 cold runs of ``plot(scan, column)`` under one config."""
    # Both caches off: the claim is about parse cost, and the parsed-chunk
    # disk sidecar (on by default) would serve the second run without
    # decoding any CSV.
    config = {"cache.enabled": False, "cache.disk_enabled": False,
              "compute.projection": projection}
    best = None
    result = None
    for _ in range(2):
        set_global_cache(TaskCache())
        scan = scan_csv(path, chunk_rows=CHUNK_ROWS)
        started = time.perf_counter()
        result = plot(scan, column, config=config, mode="intermediates")
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _parse_totals(intermediates) -> tuple:
    reports = intermediates.meta["execution_reports"]
    return (sum(report.projected_parses for report in reports),
            sum(report.full_parses for report in reports))


def test_projection_parse_counts(wide_csv):
    """CI smoke: the projected run parses strictly less than the full run.

    "Parse count" here is measured in column-parses (tasks x columns each
    materializes): the projected single-column plot must execute only
    projected parse tasks, each one column wide, so its column-parse count
    is a ~40th of the full-parse path's.
    """
    projected_seconds, projected = _timed_plot(wide_csv, "x0", True)
    full_seconds, full = _timed_plot(wide_csv, "x0", False)

    projected_parses, stray_full = _parse_totals(projected)
    stray_projected, full_parses = _parse_totals(full)

    plan = projected.meta["projection"]
    projected_column_parses = projected_parses * 1
    full_column_parses = full_parses * N_COLUMNS

    print_header(
        f"Projection pushdown — {N_COLUMNS} columns x {N_ROWS} rows, "
        f"chunk_rows={CHUNK_ROWS}")
    print(f"projected run  {projected_seconds:6.2f} s  "
          f"({projected_parses} projected parses, {stray_full} full)")
    print(f"full run       {full_seconds:6.2f} s  "
          f"({full_parses} full parses, {stray_projected} projected)")
    print(f"columns pruned {plan['columns_pruned']}")

    assert projected_parses > 0 and stray_full == 0, \
        "plot(scan, col) must execute projected parses exclusively"
    assert full_parses > 0 and stray_projected == 0, \
        "compute.projection=False must restore full-width parses"
    assert projected_column_parses < full_column_parses, \
        "the projected run must parse fewer columns than the full run"
    # Every chunk prunes all but the plotted column.
    assert plan["columns_pruned"] == \
        (N_COLUMNS - 1) * plan["projected_parse_tasks"]


def test_projection_single_column_speedup(wide_csv):
    """The headline claim: ≥3x on a wide scan for a single-column plot."""
    projected_seconds, projected = _timed_plot(wide_csv, "x0", True)
    full_seconds, full = _timed_plot(wide_csv, "x0", False)

    speedup = full_seconds / max(projected_seconds, 1e-9)
    print_header("Projection pushdown — single-column plot speedup")
    print(f"full parse     {full_seconds:6.2f} s")
    print(f"projected      {projected_seconds:6.2f} s")
    print(f"speedup        {speedup:6.1f}x  (required ≥ {MIN_SPEEDUP}x)")

    # Both modes must agree before the timing means anything.
    assert projected.stats["count"] == full.stats["count"]
    assert projected.stats["mean"] == pytest.approx(full.stats["mean"])
    assert speedup >= MIN_SPEEDUP
