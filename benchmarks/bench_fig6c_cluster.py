"""Figure 6(c): report generation on a simulated cluster, varying workers.

The paper runs create_report on 100M rows stored in HDFS on an 8-node
cluster and shows wall time dropping as workers are added (the HDFS read is
split), with the 1-worker cluster slower than the single-node run because of
the extra read-over-the-network cost.

No cluster exists in this environment, so the experiment is reproduced with
the calibrated :class:`~repro.graph.cluster.ClusterCostModel` (anchored to a
real single-node measurement from this repository) plus a small
:class:`~repro.graph.cluster.SimulatedCluster` end-to-end run that exercises
actual worker threads and simulated I/O latency.
"""

from __future__ import annotations

import time
from typing import Dict, List

import pytest

from benchmarks.conftest import print_header
from repro.datasets import bitcoin_dataset
from repro.frame.frame import DataFrame
from repro.graph.cluster import ClusterCostModel, SimulatedCluster
from repro.graph.partition import precompute_chunk_sizes
from repro.report import create_report
from repro.stats.descriptive import NumericSummary

#: Worker counts of Figure 6(c).
WORKER_COUNTS = [1, 2, 4, 8]

#: Row count for the single-node calibration measurement.
CALIBRATION_ROWS = 100_000

#: Paper target: 100M rows; the analytical model extrapolates to it.
PAPER_ROWS = 100_000_000

_STATE: Dict[str, object] = {}


def test_fig6c_single_node_calibration(benchmark):
    """Measure the single-node create_report throughput used to calibrate."""
    frame = bitcoin_dataset(n_rows=CALIBRATION_ROWS, seed=5)

    def run():
        started = time.perf_counter()
        create_report(frame, config={"compute.use_graph": "always",
                                     "compute.partition_rows": 25_000})
        elapsed = time.perf_counter() - started
        _STATE["single_node_seconds"] = elapsed
        return elapsed

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


def test_fig6c_cost_model_sweep(benchmark):
    """Extrapolate the calibrated model to the paper's 100M-row workload."""
    if "single_node_seconds" not in _STATE:
        pytest.skip("run the calibration benchmark first (whole-file run)")

    def run():
        measured = float(_STATE["single_node_seconds"])
        model = ClusterCostModel().calibrate_from_single_node(
            n_rows=CALIBRATION_ROWS, measured_seconds=measured, io_fraction=0.35)
        # Reading from HDFS over the network is slower than the local read the
        # calibration measured; the paper makes the same observation when it
        # compares the 1-worker cluster with the single-node run.
        model.hdfs_bandwidth_bytes_per_s /= 3.0
        model.coordination_overhead_s = measured * 0.2
        times = model.sweep(PAPER_ROWS, WORKER_COUNTS)
        _STATE["model_times"] = times
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 6(c) — create_report on the simulated cluster "
                 f"({PAPER_ROWS:,} rows, calibrated cost model)")
    for workers, seconds in zip(WORKER_COUNTS, times):
        print(f"{workers:>2d} worker(s): {seconds:>10.1f} s")

    # Shape: adding workers always helps, and 8 workers beat 1 worker by a
    # wide margin (paper: ~2400s -> ~400s).
    assert times == sorted(times, reverse=True)
    assert times[0] / times[-1] > 2.0


def test_fig6c_simulated_cluster_execution(benchmark):
    """End-to-end run on the thread-based simulated cluster (shape check)."""
    frame = bitcoin_dataset(n_rows=80_000, seed=6)
    boundaries = precompute_chunk_sizes(len(frame), n_partitions=16)
    partitions = [frame.slice(start, stop) for start, stop in boundaries]
    partition_bytes = [partition.memory_bytes() for partition in partitions]

    def profile_partition(partition: DataFrame) -> Dict[str, NumericSummary]:
        return {name: NumericSummary.from_column(partition.column(name))
                for name in partition.numeric_columns()}

    def run():
        elapsed: Dict[int, float] = {}
        for workers in WORKER_COUNTS:
            cluster = SimulatedCluster(
                n_workers=workers, read_bandwidth_bytes_per_s=40e6)
            _, seconds = cluster.timed_run(partitions, partition_bytes,
                                           profile_partition)
            elapsed[workers] = seconds
        _STATE["cluster_times"] = elapsed
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 6(c) — thread-based simulated cluster (80,000 rows)")
    for workers in WORKER_COUNTS:
        print(f"{workers:>2d} worker(s): {elapsed[workers]:>8.2f} s")

    assert elapsed[8] < elapsed[1], "adding workers should reduce wall time"
    assert elapsed[4] <= elapsed[1]
