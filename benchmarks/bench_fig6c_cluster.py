"""Figure 6(c): report generation vs worker count, on real socket workers.

The paper runs ``create_report`` on an 8-node cluster reading 100M rows
from HDFS and shows wall time dropping as workers are added because the
read is split across nodes.  Earlier revisions of this benchmark *modelled*
that run with an analytical formula plus a thread-pool simulation; the
remote execution backend (``compute.scheduler = "remote"``) retires the
make-believe: the worker-scaling curve below is measured on actual worker
processes speaking the TCP wire protocol, each parsing its own per-file
shard of a multi-file scan and shipping back sketch states.

The analytical :class:`~repro.graph.cluster.ClusterCostModel` still earns
its keep, but the other way around: its parameters are *fitted* to the
measured runs (:meth:`ClusterCostModel.calibrate`), the fit error is
asserted, and only the extrapolation to the paper's 100M-row, 8-worker
setup — which this machine cannot host — comes from the model.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Sequence

import pytest

from benchmarks.conftest import print_header
from repro.datasets import bitcoin_dataset
from repro.frame.io import scan_csv, write_csv
from repro.graph import TaskCache, set_global_cache
from repro.graph.cluster import ClusterCostModel
from repro.graph.remote import RemoteExecutor, shutdown_remote_pools
from repro.report import create_report

#: Worker counts measured on real socket workers (Figure 6(c)'s x-axis is
#: 1..8; the local curve stops at 4 and the calibrated model extrapolates).
MEASURED_WORKER_COUNTS = [1, 2, 4]
PAPER_WORKER_COUNTS = [1, 2, 4, 8]

#: Paper target: 100M rows; the calibrated model extrapolates to it.
PAPER_ROWS = 100_000_000

#: Rows per CSV part file (4 files make one logical multi-file dataset, so
#: the per-file shards spread across workers).  Override with
#: REPRO_BENCH_FIG6C_ROWS for a larger, less noisy curve.
ROWS_PER_FILE = int(os.environ.get("REPRO_BENCH_FIG6C_ROWS", "25000"))
N_FILES = 4

#: Chunk granularity: small enough that every worker always has bundles
#: queued, large enough that per-chunk parse work dominates dispatch.
CHUNK_ROWS = 6_000

#: (n_workers -> measured seconds), filled by the scaling benchmark and
#: reused by the calibration benchmark in a whole-file run.
_STATE: Dict[str, object] = {}


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def fig6c_csvs(tmp_path_factory) -> Sequence[str]:
    """Four bitcoin-shaped CSV part files (one logical dataset)."""
    directory = tmp_path_factory.mktemp("fig6c_remote")
    paths = []
    for index in range(N_FILES):
        frame = bitcoin_dataset(n_rows=ROWS_PER_FILE, seed=20 + index)
        path = str(directory / f"bitcoin-part-{index}.csv")
        write_csv(frame, path)
        paths.append(path)
    return paths


def _remote_report_seconds(paths: Sequence[str], workers: int) -> float:
    """One cold multi-file streaming report on *workers* socket workers.

    The worker pool is started and awaited *before* the clock starts —
    Figure 6(c) measures the report, not python interpreter spawn time —
    and torn down afterwards so an idle pool never competes for cores with
    the next measurement.  Fresh intermediate cache and no disk sidecar:
    every run must do real parse work.
    """
    set_global_cache(TaskCache())
    executor = RemoteExecutor(max_workers=workers, workers=workers)
    try:
        connected = executor.pool().wait_for_workers(workers, timeout=120.0)
        assert connected == workers, \
            f"only {connected}/{workers} workers connected"
        scan = scan_csv(list(paths), chunk_rows=CHUNK_ROWS,
                        inference_rows=2_000)
        started = time.perf_counter()
        create_report(scan, config={"compute.scheduler": "remote",
                                    "compute.remote.workers": workers,
                                    "compute.max_workers": workers,
                                    "cache.enabled": False,
                                    "cache.disk_enabled": False})
        return time.perf_counter() - started
    finally:
        executor.discard()


def _measure_curve(paths: Sequence[str],
                   worker_counts: Sequence[int]) -> Dict[int, float]:
    return {workers: _remote_report_seconds(paths, workers)
            for workers in worker_counts}


def _print_curve(times: Dict[int, float]) -> None:
    base = times[min(times)]
    print(f"{'workers':>8s} {'seconds':>9s} {'speedup':>8s}")
    for workers in sorted(times):
        print(f"{workers:>8d} {times[workers]:>9.2f} "
              f"{base / max(times[workers], 1e-9):>7.2f}x")


def test_fig6c_remote_worker_scaling(benchmark, fig6c_csvs):
    """Multi-file create_report: 4 socket workers vs 1 (needs >= 4 cores)."""
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"needs >= 4 usable cores to demonstrate scaling, "
                    f"have {cores}")

    def run():
        return _measure_curve(fig6c_csvs, MEASURED_WORKER_COUNTS)

    times = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    _STATE["remote_times"] = times
    print_header("Figure 6(c) — create_report on real socket workers "
                 f"({N_FILES * ROWS_PER_FILE:,d} rows, {N_FILES} files)")
    _print_curve(times)

    speedup = times[1] / max(times[4], 1e-9)
    assert speedup >= 2.0, \
        f"4 workers only {speedup:.2f}x faster than 1 (expected >= 2x)"


def test_fig6c_remote_scaling_smoke(benchmark, fig6c_csvs):
    """CI smoke: 4 socket workers beat 1 by > 1.3x (skipped under 4 cores)."""
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"needs >= 4 usable cores, have {cores}")

    def run():
        return _measure_curve(fig6c_csvs, [1, 4])

    times = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_header("Figure 6(c) smoke — multi-file report, 1 vs 4 socket workers")
    _print_curve(times)
    speedup = times[1] / max(times[4], 1e-9)
    assert speedup > 1.3, \
        f"4 workers only {speedup:.2f}x faster than 1 (expected > 1.3x)"


def test_fig6c_model_calibration(benchmark, fig6c_csvs):
    """Fit ClusterCostModel to the measured curve and check the fit error.

    Runs on any core count: when the full scaling benchmark was skipped
    (fewer than 4 cores) the calibration measures a cheaper 1/2-worker
    curve itself — the least-squares fit of ``t(w) = c + K/w`` is defined
    for any two distinct worker counts, scaling or not.
    """
    n_rows = N_FILES * ROWS_PER_FILE
    bytes_per_row = sum(os.path.getsize(path) for path in fig6c_csvs) / n_rows

    def run():
        times = _STATE.get("remote_times")
        if times is None:
            times = _measure_curve(fig6c_csvs, [1, 2])
        model = ClusterCostModel.calibrate(
            sorted(times.items()), n_rows=n_rows, bytes_per_row=bytes_per_row)
        return times, model

    times, model = benchmark.pedantic(run, rounds=1, iterations=1,
                                      warmup_rounds=0)

    print_header("Figure 6(c) — cost model calibrated from measured runs")
    print(f"coordination overhead: {model.coordination_overhead_s:.2f} s, "
          f"scan bandwidth: {model.hdfs_bandwidth_bytes_per_s / 1e6:.1f} MB/s, "
          f"throughput: {model.worker_throughput_rows_per_s / 1e3:.0f} rows/ms"
          .replace("rows/ms", "krows/s"))
    print(f"{'workers':>8s} {'measured[s]':>12s} {'model[s]':>9s} {'error':>7s}")
    errors = []
    for workers in sorted(times):
        measured = times[workers]
        predicted = model.estimate_seconds(n_rows, workers)
        errors.append(abs(predicted - measured) / measured)
        print(f"{workers:>8d} {measured:>12.2f} {predicted:>9.2f} "
              f"{errors[-1] * 100:>6.1f}%")

    print_header(f"Figure 6(c) — model extrapolated to {PAPER_ROWS:,d} rows")
    paper_times = model.sweep(PAPER_ROWS, PAPER_WORKER_COUNTS)
    for workers, seconds in zip(PAPER_WORKER_COUNTS, paper_times):
        print(f"{workers:>2d} worker(s): {seconds:>10.1f} s")

    # The model must describe the machine it was fitted on: mean relative
    # error across the measured worker counts stays under 35% (generous —
    # single-round timings on shared CI cores are noisy).
    mean_error = sum(errors) / len(errors)
    assert mean_error < 0.35, \
        f"calibrated model off by {mean_error * 100:.0f}% on average"
    # And the extrapolated paper curve keeps Figure 6(c)'s shape: monotone
    # improvement with more workers.
    assert paper_times == sorted(paper_times, reverse=True)


def teardown_module() -> None:
    shutdown_remote_pools()
