"""Section 6.3 / Figure 7: the simulated user study.

The simulation's tool latencies are measured from the systems in this
repository (one fine-grained ``plot`` call for DataPrep.EDA, one full
rendered report for the eager baseline) on scaled-down BirdStrike and
DelayedFlights datasets; the behavioural model then replays the
within-subjects protocol for 32 simulated participants.
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import print_header
from repro.baselines import eager_profile_report
from repro.datasets import bird_strike_dataset, delayed_flights_dataset
from repro.eda import plot
from repro.userstudy import ToolLatencies, run_user_study, summarize_by_skill

#: Scaled-down study datasets (the originals have 220K and 5.8M rows).
DATASET_ROWS = {"BirdStrike": 20_000, "DelayedFlights": 60_000}

_STATE: Dict[str, object] = {}


def _study_frames():
    return {
        "BirdStrike": bird_strike_dataset(n_rows=DATASET_ROWS["BirdStrike"]),
        "DelayedFlights": delayed_flights_dataset(
            n_rows=DATASET_ROWS["DelayedFlights"]),
    }


def test_fig7_measure_tool_latencies(benchmark):
    """Measure the real latencies that ground the participant simulation."""
    frames = _study_frames()

    def run():
        dataprep_seconds = {}
        report_seconds = {}
        for name, frame in frames.items():
            started = time.perf_counter()
            plot(frame, frame.columns[6])
            dataprep_seconds[name] = time.perf_counter() - started
            started = time.perf_counter()
            eager_profile_report(frame, render=True, kendall_max_rows=20_000)
            report_seconds[name] = time.perf_counter() - started
        # The study datasets are row-scaled; scale the measured latencies back
        # to the original sizes so the session time budget stays meaningful.
        scale = {"BirdStrike": 220_000 / DATASET_ROWS["BirdStrike"],
                 "DelayedFlights": 5_819_079 / DATASET_ROWS["DelayedFlights"]}
        latencies = ToolLatencies(
            dataprep_task_seconds={name: seconds * scale[name]
                                   for name, seconds in dataprep_seconds.items()},
            profile_report_seconds={name: seconds * scale[name]
                                    for name, seconds in report_seconds.items()})
        _STATE["latencies"] = latencies
        return latencies

    latencies = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_header("Figure 7 — measured tool latencies (scaled to original rows)")
    for name in DATASET_ROWS:
        print(f"{name:16s} plot(df, col): "
              f"{latencies.dataprep_task_seconds[name]:7.1f} s   "
              f"profile report: {latencies.profile_report_seconds[name]:8.1f} s")


def test_fig7_simulated_study(benchmark):
    """Run the 32-participant simulation and check the paper's claims."""
    latencies = _STATE.get("latencies")
    if latencies is None:
        pytest.skip("run the latency measurement benchmark first (whole-file run)")

    def run():
        return run_user_study(n_participants=32, latencies=latencies, seed=7)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = result.summary()
    by_skill = summarize_by_skill(result)

    print_header("Section 6.3 — simulated within-subjects study (32 participants)")
    print(f"completed tasks / session : DataPrep.EDA {summary['dataprep_completed']:.2f} "
          f"vs baseline {summary['baseline_completed']:.2f} "
          f"(ratio {summary['completion_ratio']:.2f}x, paper 2.05x)")
    print(f"correct answers / session : DataPrep.EDA {summary['dataprep_correct']:.2f} "
          f"vs baseline {summary['baseline_correct']:.2f} "
          f"(ratio {summary['correctness_ratio']:.2f}x, paper 2.2x)")
    print(f"relative accuracy         : DataPrep.EDA "
          f"{summary['dataprep_relative_accuracy']:.2f} vs baseline "
          f"{summary['baseline_relative_accuracy']:.2f} (paper 0.82 vs 0.53)")
    print()
    print("Figure 7 — relative accuracy by tool / dataset / skill")
    for key, values in by_skill.items():
        print(f"  {key:44s} {values['relative_accuracy']:.2f} "
              f"(completed {values['completed']:.2f})")

    # Shape checks against the published aggregate statistics.
    assert 1.5 <= summary["completion_ratio"] <= 3.0
    assert summary["correctness_ratio"] >= 1.8
    assert summary["dataprep_relative_accuracy"] > \
        summary["baseline_relative_accuracy"] + 0.15
    # Pandas-profiling degrades on the complex dataset; DataPrep.EDA does not.
    baseline_simple = result.completed_per_participant("pandas_profiling",
                                                       "BirdStrike")
    baseline_complex = result.completed_per_participant("pandas_profiling",
                                                        "DelayedFlights")
    assert baseline_simple > baseline_complex
    dataprep_simple = result.completed_per_participant("dataprep", "BirdStrike")
    dataprep_complex = result.completed_per_participant("dataprep", "DelayedFlights")
    assert dataprep_complex >= 0.6 * dataprep_simple
