"""Predicate pushdown: selective filters over a clustered scanned CSV.

Filtered EDA should cost what the *matching rows* cost, not what the file
costs.  The predicate planner gets there twice over: the pushed-down filter
drops rows inside each chunk's parse (before dtype coercion feeds the
sketches), and the per-chunk zone maps drop whole chunks whose min/max
range cannot contain a match — before a single data byte is read.  On data
clustered by the filtered column (timestamps, auto-increment keys: the
common case for selective filters) the second mechanism dominates.

This benchmark pins both claims, sized so CI can smoke the counter claim on
every push:

1. **Chunk skipping** — a 10%-selective filter on the clustered key skips
   ≥50% of the chunks, observed via ``RunStats.chunks_skipped`` on the
   engine's scheduler and via ``meta["predicate"]`` on the API result.
2. **Speedup** — with the zone-map sidecar in place, the pruned run beats
   the same filtered call with pruning disabled (``compute.predicates:
   False``) by ≥1.5x, with identical results.
"""

from __future__ import annotations

import csv
import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro import plot, scan_csv
from repro.eda.compute.base import ComputeContext
from repro.eda.config import Config
from repro.frame.predicate import compile_predicate
from repro.frame.source import CsvSource, FilteredSource
from repro.graph import TaskCache, set_global_cache

N_ROWS = int(os.environ.get("REPRO_BENCH_PREDICATE_ROWS", "40000"))
CHUNK_ROWS = 2_000

#: The filter keeps the top 10% of the clustered key's range.
SELECTIVITY = 0.1

#: CI gate: the selective filter must skip at least half the chunks.
MIN_SKIP_FRACTION = 0.5

#: Paper-style claim: pruning must beat parse-everything-and-filter.
MIN_SPEEDUP = 1.5


def _total_chunks() -> int:
    return math.ceil(N_ROWS / CHUNK_ROWS)


def _threshold() -> float:
    return float(N_ROWS) * (1.0 - SELECTIVITY)


@pytest.fixture(scope="module")
def clustered_csv(tmp_path_factory) -> str:
    """A CSV clustered by ``ts`` (ascending), plus value/label columns."""
    rng = np.random.default_rng(13)
    path = str(tmp_path_factory.mktemp("predicate_bench") / "clustered.csv")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["ts", "value", "label"])
        block = 10_000
        written = 0
        while written < N_ROWS:
            rows = min(block, N_ROWS - written)
            ts = np.arange(written, written + rows, dtype=np.float64)
            values = rng.normal(0.0, 1.0, rows).round(4)
            labels = rng.choice(["alpha", "beta", "gamma"], rows)
            writer.writerows(zip(ts.tolist(), values.tolist(), labels))
            written += rows
    return path


def test_predicate_chunk_skipping(clustered_csv):
    """CI smoke: a selective filter skips ≥50% of chunks via zone maps."""
    total = _total_chunks()
    predicate = compile_predicate(("ts", ">=", _threshold()))

    # Engine-level: one reduction over the filtered source, counters read
    # straight off the scheduler's RunStats.
    set_global_cache(TaskCache())
    scan = scan_csv(clustered_csv, chunk_rows=CHUNK_ROWS)
    context = ComputeContext(
        FilteredSource(CsvSource(scan), predicate),
        Config.from_user({"cache.enabled": False}))
    resolved = context.resolve({"summary": context.numeric_summary("value")})
    run = context.engine.scheduler.last_run
    kept_rows = resolved["summary"].count

    print_header(
        f"Predicate pushdown — {N_ROWS} rows, chunk_rows={CHUNK_ROWS}, "
        f"ts >= {_threshold():.0f} ({SELECTIVITY:.0%} selective)")
    print(f"chunks         {total} total, {run.chunks_skipped} skipped "
          f"({run.chunks_skipped / total:.0%})")
    print(f"rows kept      {kept_rows} "
          f"(filter removed {run.rows_filtered} from parsed chunks)")

    assert kept_rows == int(N_ROWS * SELECTIVITY)
    assert run.chunks_skipped >= MIN_SKIP_FRACTION * total, \
        f"zone maps must skip ≥{MIN_SKIP_FRACTION:.0%} of {total} chunks"

    # API-level: the same claim through plot(where=) execution reports.
    set_global_cache(TaskCache())
    result = plot(scan_csv(clustered_csv, chunk_rows=CHUNK_ROWS), "value",
                  mode="intermediates", where=("ts", ">=", _threshold()),
                  config={"cache.enabled": False})
    stats = result.meta["predicate"]
    reports = result.meta["execution_reports"]
    print(f"plot(where=)   chunks_skipped={stats['chunks_skipped']}, "
          f"rows_filtered={stats['rows_filtered']}, "
          f"stages={len(reports)}")
    assert stats["enabled"] is True
    assert stats["chunks_skipped"] >= MIN_SKIP_FRACTION * total
    assert sum(report.chunks_skipped for report in reports) == \
        stats["chunks_skipped"]


def _timed_filtered_plot(path: str, pruning: bool) -> tuple:
    """Best-of-2 cold runs of the filtered plot with pruning on or off."""
    # Both caches off: the claim is about parse cost, and the parsed-chunk
    # disk sidecar (on by default) would serve the second run without
    # decoding any CSV.
    config = {"cache.enabled": False, "cache.disk_enabled": False,
              "compute.predicates": pruning}
    best = None
    result = None
    for _ in range(2):
        set_global_cache(TaskCache())
        scan = scan_csv(path, chunk_rows=CHUNK_ROWS)
        started = time.perf_counter()
        result = plot(scan, "value", mode="intermediates",
                      where=("ts", ">=", _threshold()), config=config)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_predicate_selective_speedup(clustered_csv):
    """The headline claim: pruning ≥1.5x over parse-everything-and-filter."""
    # Build the zone-map sidecar up front so both modes pay zero build cost
    # (the realistic steady state: the sidecar persists across processes).
    scan_csv(clustered_csv, chunk_rows=CHUNK_ROWS).zone_map()

    pruned_seconds, pruned = _timed_filtered_plot(clustered_csv, True)
    full_seconds, full = _timed_filtered_plot(clustered_csv, False)

    speedup = full_seconds / max(pruned_seconds, 1e-9)
    print_header("Predicate pushdown — selective filter speedup")
    print(f"parse all      {full_seconds:6.2f} s  "
          f"(chunks_skipped={full.meta['predicate']['chunks_skipped']})")
    print(f"pruned         {pruned_seconds:6.2f} s  "
          f"(chunks_skipped={pruned.meta['predicate']['chunks_skipped']})")
    print(f"speedup        {speedup:6.1f}x  (required ≥ {MIN_SPEEDUP}x)")

    # Both modes must agree before the timing means anything.
    assert pruned.stats["count"] == full.stats["count"]
    assert pruned.stats["mean"] == pytest.approx(full.stats["mean"])
    assert full.meta["predicate"]["chunks_skipped"] == 0
    assert speedup >= MIN_SPEEDUP
