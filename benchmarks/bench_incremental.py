"""Incremental append-aware refresh: re-parse only the delta.

The claim: when a profiled CSV *grows*, ``report.refresh()`` recognises the
append, keeps every pre-append chunk's per-chunk content stamp — and with
them the chunks' cached parse and sketch results — and executes only the
appended tail.  Two gates, sized so CI can smoke them on every push:

1. **Chunk reuse** — after appending ~1% of rows, the refreshed report's
   ``incremental_stats`` show ≥95% of parse chunks answered from the
   cross-call cache, and the refreshed report equals a cold report over the
   grown file section by section.
2. **Refresh latency** — at full benchmark size the refresh costs at most
   10% of the cold report's wall time (skipped at CI smoke sizes, where
   fixed planning/render overhead dominates the delta).

Results land in ``BENCH_incremental.json`` next to the working directory
for trend tracking.
"""

from __future__ import annotations

import csv
import json
import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro import create_report, scan_csv
from repro.graph import TaskCache, set_global_cache

N_ROWS = int(os.environ.get("REPRO_BENCH_INCREMENTAL_ROWS", "60000"))
CHUNK_ROWS = 2_000
#: The appended delta: ~1% of the base rows.
APPEND_ROWS = max(1, N_ROWS // 100)

#: CI gate: fraction of parse chunks the refresh must reuse.
MIN_REUSE_RATIO = 0.95

#: Full-size gate: refresh wall time as a fraction of the cold report.
MAX_REFRESH_RATIO = 0.10
#: The latency gate only makes sense once the delta dwarfs the fixed
#: planning/render overhead; CI smoke runs (15k rows) skip it.
LATENCY_GATE_MIN_ROWS = 60_000

CONFIG = {"compute.scheduler": "threaded", "compute.max_workers": 2}


def _write_rows(writer, rng, start, count):
    block = 10_000
    written = 0
    origin = np.datetime64("2021-01-01T00:00:00")
    while written < count:
        rows = min(block, count - written)
        price = rng.normal(250_000, 60_000, rows).round(2)
        size = rng.normal(1_800, 400, rows).round(1)
        rating = rng.integers(1, 6, rows)
        city = rng.choice(["vancouver", "toronto", "montreal"], rows)
        listed = [str(origin + np.timedelta64(
            (start + written + i) % 360, "D")) for i in range(rows)]
        writer.writerows(zip(price.tolist(), size.tolist(),
                             rating.tolist(), city, listed))
        written += rows


@pytest.fixture(scope="module")
def growing_csv(tmp_path_factory) -> str:
    rng = np.random.default_rng(11)
    path = str(tmp_path_factory.mktemp("incremental_bench") / "grow.csv")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["price", "size", "rating", "city", "listed"])
        _write_rows(writer, rng, 0, N_ROWS)
    return path


def test_incremental_refresh_chunk_reuse(growing_csv):
    """CI smoke: ≥95% chunk reuse on refresh after a 1% append."""
    set_global_cache(TaskCache())
    scan = scan_csv(growing_csv, chunk_rows=CHUNK_ROWS)
    started = time.perf_counter()
    cold = create_report(scan, config=dict(CONFIG))
    cold_seconds = time.perf_counter() - started

    rng = np.random.default_rng(13)
    with open(growing_csv, "a", newline="") as handle:
        _write_rows(csv.writer(handle), rng, N_ROWS, APPEND_ROWS)

    started = time.perf_counter()
    refreshed = cold.refresh()
    refresh_seconds = time.perf_counter() - started

    stats = refreshed.incremental_stats
    total = stats["chunks_reused"] + stats["chunks_new"]
    reuse_ratio = stats["chunks_reused"] / max(total, 1)
    ratio = refresh_seconds / max(cold_seconds, 1e-9)

    print_header(f"Incremental refresh — {N_ROWS} rows + {APPEND_ROWS} "
                 f"appended, chunks of {CHUNK_ROWS}")
    print(f"cold report    {cold_seconds:6.2f} s")
    print(f"refresh        {refresh_seconds:6.2f} s  ({ratio * 100:5.1f}% of "
          f"cold, required ≤ {MAX_REFRESH_RATIO * 100:.0f}% at full size)")
    print(f"chunk reuse    {stats['chunks_reused']}/{total} "
          f"({reuse_ratio * 100:5.1f}%, required ≥ "
          f"{MIN_REUSE_RATIO * 100:.0f}%)")
    print(f"bytes reparsed {stats['bytes_reparsed']}")

    payload = {
        "rows": N_ROWS,
        "append_rows": APPEND_ROWS,
        "chunk_rows": CHUNK_ROWS,
        "cold_seconds": round(cold_seconds, 4),
        "refresh_seconds": round(refresh_seconds, 4),
        "chunks_reused": stats["chunks_reused"],
        "chunks_new": stats["chunks_new"],
        "bytes_reparsed": stats["bytes_reparsed"],
        "reuse_ratio": round(reuse_ratio, 4),
    }
    with open("BENCH_incremental.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    # The refreshed report must match a cold report over the grown file.
    set_global_cache(TaskCache())
    verify = create_report(scan_csv(growing_csv, chunk_rows=CHUNK_ROWS),
                           config=dict(CONFIG))
    assert refreshed.section_names == verify.section_names
    for name in verify.section_names:
        assert set(refreshed.sections[name].items) == \
            set(verify.sections[name].items), name

    assert stats["enabled"]
    assert stats["chunks_new"] >= math.ceil(APPEND_ROWS / CHUNK_ROWS)
    assert reuse_ratio >= MIN_REUSE_RATIO
    if N_ROWS >= LATENCY_GATE_MIN_ROWS:
        assert ratio <= MAX_REFRESH_RATIO
