"""Out-of-core streaming: full report over a CSV ~10x the memory budget.

The acceptance claim of the streaming subsystem: ``create_report`` over a
``scan_csv`` input completes with peak traced memory within ~2x the
configured ``memory.budget_bytes`` even when the file is an order of
magnitude larger, while the in-memory path's peak scales with the file.

Peak memory is measured with ``tracemalloc`` (numpy buffers and python
strings are both traced), which is deterministic across runs; note it slows
the traced runs several-fold, so the wall-clock comparison is taken from a
separate untraced run.
"""

from __future__ import annotations

import csv
import os
import time
import tracemalloc
from typing import Tuple

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro import create_report, read_csv, scan_csv
from repro.graph import TaskCache, set_global_cache

#: The streaming memory budget under test.
BUDGET_BYTES = 4 * 1024 * 1024

#: The file must be at least this many times the budget.
FILE_BUDGET_RATIO = 10

#: Acceptance bound: streaming peak within ~2x the budget.
PEAK_BUDGET_BOUND = 2.0

STREAM_CONFIG = {
    "memory.budget_bytes": BUDGET_BYTES,
    "cache.enabled": False,      # measure the engine, not cache retention
    "cache.disk_enabled": False,  # nor the parsed-chunk disk sidecar
}


@pytest.fixture(scope="module")
def big_csv(tmp_path_factory) -> str:
    """A CSV at least FILE_BUDGET_RATIO x BUDGET_BYTES on disk."""
    path = str(tmp_path_factory.mktemp("outofcore") / "big.csv")
    rng = np.random.default_rng(0)
    block = 100_000
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["price", "size", "rating", "city"])
        while os.path.getsize(path) < FILE_BUDGET_RATIO * BUDGET_BYTES + 500_000:
            writer.writerows(zip(
                rng.normal(250_000, 60_000, block).round(2),
                rng.normal(1_800, 400, block).round(1),
                rng.integers(1, 6, block),
                rng.choice(["vancouver", "toronto", "montreal", "calgary"],
                           block)))
            handle.flush()
    return path


def _run_streaming(path: str) -> Tuple[float, object]:
    started = time.perf_counter()
    scan = scan_csv(path, budget_bytes=BUDGET_BYTES, inference_rows=2_000)
    report = create_report(scan, config=STREAM_CONFIG)
    return time.perf_counter() - started, report


def _run_in_memory(path: str) -> Tuple[float, object]:
    started = time.perf_counter()
    frame = read_csv(path)
    report = create_report(frame, config={"cache.enabled": False})
    return time.perf_counter() - started, report


def _traced(run, path: str) -> Tuple[float, int, object]:
    set_global_cache(TaskCache())
    tracemalloc.start()
    try:
        seconds, report = run(path)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return seconds, peak, report


def test_outofcore_report_stays_within_memory_budget(benchmark, big_csv):
    file_size = os.path.getsize(big_csv)
    assert file_size >= FILE_BUDGET_RATIO * BUDGET_BYTES

    # Untraced wall-clock (tracemalloc distorts time several-fold).
    set_global_cache(TaskCache())
    streaming_seconds, report = benchmark.pedantic(
        lambda: _run_streaming(big_csv), rounds=1, iterations=1,
        warmup_rounds=0)
    memory_seconds, _ = _run_in_memory(big_csv)

    # Traced peaks.
    traced_stream_seconds, streaming_peak, _ = _traced(_run_streaming, big_csv)
    traced_memory_seconds, memory_peak, _ = _traced(_run_in_memory, big_csv)

    print_header(
        f"Out-of-core report — file {file_size / 1e6:.1f} MB, "
        f"budget {BUDGET_BYTES / 1e6:.1f} MB "
        f"({file_size / BUDGET_BYTES:.1f}x)")
    print(f"{'mode':12s} {'wall s':>8s} {'traced s':>9s} "
          f"{'peak MB':>9s} {'peak/budget':>12s}")
    for mode, wall, traced_seconds, peak in (
            ("streaming", streaming_seconds, traced_stream_seconds,
             streaming_peak),
            ("in-memory", memory_seconds, traced_memory_seconds, memory_peak)):
        print(f"{mode:12s} {wall:8.1f} {traced_seconds:9.1f} "
              f"{peak / 1e6:9.2f} {peak / BUDGET_BYTES:12.2f}x")
    print(f"in-memory/streaming peak: {memory_peak / streaming_peak:.1f}x")

    # Acceptance: the report completed, its sections are all there, and the
    # streaming peak honours the budget while the in-memory peak cannot.
    assert report.section_names == ["Overview", "Correlations",
                                    "Missing Values"]
    assert streaming_peak <= PEAK_BUDGET_BOUND * BUDGET_BYTES, \
        f"streaming peak {streaming_peak / 1e6:.1f} MB exceeds " \
        f"{PEAK_BUDGET_BOUND}x budget"
    assert memory_peak > streaming_peak, \
        "materializing the file should cost more than streaming it"


@pytest.fixture(scope="module")
def split_csvs(big_csv, tmp_path_factory) -> Tuple[str, str]:
    """The big CSV split into two files at a record boundary near the middle."""
    directory = tmp_path_factory.mktemp("outofcore_multi")
    first = str(directory / "part-0.csv")
    second = str(directory / "part-1.csv")
    with open(big_csv, "rb") as handle:
        header = handle.readline()
        payload = handle.read()
    cut = payload.index(b"\n", len(payload) // 2) + 1
    with open(first, "wb") as handle:
        handle.write(header)
        handle.write(payload[:cut])
    with open(second, "wb") as handle:
        handle.write(header)
        handle.write(payload[cut:])
    return first, second


def test_outofcore_multifile_report_stays_within_memory_budget(split_csvs):
    """Two files ~10x the budget combined must stream like one file would."""
    combined_size = sum(os.path.getsize(path) for path in split_csvs)
    assert combined_size >= FILE_BUDGET_RATIO * BUDGET_BYTES

    def run(_unused_path: str) -> Tuple[float, object]:
        started = time.perf_counter()
        source = scan_csv(list(split_csvs), budget_bytes=BUDGET_BYTES,
                          inference_rows=2_000)
        report = create_report(source, config=STREAM_CONFIG)
        return time.perf_counter() - started, report

    seconds, peak, report = _traced(run, "")

    print_header(
        f"Out-of-core multi-file report — {len(split_csvs)} files, "
        f"{combined_size / 1e6:.1f} MB combined, "
        f"budget {BUDGET_BYTES / 1e6:.1f} MB "
        f"({combined_size / BUDGET_BYTES:.1f}x)")
    print(f"traced {seconds:.1f} s, peak {peak / 1e6:.2f} MB "
          f"({peak / BUDGET_BYTES:.2f}x budget)")

    assert report.section_names == ["Overview", "Correlations",
                                    "Missing Values"]
    assert peak <= PEAK_BUDGET_BOUND * BUDGET_BYTES, \
        f"multi-file streaming peak {peak / 1e6:.1f} MB exceeds " \
        f"{PEAK_BUDGET_BOUND}x budget"
