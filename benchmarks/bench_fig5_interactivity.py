"""Figure 5: fraction of fine-grained tasks finishing within a time budget.

The paper runs ``plot()``, ``plot_correlation()`` and ``plot_missing()`` for
every column (and column pair) of the 15 datasets and reports the percentage
of calls that finish within 0.5 / 1 / 2 / 5 seconds; most tasks finish within
one second and ``plot_missing(df, col)`` is the slowest family.

This benchmark runs the same sweep over a representative subset of the
datasets and prints the regenerated Figure 5 series.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import TABLE2_ROW_SCALE, print_header
from repro.datasets import load_kaggle_like
from repro.eda import plot, plot_correlation, plot_missing
from repro.eda.dtypes import SemanticType, detect_frame_types

#: Datasets covered by the sweep (a spread of sizes and column mixes).
DATASETS = ["heart", "titanic", "women", "suicide", "adult"]

#: The time thresholds of Figure 5, in seconds.
THRESHOLDS = (0.5, 1.0, 2.0, 5.0)

#: Per-function call latencies, collected across datasets.
_LATENCIES: Dict[str, List[float]] = {}

#: Cap on pair tasks per dataset so the sweep finishes quickly.
MAX_PAIRS = 6

#: Figure 5 measures the paper's system, which has no cross-call cache;
#: disable ours so every timed call pays its full cost.
_NO_CACHE = {"cache.enabled": False}


def _timed(function_name: str, callable_) -> None:
    started = time.perf_counter()
    callable_()
    _LATENCIES.setdefault(function_name, []).append(time.perf_counter() - started)


def _sweep_dataset(name: str) -> None:
    frame = load_kaggle_like(name, row_scale=TABLE2_ROW_SCALE)
    types = detect_frame_types(frame)
    numerical = [column for column, semantic in types.items()
                 if semantic is SemanticType.NUMERICAL and
                 frame.column(column).dtype.is_numeric]
    low_cardinality = [column for column in frame.columns
                       if frame.column(column).nunique() <= 100]

    for column in frame.columns:
        _timed("plot(df, col)", lambda c=column: plot(frame, c, config=_NO_CACHE))
        _timed("plot_missing(df, col)", lambda c=column: plot_missing(frame, c, config=_NO_CACHE))
    for column in numerical:
        _timed("plot_correlation(df, col)",
               lambda c=column: plot_correlation(frame, c, config=_NO_CACHE))

    pairs = list(itertools.combinations(
        [column for column in frame.columns if column in low_cardinality or
         column in numerical], 2))[:MAX_PAIRS]
    for first, second in pairs:
        _timed("plot(df, col1, col2)",
               lambda a=first, b=second: plot(frame, a, b, config=_NO_CACHE))
        _timed("plot_missing(df, col1, col2)",
               lambda a=first, b=second: plot_missing(frame, a, b, config=_NO_CACHE))
    numeric_pairs = list(itertools.combinations(numerical, 2))[:MAX_PAIRS]
    for first, second in numeric_pairs:
        _timed("plot_correlation(df, col1, col2)",
               lambda a=first, b=second: plot_correlation(frame, a, b, config=_NO_CACHE))

    _timed("plot(df)", lambda: plot(frame, config=_NO_CACHE))
    _timed("plot_correlation(df)", lambda: plot_correlation(frame, config=_NO_CACHE))
    _timed("plot_missing(df)", lambda: plot_missing(frame, config=_NO_CACHE))


@pytest.mark.parametrize("name", DATASETS)
def test_fig5_task_sweep(benchmark, name):
    """Run every fine-grained task of one dataset and record its latency."""
    benchmark.pedantic(lambda: _sweep_dataset(name), rounds=1, iterations=1,
                       warmup_rounds=0)


def test_fig5_summary(benchmark):
    """Print the Figure 5 series and check the paper's shape claims."""
    if not _LATENCIES:
        pytest.skip("run the sweep benchmarks first (whole-file run)")

    def summarize():
        print_header(f"Figure 5 — task latency distribution "
                     f"(row scale {TABLE2_ROW_SCALE}, {len(DATASETS)} datasets)")
        header = "".join(f"{f'<= {threshold}s':>10s}" for threshold in THRESHOLDS)
        print(f"{'function':32s}{header}{'tasks':>8s}")
        fractions = {}
        for function_name, latencies in sorted(_LATENCIES.items()):
            row = []
            for threshold in THRESHOLDS:
                fraction = sum(1 for value in latencies if value <= threshold) \
                    / len(latencies)
                row.append(fraction)
            fractions[function_name] = dict(zip(THRESHOLDS, row))
            cells = "".join(f"{value:>9.0%} " for value in row)
            print(f"{function_name:32s}{cells}{len(latencies):>7d}")
        return fractions

    fractions = benchmark.pedantic(summarize, rounds=1, iterations=1)

    # Paper shape: the majority of tasks complete within 1 second for every
    # function, and within 5 seconds virtually everything finishes.
    for function_name, row in fractions.items():
        assert row[5.0] >= 0.9, f"{function_name} exceeded the 5s budget too often"
    majority_within_one_second = [name for name, row in fractions.items()
                                  if row[1.0] >= 0.5]
    assert len(majority_within_one_second) >= len(fractions) - 2
