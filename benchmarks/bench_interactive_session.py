"""Interactive EDA session replay: cold vs. warm intermediate cache.

The paper's user study (Section 6.3 / Figure 7) has participants iterate
fine-grained task calls over one dataset — ``plot(df)``, then ``plot(df,
col)``, then ``plot_correlation(df)`` and so on.  Before the cross-call
intermediate cache, every call re-executed its whole task graph; with the
cache (``cache.enabled``, the default) later calls reuse the partition
slices, summaries and histograms computed by earlier ones.

This benchmark replays one such session twice against a fresh process-wide
cache: the first (cold) replay pays for everything, the second (warm) replay
must execute strictly fewer tasks and report cache hits in its
ExecutionReports.  Wall-clock times are printed per call.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from benchmarks.conftest import print_header
from repro.datasets import delayed_flights_dataset
from repro.eda import plot, plot_correlation, plot_missing
from repro.graph import TaskCache, get_global_cache, set_global_cache
from repro.report import create_report

#: Rows of the session dataset; above compute.small_data_rows so the graph
#: stage (and therefore the cache) is active, split into several partitions.
SESSION_ROWS = 60_000

SESSION_CONFIG = {"compute.partition_rows": 15_000}


def _session_calls(frame) -> List[Tuple[str, Any]]:
    """The replayed session: overview -> drill-down -> report (Figure 7 style)."""
    numeric = frame.numeric_columns()
    col1, col2 = numeric[0], numeric[1]
    return [
        ("plot(df)", lambda: plot(frame, config=SESSION_CONFIG,
                                  mode="intermediates")),
        (f'plot(df, "{col1}")', lambda: plot(frame, col1, config=SESSION_CONFIG,
                                             mode="intermediates")),
        (f'plot(df, "{col1}", "{col2}")',
         lambda: plot(frame, col1, col2, config=SESSION_CONFIG,
                      mode="intermediates")),
        ("plot_correlation(df)",
         lambda: plot_correlation(frame, config=SESSION_CONFIG,
                                  mode="intermediates")),
        ("plot_missing(df)",
         lambda: plot_missing(frame, config=SESSION_CONFIG,
                              mode="intermediates")),
        ("create_report(df)",
         lambda: create_report(frame, config=SESSION_CONFIG)),
    ]


def _execution_reports(result) -> List[Any]:
    if hasattr(result, "execution_reports"):      # Report
        return result.execution_reports
    return result.meta.get("execution_reports", [])  # Intermediates


def replay_session(frame) -> Dict[str, Any]:
    """Run the whole session once; return per-call and total statistics."""
    calls = []
    total_executed = 0
    total_hits = 0
    total_seconds = 0.0
    for label, call in _session_calls(frame):
        started = time.perf_counter()
        result = call()
        seconds = time.perf_counter() - started
        reports = _execution_reports(result)
        executed = sum(report.tasks_executed for report in reports)
        hits = sum(report.cache_hits for report in reports)
        calls.append({"call": label, "seconds": seconds,
                      "tasks_executed": executed, "cache_hits": hits})
        total_executed += executed
        total_hits += hits
        total_seconds += seconds
    return {"calls": calls, "tasks_executed": total_executed,
            "cache_hits": total_hits, "seconds": total_seconds}


def test_interactive_session_cold_vs_warm(benchmark):
    """The warm replay must execute strictly fewer tasks than the cold one."""
    frame = delayed_flights_dataset(n_rows=SESSION_ROWS)

    previous_cache = get_global_cache()
    set_global_cache(TaskCache())
    try:
        def run():
            get_global_cache().clear()
            cold = replay_session(frame)
            warm = replay_session(frame)
            return cold, warm

        cold, warm = benchmark.pedantic(run, rounds=1, iterations=1,
                                        warmup_rounds=0)
    finally:
        set_global_cache(previous_cache)

    print_header(
        f"Interactive session replay — {SESSION_ROWS} rows, cold vs. warm cache")
    print(f"{'call':34s} {'cold s':>8s} {'warm s':>8s} "
          f"{'cold tasks':>11s} {'warm tasks':>11s} {'warm hits':>10s}")
    for cold_call, warm_call in zip(cold["calls"], warm["calls"]):
        print(f"{cold_call['call']:34s} {cold_call['seconds']:8.3f} "
              f"{warm_call['seconds']:8.3f} "
              f"{cold_call['tasks_executed']:11d} "
              f"{warm_call['tasks_executed']:11d} "
              f"{warm_call['cache_hits']:10d}")
    speedup = cold["seconds"] / max(warm["seconds"], 1e-9)
    print(f"{'TOTAL':34s} {cold['seconds']:8.3f} {warm['seconds']:8.3f} "
          f"{cold['tasks_executed']:11d} {warm['tasks_executed']:11d} "
          f"{warm['cache_hits']:10d}")
    print(f"whole-session speedup: {speedup:.2f}x")

    # Acceptance: the warm replay executes strictly fewer tasks and the
    # avoided work is visible as cache hits in the ExecutionReports.
    assert warm["tasks_executed"] < cold["tasks_executed"]
    assert warm["cache_hits"] > 0
    # Even the cold session benefits: calls after the first reuse the
    # partition slices and summaries of their predecessors.
    assert sum(call["cache_hits"] for call in cold["calls"][1:]) > 0
