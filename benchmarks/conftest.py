"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see EXPERIMENTS.md for the index).  The synthetic datasets are
row-scaled so a full run finishes on a laptop in minutes; the *shape* of
each result (who wins, by roughly what factor, where crossovers fall) is what
is being reproduced, not the paper's absolute seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.graph import TaskCache, get_global_cache, set_global_cache


@pytest.fixture(autouse=True)
def _fresh_intermediate_cache():
    """Isolate the process-wide intermediate cache per benchmark test.

    The figure benchmarks reproduce a system without a cross-call cache, so
    a cache warmed by an earlier test (or an earlier dataset sweep) must
    never leak into their measurements.  bench_interactive_session, which
    measures the cache itself, installs its own instance on top of this.
    """
    previous = get_global_cache()
    set_global_cache(TaskCache())
    yield
    set_global_cache(previous)


#: Scale factor applied to the Table 2 dataset row counts.  Override with the
#: REPRO_BENCH_SCALE environment variable (1.0 = the published row counts).
TABLE2_ROW_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

#: Row count used for the bitcoin-shaped dataset (the paper uses 4.7M rows on
#: a server; the default here keeps a laptop run fast).
BITCOIN_ROWS = int(os.environ.get("REPRO_BENCH_BITCOIN_ROWS", "100000"))

#: Row counts for the Figure 6(b) scaling sweep (the paper sweeps 10M-100M).
SCALING_ROWS = [int(value) for value in os.environ.get(
    "REPRO_BENCH_SCALING_ROWS", "25000,50000,100000,200000").split(",")]


def print_header(title: str) -> None:
    """Uniform section header in benchmark output."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
