"""Tests for the simulated user study (Section 6.3 / Figure 7)."""

import pytest

from repro.errors import DatasetError
from repro.userstudy import (
    STUDY_TASKS,
    ToolLatencies,
    recruit_participants,
    run_user_study,
    summarize_by_skill,
)


class TestParticipants:
    def test_pool_composition(self):
        pool = recruit_participants(32, skilled_fraction=0.5, seed=1)
        assert len(pool) == 32
        assert sum(1 for person in pool if person.is_skilled) == 16

    def test_novices_are_slower_on_average(self):
        pool = recruit_participants(200, seed=2)
        skilled = [person.speed for person in pool if person.is_skilled]
        novice = [person.speed for person in pool if not person.is_skilled]
        assert sum(novice) / len(novice) > sum(skilled) / len(skilled)

    def test_validation(self):
        with pytest.raises(DatasetError):
            recruit_participants(0)
        with pytest.raises(DatasetError):
            recruit_participants(10, skilled_fraction=2.0)


class TestTasks:
    def test_five_sequential_tasks(self):
        assert len(STUDY_TASKS) == 5
        assert [task.task_id for task in STUDY_TASKS] == [1, 2, 3, 4, 5]
        for task in STUDY_TASKS:
            assert 0.0 <= task.report_coverage <= 1.0
            assert task.interactions >= 1


class TestStudyOutcomes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_user_study(n_participants=32, seed=7)

    def test_every_participant_attempts_all_tasks(self, result):
        assert len(result.outcomes) == 32 * 2 * len(STUDY_TASKS)

    def test_dataprep_improves_completion(self, result):
        # Paper: participants completed 2.05x more tasks with DataPrep.EDA.
        assert 1.5 <= result.completion_ratio() <= 3.0

    def test_dataprep_improves_correctness(self, result):
        # Paper: 2.2x more correct answers with DataPrep.EDA.
        assert result.correctness_ratio() >= 1.8

    def test_relative_accuracy_levels(self, result):
        # Paper: relative accuracy 0.82 (DataPrep.EDA) vs 0.53 (baseline).
        assert result.relative_accuracy("dataprep") >= 0.75
        assert result.relative_accuracy("pandas_profiling") <= 0.65

    def test_baseline_degrades_on_the_complex_dataset(self, result):
        simple = result.completed_per_participant("pandas_profiling", "BirdStrike")
        complex_dataset = result.completed_per_participant("pandas_profiling",
                                                           "DelayedFlights")
        assert simple > complex_dataset

    def test_dataprep_levels_skill_differences(self, result):
        by_skill = summarize_by_skill(result)
        dataprep_gap = abs(
            by_skill["dataprep/DelayedFlights/skilled"]["relative_accuracy"] -
            by_skill["dataprep/DelayedFlights/novice"]["relative_accuracy"])
        baseline_gap = abs(
            by_skill["pandas_profiling/BirdStrike/skilled"]["relative_accuracy"] -
            by_skill["pandas_profiling/BirdStrike/novice"]["relative_accuracy"])
        assert dataprep_gap < baseline_gap + 0.25

    def test_reproducibility(self):
        first = run_user_study(n_participants=8, seed=3).summary()
        second = run_user_study(n_participants=8, seed=3).summary()
        assert first == second

    def test_faster_baseline_reports_help_the_baseline(self):
        slow = ToolLatencies(profile_report_seconds={"BirdStrike": 600.0,
                                                     "DelayedFlights": 3000.0})
        fast = ToolLatencies(profile_report_seconds={"BirdStrike": 5.0,
                                                     "DelayedFlights": 10.0})
        slow_result = run_user_study(16, latencies=slow, seed=5)
        fast_result = run_user_study(16, latencies=fast, seed=5)
        assert fast_result.completed_per_participant("pandas_profiling") >= \
            slow_result.completed_per_participant("pandas_profiling")

    def test_validation(self):
        with pytest.raises(DatasetError):
            run_user_study(0)
