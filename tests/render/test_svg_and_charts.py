"""Tests for the SVG backend and the chart renderers."""

import numpy as np
import pytest

from repro.render import charts
from repro.render.svg import (
    Canvas,
    LinearScale,
    PlotArea,
    color_for,
    diverging_color,
    format_tick,
    sequential_color,
)


class TestScalesAndPalettes:
    def test_linear_scale_maps_endpoints(self):
        scale = LinearScale(0, 10, 100, 200)
        assert scale(0) == 100
        assert scale(10) == 200
        assert scale(5) == 150

    def test_degenerate_domain_is_widened(self):
        scale = LinearScale(3, 3, 0, 10)
        assert scale(3) == 0.0

    def test_non_finite_domain_falls_back(self):
        scale = LinearScale(float("nan"), float("inf"), 0, 10)
        assert np.isfinite(scale(0.5))

    def test_ticks_cover_domain(self):
        ticks = LinearScale(0, 97, 0, 100).ticks(5)
        assert ticks[0] >= 0
        assert ticks[-1] <= 97 + 1e-9
        assert ticks == sorted(ticks)

    def test_format_tick(self):
        assert format_tick(0) == "0"
        assert format_tick(1500000) == "1.5e+06"
        assert format_tick(25000) == "25k"
        assert format_tick(3.14159) == "3.14"
        assert format_tick(12) == "12"

    def test_palettes_are_valid_hex(self):
        for index in range(12):
            assert color_for(index).startswith("#")
        assert sequential_color(0.0).startswith("#")
        assert sequential_color(2.0).startswith("#")
        assert diverging_color(-1.0) != diverging_color(1.0)


class TestCanvas:
    def test_elements_are_serialised(self):
        canvas = Canvas(100, 50)
        canvas.rect(0, 0, 10, 10, "#ff0000", tooltip="a <b>")
        canvas.line(0, 0, 5, 5, "#000000", dash="2,2")
        canvas.circle(3, 3, 1, "#00ff00")
        canvas.polyline([(0, 0), (1, 1)], "#0000ff")
        canvas.text(5, 5, "label & more", rotate=-30)
        svg = canvas.to_svg()
        assert svg.startswith("<svg")
        assert svg.count("<rect") == 1
        assert "&lt;b&gt;" in svg          # tooltip is escaped
        assert "label &amp; more" in svg    # text is escaped
        assert 'stroke-dasharray="2,2"' in svg

    def test_plot_area_draws_axes(self):
        area = PlotArea.create(300, 200, (0, 10), (0, 5), title="T",
                               x_label="x", y_label="y")
        area.draw_axes()
        svg = area.canvas.to_svg()
        assert "T" in svg and "x" in svg and "y" in svg

    def test_category_band_partitions_width(self):
        area = PlotArea.create(300, 200, (0, 4), (0, 1))
        left0, width0 = area.category_band(0, 4)
        left3, _ = area.category_band(3, 4)
        assert left3 > left0
        assert width0 > 0


class TestChartRenderers:
    def test_histogram(self):
        svg = charts.render_histogram({"counts": [1, 5, 3], "edges": [0, 1, 2, 3]},
                                      400, 300)
        assert svg.count("<rect") == 3

    def test_histogram_with_no_data(self):
        svg = charts.render_histogram({"counts": [], "edges": []}, 400, 300)
        assert "no data" in svg

    def test_bar_chart(self):
        svg = charts.render_bar_chart({"categories": ["a", "b"], "counts": [3, 7]},
                                      400, 300)
        assert svg.count("<rect") == 2
        assert "a" in svg and "b" in svg

    def test_grouped_and_stacked_bars(self):
        groups = [{"category": "g1", "counts": [1, 2]},
                  {"category": "g2", "counts": [3, 4]}]
        grouped = charts.render_grouped_bars(groups, ["x", "y"], 400, 300, "t")
        stacked = charts.render_grouped_bars(groups, ["x", "y"], 400, 300, "t",
                                             stacked=True)
        assert grouped.count("<rect") >= 4
        assert stacked.count("<rect") >= 4

    def test_line_chart_with_multiple_series(self):
        svg = charts.render_line_chart([0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]},
                                       400, 300, "lines")
        assert svg.count("<polyline") == 2

    def test_scatter_with_regression(self):
        svg = charts.render_scatter({"x": [1, 2, 3], "y": [2, 4, 6],
                                     "slope": 2.0, "intercept": 0.0},
                                    400, 300, regression=True)
        assert svg.count("<circle") == 3
        assert "<line" in svg

    def test_qq_plot(self):
        svg = charts.render_qq_plot({"theoretical": [1, 2, 3],
                                     "sample": [1.1, 2.2, 2.9]}, 400, 300)
        assert svg.count("<circle") == 3

    def test_box_plots_with_outliers(self):
        boxes = [{"category": "a", "q1": 1, "median": 2, "q3": 3,
                  "lower_whisker": 0, "upper_whisker": 4,
                  "outlier_samples": [9.0, 10.0]}]
        svg = charts.render_box_plots(boxes, 400, 300)
        assert svg.count("<circle") == 2

    def test_heat_map_with_missing_cells(self):
        svg = charts.render_heat_map([[1.0, None], [0.5, 2.0]], ["x1", "x2"],
                                     ["y1", "y2"], 400, 300, "heat")
        assert svg.count("<rect") == 4
        assert "n/a" in svg

    def test_pie_chart(self):
        svg = charts.render_pie_chart({"labels": ["a", "b"], "counts": [1, 3]},
                                      400, 300)
        assert svg.count("<path") == 2

    def test_dendrogram(self):
        linkage = [{"left": 0, "right": 1, "distance": 1.0, "size": 2},
                   {"left": 2, "right": 3, "distance": 2.0, "size": 3}]
        svg = charts.render_dendrogram(["a", "b", "c"], linkage, 400, 300)
        assert svg.count("<line") == 6

    def test_stats_table_highlights(self):
        html = charts.render_stats_table({"mean": 1.23456, "count": 1000},
                                         400, 300,
                                         highlights={"mean": "too high"})
        assert "insight-row" in html
        assert "1,000" in html

    def test_missing_spectrum(self):
        svg = charts.render_missing_spectrum(
            {"columns": ["a", "b"], "densities": [[0.1, 0.0], [0.2, 0.1]]}, 400, 300)
        assert svg.count("<polyline") == 2

    def test_word_cloud(self):
        svg = charts.render_word_cloud({"words": ["alpha", "beta"],
                                        "weights": [1.0, 0.5]}, 400, 300)
        assert "alpha" in svg and "beta" in svg
