"""Tests for the tabbed Container layout and the report module."""

import pytest

from repro.baselines import eager_profile_report
from repro.eda import plot
from repro.eda.config import Config
from repro.errors import EDAError
from repro.render import render_intermediates
from repro.report import create_report


class TestContainer:
    def test_tabs_match_intermediates(self, house_frame):
        intermediates = plot(house_frame, "price", mode="intermediates")
        container = render_intermediates(intermediates, Config.from_user(),
                                         call='plot(df, "price")')
        assert set(container.tab_names) <= set(intermediates.visualization_names())
        assert container.tab_names[0] == "stats"

    def test_insight_badge_rendered(self, house_frame):
        container = plot(house_frame, "price")
        html = container.to_html()
        assert "insight-badge" in html  # price has missing values over threshold

    def test_howto_guides_rendered(self, house_frame):
        html = plot(house_frame, "price").to_html()
        assert "how to customize" in html
        assert "hist.bins" in html

    def test_max_tabs_limit(self, house_frame):
        container = plot(house_frame, "price", config={"render.max_tabs": 2})
        assert len(container.tab_names) == 2

    def test_each_container_gets_unique_ids(self, house_frame):
        first = plot(house_frame, "price")
        second = plot(house_frame, "size")
        assert first._id != second._id

    def test_show_prints_summary(self, house_frame, capsys):
        plot(house_frame, "price").show()
        captured = capsys.readouterr()
        assert "tabs" in captured.out

    def test_repr_html(self, house_frame):
        assert "<div" in plot(house_frame, "city")._repr_html_()


class TestReport:
    def test_report_sections(self, house_frame):
        report = create_report(house_frame)
        assert "Overview" in report.section_names
        assert "Correlations" in report.section_names
        assert "Missing Values" in report.section_names
        assert report.total_seconds > 0

    def test_report_interactions_cover_numeric_pairs(self, house_frame):
        report = create_report(house_frame)
        assert len(report.interactions) == 3  # C(3 numeric columns, 2)

    def test_report_insights_collected(self, house_frame):
        report = create_report(house_frame)
        # size and price are constructed to be strongly correlated.
        assert any(insight.kind == "high_correlation" for insight in report.insights())

    def test_report_save(self, house_frame, tmp_path):
        report = create_report(house_frame)
        path = report.save(str(tmp_path / "report.html"))
        content = open(path).read()
        assert "<h2>Overview</h2>" in content
        assert "<svg" in content

    def test_report_title_override(self, house_frame):
        report = create_report(house_frame, title="Housing Report")
        assert report.title == "Housing Report"

    def test_report_requires_dataframe(self):
        with pytest.raises(EDAError):
            create_report({"a": [1, 2]})

    def test_report_without_numeric_columns_skips_correlations(self):
        from repro.frame import DataFrame
        frame = DataFrame({"a": ["x", "y", "z"], "b": ["1a", "2b", "3c"]})
        report = create_report(frame)
        assert "Correlations" not in report.section_names


class TestEagerBaseline:
    def test_sections_present(self, house_frame):
        report = eager_profile_report(house_frame)
        assert set(report.variables) == set(house_frame.columns)
        assert report.overview["n_rows"] == len(house_frame)
        assert len(report.interactions) == 3
        assert "pearson" in report.correlations
        assert report.missing["counts"]["price"] == \
            house_frame.column("price").missing_count()

    def test_render_produces_html(self, house_frame):
        report = eager_profile_report(house_frame, render=True)
        assert report.html is not None
        assert "<svg" in report.html
        assert "render" in report.timings

    def test_numeric_variable_blocks(self, house_frame):
        report = eager_profile_report(house_frame)
        section = report.variables["size"]
        assert "histogram" in section
        assert "quantiles" in section
        assert len(section["minimum_values"]) == 10

    def test_categorical_variable_blocks(self, house_frame):
        report = eager_profile_report(house_frame)
        section = report.variables["city"]
        assert "common_values" in section
        assert "length_stats" in section

    def test_kendall_row_cap(self, house_frame):
        capped = eager_profile_report(house_frame, kendall_max_rows=50)
        assert "kendall" in capped.correlations

    def test_requires_dataframe(self):
        with pytest.raises(EDAError):
            eager_profile_report([1, 2, 3])
