"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frame import Column, DataFrame


@pytest.fixture
def house_frame() -> DataFrame:
    """The running example of the paper: house-price training data."""
    rng = np.random.default_rng(42)
    n = 400
    size = rng.normal(2000, 350, n)
    price = size * 150 + rng.normal(0, 20_000, n)
    price[rng.random(n) < 0.1] = np.nan
    year_built = rng.integers(1950, 2021, n)
    return DataFrame({
        "size": size,
        "year_built": year_built,
        "city": list(rng.choice(["vancouver", "toronto", "montreal", "calgary"], n,
                                p=[0.4, 0.3, 0.2, 0.1])),
        "house_type": list(rng.choice(["detached", "condo", "townhouse"], n)),
        "price": price,
    })


@pytest.fixture
def mixed_frame() -> DataFrame:
    """A tiny hand-written frame with every dtype and missing values."""
    return DataFrame({
        "ints": [1, 2, 3, 4, None],
        "floats": [1.5, None, 3.25, -2.0, 0.0],
        "strings": ["a", "b", "a", None, "c"],
        "bools": [True, False, True, None, False],
        "dates": ["2020-01-01", "2020-06-15", None, "2021-03-30", "2021-12-31"],
    })


@pytest.fixture
def numeric_column() -> Column:
    """A numeric column with a known distribution and two missing entries."""
    values = [10.0, 12.0, 14.0, 16.0, 18.0, 20.0, None, None, 100.0, 12.0]
    return Column("metric", values)


@pytest.fixture
def categorical_column() -> Column:
    """A categorical column with a dominant category and one missing entry."""
    return Column("color", ["red", "red", "red", "blue", "green", None, "blue"])
