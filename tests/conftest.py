"""Shared fixtures for the test suite, plus the pinned hypothesis profiles."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.frame import Column, DataFrame

# Hypothesis profiles: "dev" (default) explores freely; "ci" is pinned so the
# property suites are deterministic in Actions — derandomized example
# generation, a bounded example count, and no wall-clock deadline (shared CI
# runners make timing-based flakiness otherwise inevitable).  Select with
# HYPOTHESIS_PROFILE=ci.  Hypothesis is optional: without it the property
# test modules fail to collect individually, but the rest of the suite must
# still run, so this conftest must not hard-require it.
try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - exercised only without hypothesis
    # Skip the property-test modules at collection so the rest of the suite
    # still runs in a hypothesis-less environment.
    collect_ignore_glob = ["*properties.py", "*/*properties.py"]
else:
    settings.register_profile("dev", deadline=None)
    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def house_frame() -> DataFrame:
    """The running example of the paper: house-price training data."""
    rng = np.random.default_rng(42)
    n = 400
    size = rng.normal(2000, 350, n)
    price = size * 150 + rng.normal(0, 20_000, n)
    price[rng.random(n) < 0.1] = np.nan
    year_built = rng.integers(1950, 2021, n)
    return DataFrame({
        "size": size,
        "year_built": year_built,
        "city": list(rng.choice(["vancouver", "toronto", "montreal", "calgary"], n,
                                p=[0.4, 0.3, 0.2, 0.1])),
        "house_type": list(rng.choice(["detached", "condo", "townhouse"], n)),
        "price": price,
    })


@pytest.fixture
def mixed_frame() -> DataFrame:
    """A tiny hand-written frame with every dtype and missing values."""
    return DataFrame({
        "ints": [1, 2, 3, 4, None],
        "floats": [1.5, None, 3.25, -2.0, 0.0],
        "strings": ["a", "b", "a", None, "c"],
        "bools": [True, False, True, None, False],
        "dates": ["2020-01-01", "2020-06-15", None, "2021-03-30", "2021-12-31"],
    })


@pytest.fixture
def numeric_column() -> Column:
    """A numeric column with a known distribution and two missing entries."""
    values = [10.0, 12.0, 14.0, 16.0, 18.0, 20.0, None, None, 100.0, 12.0]
    return Column("metric", values)


@pytest.fixture
def categorical_column() -> Column:
    """A categorical column with a dominant category and one missing entry."""
    return Column("color", ["red", "red", "red", "blue", "green", None, "blue"])
