"""Tests for CSV input/output."""

import io

import pytest

from repro.errors import FrameError
from repro.frame import DataFrame, DType, read_csv, write_csv


def roundtrip(frame: DataFrame, **kwargs) -> DataFrame:
    buffer = io.StringIO()
    write_csv(frame, buffer)
    buffer.seek(0)
    return read_csv(buffer, **kwargs)


class TestReadCsv:
    def test_basic_read_with_inference(self):
        text = "a,b,c\n1,x,2020-01-01\n2,y,2021-02-03\n"
        frame = read_csv(io.StringIO(text))
        assert frame.shape == (2, 3)
        assert frame.dtypes["a"] is DType.INT
        assert frame.dtypes["b"] is DType.STRING
        assert frame.dtypes["c"] is DType.DATETIME

    def test_missing_tokens_become_missing(self):
        text = "a,b\n1,\n,x\nNA,y\n"
        frame = read_csv(io.StringIO(text))
        assert frame.column("a").missing_count() == 2
        assert frame.column("b").missing_count() == 1

    def test_dtype_override(self):
        text = "a\n1\n2\n"
        frame = read_csv(io.StringIO(text), dtypes={"a": DType.STRING})
        assert frame.dtypes["a"] is DType.STRING

    def test_no_header_requires_names(self):
        with pytest.raises(FrameError):
            read_csv(io.StringIO("1,2\n"), has_header=False)
        frame = read_csv(io.StringIO("1,2\n3,4\n"), has_header=False,
                         column_names=["x", "y"])
        assert frame.columns == ["x", "y"]
        assert len(frame) == 2

    def test_max_rows(self):
        text = "a\n" + "\n".join(str(index) for index in range(100)) + "\n"
        frame = read_csv(io.StringIO(text), max_rows=10)
        assert len(frame) == 10

    def test_ragged_rows_are_normalised(self):
        text = "a,b\n1,2\n3\n4,5,6\n"
        frame = read_csv(io.StringIO(text))
        assert frame.shape == (3, 2)
        assert frame.column("b").missing_count() == 1

    def test_empty_stream(self):
        frame = read_csv(io.StringIO(""))
        assert frame.shape == (0, 0)

    def test_file_round_trip(self, tmp_path, house_frame):
        path = tmp_path / "houses.csv"
        write_csv(house_frame, str(path))
        loaded = read_csv(str(path))
        assert loaded.shape == house_frame.shape
        assert loaded.columns == house_frame.columns


class TestRoundTrip:
    def test_values_and_missing_survive(self, mixed_frame):
        loaded = roundtrip(mixed_frame)
        assert loaded.shape == mixed_frame.shape
        assert loaded.column("ints").missing_count() == 1
        assert loaded.column("strings").to_list()[:3] == ["a", "b", "a"]

    def test_numeric_precision(self):
        frame = DataFrame({"x": [0.1, 1e-7, 123456.789]})
        loaded = roundtrip(frame)
        for original, copied in zip(frame.column("x").to_list(),
                                    loaded.column("x").to_list()):
            assert copied == pytest.approx(original)

    def test_bool_round_trip(self):
        frame = DataFrame({"flag": [True, False, None]})
        loaded = roundtrip(frame)
        assert loaded.dtypes["flag"] is DType.BOOL
        assert loaded.column("flag").to_list() == [True, False, None]

    def test_datetime_round_trip(self, mixed_frame):
        loaded = roundtrip(mixed_frame)
        assert loaded.dtypes["dates"] is DType.DATETIME
        assert loaded.column("dates").missing_count() == 1
