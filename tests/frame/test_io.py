"""Tests for CSV input/output."""

import io

import pytest

from repro.errors import FrameError
from repro.frame import DataFrame, DType, read_csv, write_csv


def roundtrip(frame: DataFrame, **kwargs) -> DataFrame:
    buffer = io.StringIO()
    write_csv(frame, buffer)
    buffer.seek(0)
    return read_csv(buffer, **kwargs)


class TestReadCsv:
    def test_basic_read_with_inference(self):
        text = "a,b,c\n1,x,2020-01-01\n2,y,2021-02-03\n"
        frame = read_csv(io.StringIO(text))
        assert frame.shape == (2, 3)
        assert frame.dtypes["a"] is DType.INT
        assert frame.dtypes["b"] is DType.STRING
        assert frame.dtypes["c"] is DType.DATETIME

    def test_missing_tokens_become_missing(self):
        text = "a,b\n1,\n,x\nNA,y\n"
        frame = read_csv(io.StringIO(text))
        assert frame.column("a").missing_count() == 2
        assert frame.column("b").missing_count() == 1

    def test_dtype_override(self):
        text = "a\n1\n2\n"
        frame = read_csv(io.StringIO(text), dtypes={"a": DType.STRING})
        assert frame.dtypes["a"] is DType.STRING

    def test_no_header_requires_names(self):
        with pytest.raises(FrameError):
            read_csv(io.StringIO("1,2\n"), has_header=False)
        frame = read_csv(io.StringIO("1,2\n3,4\n"), has_header=False,
                         column_names=["x", "y"])
        assert frame.columns == ["x", "y"]
        assert len(frame) == 2

    def test_max_rows(self):
        text = "a\n" + "\n".join(str(index) for index in range(100)) + "\n"
        frame = read_csv(io.StringIO(text), max_rows=10)
        assert len(frame) == 10

    def test_ragged_rows_are_normalised(self):
        text = "a,b\n1,2\n3\n4,5,6\n"
        frame = read_csv(io.StringIO(text))
        assert frame.shape == (3, 2)
        assert frame.column("b").missing_count() == 1

    def test_empty_stream(self):
        frame = read_csv(io.StringIO(""))
        assert frame.shape == (0, 0)

    def test_file_round_trip(self, tmp_path, house_frame):
        path = tmp_path / "houses.csv"
        write_csv(house_frame, str(path))
        loaded = read_csv(str(path))
        assert loaded.shape == house_frame.shape
        assert loaded.columns == house_frame.columns


class TestRoundTrip:
    def test_values_and_missing_survive(self, mixed_frame):
        loaded = roundtrip(mixed_frame)
        assert loaded.shape == mixed_frame.shape
        assert loaded.column("ints").missing_count() == 1
        assert loaded.column("strings").to_list()[:3] == ["a", "b", "a"]

    def test_numeric_precision(self):
        frame = DataFrame({"x": [0.1, 1e-7, 123456.789]})
        loaded = roundtrip(frame)
        for original, copied in zip(frame.column("x").to_list(),
                                    loaded.column("x").to_list()):
            assert copied == pytest.approx(original)

    def test_bool_round_trip(self):
        frame = DataFrame({"flag": [True, False, None]})
        loaded = roundtrip(frame)
        assert loaded.dtypes["flag"] is DType.BOOL
        assert loaded.column("flag").to_list() == [True, False, None]

    def test_datetime_round_trip(self, mixed_frame):
        loaded = roundtrip(mixed_frame)
        assert loaded.dtypes["dates"] is DType.DATETIME
        assert loaded.column("dates").missing_count() == 1


class TestUsecolsProjection:
    TEXT = "a,b,c,d\n1,x,2020-01-01,1.5\n2,y,2021-02-03,2.5\n3,z,2022-03-04,3.5\n"

    def test_projected_read_matches_select(self):
        full = read_csv(io.StringIO(self.TEXT))
        projected = read_csv(io.StringIO(self.TEXT), usecols=["d", "a"])
        # File order regardless of the order given.
        assert projected.columns == ["a", "d"]
        assert projected == full.select(["a", "d"])

    def test_projected_dtypes_match_full_inference(self):
        projected = read_csv(io.StringIO(self.TEXT), usecols=["c"])
        assert projected.dtypes["c"] is DType.DATETIME

    def test_unknown_usecols_raises_with_suggestion(self):
        from repro.errors import ColumnNotFoundError
        with pytest.raises(ColumnNotFoundError, match="did you mean 'a'"):
            read_csv(io.StringIO(self.TEXT), usecols=["aa"])

    def test_empty_usecols_rejected(self):
        with pytest.raises(FrameError, match="at least one column"):
            read_csv(io.StringIO(self.TEXT), usecols=[])

    def test_ragged_rows_still_normalized(self):
        text = "a,b,c\n1,x\n2,y,z,extra\n"
        projected = read_csv(io.StringIO(text), usecols=["c"])
        assert projected.column("c").to_list() == [None, "z"]

    def test_parse_csv_range_projection(self, tmp_path, house_frame):
        from repro.frame.io import parse_csv_range, scan_csv
        path = str(tmp_path / "houses.csv")
        write_csv(house_frame, path)
        scan = scan_csv(path, chunk_rows=3)
        byte_start, byte_stop = scan.byte_ranges[0]
        full = parse_csv_range(path, byte_start, byte_stop, scan.columns,
                               scan.dtypes)
        name = scan.columns[0]
        projected = parse_csv_range(path, byte_start, byte_stop, scan.columns,
                                    scan.dtypes, usecols=[name])
        assert projected.columns == [name]
        assert projected == full.select([name])


class TestDtypeKeyValidation:
    def test_read_csv_rejects_unknown_dtype_key(self):
        from repro.errors import ColumnNotFoundError
        with pytest.raises(ColumnNotFoundError, match="did you mean 'a'"):
            read_csv(io.StringIO("a,b\n1,x\n"), dtypes={"aa": DType.FLOAT})

    def test_scan_csv_rejects_unknown_dtype_key(self, tmp_path, house_frame):
        from repro.errors import ColumnNotFoundError
        from repro.frame.io import scan_csv
        path = str(tmp_path / "houses.csv")
        write_csv(house_frame, path)
        with pytest.raises(ColumnNotFoundError, match="did you mean 'price'"):
            scan_csv(path, dtypes={"pricee": DType.FLOAT})

    def test_multifile_scan_rejects_unknown_dtype_key(self, tmp_path):
        from repro.errors import ColumnNotFoundError
        from repro.frame.io import scan_csv
        for name in ("one.csv", "two.csv"):
            write_csv(DataFrame({"alpha": [1.0], "beta": ["x"]}),
                      str(tmp_path / name))
        with pytest.raises(ColumnNotFoundError, match="did you mean 'alpha'"):
            scan_csv([str(tmp_path / "one.csv"), str(tmp_path / "two.csv")],
                     dtypes={"alphaa": DType.FLOAT})

    def test_valid_dtype_keys_still_accepted(self, tmp_path, house_frame):
        from repro.frame.io import scan_csv
        path = str(tmp_path / "houses.csv")
        write_csv(house_frame, path)
        scan = scan_csv(path, dtypes={"price": DType.FLOAT})
        assert scan.dtypes["price"] is DType.FLOAT
