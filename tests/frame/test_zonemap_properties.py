"""Zone-map property tests: pruning soundness and sidecar persistence.

Three invariants, fuzzed with hypothesis:

* **Soundness** — a chunk the zone map skips for a predicate provably
  contains zero matching rows (pruning is one-sided: kept chunks may still
  be empty after the residual filter, skipped chunks never lose a row);
* **Equivalence** — materializing a filtered source with pruning enabled
  yields exactly the rows of the plain boolean-mask filter;
* **Persistence** — per-chunk statistics survive the JSON sidecar round
  trip bit-for-bit, and an entry written under one ``(head_crc, tail_crc)``
  content stamp never answers for another (chunk changed ⇒ rebuild that
  chunk).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame.frame import DataFrame
from repro.frame.io import scan_csv, write_csv
from repro.frame.predicate import Predicate, compile_predicate
from repro.frame.source import CsvSource, FilteredSource
from repro.frame.zonemap import (
    ZoneMap,
    build_zone_map,
    chunk_column_stats,
    chunk_key,
    decode_zone_entry,
    encode_zone_entry,
    load_zone_entries,
    save_zone_entries,
    sidecar_path,
    zone_map_from_stats,
)
from repro.graph.partition import PartitionedFrame

OPS = [">", ">=", "<", "<=", "==", "!="]
WORDS = ["ash", "birch", "cedar", "fir"]

# Literals drawn from a small lattice so == / != hit real values often.
float_literals = st.sampled_from([-50.0, -1.0, 0.0, 1.0, 3.5, 50.0])
float_values = st.one_of(st.none(), float_literals,
                         st.floats(min_value=-100, max_value=100,
                                   allow_nan=False))


@st.composite
def chunked_frames(draw):
    """A two-column frame (floats with missing, words) cut into chunks."""
    n_rows = draw(st.integers(min_value=1, max_value=60))
    chunk_rows = draw(st.integers(min_value=1, max_value=20))
    frame = DataFrame({
        "x": draw(st.lists(float_values, min_size=n_rows, max_size=n_rows)),
        "w": draw(st.lists(st.one_of(st.none(), st.sampled_from(WORDS)),
                           min_size=n_rows, max_size=n_rows)),
    })
    chunks = [frame.slice(start, min(start + chunk_rows, n_rows))
              for start in range(0, n_rows, chunk_rows)]
    return frame, chunks, chunk_rows


@st.composite
def predicates(draw):
    """A 1–2 conjunct predicate over the x (float) and w (word) columns."""
    conjuncts = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        if draw(st.booleans()):
            conjuncts.append(("x", draw(st.sampled_from(OPS)),
                              draw(float_literals)))
        else:
            conjuncts.append(("w", draw(st.sampled_from(OPS)),
                              draw(st.sampled_from(WORDS))))
    return compile_predicate(conjuncts)


@given(data=chunked_frames(), predicate=predicates())
@settings(max_examples=120, deadline=None)
def test_pruning_never_drops_a_matching_row(data, predicate):
    frame, chunks, chunk_rows = data
    zone_map = build_zone_map(chunks, stamp=(1, 2), chunk_rows=chunk_rows)
    flags = zone_map.keep_flags(predicate.spec())
    assert len(flags) == len(chunks)
    for chunk, keep in zip(chunks, flags):
        if not keep:
            assert int(predicate.mask(chunk).sum()) == 0, \
                "zone map skipped a chunk containing a matching row"


@given(data=chunked_frames(), predicate=predicates())
@settings(max_examples=40, deadline=None)
def test_pruned_scan_equals_mask_filter(data, predicate, tmp_path_factory):
    frame, _, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-scan") / "data.csv")
    write_csv(frame, path)
    scan = scan_csv(path, chunk_rows=chunk_rows, budget_bytes=2 ** 62)
    filtered = FilteredSource(CsvSource(scan), predicate)
    result = PartitionedFrame.from_source(filtered,
                                          predicate=predicate).compute()
    # Re-derive the expectation from the *parsed* file (CSV round-trips may
    # legally re-infer dtypes), then compare row counts and present values.
    parsed = PartitionedFrame.from_source(CsvSource(scan)).compute()
    expected = parsed.filter(predicate.mask(parsed))
    assert len(result) == len(expected)
    for name in expected.columns:
        left, right = result.column(name), expected.column(name)
        np.testing.assert_array_equal(left.isna(), right.isna(), err_msg=name)
        present = ~left.isna()
        np.testing.assert_array_equal(left.to_numpy()[present],
                                      right.to_numpy()[present], err_msg=name)


@given(data=chunked_frames())
@settings(max_examples=40, deadline=None)
def test_sidecar_round_trip(data, tmp_path_factory):
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-sidecar") / "data.csv")
    write_csv(frame, path)
    stats = [chunk_column_stats(chunk) for chunk in chunks]
    stamps = [(100 + index, 200 + index) for index in range(len(chunks))]
    entries = {chunk_key(index * 10, index * 10 + 10):
               encode_zone_entry(per_chunk, stamps[index])
               for index, per_chunk in enumerate(stats)}
    assert save_zone_entries(path, entries)
    back = load_zone_entries(path)
    revived = [decode_zone_entry(back[chunk_key(index * 10, index * 10 + 10)],
                                 stamps[index])
               for index in range(len(chunks))]
    assert revived == stats
    # Reassembling a ZoneMap from the revived entries matches the direct
    # in-memory build bit-for-bit.
    direct = build_zone_map(chunks, stamp=(123, 456), chunk_rows=chunk_rows)
    rebuilt = zone_map_from_stats(revived, (123, 456), chunk_rows)
    assert rebuilt.columns == direct.columns
    assert rebuilt.n_chunks == direct.n_chunks
    # Entries at other byte ranges merge into the same sidecar without
    # clobbering (a second chunk granularity coexists naturally).
    other = {chunk_key(10 ** 9, 10 ** 9 + 5):
             encode_zone_entry(chunk_column_stats(frame), (7, 8))}
    assert save_zone_entries(path, other)
    merged = load_zone_entries(path)
    assert chunk_key(0, 10) in merged
    assert chunk_key(10 ** 9, 10 ** 9 + 5) in merged
    # Wrong stamp or unknown byte range: no answer.
    assert decode_zone_entry(merged[chunk_key(0, 10)], (999, 999)) is None
    assert decode_zone_entry(merged.get(chunk_key(5, 15)), stamps[0]) is None


DATES = [f"2021-01-{day:02d}" for day in range(1, 29)]


@st.composite
def all_dtype_frames(draw):
    """A frame with one column of every supported DType, cut into chunks.

    Every nullable column mixes missing values in, so the round trip also
    covers all-null chunks (min/max = None) for every dtype.
    """
    n_rows = draw(st.integers(min_value=1, max_value=40))
    chunk_rows = draw(st.integers(min_value=1, max_value=15))

    def rows(elements):
        return draw(st.lists(elements, min_size=n_rows, max_size=n_rows))

    frame = DataFrame({
        "b": rows(st.booleans()),
        "i": rows(st.integers(min_value=-1000, max_value=1000)),
        "f": rows(float_values),
        "s": rows(st.one_of(st.none(), st.sampled_from(WORDS))),
        "t": rows(st.one_of(st.none(), st.sampled_from(DATES))),
    })
    chunks = [frame.slice(start, min(start + chunk_rows, n_rows))
              for start in range(0, n_rows, chunk_rows)]
    return frame, chunks, chunk_rows


@st.composite
def all_dtype_predicates(draw):
    """A 1–2 conjunct spec touching any of the five dtype columns.

    Literals travel in spec form (what the graph ships): plain scalars for
    bool/int/float/string, ISO strings for datetime.
    """
    choices = {
        "b": st.booleans(),
        "i": st.integers(min_value=-1000, max_value=1000),
        "f": float_literals,
        "s": st.sampled_from(WORDS),
        "t": st.sampled_from([d + "T00:00:00" for d in DATES]),
    }
    spec = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        column = draw(st.sampled_from(sorted(choices)))
        spec.append((column, draw(st.sampled_from(OPS)),
                     draw(choices[column])))
    return tuple(spec)


@given(data=all_dtype_frames(), spec=all_dtype_predicates())
@settings(max_examples=60, deadline=None)
def test_sidecar_round_trip_all_dtypes(data, spec, tmp_path_factory):
    """Every supported dtype survives the JSON sidecar: the reloaded map
    makes pruning decisions identical to the in-memory one — datetime
    statistics included, which used to crash the save with a TypeError."""
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-dtypes") / "data.csv")
    write_csv(frame, path)
    zone_map = build_zone_map(chunks, stamp=(7, 8), chunk_rows=chunk_rows)
    entries = {chunk_key(index, index + 1):
               encode_zone_entry(chunk_column_stats(chunk), (index, index))
               for index, chunk in enumerate(chunks)}
    assert save_zone_entries(path, entries)
    stored = load_zone_entries(path)
    revived = [decode_zone_entry(stored[chunk_key(index, index + 1)],
                                 (index, index))
               for index in range(len(chunks))]
    assert all(stats is not None for stats in revived)
    back = zone_map_from_stats(revived, (7, 8), chunk_rows)
    assert back.columns == zone_map.columns
    datetime_stats = back.columns["t"]["min"]
    assert all(stat is None or isinstance(stat, np.datetime64)
               for stat in datetime_stats)
    assert back.keep_flags(spec) == zone_map.keep_flags(spec)


@given(data=all_dtype_frames(), spec=all_dtype_predicates())
@settings(max_examples=60, deadline=None)
def test_all_dtype_pruning_never_drops_a_matching_row(data, spec,
                                                      tmp_path_factory):
    """Soundness across every dtype, through the persisted sidecar: a
    skipped chunk provably holds no matching row for the residual filter
    (datetime conjuncts compare ISO-string literals against datetime64
    statistics, which used to no-op the pruning)."""
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-dtypes-sound") / "data.csv")
    write_csv(frame, path)
    entries = {chunk_key(index, index + 1):
               encode_zone_entry(chunk_column_stats(chunk), (index, index))
               for index, chunk in enumerate(chunks)}
    assert save_zone_entries(path, entries)
    stored = load_zone_entries(path)
    back = zone_map_from_stats(
        [decode_zone_entry(stored[chunk_key(index, index + 1)],
                           (index, index))
         for index in range(len(chunks))], (7, 8), chunk_rows)
    predicate = compile_predicate(spec)
    for chunk, keep in zip(chunks, back.keep_flags(spec)):
        if not keep:
            assert int(predicate.mask(chunk).sum()) == 0, \
                "reloaded zone map skipped a chunk with a matching row"


def test_datetime_zone_map_save_does_not_crash(tmp_path):
    """The regression pinned directly: saving statistics that hold
    numpy.datetime64 scalars must succeed (it used to raise TypeError from
    json.dump, aborting the whole filtered scan)."""
    path = str(tmp_path / "data.csv")
    frame = DataFrame({"t": ["2021-01-01", "2021-06-15", None]})
    write_csv(frame, path)
    stats = chunk_column_stats(frame)
    assert isinstance(stats["t"][0], np.datetime64)
    assert save_zone_entries(
        path, {chunk_key(0, 50): encode_zone_entry(stats, (3, 4))}) is True
    revived = decode_zone_entry(load_zone_entries(path)[chunk_key(0, 50)],
                                (3, 4))
    assert revived["t"][0] == stats["t"][0]
    assert revived["t"][1] == stats["t"][1]
    back = zone_map_from_stats([revived], (1, 2), 10)
    # The revived statistics prune: everything is before 2022.
    assert back.keep_flags((("t", ">", "2022-01-01T00:00:00"),)) == [False]
    assert back.keep_flags((("t", "<", "2021-02-01T00:00:00"),)) == [True]


@given(data=chunked_frames())
@settings(max_examples=20, deadline=None)
def test_stamp_change_invalidates_sidecar(data, tmp_path_factory):
    """A chunk whose content stamp changed stops answering — but only that
    chunk: entries for unchanged chunks keep answering (the append-reuse
    property the whole-file stamp could not offer)."""
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-stamp") / "data.csv")
    write_csv(frame, path)
    stats = chunk_column_stats(frame)
    entries = {chunk_key(0, 10): encode_zone_entry(stats, (10, 20)),
               chunk_key(10, 20): encode_zone_entry(stats, (30, 40))}
    assert save_zone_entries(path, entries)
    stored = load_zone_entries(path)
    # Chunk 0 "changed" (different probe CRCs): its entry is refused.
    assert decode_zone_entry(stored[chunk_key(0, 10)], (11, 21)) is None
    # Chunk 1 is untouched: its entry still answers.
    assert decode_zone_entry(stored[chunk_key(10, 20)], (30, 40)) == stats


def test_scanned_frame_memoizes_and_persists_zone_map(tmp_path):
    """ScannedFrame.zone_map builds once, persists the sidecar, and a fresh
    scan of the unchanged file loads it instead of rebuilding; overwriting
    the file invalidates the sidecar through the stamp."""
    path = str(tmp_path / "data.csv")
    frame = DataFrame({"x": [float(i) for i in range(30)]})
    write_csv(frame, path)
    scan = scan_csv(path, chunk_rows=10, budget_bytes=2 ** 62)
    zone_map = scan.zone_map()
    assert zone_map.n_chunks == 3
    assert zone_map.columns["x"]["min"] == [0.0, 10.0, 20.0]
    assert scan.zone_map() is zone_map          # memoized on the scan
    import os
    assert os.path.exists(sidecar_path(path))

    fresh = scan_csv(path, chunk_rows=10, budget_bytes=2 ** 62)
    stored = load_zone_entries(path)
    revived = [decode_zone_entry(stored[chunk_key(*byte_range)],
                                 fresh.chunk_stamp(index))
               for index, byte_range in enumerate(fresh.byte_ranges)]
    assert all(stats is not None for stats in revived)
    loaded = zone_map_from_stats(revived, fresh.file_stamp, 10)
    assert loaded.columns == zone_map.columns

    # Overwrite with different content: the chunk stamps no longer match,
    # so the persisted entries are refused and the map rebuilds.
    write_csv(DataFrame({"x": [float(-i) for i in range(40)]}), path)
    changed = scan_csv(path, chunk_rows=10, budget_bytes=2 ** 62)
    stale = load_zone_entries(path)
    assert any(decode_zone_entry(stale.get(chunk_key(*byte_range)),
                                 changed.chunk_stamp(index)) is None
               for index, byte_range in enumerate(changed.byte_ranges))
    rebuilt = changed.zone_map()
    assert rebuilt.columns["x"]["min"] == [-9.0, -19.0, -29.0, -39.0]
