"""Zone-map property tests: pruning soundness and sidecar persistence.

Three invariants, fuzzed with hypothesis:

* **Soundness** — a chunk the zone map skips for a predicate provably
  contains zero matching rows (pruning is one-sided: kept chunks may still
  be empty after the residual filter, skipped chunks never lose a row);
* **Equivalence** — materializing a filtered source with pruning enabled
  yields exactly the rows of the plain boolean-mask filter;
* **Persistence** — a zone map survives the JSON sidecar round trip
  bit-for-bit, and a sidecar written under one ``(size, mtime_ns)`` stamp
  never answers for another (file changed ⇒ rebuild).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame.frame import DataFrame
from repro.frame.io import scan_csv, write_csv
from repro.frame.predicate import Predicate, compile_predicate
from repro.frame.source import CsvSource, FilteredSource
from repro.frame.zonemap import (
    ZoneMap,
    build_zone_map,
    load_zone_map,
    save_zone_map,
    sidecar_path,
)
from repro.graph.partition import PartitionedFrame

OPS = [">", ">=", "<", "<=", "==", "!="]
WORDS = ["ash", "birch", "cedar", "fir"]

# Literals drawn from a small lattice so == / != hit real values often.
float_literals = st.sampled_from([-50.0, -1.0, 0.0, 1.0, 3.5, 50.0])
float_values = st.one_of(st.none(), float_literals,
                         st.floats(min_value=-100, max_value=100,
                                   allow_nan=False))


@st.composite
def chunked_frames(draw):
    """A two-column frame (floats with missing, words) cut into chunks."""
    n_rows = draw(st.integers(min_value=1, max_value=60))
    chunk_rows = draw(st.integers(min_value=1, max_value=20))
    frame = DataFrame({
        "x": draw(st.lists(float_values, min_size=n_rows, max_size=n_rows)),
        "w": draw(st.lists(st.one_of(st.none(), st.sampled_from(WORDS)),
                           min_size=n_rows, max_size=n_rows)),
    })
    chunks = [frame.slice(start, min(start + chunk_rows, n_rows))
              for start in range(0, n_rows, chunk_rows)]
    return frame, chunks, chunk_rows


@st.composite
def predicates(draw):
    """A 1–2 conjunct predicate over the x (float) and w (word) columns."""
    conjuncts = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        if draw(st.booleans()):
            conjuncts.append(("x", draw(st.sampled_from(OPS)),
                              draw(float_literals)))
        else:
            conjuncts.append(("w", draw(st.sampled_from(OPS)),
                              draw(st.sampled_from(WORDS))))
    return compile_predicate(conjuncts)


@given(data=chunked_frames(), predicate=predicates())
@settings(max_examples=120, deadline=None)
def test_pruning_never_drops_a_matching_row(data, predicate):
    frame, chunks, chunk_rows = data
    zone_map = build_zone_map(chunks, stamp=(1, 2), chunk_rows=chunk_rows)
    flags = zone_map.keep_flags(predicate.spec())
    assert len(flags) == len(chunks)
    for chunk, keep in zip(chunks, flags):
        if not keep:
            assert int(predicate.mask(chunk).sum()) == 0, \
                "zone map skipped a chunk containing a matching row"


@given(data=chunked_frames(), predicate=predicates())
@settings(max_examples=40, deadline=None)
def test_pruned_scan_equals_mask_filter(data, predicate, tmp_path_factory):
    frame, _, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-scan") / "data.csv")
    write_csv(frame, path)
    scan = scan_csv(path, chunk_rows=chunk_rows, budget_bytes=2 ** 62)
    filtered = FilteredSource(CsvSource(scan), predicate)
    result = PartitionedFrame.from_source(filtered,
                                          predicate=predicate).compute()
    # Re-derive the expectation from the *parsed* file (CSV round-trips may
    # legally re-infer dtypes), then compare row counts and present values.
    parsed = PartitionedFrame.from_source(CsvSource(scan)).compute()
    expected = parsed.filter(predicate.mask(parsed))
    assert len(result) == len(expected)
    for name in expected.columns:
        left, right = result.column(name), expected.column(name)
        np.testing.assert_array_equal(left.isna(), right.isna(), err_msg=name)
        present = ~left.isna()
        np.testing.assert_array_equal(left.to_numpy()[present],
                                      right.to_numpy()[present], err_msg=name)


@given(data=chunked_frames())
@settings(max_examples=40, deadline=None)
def test_sidecar_round_trip(data, tmp_path_factory):
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-sidecar") / "data.csv")
    write_csv(frame, path)
    zone_map = build_zone_map(chunks, stamp=(123, 456), chunk_rows=chunk_rows)
    assert save_zone_map(path, zone_map)
    back = load_zone_map(path, (123, 456), chunk_rows)
    assert back is not None
    assert back.stamp == zone_map.stamp
    assert back.chunk_rows == zone_map.chunk_rows
    assert back.n_chunks == zone_map.n_chunks
    assert back.columns == zone_map.columns
    # A second granularity merges into the same sidecar without clobbering.
    other = build_zone_map([frame], stamp=(123, 456),
                           chunk_rows=len(frame) + 1)
    assert save_zone_map(path, other)
    assert load_zone_map(path, (123, 456), chunk_rows) is not None
    assert load_zone_map(path, (123, 456), len(frame) + 1) is not None
    # Wrong stamp or unknown granularity: no answer.
    assert load_zone_map(path, (123, 457), chunk_rows) is None
    assert load_zone_map(path, (123, 456), chunk_rows + 10 ** 6) is None


DATES = [f"2021-01-{day:02d}" for day in range(1, 29)]


@st.composite
def all_dtype_frames(draw):
    """A frame with one column of every supported DType, cut into chunks.

    Every nullable column mixes missing values in, so the round trip also
    covers all-null chunks (min/max = None) for every dtype.
    """
    n_rows = draw(st.integers(min_value=1, max_value=40))
    chunk_rows = draw(st.integers(min_value=1, max_value=15))

    def rows(elements):
        return draw(st.lists(elements, min_size=n_rows, max_size=n_rows))

    frame = DataFrame({
        "b": rows(st.booleans()),
        "i": rows(st.integers(min_value=-1000, max_value=1000)),
        "f": rows(float_values),
        "s": rows(st.one_of(st.none(), st.sampled_from(WORDS))),
        "t": rows(st.one_of(st.none(), st.sampled_from(DATES))),
    })
    chunks = [frame.slice(start, min(start + chunk_rows, n_rows))
              for start in range(0, n_rows, chunk_rows)]
    return frame, chunks, chunk_rows


@st.composite
def all_dtype_predicates(draw):
    """A 1–2 conjunct spec touching any of the five dtype columns.

    Literals travel in spec form (what the graph ships): plain scalars for
    bool/int/float/string, ISO strings for datetime.
    """
    choices = {
        "b": st.booleans(),
        "i": st.integers(min_value=-1000, max_value=1000),
        "f": float_literals,
        "s": st.sampled_from(WORDS),
        "t": st.sampled_from([d + "T00:00:00" for d in DATES]),
    }
    spec = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        column = draw(st.sampled_from(sorted(choices)))
        spec.append((column, draw(st.sampled_from(OPS)),
                     draw(choices[column])))
    return tuple(spec)


@given(data=all_dtype_frames(), spec=all_dtype_predicates())
@settings(max_examples=60, deadline=None)
def test_sidecar_round_trip_all_dtypes(data, spec, tmp_path_factory):
    """Every supported dtype survives the JSON sidecar: the reloaded map
    makes pruning decisions identical to the in-memory one — datetime
    statistics included, which used to crash the save with a TypeError."""
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-dtypes") / "data.csv")
    write_csv(frame, path)
    zone_map = build_zone_map(chunks, stamp=(7, 8), chunk_rows=chunk_rows)
    assert save_zone_map(path, zone_map)
    back = load_zone_map(path, (7, 8), chunk_rows)
    assert back is not None
    assert back.columns == zone_map.columns
    datetime_stats = back.columns["t"]["min"]
    assert all(stat is None or isinstance(stat, np.datetime64)
               for stat in datetime_stats)
    assert back.keep_flags(spec) == zone_map.keep_flags(spec)


@given(data=all_dtype_frames(), spec=all_dtype_predicates())
@settings(max_examples=60, deadline=None)
def test_all_dtype_pruning_never_drops_a_matching_row(data, spec,
                                                      tmp_path_factory):
    """Soundness across every dtype, through the persisted sidecar: a
    skipped chunk provably holds no matching row for the residual filter
    (datetime conjuncts compare ISO-string literals against datetime64
    statistics, which used to no-op the pruning)."""
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-dtypes-sound") / "data.csv")
    write_csv(frame, path)
    zone_map = build_zone_map(chunks, stamp=(7, 8), chunk_rows=chunk_rows)
    assert save_zone_map(path, zone_map)
    back = load_zone_map(path, (7, 8), chunk_rows)
    predicate = compile_predicate(spec)
    for chunk, keep in zip(chunks, back.keep_flags(spec)):
        if not keep:
            assert int(predicate.mask(chunk).sum()) == 0, \
                "reloaded zone map skipped a chunk with a matching row"


def test_datetime_zone_map_save_does_not_crash(tmp_path):
    """The regression pinned directly: saving statistics that hold
    numpy.datetime64 scalars must succeed (it used to raise TypeError from
    json.dump, aborting the whole filtered scan)."""
    path = str(tmp_path / "data.csv")
    frame = DataFrame({"t": ["2021-01-01", "2021-06-15", None]})
    write_csv(frame, path)
    zone_map = build_zone_map([frame], stamp=(1, 2), chunk_rows=10)
    assert isinstance(zone_map.columns["t"]["min"][0], np.datetime64)
    assert save_zone_map(path, zone_map) is True
    back = load_zone_map(path, (1, 2), 10)
    assert back.columns["t"]["min"] == zone_map.columns["t"]["min"]
    assert back.columns["t"]["max"] == zone_map.columns["t"]["max"]
    # The revived statistics prune: everything is before 2022.
    assert back.keep_flags((("t", ">", "2022-01-01T00:00:00"),)) == [False]
    assert back.keep_flags((("t", "<", "2021-02-01T00:00:00"),)) == [True]


@given(data=chunked_frames())
@settings(max_examples=20, deadline=None)
def test_stamp_change_invalidates_sidecar(data, tmp_path_factory):
    frame, chunks, chunk_rows = data
    path = str(tmp_path_factory.mktemp("zm-stamp") / "data.csv")
    write_csv(frame, path)
    zone_map = build_zone_map(chunks, stamp=(10, 20), chunk_rows=chunk_rows)
    assert save_zone_map(path, zone_map)
    # Saving under a new stamp discards every grid of the old one.
    fresh = build_zone_map([frame], stamp=(11, 21), chunk_rows=len(frame) + 1)
    assert save_zone_map(path, fresh)
    assert load_zone_map(path, (10, 20), chunk_rows) is None
    assert load_zone_map(path, (11, 21), len(frame) + 1) is not None


def test_scanned_frame_memoizes_and_persists_zone_map(tmp_path):
    """ScannedFrame.zone_map builds once, persists the sidecar, and a fresh
    scan of the unchanged file loads it instead of rebuilding; overwriting
    the file invalidates the sidecar through the stamp."""
    path = str(tmp_path / "data.csv")
    frame = DataFrame({"x": [float(i) for i in range(30)]})
    write_csv(frame, path)
    scan = scan_csv(path, chunk_rows=10, budget_bytes=2 ** 62)
    zone_map = scan.zone_map()
    assert zone_map.n_chunks == 3
    assert zone_map.columns["x"]["min"] == [0.0, 10.0, 20.0]
    assert scan.zone_map() is zone_map          # memoized on the scan
    import os
    assert os.path.exists(sidecar_path(path))

    fresh = scan_csv(path, chunk_rows=10, budget_bytes=2 ** 62)
    loaded = load_zone_map(path, fresh.file_stamp, 10)
    assert loaded is not None and loaded.columns == zone_map.columns

    # Overwrite with different content: the stamp no longer matches.
    write_csv(DataFrame({"x": [float(-i) for i in range(40)]}), path)
    changed = scan_csv(path, chunk_rows=10, budget_bytes=2 ** 62)
    assert load_zone_map(path, changed.file_stamp, 10) is None
    rebuilt = changed.zone_map()
    assert rebuilt.columns["x"]["min"] == [-9.0, -19.0, -29.0, -39.0]
