"""Parsed-chunk binary sidecar: round trips, keying, eviction, warm scans.

The sidecar is a cache, never a correctness requirement, so the contract
under test is two-sided: a valid chunk file must round-trip every supported
dtype bit-for-bit (masks included), and *any* mismatch — stamp, row count,
delimiter, dtype, missing column, truncated file — must miss (return None)
rather than serve wrong data.  The end-to-end tests pin the work-avoidance
claim itself: a warm re-scan decodes zero CSV bytes, in this process and in
a child process with a cold in-memory cache.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.frame.dtypes import DType
from repro.frame.frame import DataFrame
from repro.frame.io import scan_csv, write_csv
from repro.frame.sidecar import (
    SidecarRoute,
    atomic_replace,
    chunk_dir,
    chunk_path,
    load_chunk,
    reset_stats,
    stats_snapshot,
    store_chunk,
)
from repro.graph.cache import TaskCache, get_global_cache, set_global_cache

ROUTE = tuple(SidecarRoute())

STAMP = (1234, 5678)


def _all_dtype_frame():
    return DataFrame({
        "b": [True, False, True, False],
        "i": [-3, 0, 7, 10 ** 12],
        "f": [1.5, float("nan"), -2.25, 0.0],
        "s": ["ash", None, "", "日本語"],
        "t": ["2021-01-01", None, "2021-06-15 12:30:00", "1999-12-31"],
    })


def _dtypes(frame):
    return dict(frame.dtypes)


def _assert_frames_equal(left, right):
    assert list(left.columns) == list(right.columns)
    for name in right.columns:
        got, want = left.column(name), right.column(name)
        assert got.dtype is want.dtype, name
        np.testing.assert_array_equal(got.isna(), want.isna(), err_msg=name)
        present = ~want.isna()
        np.testing.assert_array_equal(got.to_numpy()[present],
                                      want.to_numpy()[present], err_msg=name)


# --------------------------------------------------------------------------- #
# Store/load round trips and keying.
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    def test_every_dtype_round_trips(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        assert store_chunk(path, 10, 90, STAMP, frame, ROUTE)
        back = load_chunk(path, 10, 90, STAMP, tuple(frame.columns),
                          _dtypes(frame), len(frame), ROUTE)
        assert back is not None
        _assert_frames_equal(back, frame)

    def test_projection_loads_subset(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame, ROUTE)
        back = load_chunk(path, 10, 90, STAMP, ("s", "f"),
                          _dtypes(frame), len(frame), ROUTE)
        assert list(back.columns) == ["s", "f"]
        _assert_frames_equal(back, frame[["s", "f"]])

    def test_differently_projected_stores_merge(self, tmp_path):
        """Two projected scans accumulate columns into one chunk file
        instead of clobbering each other."""
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame[["i"]], ROUTE)
        store_chunk(path, 10, 90, STAMP, frame[["s"]], ROUTE)
        for wanted in (("i",), ("s",), ("i", "s")):
            back = load_chunk(path, 10, 90, STAMP, wanted, _dtypes(frame),
                              len(frame), ROUTE)
            assert back is not None, wanted
            _assert_frames_equal(back, frame[list(wanted)])

    def test_zero_row_chunk(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame().slice(0, 0)
        assert store_chunk(path, 10, 10, STAMP, frame, ROUTE)
        back = load_chunk(path, 10, 10, STAMP, tuple(frame.columns),
                          _dtypes(frame), 0, ROUTE)
        assert back is not None and len(back) == 0


class TestKeying:
    def test_wrong_stamp_misses(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame, ROUTE)
        assert load_chunk(path, 10, 90, (1234, 9999), tuple(frame.columns),
                          _dtypes(frame), len(frame), ROUTE) is None

    def test_wrong_byte_range_misses(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame, ROUTE)
        assert load_chunk(path, 10, 95, STAMP, tuple(frame.columns),
                          _dtypes(frame), len(frame), ROUTE) is None

    def test_wrong_row_count_misses(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame, ROUTE)
        assert load_chunk(path, 10, 90, STAMP, tuple(frame.columns),
                          _dtypes(frame), len(frame) + 1, ROUTE) is None

    def test_wrong_delimiter_misses(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame, ROUTE, delimiter=",")
        assert load_chunk(path, 10, 90, STAMP, tuple(frame.columns),
                          _dtypes(frame), len(frame), ROUTE,
                          delimiter=";") is None

    def test_dtype_mismatch_misses(self, tmp_path):
        """A re-inferred dtype (the CSV changed meaning, not bytes counted
        by the stamp — or a declared override) must not serve stale arrays."""
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame, ROUTE)
        wrong = dict(_dtypes(frame), i=DType.FLOAT)
        assert load_chunk(path, 10, 90, STAMP, ("i",), wrong,
                          len(frame), ROUTE) is None

    def test_missing_column_misses(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame[["i"]], ROUTE)
        assert load_chunk(path, 10, 90, STAMP, ("i", "f"), _dtypes(frame),
                          len(frame), ROUTE) is None

    def test_corrupt_file_misses(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        store_chunk(path, 10, 90, STAMP, frame, ROUTE)
        target = chunk_path(path, SidecarRoute(*ROUTE), 10, 90)
        with open(target, "r+b") as handle:
            handle.write(b"garbage!")
        assert load_chunk(path, 10, 90, STAMP, tuple(frame.columns),
                          _dtypes(frame), len(frame), ROUTE) is None

    def test_directory_override_isolates_chunks(self, tmp_path):
        path = str(tmp_path / "data.csv")
        override = str(tmp_path / "cache")
        route = tuple(SidecarRoute(directory=override))
        frame = _all_dtype_frame()
        assert store_chunk(path, 10, 90, STAMP, frame, route)
        assert not os.path.exists(path + ".chunks")
        assert chunk_dir(path, SidecarRoute(*route)).startswith(override)
        back = load_chunk(path, 10, 90, STAMP, tuple(frame.columns),
                          _dtypes(frame), len(frame), route)
        assert back is not None


# --------------------------------------------------------------------------- #
# Atomic writes and eviction.
# --------------------------------------------------------------------------- #
class TestAtomicReplace:
    def test_replaces_and_leaves_no_temp(self, tmp_path):
        target = str(tmp_path / "file.bin")
        assert atomic_replace(target, b"one")
        assert atomic_replace(target, b"two")
        with open(target, "rb") as handle:
            assert handle.read() == b"two"
        assert os.listdir(tmp_path) == ["file.bin"]

    def test_failure_cleans_up_and_returns_false(self, tmp_path):
        target = str(tmp_path / "no" / "such" / "dir" / "file.bin")
        assert atomic_replace(target, b"payload") is False
        assert not os.path.exists(str(tmp_path / "no"))

    def test_unreplaceable_target_removes_temp(self, tmp_path):
        # os.replace over a non-empty directory fails after the temp file
        # was written: the temp must not leak.
        target = str(tmp_path / "occupied")
        os.makedirs(os.path.join(target, "inner"))
        assert atomic_replace(target, b"payload") is False
        assert sorted(os.listdir(tmp_path)) == ["occupied"]


class TestEviction:
    def test_lru_by_read_time_under_budget(self, tmp_path):
        path = str(tmp_path / "data.csv")
        frame = _all_dtype_frame()
        big_route = tuple(SidecarRoute())
        ranges = [(0, 100), (100, 200), (200, 300)]
        for start, stop in ranges:
            assert store_chunk(path, start, stop, STAMP, frame, big_route)
        directory = chunk_dir(path, SidecarRoute(*big_route))
        paths = [chunk_path(path, SidecarRoute(*big_route), start, stop)
                 for start, stop in ranges]
        sizes = [os.path.getsize(entry) for entry in paths]
        # Mark the first chunk as the most recently *read*, the middle as
        # the coldest, then store once more with a budget that forces one
        # eviction: the coldest file must go, the recently-read must stay.
        os.utime(paths[1], (1, 1))
        os.utime(paths[2], (2, 2))
        os.utime(paths[0], (3, 3))
        budget = sum(sizes)     # adding a 4th chunk overflows by ~one file
        tight_route = tuple(SidecarRoute(budget_bytes=budget))
        assert store_chunk(path, 300, 400, STAMP, frame, tight_route)
        remaining = {name for name in os.listdir(directory)}
        assert "chunk-100-200.bin" not in remaining
        assert "chunk-0-100.bin" in remaining
        total = sum(os.path.getsize(os.path.join(directory, name))
                    for name in remaining)
        assert total <= budget


# --------------------------------------------------------------------------- #
# End to end: warm re-scans decode zero CSV bytes.
# --------------------------------------------------------------------------- #
N_ROWS = 600
CHUNK_ROWS = 100

CONFIG = {
    "compute.scheduler": "synchronous",     # exact counters need one process
}


@pytest.fixture
def eda_csv(tmp_path):
    rng = np.random.default_rng(11)
    frame = DataFrame({
        "x": rng.normal(0, 1, N_ROWS),
        "word": [f"w{i % 13}" for i in range(N_ROWS)],
        "when": [str(np.datetime64("2021-01-01")
                     + np.timedelta64(i % 360, "D")) for i in range(N_ROWS)],
    })
    path = str(tmp_path / "eda.csv")
    write_csv(frame, path)
    previous = get_global_cache()
    reset_stats()
    yield path
    set_global_cache(previous)
    reset_stats()


def _fresh_scan_plot(path, column="x", **kwargs):
    from repro import plot
    set_global_cache(TaskCache())   # cold in-memory cache: tasks re-execute
    scan = scan_csv(path, chunk_rows=CHUNK_ROWS)
    return plot(scan, column, mode="intermediates", config=dict(CONFIG),
                **kwargs)


def test_warm_scan_decodes_zero_csv_bytes(eda_csv):
    cold = _fresh_scan_plot(eda_csv)
    assert cold.meta["sidecar"]["enabled"] is True
    assert cold.meta["sidecar"]["sidecar_misses"] == N_ROWS // CHUNK_ROWS
    assert cold.meta["sidecar"]["sidecar_hits"] == 0
    assert os.path.isdir(eda_csv + ".chunks")

    reset_stats()
    warm = _fresh_scan_plot(eda_csv)
    stats = warm.meta["sidecar"]
    assert stats["sidecar_misses"] == 0
    assert stats["sidecar_hits"] == N_ROWS // CHUNK_ROWS
    assert stats["bytes_decoded_avoided"] > 0
    assert stats_snapshot()["csv_bytes_decoded"] == 0
    assert warm.items == cold.items


def test_warm_scan_serves_other_projections_and_filters(eda_csv):
    """Chunks are stored pre-filter with whatever columns the run parsed
    (an overview run parses them all), so a warm filtered scan over any
    projection still decodes nothing — the predicate runs on the loaded
    arrays instead."""
    from repro import plot
    set_global_cache(TaskCache())
    overview = scan_csv(eda_csv, chunk_rows=CHUNK_ROWS)
    plot(overview, mode="intermediates", config=dict(CONFIG))    # full width
    reset_stats()
    filtered = _fresh_scan_plot(eda_csv, column="word",
                                where=("x", ">", 0.0))
    assert filtered.meta["sidecar"]["sidecar_misses"] == 0
    assert filtered.meta["sidecar"]["sidecar_hits"] > 0
    assert stats_snapshot()["csv_bytes_decoded"] == 0


def test_overwritten_file_invalidates_chunks(eda_csv):
    cold = _fresh_scan_plot(eda_csv)
    with open(eda_csv) as handle:
        content = handle.read()
    with open(eda_csv, "w") as handle:   # same bytes, new mtime_ns stamp
        handle.write(content)
    reset_stats()
    rescan = _fresh_scan_plot(eda_csv)
    assert rescan.meta["sidecar"]["sidecar_hits"] == 0
    assert rescan.meta["sidecar"]["sidecar_misses"] == N_ROWS // CHUNK_ROWS
    assert rescan.items == cold.items


def test_disk_cache_disabled_writes_nothing(eda_csv):
    from repro import plot
    set_global_cache(TaskCache())
    scan = scan_csv(eda_csv, chunk_rows=CHUNK_ROWS)
    result = plot(scan, "x", mode="intermediates",
                  config={**CONFIG, "cache.disk_enabled": False})
    assert result.meta["sidecar"] == {
        "enabled": False, "sidecar_hits": 0, "sidecar_misses": 0,
        "bytes_decoded_avoided": 0}
    assert not os.path.exists(eda_csv + ".chunks")


def test_disk_dir_override_routes_chunks(eda_csv, tmp_path):
    from repro import plot
    override = str(tmp_path / "spill")
    set_global_cache(TaskCache())
    scan = scan_csv(eda_csv, chunk_rows=CHUNK_ROWS)
    plot(scan, "x", mode="intermediates",
         config={**CONFIG, "cache.disk_dir": override})
    assert not os.path.exists(eda_csv + ".chunks")
    assert any(name.endswith(".chunks") for name in os.listdir(override))


def test_cross_process_warm_start(eda_csv):
    """A child process with a cold in-memory cache hits the sidecar this
    process wrote — the counters are asserted *inside* the child, where
    they accumulate."""
    _fresh_scan_plot(eda_csv)       # parent run populates <file>.chunks/
    child = textwrap.dedent(f"""
        from repro import plot
        from repro.frame.io import scan_csv
        from repro.frame.sidecar import stats_snapshot
        scan = scan_csv({eda_csv!r}, chunk_rows={CHUNK_ROWS})
        plot(scan, "x", mode="intermediates",
             config={{"compute.scheduler": "synchronous"}})
        stats = stats_snapshot()
        assert stats["misses"] == 0, stats
        assert stats["hits"] == {N_ROWS // CHUNK_ROWS}, stats
        assert stats["csv_bytes_decoded"] == 0, stats
        print("child-warm-ok")
    """)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_SCHEDULER", None)
    completed = subprocess.run([sys.executable, "-c", child], env=env,
                               capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr
    assert "child-warm-ok" in completed.stdout
