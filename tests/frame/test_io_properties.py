"""CSV round-trip and chunked-scan property tests.

Two invariants, fuzzed with hypothesis:

* ``read_csv(write_csv(frame))`` reproduces the frame (values, missingness
  and dtypes), including strings containing quotes, delimiters, embedded
  newlines and non-ASCII text;
* concatenating the chunks of ``scan_csv`` reproduces ``read_csv`` of the
  same file for any chunk size — i.e. the quote-aware layout scanner never
  splits a record, even when quoted fields span physical lines.

Dtypes are pinned explicitly on re-read: CSV carries no type information, so
"the same frame back" is only well-defined relative to a declared schema
(write ∘ read with inferred dtypes may legally widen, e.g. the strings
``["1", "2"]`` rendering identically to the integers ``[1, 2]``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame.frame import DataFrame, concat_rows
from repro.frame.io import read_csv, scan_csv, write_csv

# Strings exercising the CSV quoting machinery: delimiters, double quotes,
# embedded newlines (LF and CRLF), unicode, leading/trailing spaces.  Empty
# strings are excluded — they render as the missing token by design.
tricky_text = st.text(
    alphabet=st.sampled_from(list('abzZ09µλ中 ,;"\'\n\r')),
    min_size=1, max_size=12,
)

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


@st.composite
def frames(draw):
    """A DataFrame with int, float and tricky-string columns plus missing."""
    n_rows = draw(st.integers(min_value=0, max_value=40))

    def column(value_strategy):
        return draw(st.lists(st.one_of(st.none(), value_strategy),
                             min_size=n_rows, max_size=n_rows))

    return DataFrame({
        "ints": column(st.integers(min_value=-10**9, max_value=10**9)),
        "floats": column(finite_floats),
        "words": column(tricky_text),
    })


def assert_frames_equal(left: DataFrame, right: DataFrame) -> None:
    assert left.columns == right.columns
    assert len(left) == len(right)
    for name in left.columns:
        first, second = left.column(name), right.column(name)
        assert first.dtype is second.dtype, name
        np.testing.assert_array_equal(first.isna(), second.isna(), err_msg=name)
        for a, b in zip(first.to_list(), second.to_list()):
            if a is None or b is None:
                assert a is b, name
            elif isinstance(a, float):
                assert a == pytest.approx(b, rel=1e-12, abs=1e-12), name
            else:
                assert a == b, name


@given(frame=frames())
@settings(max_examples=60, deadline=None)
def test_write_read_round_trip(frame, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("roundtrip") / "frame.csv")
    write_csv(frame, path)
    back = read_csv(path, dtypes=frame.dtypes)
    assert_frames_equal(back, frame)


@given(frame=frames(), chunk_rows=st.integers(min_value=1, max_value=17))
@settings(max_examples=60, deadline=None)
def test_scan_chunks_concat_equals_read(frame, chunk_rows, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("scan") / "frame.csv")
    write_csv(frame, path)
    eager = read_csv(path, dtypes=frame.dtypes)
    scan = scan_csv(path, chunk_rows=chunk_rows, dtypes=frame.dtypes)

    assert scan.n_rows == len(eager)
    assert scan.columns == eager.columns
    chunks = list(scan.chunks())
    assert all(len(chunk) <= chunk_rows for chunk in chunks)
    streamed = concat_rows([chunk for chunk in chunks if len(chunk)]) \
        if any(len(chunk) for chunk in chunks) else chunks[0]
    assert_frames_equal(streamed, eager)
    # Row boundaries from the layout scan must match the parsed chunk sizes.
    for chunk, (start, stop) in zip(chunks, scan.boundaries):
        assert len(chunk) == stop - start


def test_scan_handles_ragged_and_blank_lines(tmp_path):
    """Hand-written CSV with ragged rows and blank lines: scan == read."""
    text = ('a,b,c\n'
            '1,2,3\n'
            '\n'                      # blank line is skipped
            '4,5\n'                   # short row padded
            '6,7,8,9\n'               # long row truncated
            '10,11,12\n')
    path = tmp_path / "ragged.csv"
    path.write_text(text, encoding="utf-8")
    eager = read_csv(str(path))
    scan = scan_csv(str(path), chunk_rows=2, dtypes=eager.dtypes)
    assert scan.n_rows == len(eager) == 4
    assert_frames_equal(scan.to_frame(), read_csv(str(path), dtypes=eager.dtypes))


def test_scan_quoted_newlines_across_chunk_boundaries(tmp_path):
    """Records with embedded newlines must never be split between chunks."""
    rows = []
    for index in range(25):
        rows.append(f'line1-{index}\nline2-{index}' if index % 3 == 0
                    else f'plain-{index}')
    frame = DataFrame({"x": list(range(25)), "text": rows})
    path = tmp_path / "quoted.csv"
    write_csv(frame, str(path))
    for chunk_rows in (1, 2, 3, 7, 25, 100):
        scan = scan_csv(str(path), chunk_rows=chunk_rows, dtypes=frame.dtypes)
        assert scan.n_rows == 25
        assert_frames_equal(scan.to_frame(), frame)


def test_scan_empty_data_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("a,b\n", encoding="utf-8")
    scan = scan_csv(str(path))
    assert scan.columns == ["a", "b"]
    assert scan.n_rows == 0
    assert len(scan.to_frame()) == 0


def test_scan_budget_caps_chunk_size(tmp_path):
    frame = DataFrame({"x": list(range(5_000)),
                       "y": [float(i) * 1.5 for i in range(5_000)]})
    path = tmp_path / "big.csv"
    write_csv(frame, str(path))
    tight = scan_csv(str(path), chunk_rows=5_000, budget_bytes=64 * 1024)
    assert tight.chunk_rows < 5_000
    assert tight.n_chunks > 1
    assert_frames_equal(tight.to_frame(), read_csv(str(path),
                                                   dtypes=tight.dtypes))


def test_scan_parses_leniently_past_the_inference_preview(tmp_path):
    """A value contradicting the preview-inferred dtype must degrade to a
    missing cell (as documented), never abort the scan."""
    lines = ["x,label"] + [f"{i},ok" for i in range(50)]
    lines.insert(40, "not_a_number,ok")      # past an inference_rows=20 preview
    path = tmp_path / "dirty.csv"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    scan = scan_csv(str(path), chunk_rows=8, inference_rows=20)
    assert scan.dtypes["x"].value == "int"
    frame = scan.to_frame()
    assert len(frame) == 51
    assert frame.column("x").missing_count() == 1


def test_scan_with_explicit_dtypes_is_lenient_in_the_preview(tmp_path):
    """Explicit dtypes are the documented remedy for late-typed columns; a
    conflicting value in the preview rows must become missing, not raise."""
    from repro.frame.dtypes import DType
    path = tmp_path / "latetype.csv"
    path.write_text("a,b\nabc,1\n1.5,2\n2.5,3\n", encoding="utf-8")
    scan = scan_csv(str(path), dtypes={"a": DType.FLOAT})
    assert scan.dtypes["a"] is DType.FLOAT
    frame = scan.to_frame()
    assert frame.column("a").missing_count() == 1
    assert scan.preview.column("a").missing_count() == 1


def test_scan_counts_final_unterminated_quoted_record(tmp_path):
    """A trailing record with an unclosed quote still parses as a row; the
    layout scan must count it so n_rows matches what the chunks parse."""
    path = tmp_path / "unterminated.csv"
    path.write_text('a,b\n1,x\n2,y\n3,"oops\n', encoding="utf-8")
    eager = read_csv(str(path))
    scan = scan_csv(str(path), chunk_rows=2, dtypes=eager.dtypes)
    assert scan.n_rows == len(eager) == 3
    assert_frames_equal(scan.to_frame(), read_csv(str(path), dtypes=eager.dtypes))


def test_scan_detects_non_rfc_quoting_instead_of_skewing_stats(tmp_path):
    """A stray unpaired quote in an unquoted field desyncs the layout's
    record counter; chunk parsing must raise, not return wrong row counts."""
    path = tmp_path / "stray.csv"
    path.write_text('a,b\n1,say "hi\n2,x\n3,y\n', encoding="utf-8")
    scan = scan_csv(str(path), chunk_rows=2)
    with pytest.raises(Exception, match="quoting"):
        scan.to_frame()


def test_default_config_streaming_call_never_rescans_layout(tmp_path):
    """With no memory.* overrides, EDA calls must trust the scan's own
    chunking — no second full-file layout pass, cold or warm."""
    import repro.frame.io as fio
    from repro.eda import plot

    frame = DataFrame({"x": [float(i) for i in range(4000)]})
    path = tmp_path / "noscan.csv"
    write_csv(frame, str(path))
    scan = scan_csv(str(path), chunk_rows=500)
    calls = {"n": 0}
    original = fio._scan_csv_layout

    def counting(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    fio._scan_csv_layout = counting
    try:
        plot(scan, mode="intermediates", config={"cache.enabled": False})
        plot(scan, "x", mode="intermediates", config={"cache.enabled": False})
    finally:
        fio._scan_csv_layout = original
    assert calls["n"] == 0


def test_explicit_scan_chunk_rows_not_overridden_by_config_default(tmp_path):
    """scan_csv(chunk_rows=N) larger than the memory.chunk_rows default must
    win: the user set it on the handle deliberately."""
    from repro.eda import plot

    frame = DataFrame({"x": [float(i) for i in range(3000)]})
    path = tmp_path / "explicit.csv"
    write_csv(frame, str(path))
    scan = scan_csv(str(path), chunk_rows=1_000)
    result = plot(scan, mode="intermediates", config={"cache.enabled": False})
    report = result.meta["execution_reports"][0]
    # 3 chunks -> 3 parse tasks feeding the first stage; a silent rechunk to
    # another granularity would change the task count.
    assert result["overview"]["n_rows"] == 3000
    assert report.tasks_executed > 0
    # And an explicit config override still applies.
    finer = plot(scan, mode="intermediates",
                 config={"cache.enabled": False, "memory.chunk_rows": 300})
    assert finer["overview"]["n_rows"] == 3000


def test_precompute_csv_chunks_is_quote_aware(tmp_path):
    from repro.graph.partition import precompute_csv_chunks

    frame = DataFrame({"x": [1, 2, 3, 4],
                       "text": ["one\ntwo", "plain", "three\nfour", "end"]})
    path = tmp_path / "quoted_chunks.csv"
    write_csv(frame, str(path))
    columns, boundaries, byte_ranges = precompute_csv_chunks(str(path), 2)
    assert columns == ["x", "text"]
    assert boundaries == [(0, 2), (2, 4)]
    # Each byte range parses cleanly on its own (no split records).
    from repro.frame.io import parse_csv_range
    for (start, stop), (row_start, row_stop) in zip(byte_ranges, boundaries):
        chunk = parse_csv_range(str(path), start, stop, columns, frame.dtypes)
        assert len(chunk) == row_stop - row_start


def test_scan_rechunk_is_memoized(tmp_path):
    frame = DataFrame({"x": list(range(200))})
    path = tmp_path / "memo.csv"
    write_csv(frame, str(path))
    scan = scan_csv(str(path), chunk_rows=100, dtypes=frame.dtypes)
    first = scan.rechunk(13)
    assert scan.rechunk(13) is first
    assert scan.rechunk(100) is scan


def test_scan_rechunk_preserves_content(tmp_path):
    frame = DataFrame({"x": list(range(100)), "w": ["v"] * 100})
    path = tmp_path / "rechunk.csv"
    write_csv(frame, str(path))
    scan = scan_csv(str(path), chunk_rows=40, dtypes=frame.dtypes)
    finer = scan.rechunk(7)
    assert finer.n_rows == scan.n_rows == 100
    assert finer.n_chunks == 15
    assert_frames_equal(finer.to_frame(), scan.to_frame())
