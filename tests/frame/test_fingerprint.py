"""Tests for the structural content fingerprints (repro.frame.fingerprint)."""

from __future__ import annotations

import numpy as np

from repro.frame import Column, DataFrame
from repro.frame.fingerprint import FULL_HASH_BYTES, fingerprint_array


class TestArrayFingerprint:
    def test_equal_content_equal_fingerprint(self):
        first = np.arange(100, dtype=np.int64)
        second = np.arange(100, dtype=np.int64)
        assert fingerprint_array(first) == fingerprint_array(second)

    def test_content_change_changes_fingerprint(self):
        array = np.arange(100, dtype=np.int64)
        changed = array.copy()
        changed[50] = -1
        assert fingerprint_array(array) != fingerprint_array(changed)

    def test_dtype_is_part_of_fingerprint(self):
        ints = np.arange(10, dtype=np.int64)
        floats = ints.astype(np.float64)
        assert fingerprint_array(ints) != fingerprint_array(floats)

    def test_shape_is_part_of_fingerprint(self):
        flat = np.zeros(16)
        square = np.zeros((4, 4))
        assert fingerprint_array(flat) != fingerprint_array(square)

    def test_object_arrays_supported(self):
        first = np.array(["a", "b", None], dtype=object)
        second = np.array(["a", "b", None], dtype=object)
        third = np.array(["a", "b", "c"], dtype=object)
        assert fingerprint_array(first) == fingerprint_array(second)
        assert fingerprint_array(first) != fingerprint_array(third)

    def test_large_object_array_interior_edit_detected(self):
        array = np.array([f"value-{i % 97}" for i in range(60_000)], dtype=object)
        edited = array.copy()
        edited[10_001] = "TAMPERED"  # off the head/tail blocks and stride grid
        assert fingerprint_array(array) != fingerprint_array(edited)

    def test_large_array_sampling_detects_edge_and_interior_edits(self):
        n = (FULL_HASH_BYTES // 8) * 2  # twice the full-hash threshold
        array = np.zeros(n, dtype=np.float64)
        baseline = fingerprint_array(array)

        head_edit = array.copy()
        head_edit[0] = 1.0
        assert fingerprint_array(head_edit) != baseline

        tail_edit = array.copy()
        tail_edit[-1] = 1.0
        assert fingerprint_array(tail_edit) != baseline

        # A single-cell edit deep in the interior, deliberately off the
        # head/tail blocks and the stride grid, must still be detected
        # (the full-buffer CRC32 guarantees it).
        interior_edit = array.copy()
        interior_edit[n // 2 + 13] = 1.0
        assert fingerprint_array(interior_edit) != baseline

    def test_non_contiguous_array(self):
        base = np.arange(100, dtype=np.int64)
        strided = base[::2]
        assert fingerprint_array(strided) == fingerprint_array(strided.copy())


class TestColumnFingerprint:
    def test_cached_and_stable(self):
        column = Column("x", [1, 2, 3])
        assert column.fingerprint() == column.fingerprint()

    def test_name_and_content_matter(self):
        assert Column("x", [1, 2, 3]).fingerprint() == \
            Column("x", [1, 2, 3]).fingerprint()
        assert Column("x", [1, 2, 3]).fingerprint() != \
            Column("y", [1, 2, 3]).fingerprint()
        assert Column("x", [1, 2, 3]).fingerprint() != \
            Column("x", [1, 2, 4]).fingerprint()

    def test_missing_mask_matters(self):
        assert Column("x", [1.0, None, 3.0]).fingerprint() != \
            Column("x", [1.0, 2.0, 3.0]).fingerprint()

    def test_invalidate_after_inplace_mutation(self):
        column = Column("x", [1, 2, 3])
        before = column.fingerprint()
        column.data[0] = 99
        assert column.fingerprint() == before  # stale by design until bumped
        column.invalidate_fingerprint()
        assert column.fingerprint() != before


class TestFrameFingerprint:
    def test_equal_frames_share_fingerprint(self, mixed_frame):
        clone = mixed_frame.copy()
        assert clone.fingerprint() == mixed_frame.fingerprint()

    def test_mutation_changes_fingerprint(self, mixed_frame):
        before = mixed_frame.fingerprint()
        mutated = mixed_frame.with_column(Column("ints", [9, 9, 9, 9, 9]))
        assert mutated.fingerprint() != before
        # The original is untouched.
        assert mixed_frame.fingerprint() == before

    def test_column_order_matters(self):
        first = DataFrame({"a": [1], "b": [2]})
        second = DataFrame({"b": [2], "a": [1]})
        assert first.fingerprint() != second.fingerprint()

    def test_selection_changes_fingerprint(self, mixed_frame):
        subset = mixed_frame.select(["ints", "floats"])
        assert subset.fingerprint() != mixed_frame.fingerprint()

    def test_invalidate_propagates_to_columns(self, mixed_frame):
        before = mixed_frame.fingerprint()
        mixed_frame.column("ints").data[0] = 42
        mixed_frame.invalidate_fingerprint()
        assert mixed_frame.fingerprint() != before
