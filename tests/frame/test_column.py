"""Tests for the Column type."""

import math

import numpy as np
import pytest

from repro.errors import DTypeError, FrameError
from repro.frame import Column, DType


class TestConstruction:
    def test_from_list_infers_dtype(self):
        column = Column("x", [1, 2, 3])
        assert column.dtype is DType.INT
        assert len(column) == 3

    def test_from_numpy_array(self):
        column = Column("x", np.array([1.0, np.nan, 3.0]))
        assert column.dtype is DType.FLOAT
        assert column.missing_count() == 1

    def test_explicit_dtype(self):
        column = Column("x", ["1", "2"], dtype=DType.STRING)
        assert column.to_list() == ["1", "2"]

    def test_float_nan_and_mask_stay_consistent(self):
        column = Column("x", [1.0, None, float("nan")])
        assert column.missing_count() == 2
        assert column.count() == 1

    def test_rename_shares_data(self):
        column = Column("x", [1, 2])
        renamed = column.rename("y")
        assert renamed.name == "y"
        assert renamed.data is column.data

    def test_columns_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Column("x", [1]))


class TestIndexing:
    def test_scalar_access_returns_python_values(self, numeric_column):
        assert numeric_column[0] == 10.0
        assert numeric_column[6] is None

    def test_slice_returns_column(self, numeric_column):
        head = numeric_column[:3]
        assert isinstance(head, Column)
        assert len(head) == 3

    def test_boolean_filter(self, numeric_column):
        mask = numeric_column.notna()
        filtered = numeric_column.filter(mask)
        assert filtered.missing_count() == 0
        assert len(filtered) == numeric_column.count()

    def test_filter_length_mismatch_raises(self, numeric_column):
        with pytest.raises(FrameError):
            numeric_column.filter(np.array([True, False]))

    def test_take(self, numeric_column):
        taken = numeric_column.take([0, 8])
        assert taken.to_list() == [10.0, 100.0]

    def test_iteration_matches_to_list(self, categorical_column):
        assert list(categorical_column) == categorical_column.to_list()


class TestMissing:
    def test_missing_rate(self, numeric_column):
        assert numeric_column.missing_rate() == pytest.approx(0.2)

    def test_dropna(self, numeric_column):
        dropped = numeric_column.dropna()
        assert len(dropped) == 8
        assert dropped.missing_count() == 0

    def test_fillna(self, numeric_column):
        filled = numeric_column.fillna(0.0)
        assert filled.missing_count() == 0
        assert filled.count() == len(numeric_column)

    def test_empty_column_missing_rate_is_zero(self):
        assert Column("x", []).missing_rate() == 0.0


class TestReductions:
    def test_basic_statistics_match_numpy(self, numeric_column):
        values = np.array([10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 100.0, 12.0])
        assert numeric_column.mean() == pytest.approx(values.mean())
        assert numeric_column.std() == pytest.approx(values.std(ddof=1))
        assert numeric_column.sum() == pytest.approx(values.sum())
        assert numeric_column.min() == 10.0
        assert numeric_column.max() == 100.0
        assert numeric_column.count() == 8

    def test_quantile(self, numeric_column):
        values = np.array([10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 100.0, 12.0])
        assert numeric_column.quantile(0.5) == pytest.approx(np.quantile(values, 0.5))
        result = numeric_column.quantile([0.25, 0.75])
        assert result.shape == (2,)

    def test_skewness_and_kurtosis_are_finite(self, numeric_column):
        assert math.isfinite(numeric_column.skewness())
        assert math.isfinite(numeric_column.kurtosis())

    def test_skewness_of_symmetric_data_is_near_zero(self):
        column = Column("x", [-2.0, -1.0, 0.0, 1.0, 2.0])
        assert column.skewness() == pytest.approx(0.0, abs=1e-9)

    def test_reductions_on_string_column_raise(self, categorical_column):
        with pytest.raises(DTypeError):
            categorical_column.mean()

    def test_all_missing_column_reductions(self):
        column = Column("x", [None, None])
        assert math.isnan(column.mean())
        assert column.min() is None
        assert column.sum() == 0.0

    def test_counters(self):
        column = Column("x", [0.0, -1.0, 2.0, float("inf"), None])
        assert column.zeros_count() == 1
        assert column.negatives_count() == 1
        assert column.infinite_count() == 1

    def test_min_max_on_strings(self, categorical_column):
        assert categorical_column.min() == "blue"
        assert categorical_column.max() == "red"


class TestValueCounts:
    def test_value_counts_sorted_descending(self, categorical_column):
        counts = categorical_column.value_counts()
        assert counts[0] == ("red", 3)
        assert dict(counts)["blue"] == 2

    def test_value_counts_excludes_missing(self, categorical_column):
        total = sum(count for _, count in categorical_column.value_counts())
        assert total == categorical_column.count()

    def test_nunique_and_unique(self, categorical_column):
        assert categorical_column.nunique() == 3
        assert set(categorical_column.unique()) == {"red", "blue", "green"}

    def test_mode(self, categorical_column):
        assert categorical_column.mode() == "red"

    def test_value_counts_numeric(self):
        column = Column("x", [3, 1, 3, 3, 1])
        assert column.value_counts()[0] == (3, 3)


class TestConversion:
    def test_astype_int_to_float(self):
        column = Column("x", [1, 2, None])
        converted = column.astype(DType.FLOAT)
        assert converted.dtype is DType.FLOAT
        assert converted.missing_count() == 1

    def test_astype_to_string(self):
        column = Column("x", [1, 2])
        assert column.astype(DType.STRING).to_list() == ["1", "2"]

    def test_astype_same_dtype_is_noop(self):
        column = Column("x", [1, 2])
        assert column.astype(DType.INT) is column

    def test_to_numpy_drop_missing(self, numeric_column):
        values = numeric_column.to_numpy(drop_missing=True)
        assert values.shape == (8,)

    def test_map(self):
        column = Column("x", [1, 2, None])
        doubled = column.map(lambda value: value * 2)
        assert doubled.to_list() == [2, 4, None]


class TestDescribe:
    def test_numeric_describe_keys(self, numeric_column):
        description = numeric_column.describe()
        for key in ("mean", "std", "median", "q25", "q75", "skewness", "missing"):
            assert key in description

    def test_categorical_describe_keys(self, categorical_column):
        description = categorical_column.describe()
        assert description["top"] == "red"
        assert description["top_freq"] == 3
        assert description["distinct"] == 3

    def test_equality(self):
        assert Column("x", [1, 2, None]) == Column("x", [1, 2, None])
        assert Column("x", [1, 2]) != Column("x", [1, 3])
        assert Column("x", [1]) != Column("y", [1])
