"""Property suite for the FrameSource protocol.

The contract every source must satisfy (same style as the sketch suite):
the precomputed partitions are contiguous, cover ``[0, n_rows)``, and
materializing them in order concatenates back to the source's whole logical
frame — for in-memory frames at any partition granularity, for CSV scans at
any chunk granularity, and for multi-file datasets under any split of the
rows across files.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame.dtypes import DType
from repro.frame.frame import DataFrame, concat_rows
from repro.frame.io import scan_csv, write_csv
from repro.frame.source import (
    CsvSource,
    FrameSource,
    InMemorySource,
    MultiFileCsvSource,
    as_source,
)

#: Explicit storage dtypes for the generated CSVs: dtype inference reads a
#: per-file preview, so a file whose rows happen to look integral would
#: otherwise legitimately infer differently from its sibling — a documented
#: scan_csv caveat, not the partition property under test here.
CSV_DTYPES = {"value": DType.FLOAT, "label": DType.STRING}

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)

frames = st.builds(
    lambda numbers, flags: DataFrame({
        "value": [None if missing else number
                  for number, missing in zip(numbers, flags)],
        "label": [f"c{int(abs(number)) % 5}" for number in numbers],
    }),
    st.lists(finite_floats, min_size=1, max_size=120),
    st.lists(st.booleans(), min_size=120, max_size=120),
)


def materialized(source: FrameSource) -> DataFrame:
    """Concatenate every partition of *source*, preserving row order."""
    parts = [part.materialize() for part in source.partitions()]
    non_empty = [part for part in parts if len(part)]
    return concat_rows(non_empty) if non_empty else parts[0]


def assert_covers(source: FrameSource) -> None:
    """Partition boundaries must be contiguous over ``[0, n_rows)``."""
    boundaries = [(part.start, part.stop) for part in source.partitions()]
    position = 0
    for start, stop in boundaries:
        assert start == position
        assert stop >= start
        position = stop
    assert position == source.n_rows


@given(frame=frames, partition_rows=st.integers(min_value=1, max_value=150))
@settings(max_examples=40, deadline=None)
def test_in_memory_partitions_concatenate_to_frame(frame, partition_rows):
    source = InMemorySource(frame, partition_rows=partition_rows)
    assert_covers(source)
    assert materialized(source) == frame
    assert source.to_frame() is frame
    assert source.fingerprint() == frame.fingerprint()


@given(frame=frames, chunk_rows=st.integers(min_value=1, max_value=150))
@settings(max_examples=25, deadline=None)
def test_csv_source_partitions_concatenate_to_file(frame, chunk_rows):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "data.csv")
        write_csv(frame, path)
        source = as_source(scan_csv(path, chunk_rows=chunk_rows,
                                    dtypes=CSV_DTYPES))
        assert isinstance(source, CsvSource)
        assert_covers(source)
        assert materialized(source) == source.to_frame()
        assert source.n_rows == len(frame)


@given(frame=frames,
       split=st.integers(min_value=0, max_value=120),
       chunk_rows=st.integers(min_value=1, max_value=150))
@settings(max_examples=25, deadline=None)
def test_multifile_partitions_concatenate_like_one_file(frame, split, chunk_rows):
    split = min(split, len(frame))
    with tempfile.TemporaryDirectory() as tmp:
        whole_path = os.path.join(tmp, "whole.csv")
        part_a = os.path.join(tmp, "a.csv")
        part_b = os.path.join(tmp, "b.csv")
        write_csv(frame, whole_path)
        write_csv(frame.slice(0, split), part_a)
        write_csv(frame.slice(split, len(frame)), part_b)

        multi = scan_csv([part_a, part_b], chunk_rows=chunk_rows,
                         dtypes=CSV_DTYPES)
        assert isinstance(multi, MultiFileCsvSource)
        assert_covers(multi)

        single = as_source(scan_csv(whole_path, chunk_rows=chunk_rows,
                                    dtypes=CSV_DTYPES))
        assert multi.n_rows == single.n_rows
        assert materialized(multi) == materialized(single)


def test_as_source_rejects_unknown_inputs():
    import pytest

    from repro.errors import FrameError
    with pytest.raises(FrameError):
        as_source([1, 2, 3])


def test_multifile_rejects_mismatched_columns(tmp_path):
    import pytest

    from repro.errors import FrameError
    write_csv(DataFrame({"a": [1.0], "b": ["x"]}), str(tmp_path / "one.csv"))
    write_csv(DataFrame({"a": [2.0], "c": ["y"]}), str(tmp_path / "two.csv"))
    with pytest.raises(FrameError, match="disagree on columns"):
        scan_csv([str(tmp_path / "one.csv"), str(tmp_path / "two.csv")])


def test_multifile_fingerprint_tracks_file_stamps(tmp_path):
    paths = []
    for index in range(2):
        path = str(tmp_path / f"file{index}.csv")
        write_csv(DataFrame({"a": [float(index), 2.0]}), path)
        paths.append(path)
    first = scan_csv(paths).fingerprint()
    assert scan_csv(paths).fingerprint() == first       # unchanged files
    os.utime(paths[1], ns=(1, 1))                       # bump mtime
    assert scan_csv(paths).fingerprint() != first


def test_glob_scan_matches_explicit_list(tmp_path):
    import pytest

    from repro.errors import FrameError
    frame = DataFrame({"a": [1.0, 2.0, 3.0], "b": ["x", "y", "z"]})
    write_csv(frame.slice(0, 2), str(tmp_path / "part-0.csv"))
    write_csv(frame.slice(2, 3), str(tmp_path / "part-1.csv"))
    by_glob = scan_csv(str(tmp_path / "part-*.csv"))
    by_list = scan_csv([str(tmp_path / "part-0.csv"),
                        str(tmp_path / "part-1.csv")])
    assert by_glob.paths == by_list.paths
    assert by_glob.to_frame() == by_list.to_frame()
    with pytest.raises(FrameError, match="matched no files"):
        scan_csv(str(tmp_path / "missing-*.csv"))


def test_pathlike_glob_dispatches_to_multifile(tmp_path):
    frame = DataFrame({"a": [1.0, 2.0], "b": ["x", "y"]})
    write_csv(frame, str(tmp_path / "part-0.csv"))
    write_csv(frame, str(tmp_path / "part-1.csv"))
    source = scan_csv(tmp_path / "part-*.csv")        # os.PathLike, not str
    assert isinstance(source, MultiFileCsvSource)
    assert source.n_rows == 4


def test_explicit_in_memory_partitioning_survives_default_config():
    """An InMemorySource built with partition_rows must not be silently
    re-planned to the config default (mirrors the scan_csv guarantee)."""
    import numpy as np

    from repro.eda.compute.base import ComputeContext
    from repro.eda.config import Config

    frame = DataFrame({"x": np.arange(60_000, dtype=np.float64)})
    context = ComputeContext(InMemorySource(frame, partition_rows=5_000),
                             Config.from_user())
    assert context.partitioned.npartitions == 12
    overridden = ComputeContext(InMemorySource(frame, partition_rows=5_000),
                                Config.from_user({"compute.partition_rows":
                                                  30_000}))
    assert overridden.partitioned.npartitions == 2


# --------------------------------------------------------------------------- #
# Projection: materialize(columns=...) and the zero-copy in-memory contract.
# --------------------------------------------------------------------------- #
def test_in_memory_partitions_are_zero_copy_views():
    """Exact-path partition slices — projected or not — must share the
    source frame's buffers: no full-frame (or even per-column) copies."""
    frame = DataFrame({
        "a": np.arange(200, dtype=np.float64),
        "b": np.arange(200, dtype=np.int64),
        "c": [f"s{i}" for i in range(200)],
    })
    source = InMemorySource(frame, partition_rows=64)
    for part in source.partitions():
        full = part.materialize()
        assert full.columns == ["a", "b", "c"]
        for name in full.columns:
            assert np.shares_memory(full.column(name).data,
                                    frame.column(name).data)
            assert np.shares_memory(full.column(name).mask,
                                    frame.column(name).mask)
        projected = part.materialize(columns=("b",))
        assert projected.columns == ["b"]
        assert len(projected) == part.n_rows
        assert np.shares_memory(projected.column("b").data,
                                frame.column("b").data)


def test_frame_slice_is_zero_copy_even_for_float_columns():
    """DataFrame.slice must not reallocate the float mask (the historical
    NaN/mask reconciliation copy)."""
    data = np.array([1.0, np.nan, 3.0, 4.0])
    frame = DataFrame({"x": data})
    window = frame.slice(1, 3)
    assert np.shares_memory(window.column("x").data, frame.column("x").data)
    assert np.shares_memory(window.column("x").mask, frame.column("x").mask)
    assert window.column("x").to_list() == [None, 3.0]


def test_csv_partition_projection_matches_full_parse(tmp_path):
    frame = DataFrame({
        "a": np.arange(30, dtype=np.float64),
        "b": [f"s{i}" for i in range(30)],
        "c": np.arange(30, dtype=np.int64),
    })
    path = str(tmp_path / "proj.csv")
    write_csv(frame, path)
    source = as_source(scan_csv(path, chunk_rows=7))
    for part in source.partitions():
        full = part.materialize()
        projected = part.materialize(columns=("a", "c"))
        assert projected.columns == ["a", "c"]
        assert projected == full.select(["a", "c"])


def test_source_capabilities_declare_projection():
    frame = DataFrame({"a": [1.0, 2.0]})
    assert InMemorySource(frame).capabilities.projection is True
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "caps.csv")
        write_csv(frame, path)
        assert as_source(scan_csv(path)).capabilities.projection is True
        multi = MultiFileCsvSource.scan([path])
        assert multi.capabilities.projection is True


def test_projection_rejected_for_non_projectable_sources():
    """A source that never opted into projection must fail at plan time
    (clear GraphError), not at execution time inside a worker."""
    import pytest

    from repro.errors import GraphError
    from repro.frame.source import SourcePartition, SourceCapabilities
    from repro.graph.partition import PartitionedFrame

    class LegacySource:
        columns = ["a"]
        capabilities = SourceCapabilities(exact=False)   # projection=False

        def partitions(self):
            return [SourcePartition(0, 1, _legacy_chunk, ())]

    with pytest.raises(GraphError, match="does not support column projection"):
        PartitionedFrame.from_source(LegacySource(), columns=("a",))
    # Unprojected use keeps working.
    assert PartitionedFrame.from_source(LegacySource()).npartitions == 1


def _legacy_chunk():
    return DataFrame({"a": [1.0]})


def test_materialize_projection_rejected_without_columns_keyword():
    """Direct materialize(columns=...) on a legacy partition func must fail
    with a clear FrameError, not a TypeError from inside the func."""
    import pytest

    from repro.errors import FrameError
    from repro.frame.source import SourcePartition

    part = SourcePartition(0, 1, _legacy_chunk, ())
    with pytest.raises(FrameError, match="takes no columns= keyword"):
        part.materialize(columns=("a",))
    assert part.materialize().columns == ["a"]


def test_columns_keyword_probe_never_pins_closures():
    """The keyword-support memo must only retain module-level funcs —
    per-call closures would otherwise pin their captures forever."""
    from repro.frame.source import _KEYWORD_SUPPORT, _accepts_columns

    def closure_func(columns=None):
        return DataFrame({"a": [1.0]})

    assert _accepts_columns(closure_func) is True
    assert not any(func is closure_func for func, _ in _KEYWORD_SUPPORT)
    from repro.frame.source import _read_csv_slice, _slice_frame
    assert _accepts_columns(_read_csv_slice) is True
    assert _accepts_columns(_slice_frame) is True
    assert (_read_csv_slice, "columns") in _KEYWORD_SUPPORT
