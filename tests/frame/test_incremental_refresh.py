"""Append-aware refresh of scanned CSV sources.

The incremental contract, exercised end to end:

* appending rows *extends* the chunk layout — old chunks keep their
  per-chunk ``(head_crc, tail_crc)`` content stamps, so their cache keys,
  zone-map entries and binary sidecars stay valid — and the refreshed scan
  is value-identical to a cold scan of the grown file;
* any other change (interior mutation, shrink, dtype drift in the new
  preview) degrades safely to a full rescan;
* the stamp-granularity hazard is closed: a same-size in-place rewrite
  with the mtime restored defeats the old whole-file ``(size, mtime_ns)``
  key, but the per-chunk CRC stamps still invalidate the fingerprint, the
  zone-map entries and the binary sidecar;
* a glob-backed multi-file source absorbs newly matching files as
  appended partitions.
"""

from __future__ import annotations

import glob as glob_module
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame.dtypes import DType
from repro.frame.frame import DataFrame
from repro.frame.io import compute_chunk_stamps, read_csv, scan_csv, write_csv
from repro.frame.sidecar import SidecarRoute, load_chunk, store_chunk
from repro.frame.source import MultiFileCsvSource, refresh_input
from repro.frame.zonemap import (
    chunk_column_stats,
    chunk_key,
    decode_zone_entry,
    encode_zone_entry,
)

def assert_frames_equal(left: DataFrame, right: DataFrame) -> None:
    import numpy as np

    assert left.columns == right.columns
    assert len(left) == len(right)
    for name in left.columns:
        first, second = left.column(name), right.column(name)
        assert first.dtype is second.dtype, name
        np.testing.assert_array_equal(first.isna(), second.isna(), err_msg=name)
        for a, b in zip(first.to_list(), second.to_list()):
            if a is None or b is None:
                assert a is b, name
            elif isinstance(a, float):
                assert a == pytest.approx(b, rel=1e-12, abs=1e-12), name
            else:
                assert a == b, name


def _write_rows(path, start, stop, header=True, mode="w"):
    with open(path, mode, encoding="utf-8") as handle:
        if header:
            handle.write("x,y,label\n")
        for index in range(start, stop):
            handle.write(f"{index},{index * 0.5},w{index % 5}\n")


def test_append_extends_layout_and_preserves_stamps(tmp_path):
    path = str(tmp_path / "grow.csv")
    _write_rows(path, 0, 1_000)
    scan = scan_csv(path, chunk_rows=100)
    old_stamps = scan.chunk_stamps
    old_fingerprint = scan.fingerprint()

    _write_rows(path, 1_000, 1_050, header=False, mode="a")
    refreshed = scan.refreshed()

    assert refreshed is not scan
    assert refreshed.n_rows == 1_050
    # The old chunks' byte ranges and content stamps survive verbatim, so
    # their partition-task cache keys stay warm after the append.
    assert refreshed.chunk_stamps[:len(old_stamps)] == old_stamps
    assert refreshed.byte_ranges[:scan.n_chunks] == scan.byte_ranges
    assert refreshed.n_chunks > scan.n_chunks
    # The handle's own fingerprint must change (it now covers more rows).
    assert refreshed.fingerprint() != old_fingerprint
    # And the extension is value-identical to a cold scan of the grown file.
    assert_frames_equal(refreshed.to_frame(),
                        read_csv(path, dtypes=refreshed.dtypes))


def test_refresh_of_unchanged_file_returns_self(tmp_path):
    path = str(tmp_path / "same.csv")
    _write_rows(path, 0, 50)
    scan = scan_csv(path, chunk_rows=10)
    assert scan.refreshed() is scan


def test_interior_mutation_triggers_full_rescan(tmp_path):
    path = str(tmp_path / "mutate.csv")
    _write_rows(path, 0, 500)
    scan = scan_csv(path, chunk_rows=50)
    first_stamp = scan.chunk_stamp(0)

    # Rewrite the first data row in place (same byte length) AND append:
    # the size grew, but the prefix CRC probe must catch the mutation.
    with open(path, "r+b") as handle:
        handle.seek(len(b"x,y,label\n"))
        handle.write(b"9,9.9,w9\n"[:4])
    _write_rows(path, 500, 520, header=False, mode="a")

    refreshed = scan.refreshed()
    assert refreshed.n_rows == 520
    assert refreshed.chunk_stamp(0) != first_stamp
    assert_frames_equal(refreshed.to_frame(),
                        read_csv(path, dtypes=refreshed.dtypes))


def test_shrink_triggers_full_rescan(tmp_path):
    path = str(tmp_path / "shrink.csv")
    _write_rows(path, 0, 400)
    scan = scan_csv(path, chunk_rows=50)
    _write_rows(path, 0, 100)    # rewrite smaller
    refreshed = scan.refreshed()
    assert refreshed.n_rows == 100
    assert_frames_equal(refreshed.to_frame(),
                        read_csv(path, dtypes=refreshed.dtypes))


def test_growth_from_empty_file_replaces_placeholder_chunk(tmp_path):
    path = str(tmp_path / "wasempty.csv")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("x,y,label\n")
    scan = scan_csv(path, chunk_rows=10)
    assert scan.n_rows == 0
    _write_rows(path, 0, 25, header=False, mode="a")
    refreshed = scan.refreshed()
    assert refreshed.n_rows == 25
    assert_frames_equal(refreshed.to_frame(),
                        read_csv(path, dtypes=refreshed.dtypes))


def test_same_size_rewrite_with_restored_mtime_still_invalidates(tmp_path):
    """Regression for the stamp-granularity hazard: a same-size in-place
    rewrite with the mtime restored is invisible to the old whole-file
    ``(size, mtime_ns)`` stamp, but every per-chunk CRC consumer — the
    fingerprint, the zone map and the binary sidecar — must still notice."""
    path = str(tmp_path / "hazard.csv")
    _write_rows(path, 0, 200)
    before = os.stat(path)
    scan = scan_csv(path, chunk_rows=50)
    old_fingerprint = scan.fingerprint()
    old_stamp = scan.chunk_stamp(0)
    byte_start, byte_stop = scan.byte_ranges[0]

    # Persist chunk 0 through the binary sidecar and a zone-map entry
    # under its content stamp.
    route = tuple(SidecarRoute(directory=str(tmp_path / "side")))
    chunk = scan.read_chunk(0)
    assert store_chunk(path, byte_start, byte_stop, old_stamp, chunk, route)
    stats = chunk_column_stats(chunk)
    entry = encode_zone_entry(stats, old_stamp)
    assert decode_zone_entry(entry, old_stamp) is not None

    # Same-size rewrite: swap two digits in the first data row, then put
    # the original mtime back.
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        offset = data.index(b"\n") + 1
        data[offset:offset + 1] = b"7"
        handle.seek(0)
        handle.write(bytes(data))
    os.utime(path, ns=(before.st_atime_ns, before.st_mtime_ns))
    after = os.stat(path)
    assert (after.st_size, after.st_mtime_ns) == \
        (before.st_size, before.st_mtime_ns)      # the hazard is real

    fresh = scan_csv(path, chunk_rows=50)
    new_stamp = fresh.chunk_stamp(0)
    assert new_stamp != old_stamp
    assert fresh.fingerprint() != old_fingerprint
    # The zone-map entry refuses to answer under the new stamp ...
    assert decode_zone_entry(entry, new_stamp) is None
    # ... and so does the sidecar payload.
    assert load_chunk(path, byte_start, byte_stop, new_stamp, fresh.columns,
                      fresh.dtypes, None, route) is None
    # The untouched old stamp still answers (entries are per-chunk).
    assert load_chunk(path, byte_start, byte_stop, old_stamp, scan.columns,
                      scan.dtypes, None, route) is not None


def test_zone_map_entries_survive_append(tmp_path):
    path = str(tmp_path / "zones.csv")
    _write_rows(path, 0, 300)
    scan = scan_csv(path, chunk_rows=100)
    scan.zone_map()      # build + persist per-chunk entries

    from repro.frame.zonemap import load_zone_entries
    before = load_zone_entries(path)
    assert len(before) == scan.n_chunks

    _write_rows(path, 300, 330, header=False, mode="a")
    refreshed = scan.refreshed()
    # Every old chunk's persisted entry still decodes under the refreshed
    # scan's stamps — append did not invalidate the prefix.
    for index in range(scan.n_chunks):
        start, stop = refreshed.byte_ranges[index]
        entry = before[chunk_key(start, stop)]
        assert decode_zone_entry(entry, refreshed.chunk_stamp(index)) is not None


def test_multifile_glob_absorbs_new_files(tmp_path):
    for index in range(2):
        _write_rows(str(tmp_path / f"part{index}.csv"), index * 100,
                    index * 100 + 100)
    pattern = str(tmp_path / "part*.csv")
    source = MultiFileCsvSource.scan(sorted(glob_module.glob(pattern)),
                                     chunk_rows=40, pattern=pattern)
    assert len(source.scans) == 2
    old_fingerprint = source.fingerprint()

    _write_rows(str(tmp_path / "part2.csv"), 200, 260)
    refreshed = source.refreshed()
    assert len(refreshed.scans) == 3
    assert refreshed.fingerprint() != old_fingerprint
    assert sum(scan.n_rows for scan in refreshed.scans) == 260
    # Existing partitions were reused as-is (same stamps), not rescanned.
    for old, new in zip(source.scans, refreshed.scans):
        assert new.chunk_stamps == old.chunk_stamps
    # Unchanged glob → same object back.
    assert refreshed.refreshed() is refreshed


def test_multifile_refresh_extends_grown_member(tmp_path):
    paths = [str(tmp_path / f"m{index}.csv") for index in range(2)]
    for index, path in enumerate(paths):
        _write_rows(path, index * 50, index * 50 + 50)
    source = MultiFileCsvSource.scan(paths, chunk_rows=10)
    old_first_stamps = source.scans[0].chunk_stamps

    _write_rows(paths[0], 50, 70, header=False, mode="a")
    refreshed = refresh_input(source)
    assert refreshed is not source
    assert refreshed.scans[0].n_rows == 70
    assert refreshed.scans[0].chunk_stamps[:len(old_first_stamps)] == \
        old_first_stamps
    assert refreshed.scans[1] is source.scans[1]


def test_refresh_input_passthrough():
    frame = DataFrame({"x": [1, 2, 3]})
    assert refresh_input(frame) is frame
    assert refresh_input(42) == 42


def test_timezone_values_round_trip_through_sidecar_and_zone_map(tmp_path):
    """Offset-aware timestamps: coerced to UTC at parse time, the values
    survive the binary sidecar round trip and the zone map prunes on the
    normalised UTC instants."""
    import numpy as np

    path = str(tmp_path / "tz.csv")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("ts,v\n")
        handle.write("2021-03-01T12:00:00Z,1\n")
        handle.write("2021-03-01T14:00:00+02:00,2\n")       # same instant
        handle.write("2021-03-02 07:00:00-0500,3\n")        # 12:00 UTC next day
    scan = scan_csv(path, chunk_rows=2)
    assert scan.dtypes["ts"] is DType.DATETIME
    frame = scan.to_frame()
    values = frame.column("ts").to_numpy()
    assert values[0] == values[1] == np.datetime64("2021-03-01T12:00:00", "s")
    assert values[2] == np.datetime64("2021-03-02T12:00:00", "s")

    # Sidecar round trip preserves the normalised values.
    route = tuple(SidecarRoute(directory=str(tmp_path / "side")))
    stamp = scan.chunk_stamp(0)
    start, stop = scan.byte_ranges[0]
    chunk = scan.read_chunk(0)
    assert store_chunk(path, start, stop, stamp, chunk, route)
    loaded = load_chunk(path, start, stop, stamp, scan.columns, scan.dtypes,
                        len(chunk), route)
    assert loaded is not None
    assert_frames_equal(loaded, chunk)

    # Zone-map pruning sees UTC: a predicate on the UTC day boundary keeps
    # only the chunk holding the second day's row.
    zone = scan.zone_map()
    flags = zone.keep_flags([("ts", ">", "2021-03-01T23:00:00")])
    assert flags == [False, True]


append_rows = st.integers(min_value=1, max_value=30)
split_at = st.integers(min_value=0, max_value=60)


@given(total=st.integers(min_value=1, max_value=60), split=split_at,
       chunk_rows=st.integers(min_value=1, max_value=7))
@settings(max_examples=40, deadline=None)
def test_append_split_anywhere_equals_whole_file_scan(total, split, chunk_rows,
                                                      tmp_path_factory):
    """Property: writing a prefix, scanning, appending the rest and
    refreshing is value-identical to scanning the whole file cold — for
    any split point and chunk granularity."""
    split = min(split, total)
    path = str(tmp_path_factory.mktemp("prop") / "grow.csv")
    _write_rows(path, 0, split)
    scan = scan_csv(path, chunk_rows=chunk_rows)
    _write_rows(path, split, total, header=False, mode="a")
    refreshed = scan.refreshed()
    cold = scan_csv(path, chunk_rows=chunk_rows)
    assert refreshed.n_rows == cold.n_rows == total
    assert refreshed.dtypes == cold.dtypes
    assert_frames_equal(refreshed.to_frame(), cold.to_frame())


def test_refresh_preserves_explicit_dtypes(tmp_path):
    path = str(tmp_path / "typed.csv")
    _write_rows(path, 0, 120)
    scan = scan_csv(path, chunk_rows=40, dtypes={"x": DType.FLOAT})
    _write_rows(path, 120, 140, header=False, mode="a")
    refreshed = scan.refreshed()
    assert refreshed.dtypes["x"] is DType.FLOAT
    assert refreshed.n_rows == 140


def test_write_csv_then_refresh_detects_replacement(tmp_path):
    """write_csv replaces the file wholesale; refresh must fall back to a
    rescan and reflect the new contents."""
    path = str(tmp_path / "replace.csv")
    _write_rows(path, 0, 80)
    scan = scan_csv(path, chunk_rows=20)
    frame = DataFrame({"x": [1.5] * 200, "y": [2.5] * 200,
                       "label": ["q"] * 200})
    write_csv(frame, path)
    refreshed = scan.refreshed()
    assert refreshed.n_rows == 200
    assert_frames_equal(refreshed.to_frame(),
                        read_csv(path, dtypes=refreshed.dtypes))


def test_appended_stamps_match_recomputation(tmp_path):
    """compute_chunk_stamps over the refreshed layout reproduces the stored
    stamps — i.e. the extension records real content CRCs, not stale ones."""
    path = str(tmp_path / "crc.csv")
    _write_rows(path, 0, 150)
    scan = scan_csv(path, chunk_rows=40)
    _write_rows(path, 150, 180, header=False, mode="a")
    refreshed = scan.refreshed()
    assert compute_chunk_stamps(path, refreshed.byte_ranges) == \
        refreshed.chunk_stamps


@pytest.mark.parametrize("growth", [1, 37])
def test_refresh_is_idempotent(tmp_path, growth):
    path = str(tmp_path / "idem.csv")
    _write_rows(path, 0, 100)
    scan = scan_csv(path, chunk_rows=30)
    _write_rows(path, 100, 100 + growth, header=False, mode="a")
    once = scan.refreshed()
    assert once.refreshed() is once
