"""Tests for storage dtype inference and coercion."""

import math

import numpy as np
import pytest

from repro.errors import DTypeError
from repro.frame.dtypes import (
    DType,
    coerce_values,
    from_numpy,
    infer_dtype,
    is_missing_scalar,
    parse_bool,
    parse_datetime,
)


class TestInference:
    def test_integers_infer_int(self):
        assert infer_dtype([1, 2, 3]) is DType.INT

    def test_floats_infer_float(self):
        assert infer_dtype([1.5, 2.25]) is DType.FLOAT

    def test_integral_floats_infer_int(self):
        assert infer_dtype([1.0, 2.0, 3.0]) is DType.INT

    def test_mixed_int_float_infers_float(self):
        assert infer_dtype([1, 2.5]) is DType.FLOAT

    def test_numeric_strings_infer_numbers(self):
        assert infer_dtype(["1", "2", "3"]) is DType.INT
        assert infer_dtype(["1.5", "2"]) is DType.FLOAT

    def test_booleans_infer_bool(self):
        assert infer_dtype([True, False]) is DType.BOOL
        assert infer_dtype(["yes", "no", "yes"]) is DType.BOOL

    def test_strings_infer_string(self):
        assert infer_dtype(["a", "b"]) is DType.STRING

    def test_mixed_string_and_number_infers_string(self):
        assert infer_dtype([1, "a"]) is DType.STRING

    def test_dates_infer_datetime(self):
        assert infer_dtype(["2020-01-01", "2021-12-31"]) is DType.DATETIME

    def test_all_missing_infers_float(self):
        assert infer_dtype([None, float("nan"), ""]) is DType.FLOAT

    def test_missing_values_are_ignored_during_inference(self):
        assert infer_dtype([None, 1, 2, "NA"]) is DType.INT


class TestMissingScalars:
    @pytest.mark.parametrize("value", [None, float("nan"), "", "NA", "null",
                                       "None", "n/a", "?", " NaN "])
    def test_missing_tokens(self, value):
        assert is_missing_scalar(value)

    @pytest.mark.parametrize("value", [0, 0.0, False, "0", "abc", "nap"])
    def test_non_missing_values(self, value):
        assert not is_missing_scalar(value)


class TestParsers:
    def test_parse_bool_variants(self):
        assert parse_bool("TRUE") is True
        assert parse_bool("f") is False
        assert parse_bool(np.True_) is True
        assert parse_bool("maybe") is None
        assert parse_bool(3) is None

    def test_parse_datetime_formats(self):
        assert parse_datetime("2020-01-02") == np.datetime64("2020-01-02", "s")
        assert parse_datetime("2020-01-02 03:04:05") == \
            np.datetime64("2020-01-02T03:04:05", "s")
        assert parse_datetime("02/28/2021") == np.datetime64("2021-02-28", "s")
        assert parse_datetime("not a date") is None


class TestCoercion:
    def test_coerce_to_float_fills_nan_for_missing(self):
        data, mask = coerce_values([1, None, "3.5"], DType.FLOAT)
        assert data[0] == 1.0 and data[2] == 3.5
        assert math.isnan(data[1])
        assert list(mask) == [False, True, False]

    def test_coerce_to_int(self):
        data, mask = coerce_values(["4", 5, None], DType.INT)
        assert list(data[:2]) == [4, 5]
        assert mask[2]

    def test_coerce_bool_from_strings(self):
        data, _ = coerce_values(["yes", "no"], DType.BOOL)
        assert list(data) == [True, False]

    def test_coerce_invalid_raises(self):
        with pytest.raises(DTypeError):
            coerce_values(["abc"], DType.INT)
        with pytest.raises(DTypeError):
            coerce_values(["abc"], DType.DATETIME)

    def test_coerce_to_string_stringifies(self):
        data, _ = coerce_values([1, 2.5, True], DType.STRING)
        assert list(data) == ["1", "2.5", "True"]


class TestFromNumpy:
    def test_float_array_uses_nan_as_mask(self):
        data, mask, dtype = from_numpy(np.array([1.0, np.nan, 3.0]))
        assert dtype is DType.FLOAT
        assert list(mask) == [False, True, False]

    def test_int_array(self):
        data, mask, dtype = from_numpy(np.arange(4))
        assert dtype is DType.INT
        assert not mask.any()

    def test_bool_array(self):
        _, _, dtype = from_numpy(np.array([True, False]))
        assert dtype is DType.BOOL

    def test_unicode_array(self):
        data, mask, dtype = from_numpy(np.array(["a", "", "c"]))
        assert dtype is DType.STRING
        assert list(mask) == [False, True, False]

    def test_2d_array_rejected(self):
        with pytest.raises(DTypeError):
            from_numpy(np.zeros((2, 2)))


class TestLenientCoercionDegradesToMissing:
    """Lenient coercion (the streaming-chunk contract) must never abort."""

    def test_out_of_range_int_becomes_missing(self):
        huge = "999999999999999999999999999999"
        data, mask = coerce_values(["1", huge, "3"], DType.INT, lenient=True)
        assert list(mask) == [False, True, False]
        assert data[0] == 1 and data[2] == 3

    def test_out_of_range_int_still_raises_when_strict(self):
        with pytest.raises((DTypeError, OverflowError)):
            coerce_values(["999999999999999999999999999999"], DType.INT)


class TestDatetimePrescreenWhitespace:
    """The strptime literal space matches any whitespace run; the regex
    prescreen must not reject values strptime would accept."""

    def test_tab_separated_datetime_parses(self):
        assert parse_datetime("2021-05-03\t10:00:00") is not None

    def test_multi_space_datetime_parses(self):
        assert parse_datetime("2021-05-03  10:00:00") is not None

    def test_datetime_column_inference_survives_tabs(self):
        values = ["2021-05-03\t10:00:00", "2021-05-04 11:30:00"]
        assert infer_dtype(values) is DType.DATETIME
