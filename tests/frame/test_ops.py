"""Tests for relational helper operations."""

import numpy as np
import pytest

from repro.errors import DTypeError
from repro.frame import DataFrame
from repro.frame.ops import crosstab, groupby_aggregate, grouped_values, value_counts


@pytest.fixture
def sales_frame() -> DataFrame:
    return DataFrame({
        "region": ["north", "north", "south", "south", "south", "east", None],
        "product": ["a", "b", "a", "a", "b", "a", "b"],
        "amount": [10.0, 20.0, 30.0, None, 50.0, 60.0, 70.0],
    })


class TestValueCounts:
    def test_counts(self, sales_frame):
        counts = value_counts(sales_frame, "region")
        assert counts[0] == ("south", 3)

    def test_top_limits_output(self, sales_frame):
        assert len(value_counts(sales_frame, "region", top=2)) == 2


class TestCrosstab:
    def test_counts_match_manual(self, sales_frame):
        rows, cols, counts = crosstab(sales_frame, "region", "product")
        table = {(row, col): counts[i, j]
                 for i, row in enumerate(rows) for j, col in enumerate(cols)}
        assert table[("south", "a")] == 2
        assert table[("north", "b")] == 1

    def test_missing_rows_are_excluded(self, sales_frame):
        _, _, counts = crosstab(sales_frame, "region", "product")
        assert counts.sum() == 6  # one region value is missing

    def test_category_limit_creates_other_bucket(self):
        frame = DataFrame({
            "many": [f"cat{i}" for i in range(30)],
            "few": ["x"] * 30,
        })
        rows, _, counts = crosstab(frame, "many", "few", max_row_categories=5)
        assert "(other)" in rows
        assert counts.sum() == 30


class TestGroupby:
    def test_mean_aggregation(self, sales_frame):
        result = dict(groupby_aggregate(sales_frame, "region", "amount", "mean"))
        assert result["north"] == pytest.approx(15.0)
        assert result["south"] == pytest.approx(40.0)

    def test_count_and_sum(self, sales_frame):
        counts = dict(groupby_aggregate(sales_frame, "region", "amount", "count"))
        assert counts["south"] == 2.0  # the missing amount is dropped
        sums = dict(groupby_aggregate(sales_frame, "region", "amount", "sum"))
        assert sums["east"] == 60.0

    def test_unknown_aggregation_raises(self, sales_frame):
        with pytest.raises(DTypeError):
            groupby_aggregate(sales_frame, "region", "amount", "exotic")

    def test_non_numeric_value_column_raises(self, sales_frame):
        with pytest.raises(DTypeError):
            groupby_aggregate(sales_frame, "region", "product")

    def test_max_groups_limits_output(self, sales_frame):
        result = groupby_aggregate(sales_frame, "region", "amount", max_groups=1)
        assert len(result) == 1
        # north and south both keep two non-missing amounts; ties break by name.
        assert result[0][0] == "north"

    def test_grouped_values_returns_arrays(self, sales_frame):
        groups = dict(grouped_values(sales_frame, "region", "amount"))
        assert isinstance(groups["south"], np.ndarray)
        assert groups["south"].shape == (2,)
