"""Dictionary-encoded string columns: representation and kernel contracts.

STRING columns are carried as int32 codes plus a sorted unique-values
dictionary (``-1`` = missing).  The contracts pinned here:

* encode → decode round-trips exactly, including missing slots, empty
  strings and non-ASCII values — and survives the binary sidecar;
* the dictionary is *canonical* (sorted uniques of the present values), so
  concatenating independently encoded parts yields bit-identical codes and
  dictionary to encoding the whole column at once — the invariant streaming
  scans rely on when combining per-chunk dictionaries;
* vectorized kernels (value counts, unique, min/max, predicate masks,
  crosstab/groupby) agree with the residual object-array path;
* pickled payloads ship codes + dictionary, never the decoded object
  array, and ``memory_bytes`` is O(dictionary) and memoized;
* zone maps record exact bounded distinct sets, so a string-equality
  literal absent from a chunk's dictionary prunes the chunk.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame.column import Column
from repro.frame.dtypes import (
    DType,
    decode_string_codes,
    encode_string_codes,
    unify_dictionaries,
)
from repro.frame.frame import DataFrame, concat_rows
from repro.frame.predicate import Conjunct
from repro.frame.sidecar import SidecarRoute, load_chunk, store_chunk
from repro.frame.zonemap import chunk_column_stats, zone_map_from_stats

ROUTE = tuple(SidecarRoute())
STAMP = (1234, 5678)

#: Strings that exercise empty values, whitespace, unicode and sort order.
string_values = st.sampled_from(
    ["", "a", "b", "apple", "Apple", "zebra", "x y", "日本語", "0", "-1"])
optional_strings = st.one_of(st.none(), string_values)
string_lists = st.lists(optional_strings, min_size=0, max_size=60)


def _column(values):
    return Column("s", list(values), DType.STRING)


def _object_column(values):
    """The residual (non-encoded) object-array carrier of the same values.

    Built by adopting the encoded column's decoded buffers, so both carriers
    hold the exact same post-coercion content (the list-input coercion treats
    ``""`` as missing; constructing an object array by hand would not).
    """
    encoded = _column(values)
    return Column("s", encoded.data.copy(), DType.STRING,
                  encoded.mask.copy())


def _codes_column(values):
    """An encoded column with no materialized object array (``_data=None``)."""
    encoded = _column(values)
    return Column.from_codes("s", encoded.codes.copy(), encoded.dictionary,
                             encoded.mask.copy())


# --------------------------------------------------------------------------- #
# Representation invariants.
# --------------------------------------------------------------------------- #
class TestRepresentation:
    def test_string_columns_encode_by_default(self):
        column = _column(["b", "a", None, "b"])
        assert column.is_dictionary
        assert column.codes.dtype == np.int32
        assert list(column.dictionary) == ["a", "b"]
        assert list(column.codes) == [1, 0, -1, 1]

    def test_adopted_object_arrays_stay_residual(self):
        column = _object_column(["b", "a", None])
        assert not column.is_dictionary
        encoded = column.dictionary_encode()
        assert encoded.is_dictionary
        assert encoded.to_list() == column.to_list()

    def test_mask_iff_negative_codes(self):
        column = _column(["x", None, "y", None])
        np.testing.assert_array_equal(column.mask, column.codes < 0)

    @given(values=string_lists)
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, values):
        data = np.array(["" if v is None else v for v in values], dtype=object)
        mask = np.array([v is None for v in values], dtype=bool)
        codes, dictionary = encode_string_codes(data, mask)
        assert codes.dtype == np.int32
        # Canonical form: sorted uniques of the present values only.
        assert list(dictionary) == sorted({v for v in values if v is not None})
        np.testing.assert_array_equal(codes < 0, mask)
        decoded = decode_string_codes(codes, dictionary)
        np.testing.assert_array_equal(decoded, data)

    @given(values=string_lists, split=st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_merge_of_split_equals_whole_column_encoding(self, values, split):
        split = min(split, len(values))
        whole = _column(values) if values else None
        parts = [(part.codes, part.dictionary)
                 for part in (_column(values[:split]), _column(values[split:]))]
        codes, dictionary = unify_dictionaries(parts)
        if whole is None:
            assert codes.size == 0
            return
        np.testing.assert_array_equal(codes, whole.codes)
        np.testing.assert_array_equal(dictionary, whole.dictionary)

    @given(values=string_lists)
    @settings(max_examples=40, deadline=None)
    def test_concat_rows_matches_whole_encoding(self, values):
        if len(values) < 2:
            return
        split = max(1, len(values) // 2)
        combined = concat_rows([DataFrame([_column(values[:split])]),
                                DataFrame([_column(values[split:])])])
        whole = _column(values)
        assert combined.column("s").is_dictionary
        np.testing.assert_array_equal(combined.column("s").codes, whole.codes)
        np.testing.assert_array_equal(combined.column("s").dictionary,
                                      whole.dictionary)

    def test_slices_and_takes_preserve_encoding(self):
        column = _column(["a", "b", None, "c", "a"])
        for view in (column[1:4], column.take(np.array([0, 3, 4])),
                     column.filter(np.array([1, 0, 1, 1, 0], dtype=bool)),
                     column.dropna(), column.copy()):
            assert view.is_dictionary
        np.testing.assert_array_equal(column[1:4].codes, column.codes[1:4])
        assert column[1:4].dictionary is column.dictionary


# --------------------------------------------------------------------------- #
# Kernel equivalence against the residual object path.
# --------------------------------------------------------------------------- #
class TestKernelEquivalence:
    @given(values=string_lists)
    @settings(max_examples=60, deadline=None)
    def test_reductions_match_object_path(self, values):
        encoded = _column(values)
        residual = _object_column(values)
        assert encoded.value_counts() == residual.value_counts()
        assert encoded.nunique() == residual.nunique()
        assert encoded.unique() == residual.unique()
        assert encoded.min() == residual.min()
        assert encoded.max() == residual.max()
        assert encoded.to_list() == residual.to_list()

    @given(values=string_lists, literal=string_values,
           op=st.sampled_from(["==", "!="]))
    @settings(max_examples=60, deadline=None)
    def test_predicate_mask_matches_object_path(self, values, literal, op):
        if not values:
            return
        frame_encoded = DataFrame([_column(values)])
        frame_residual = DataFrame([_object_column(values)])
        assert frame_encoded.column("s").is_dictionary
        conjunct = Conjunct("s", op, literal)
        np.testing.assert_array_equal(conjunct.mask(frame_encoded),
                                      conjunct.mask(frame_residual))

    def test_equality_on_absent_literal(self):
        frame = DataFrame({"s": ["a", None, "b"]})
        assert list(Conjunct("s", "==", "zzz").mask(frame)) == \
            [False, False, False]
        # != with an absent literal matches every present row, never missing.
        assert list(Conjunct("s", "!=", "zzz").mask(frame)) == \
            [True, False, True]


# --------------------------------------------------------------------------- #
# Transport: pickle payloads and the binary sidecar.
# --------------------------------------------------------------------------- #
class TestTransport:
    def test_pickle_round_trip_preserves_encoding(self):
        column = _column(["a", None, "b", "a"])
        restored = pickle.loads(pickle.dumps(column))
        assert restored.is_dictionary
        np.testing.assert_array_equal(restored.codes, column.codes)
        np.testing.assert_array_equal(restored.dictionary, column.dictionary)
        assert restored.to_list() == column.to_list()

    def test_pickle_ships_codes_not_decoded_strings(self):
        values = [f"category-{i % 8:02d}" for i in range(5_000)]
        column = _codes_column(values)
        encoded_bytes = len(pickle.dumps(column))
        residual_bytes = len(pickle.dumps(_object_column(values)))
        assert encoded_bytes < residual_bytes / 2
        # Pickling must not materialize the decoded object array.
        assert column._data is None
        pickle.dumps(column)
        assert column._data is None

    @given(values=string_lists)
    @settings(max_examples=25, deadline=None)
    def test_sidecar_round_trips_encoding(self, values, tmp_path_factory):
        if not values:
            return
        directory = tmp_path_factory.mktemp("sidecar")
        path = str(directory / "data.csv")
        frame = DataFrame([_column(values)])
        assert store_chunk(path, 0, 100, STAMP, frame, ROUTE)
        back = load_chunk(path, 0, 100, STAMP, ("s",), {"s": DType.STRING},
                          len(frame), ROUTE)
        assert back is not None
        column = back.column("s")
        assert column.is_dictionary
        np.testing.assert_array_equal(column.codes, frame.column("s").codes)
        np.testing.assert_array_equal(column.dictionary,
                                      frame.column("s").dictionary)
        assert column.to_list() == frame.column("s").to_list()


# --------------------------------------------------------------------------- #
# memory_bytes: O(dictionary) for encoded columns, memoized everywhere.
# --------------------------------------------------------------------------- #
class TestMemoryBytes:
    def test_encoded_footprint_counts_codes_plus_dictionary(self):
        values = ["left", "right"] * 10_000
        encoded = _codes_column(values)
        residual = _object_column(values)
        assert encoded.memory_bytes() < residual.memory_bytes() / 3
        # Computing the footprint must not decode the column.
        assert encoded._data is None

    def test_memoized(self):
        column = _column(["a", "b", "a"])
        first = column.memory_bytes()
        assert column._memory_bytes == first
        assert column.memory_bytes() == first
        residual = _object_column(["a", "b", "a"])
        first = residual.memory_bytes()
        assert residual._memory_bytes == first
        assert residual.memory_bytes() == first


# --------------------------------------------------------------------------- #
# Zone maps: exact distinct sets gate string-equality chunk pruning.
# --------------------------------------------------------------------------- #
class TestZoneMapDistinctSets:
    def test_stats_carry_bounded_distinct_values(self):
        frame = DataFrame({"s": ["b", "a", None, "b"]})
        stats = chunk_column_stats(frame)
        minimum, maximum, nulls, distinct, values = stats["s"]
        assert (minimum, maximum, nulls, distinct) == ("a", "b", 1, 2)
        assert values == ["a", "b"]

    def test_high_cardinality_drops_the_distinct_set(self):
        frame = DataFrame({"s": [f"v{i:04d}" for i in range(400)]})
        values = chunk_column_stats(frame)["s"][4]
        assert values is None

    def test_absent_literal_prunes_chunk(self):
        chunk_a = DataFrame({"s": ["a", "b"]})
        chunk_b = DataFrame({"s": ["c", "d"]})
        zone_map = zone_map_from_stats(
            [chunk_column_stats(chunk_a), chunk_column_stats(chunk_b)],
            STAMP, 2)
        spec = (("s", "==", "c"),)
        assert zone_map.keep_flags(spec) == [False, True]
        # Min/max alone could not prune "b" < "bb" < "c"; the exact
        # distinct set can.
        assert zone_map.keep_flags((("s", "==", "bb"),)) == [False, False]

    def test_range_operators_still_use_min_max(self):
        chunk = DataFrame({"s": ["a", "b"]})
        zone_map = zone_map_from_stats([chunk_column_stats(chunk)], STAMP, 1)
        assert zone_map.keep_flags((("s", ">", "b"),)) == [False]
        assert zone_map.keep_flags((("s", ">=", "b"),)) == [True]
