"""Tests for the DataFrame container."""

import numpy as np
import pytest

from repro.errors import ColumnNotFoundError, FrameError, LengthMismatchError
from repro.frame import Column, DataFrame, DType, concat_rows


class TestConstruction:
    def test_from_dict(self, mixed_frame):
        assert mixed_frame.shape == (5, 5)
        assert mixed_frame.columns == ["ints", "floats", "strings", "bools", "dates"]

    def test_from_columns(self):
        frame = DataFrame([Column("a", [1, 2]), Column("b", ["x", "y"])])
        assert frame.columns == ["a", "b"]

    def test_empty_frame(self):
        frame = DataFrame()
        assert frame.shape == (0, 0)
        assert len(frame) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(LengthMismatchError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_duplicate_column_raises(self):
        with pytest.raises(FrameError):
            DataFrame([Column("a", [1]), Column("a", [2])])

    def test_dtypes_property(self, mixed_frame):
        dtypes = mixed_frame.dtypes
        assert dtypes["ints"] is DType.INT
        assert dtypes["strings"] is DType.STRING
        assert dtypes["dates"] is DType.DATETIME

    def test_frames_are_unhashable(self, mixed_frame):
        with pytest.raises(TypeError):
            hash(mixed_frame)


class TestSelection:
    def test_getitem_column(self, mixed_frame):
        assert isinstance(mixed_frame["ints"], Column)

    def test_getitem_list(self, mixed_frame):
        subset = mixed_frame[["ints", "floats"]]
        assert subset.columns == ["ints", "floats"]

    def test_getitem_missing_column_suggests(self, mixed_frame):
        with pytest.raises(ColumnNotFoundError) as excinfo:
            mixed_frame.column("intz")
        assert "ints" in str(excinfo.value)

    def test_select_and_drop(self, mixed_frame):
        assert mixed_frame.select(["bools"]).n_columns == 1
        assert mixed_frame.drop("bools").n_columns == 4
        with pytest.raises(ColumnNotFoundError):
            mixed_frame.drop("nope")

    def test_with_column_appends_and_replaces(self, mixed_frame):
        added = mixed_frame.with_column(Column("new", [1, 2, 3, 4, 5]))
        assert added.n_columns == 6
        replaced = mixed_frame.with_column(Column("ints", [9, 9, 9, 9, 9]))
        assert replaced.column("ints").to_list() == [9, 9, 9, 9, 9]
        assert replaced.n_columns == 5

    def test_rename(self, mixed_frame):
        renamed = mixed_frame.rename({"ints": "integers"})
        assert "integers" in renamed.columns
        assert "ints" not in renamed.columns

    def test_contains(self, mixed_frame):
        assert "ints" in mixed_frame
        assert "nope" not in mixed_frame


class TestRowOperations:
    def test_slice_and_head_tail(self, house_frame):
        assert len(house_frame.head(10)) == 10
        assert len(house_frame.tail(7)) == 7
        assert len(house_frame.slice(5, 15)) == 10

    def test_getitem_slice(self, house_frame):
        assert len(house_frame[10:20]) == 10

    def test_filter_with_boolean_mask(self, house_frame):
        mask = house_frame.column("size").to_numpy() > 2000
        filtered = house_frame[np.asarray(mask, dtype=bool)]
        assert len(filtered) == int(mask.sum())

    def test_filter_length_mismatch(self, house_frame):
        with pytest.raises(FrameError):
            house_frame.filter(np.array([True, False]))

    def test_take(self, mixed_frame):
        taken = mixed_frame.take([0, 4])
        assert len(taken) == 2
        assert taken.column("ints").to_list() == [1, None]

    def test_sample_is_deterministic_with_seed(self, house_frame):
        first = house_frame.sample(50, seed=3)
        second = house_frame.sample(50, seed=3)
        assert first == second
        assert len(first) == 50

    def test_sample_larger_than_frame_returns_copy(self, mixed_frame):
        assert len(mixed_frame.sample(100)) == len(mixed_frame)

    def test_dropna_all_columns(self, mixed_frame):
        clean = mixed_frame.dropna()
        assert len(clean) == 1  # only the first row has no missing value
        for name in clean.columns:
            assert clean.column(name).missing_count() == 0

    def test_dropna_subset(self, mixed_frame):
        clean = mixed_frame.dropna(subset=["ints"])
        assert len(clean) == 4

    def test_copy_is_independent(self, mixed_frame):
        copy = mixed_frame.copy()
        assert copy == mixed_frame
        copy.column("ints").data[0] = 99
        assert copy != mixed_frame


class TestSummaries:
    def test_missing_counts(self, mixed_frame):
        counts = mixed_frame.missing_counts()
        assert counts["ints"] == 1
        assert sum(counts.values()) == 5

    def test_missing_mask_shape(self, mixed_frame):
        mask = mixed_frame.missing_mask()
        assert mask.shape == (5, 5)
        assert mask.sum() == 5

    def test_duplicate_row_count(self):
        frame = DataFrame({"a": [1, 1, 2, 1], "b": ["x", "x", "y", "x"]})
        assert frame.duplicate_row_count() == 2

    def test_duplicate_rows_with_missing(self):
        frame = DataFrame({"a": [None, None, 1]})
        assert frame.duplicate_row_count() == 1

    def test_describe_covers_all_columns(self, house_frame):
        description = house_frame.describe()
        assert set(description) == set(house_frame.columns)

    def test_numeric_and_string_column_lists(self, mixed_frame):
        assert "floats" in mixed_frame.numeric_columns()
        assert "strings" in mixed_frame.string_columns()

    def test_memory_bytes_positive(self, house_frame):
        assert house_frame.memory_bytes() > 0

    def test_to_rows_round_trip(self, mixed_frame):
        rows = mixed_frame.to_rows()
        assert len(rows) == 5
        assert rows[0]["ints"] == 1
        assert rows[4]["ints"] is None

    def test_row(self, mixed_frame):
        row = mixed_frame.row(1)
        assert row["strings"] == "b"


class TestConcat:
    def test_concat_rows(self, house_frame):
        first, second = house_frame.slice(0, 100), house_frame.slice(100, 400)
        combined = concat_rows([first, second])
        assert len(combined) == 400
        assert combined == house_frame

    def test_concat_promotes_numeric_dtypes(self):
        first = DataFrame({"a": [1, 2]})
        second = DataFrame({"a": [1.5]})
        combined = concat_rows([first, second])
        assert combined.column("a").dtype is DType.FLOAT
        assert len(combined) == 3

    def test_concat_mismatched_columns_raises(self):
        with pytest.raises(FrameError):
            concat_rows([DataFrame({"a": [1]}), DataFrame({"b": [1]})])

    def test_concat_empty_list(self):
        assert len(concat_rows([])) == 0
