"""Property-based tests of the frame substrate (hypothesis)."""

import io
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Column, DataFrame, concat_rows, read_csv, write_csv

# Finite floats that survive CSV round trips without precision surprises.
finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)
optional_floats = st.one_of(st.none(), finite_floats)
category_values = st.one_of(st.none(), st.sampled_from(["red", "green", "blue", "x y"]))


@st.composite
def small_frames(draw):
    n_rows = draw(st.integers(min_value=1, max_value=40))
    numbers = draw(st.lists(optional_floats, min_size=n_rows, max_size=n_rows))
    categories = draw(st.lists(category_values, min_size=n_rows, max_size=n_rows))
    return DataFrame({"num": numbers, "cat": categories})


@given(values=st.lists(optional_floats, min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_column_count_plus_missing_equals_length(values):
    column = Column("x", values)
    assert column.count() + column.missing_count() == len(column)
    assert 0.0 <= column.missing_rate() <= 1.0


@given(values=st.lists(finite_floats, min_size=2, max_size=200))
@settings(max_examples=60, deadline=None)
def test_column_statistics_match_numpy(values):
    column = Column("x", values)
    array = np.asarray(values, dtype=float)
    assert column.mean() == np.float64(array.mean()) or \
        math.isclose(column.mean(), array.mean(), rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(column.sum(), array.sum(), rel_tol=1e-9, abs_tol=1e-6)
    assert column.min() == array.min()
    assert column.max() == array.max()


@given(values=st.lists(optional_floats, min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_dropna_fillna_invariants(values):
    column = Column("x", values)
    assert column.dropna().missing_count() == 0
    assert column.fillna(0.0).missing_count() == 0
    assert len(column.dropna()) == column.count()


@given(frame=small_frames())
@settings(max_examples=40, deadline=None)
def test_csv_round_trip_preserves_shape_and_missingness(frame):
    buffer = io.StringIO()
    write_csv(frame, buffer)
    buffer.seek(0)
    loaded = read_csv(buffer)
    assert loaded.shape == frame.shape
    assert loaded.missing_counts() == frame.missing_counts()


@given(frame=small_frames(), split=st.integers(min_value=0, max_value=40))
@settings(max_examples=40, deadline=None)
def test_slice_concat_round_trip(frame, split):
    split = min(split, len(frame))
    combined = concat_rows([frame.slice(0, split), frame.slice(split, len(frame))])
    assert combined.shape == frame.shape
    assert combined.missing_counts() == frame.missing_counts()


@given(frame=small_frames())
@settings(max_examples=40, deadline=None)
def test_filter_never_increases_rows(frame):
    mask = frame.column("num").notna()
    filtered = frame.filter(mask)
    assert len(filtered) <= len(frame)
    assert filtered.column("num").missing_count() == 0


@given(frame=small_frames())
@settings(max_examples=40, deadline=None)
def test_duplicate_count_bounds(frame):
    duplicates = frame.duplicate_row_count()
    assert 0 <= duplicates <= max(len(frame) - 1, 0)
