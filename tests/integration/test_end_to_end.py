"""End-to-end integration tests exercising the full pipeline on realistic data."""

import numpy as np
import pytest

import repro
from repro.baselines import eager_profile_report
from repro.datasets import bitcoin_dataset, load_kaggle_like
from repro.eda import plot, plot_correlation, plot_missing


@pytest.fixture(scope="module")
def kaggle_frame():
    """A Table 2-shaped dataset large enough to exercise the graph stage."""
    return load_kaggle_like("titanic")


class TestCsvToReportPipeline:
    def test_csv_round_trip_then_report(self, tmp_path, kaggle_frame):
        path = tmp_path / "dataset.csv"
        repro.write_csv(kaggle_frame, str(path))
        loaded = repro.read_csv(str(path))
        report = repro.create_report(loaded, title="Integration Report")
        html_path = report.save(str(tmp_path / "report.html"))
        content = open(html_path).read()
        assert "Integration Report" in content
        assert content.count("<svg") > 5

    def test_all_nine_call_forms_run_on_one_dataset(self, kaggle_frame):
        numeric = [name for name in kaggle_frame.columns if name.startswith("num_")]
        categorical = [name for name in kaggle_frame.columns
                       if name.startswith("cat_")]
        containers = [
            plot(kaggle_frame),
            plot(kaggle_frame, numeric[0]),
            plot(kaggle_frame, numeric[0], numeric[1]),
            plot(kaggle_frame, categorical[0], numeric[0]),
            plot(kaggle_frame, categorical[0], categorical[1]),
            plot_correlation(kaggle_frame),
            plot_correlation(kaggle_frame, numeric[0]),
            plot_correlation(kaggle_frame, numeric[0], numeric[1]),
            plot_missing(kaggle_frame),
            plot_missing(kaggle_frame, numeric[0]),
            plot_missing(kaggle_frame, numeric[0], numeric[1]),
        ]
        for container in containers:
            assert container.tab_names
            assert "<div" in container.to_html()


class TestLargeDataGraphMode:
    def test_bitcoin_overview_matches_between_engines(self):
        frame = bitcoin_dataset(n_rows=60_000, seed=3)
        lazy = plot(frame, "close", mode="intermediates",
                    config={"compute.use_graph": "always",
                            "compute.partition_rows": 10_000})
        local = plot(frame, "close", mode="intermediates",
                     config={"compute.use_graph": "never"})
        assert lazy.stats["mean"] == pytest.approx(local.stats["mean"])
        assert lazy.stats["missing"] == local.stats["missing"]
        assert lazy["histogram"]["counts"] == local["histogram"]["counts"]

    def test_report_on_partitioned_data(self):
        frame = bitcoin_dataset(n_rows=60_000, seed=4)
        report = repro.create_report(
            frame, config={"compute.use_graph": "always",
                           "compute.partition_rows": 20_000})
        overview = report.sections["Overview"]
        assert overview.stats["n_rows"] == 60_000


class TestToolComparison:
    def test_both_tools_agree_on_basic_facts(self, kaggle_frame):
        dataprep = repro.create_report(kaggle_frame)
        baseline = eager_profile_report(kaggle_frame)
        dataprep_overview = dataprep.sections["Overview"].stats
        assert dataprep_overview["n_rows"] == baseline.overview["n_rows"]
        assert dataprep_overview["missing_cells"] == baseline.overview["missing_cells"]
        ours = np.asarray(
            dataprep.sections["Correlations"]["correlation_pearson"]["matrix"])
        theirs = np.asarray(baseline.correlations["pearson"])
        shared = min(ours.shape[0], theirs.shape[0])
        assert np.allclose(ours[:shared, :shared], theirs[:shared, :shared],
                           equal_nan=True, atol=1e-6)
