"""Tests for histogram, KDE, quantile and box-plot kernels."""

import numpy as np
import pytest

from repro.errors import EDAError
from repro.stats.histogram import Histogram, compute_histogram, freedman_diaconis_bins
from repro.stats.kde import gaussian_kde_curve, silverman_bandwidth
from repro.stats.qq import box_plot_stats, normal_qq_points, quantiles_from_histogram


@pytest.fixture
def normal_sample():
    return np.random.default_rng(1).normal(50.0, 5.0, 20_000)


class TestHistogram:
    def test_counts_match_numpy(self, normal_sample):
        histogram = compute_histogram(normal_sample, 32)
        counts, _ = np.histogram(normal_sample, bins=32)
        assert histogram.total == normal_sample.size
        assert np.array_equal(histogram.counts, counts)

    def test_merge_equals_whole(self, normal_sample):
        value_range = (normal_sample.min(), normal_sample.max())
        whole = compute_histogram(normal_sample, 64, value_range)
        parts = [compute_histogram(chunk, 64, value_range)
                 for chunk in np.array_split(normal_sample, 9)]
        merged = Histogram.merge_all(parts)
        assert np.array_equal(merged.counts, whole.counts)

    def test_merge_mismatched_edges_raises(self, normal_sample):
        first = compute_histogram(normal_sample, 10, (0, 100))
        second = compute_histogram(normal_sample, 10, (0, 50))
        with pytest.raises(EDAError):
            first.merge(second)

    def test_density_integrates_to_one(self, normal_sample):
        histogram = compute_histogram(normal_sample, 40)
        assert float(np.sum(histogram.density() * histogram.widths)) == \
            pytest.approx(1.0)

    def test_non_finite_values_are_ignored(self):
        values = np.array([1.0, 2.0, np.inf, np.nan, 3.0])
        histogram = compute_histogram(values, 4)
        assert histogram.total == 3

    def test_empty_and_degenerate_inputs(self):
        empty = compute_histogram(np.array([]), 8)
        assert empty.total == 0
        constant = compute_histogram(np.full(10, 3.0), 8)
        assert constant.total == 10
        with pytest.raises(EDAError):
            compute_histogram(np.array([1.0]), 0)

    def test_freedman_diaconis(self):
        bins = freedman_diaconis_bins(count=10_000, q25=40.0, q75=60.0,
                                      minimum=0.0, maximum=100.0)
        assert 1 <= bins <= 200
        assert freedman_diaconis_bins(1, 0, 0, 0, 0, fallback=13) == 13


class TestQuantiles:
    def test_histogram_quantiles_close_to_exact(self, normal_sample):
        histogram = compute_histogram(normal_sample, 512)
        probabilities = [0.05, 0.25, 0.5, 0.75, 0.95]
        approx = quantiles_from_histogram(histogram, probabilities)
        exact = np.quantile(normal_sample, probabilities)
        tolerance = (normal_sample.max() - normal_sample.min()) / 512 * 2
        assert np.all(np.abs(approx - exact) < tolerance)

    def test_quantiles_monotone(self, normal_sample):
        histogram = compute_histogram(normal_sample, 128)
        values = quantiles_from_histogram(histogram, np.linspace(0, 1, 21))
        assert np.all(np.diff(values) >= 0)

    def test_invalid_probability_raises(self, normal_sample):
        histogram = compute_histogram(normal_sample, 16)
        with pytest.raises(EDAError):
            quantiles_from_histogram(histogram, [1.5])

    def test_empty_histogram_gives_nan(self):
        histogram = compute_histogram(np.array([]), 8)
        assert np.isnan(quantiles_from_histogram(histogram, [0.5])).all()


class TestKde:
    def test_density_integrates_to_one(self, normal_sample):
        histogram = compute_histogram(normal_sample, 256)
        grid, density = gaussian_kde_curve(histogram, normal_sample.std())
        assert float(np.trapezoid(density, grid)) == pytest.approx(1.0, abs=0.05)

    def test_peak_near_the_mean(self, normal_sample):
        histogram = compute_histogram(normal_sample, 256)
        grid, density = gaussian_kde_curve(histogram, normal_sample.std())
        assert abs(grid[np.argmax(density)] - 50.0) < 2.0

    def test_silverman_bandwidth_positive(self):
        assert silverman_bandwidth(1000, 5.0) > 0
        assert silverman_bandwidth(0, 5.0) == 1.0
        assert silverman_bandwidth(10, float("nan")) == 1.0

    def test_empty_histogram_gives_zero_density(self):
        histogram = compute_histogram(np.array([]), 8)
        _, density = gaussian_kde_curve(histogram, 1.0)
        assert np.all(density == 0)

    def test_invalid_grid_raises(self, normal_sample):
        histogram = compute_histogram(normal_sample, 16)
        with pytest.raises(EDAError):
            gaussian_kde_curve(histogram, 1.0, grid_points=1)


class TestQQAndBox:
    def test_qq_points_lie_near_identity_for_normal_data(self, normal_sample):
        histogram = compute_histogram(normal_sample, 512)
        probabilities = np.linspace(0.05, 0.95, 50)
        sample_quantiles = quantiles_from_histogram(histogram, probabilities)
        theoretical, sample = normal_qq_points(sample_quantiles,
                                               normal_sample.mean(),
                                               normal_sample.std(), probabilities)
        assert np.corrcoef(theoretical, sample)[0, 1] > 0.999

    def test_qq_handles_degenerate_std(self):
        theoretical, _ = normal_qq_points(np.array([1.0, 2.0]), 0.0, 0.0, [0.25, 0.75])
        assert np.all(np.isfinite(theoretical))

    def test_box_plot_statistics(self, normal_sample):
        histogram = compute_histogram(normal_sample, 512)
        quantiles = dict(zip([0.25, 0.5, 0.75],
                             quantiles_from_histogram(histogram, [0.25, 0.5, 0.75])))
        box = box_plot_stats(quantiles, normal_sample.min(), normal_sample.max(),
                             histogram)
        assert box.q1 < box.median < box.q3
        assert box.lower_whisker <= box.q1
        assert box.upper_whisker >= box.q3
        assert box.iqr == pytest.approx(box.q3 - box.q1)
        assert box.outlier_count >= 0

    def test_box_plot_requires_quartiles(self, normal_sample):
        histogram = compute_histogram(normal_sample, 16)
        with pytest.raises(EDAError):
            box_plot_stats({0.5: 1.0}, 0.0, 1.0, histogram)

    def test_box_plot_flags_outliers(self):
        values = np.concatenate([np.random.default_rng(0).normal(0, 1, 1000),
                                 np.array([30.0, 40.0, -25.0])])
        histogram = compute_histogram(values, 512)
        quantiles = dict(zip([0.25, 0.5, 0.75],
                             np.quantile(values, [0.25, 0.5, 0.75])))
        box = box_plot_stats(quantiles, values.min(), values.max(), histogram)
        assert box.outlier_count >= 3
        assert len(box.outlier_samples) >= 1
