"""Tests for the mergeable descriptive summaries."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.frame import Column
from repro.stats.descriptive import CategoricalSummary, NumericSummary


@pytest.fixture
def sample_values():
    rng = np.random.default_rng(3)
    return rng.lognormal(1.0, 0.7, 4000)


class TestNumericSummary:
    def test_matches_numpy_and_scipy(self, sample_values):
        summary = NumericSummary.from_values(sample_values)
        assert summary.mean == pytest.approx(sample_values.mean())
        assert summary.std == pytest.approx(sample_values.std(ddof=1), rel=1e-9)
        assert summary.skewness == pytest.approx(scipy_stats.skew(sample_values), rel=1e-6)
        assert summary.kurtosis == pytest.approx(
            scipy_stats.kurtosis(sample_values), rel=1e-6)
        assert summary.minimum == sample_values.min()
        assert summary.maximum == sample_values.max()

    def test_merge_equals_whole(self, sample_values):
        whole = NumericSummary.from_values(sample_values)
        parts = [NumericSummary.from_values(chunk)
                 for chunk in np.array_split(sample_values, 7)]
        merged = NumericSummary.merge_all(parts)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        assert merged.skewness == pytest.approx(whole.skewness, rel=1e-6)
        assert merged.kurtosis == pytest.approx(whole.kurtosis, rel=1e-6)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_missing_infinite_and_sign_counters(self):
        column = Column("x", [0.0, -3.0, float("inf"), None, 2.0])
        summary = NumericSummary.from_column(column)
        assert summary.missing == 1
        assert summary.infinite == 1
        assert summary.zeros == 1
        assert summary.negatives == 1
        assert summary.total == 5
        assert summary.missing_rate == pytest.approx(0.2)

    def test_empty_summary(self):
        summary = NumericSummary.from_values(np.array([]))
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.variance)
        assert math.isnan(summary.value_range)

    def test_constant_values_have_zero_spread(self):
        summary = NumericSummary.from_values(np.full(100, 7.0))
        assert summary.variance == pytest.approx(0.0)
        assert summary.skewness == 0.0
        assert summary.kurtosis == 0.0

    def test_as_dict_contains_all_statistics(self, sample_values):
        entry = NumericSummary.from_values(sample_values).as_dict()
        for key in ("mean", "std", "variance", "min", "max", "skewness",
                    "kurtosis", "missing", "zeros", "cv", "range"):
            assert key in entry


class TestCategoricalSummary:
    def test_counts_and_derived_statistics(self):
        summary = CategoricalSummary.from_values(
            ["a", "a", "b", "c", "a", "b"], missing=2)
        assert summary.count == 6
        assert summary.distinct == 3
        assert summary.missing_rate == pytest.approx(0.25)
        assert summary.mode() == "a"
        assert summary.top_values(2) == [("a", 3), ("b", 2)]
        assert summary.mean_length == pytest.approx(1.0)

    def test_merge_equals_whole(self):
        values = ["red"] * 10 + ["green"] * 5 + ["blue"] * 3
        whole = CategoricalSummary.from_values(values)
        merged = CategoricalSummary.merge_all([
            CategoricalSummary.from_values(values[:6]),
            CategoricalSummary.from_values(values[6:12]),
            CategoricalSummary.from_values(values[12:]),
        ])
        assert merged.counts == whole.counts
        assert merged.entropy == pytest.approx(whole.entropy)
        assert merged.min_length == whole.min_length
        assert merged.max_length == whole.max_length

    def test_entropy_bounds(self):
        uniform = CategoricalSummary.from_values(["a", "b", "c", "d"])
        constant = CategoricalSummary.from_values(["a", "a", "a"])
        assert uniform.entropy == pytest.approx(2.0)
        assert constant.entropy == 0.0

    def test_from_column_skips_missing(self):
        column = Column("c", ["x", None, "y", "x"])
        summary = CategoricalSummary.from_column(column)
        assert summary.count == 3
        assert summary.missing == 1

    def test_empty_summary(self):
        summary = CategoricalSummary.from_values([])
        assert summary.distinct == 0
        assert summary.mode() is None
        assert math.isnan(summary.mean_length)
