"""Property-based suite pinning the sketch merge semantics.

For every mergeable sketch: merging the sketches of an *arbitrary* split of
the data equals the sketch of the concatenation — exactly for counts, min,
max and set-like state; within a floating-point tolerance for the derived
moments; deterministically for the randomized sketches (reservoir, KMV).
Empty and all-missing partitions participate like any other partition.

These properties are what make the out-of-core streaming path trustworthy:
the tree reduction may group partitions in any order and shape, so every
grouping must resolve to the same statistics the in-memory path computes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.association import (
    missing_spectrum,
    nullity_correlation,
    nullity_dendrogram,
)
from repro.stats.descriptive import CategoricalSummary, NumericSummary
from repro.stats.sketches import (
    DistinctSketch,
    MomentsSketch,
    NullitySketch,
    ReservoirSketch,
    StreamingHistogram,
    merge_all,
)
from repro.frame.frame import DataFrame

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


def split_points(values, n_chunks):
    """Split a list into n_chunks contiguous (possibly empty) pieces."""
    return np.array_split(np.asarray(values, dtype=np.float64), n_chunks)


# --------------------------------------------------------------------------- #
# MomentsSketch
# --------------------------------------------------------------------------- #
@given(values=st.lists(finite_floats, min_size=0, max_size=400),
       n_chunks=st.integers(min_value=1, max_value=9))
@settings(max_examples=60, deadline=None)
def test_moments_merge_matches_whole(values, n_chunks):
    whole = MomentsSketch.from_values(np.asarray(values))
    merged = merge_all([MomentsSketch.from_values(chunk)
                        for chunk in split_points(values, n_chunks)])
    assert merged.count == whole.count
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum
    if whole.count:
        assert np.isclose(merged.mean, whole.mean, rtol=1e-9, atol=1e-9)
    if whole.count >= 2:
        assert np.isclose(merged.variance, whole.variance, rtol=1e-6, atol=1e-6)
    if whole.count >= 3 and whole.m2 / whole.count > 1e-12:
        assert np.isclose(merged.skewness, whole.skewness, rtol=1e-4, atol=1e-4)
    if whole.count >= 4 and whole.m2 / whole.count > 1e-12:
        assert np.isclose(merged.kurtosis, whole.kurtosis, rtol=1e-4, atol=1e-4)


@given(values=st.lists(finite_floats, min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_moments_scalar_update_matches_batch(values):
    streamed = MomentsSketch()
    for value in values:
        streamed.update(value)
    batch = MomentsSketch.from_values(np.asarray(values))
    assert streamed.count == batch.count
    assert np.isclose(streamed.mean, batch.mean, rtol=1e-9, atol=1e-9)
    assert np.isclose(streamed.m2, batch.m2, rtol=1e-6, atol=1e-6)


def test_moments_empty_and_nonfinite_partitions():
    empty = MomentsSketch.from_values(np.array([]))
    nan_only = MomentsSketch.from_values(np.array([np.nan, np.inf, -np.inf]))
    data = MomentsSketch.from_values(np.array([1.0, 2.0, 3.0]))
    merged = merge_all([empty, nan_only, data, empty])
    assert merged.count == 3
    assert merged.mean == pytest.approx(2.0)
    assert merged.minimum == 1.0 and merged.maximum == 3.0


# --------------------------------------------------------------------------- #
# NumericSummary (the descriptive adapter over MomentsSketch)
# --------------------------------------------------------------------------- #
@given(values=st.lists(finite_floats, min_size=0, max_size=300),
       missing=st.integers(min_value=0, max_value=50),
       n_chunks=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_numeric_summary_split_invariant_with_missing(values, missing, n_chunks):
    whole = NumericSummary.from_values(np.asarray(values), missing=missing)
    chunks = split_points(values, n_chunks)
    partials = [NumericSummary.from_values(chunk,
                                           missing=missing if index == 0 else 0)
                for index, chunk in enumerate(chunks)]
    merged = NumericSummary.merge_all(partials)
    assert merged.count == whole.count
    assert merged.missing == whole.missing
    assert merged.total == whole.total
    assert merged.zeros == whole.zeros
    assert merged.negatives == whole.negatives
    if whole.count:
        assert np.isclose(merged.mean, whole.mean, rtol=1e-9, atol=1e-9)
        assert np.isclose(merged.sum1, whole.sum1, rtol=1e-9, atol=1e-6)
    if whole.count >= 2:
        assert np.isclose(merged.variance, whole.variance, rtol=1e-6, atol=1e-6)


def test_numeric_summary_all_missing_partition():
    all_missing = NumericSummary.from_values(np.array([]), missing=7)
    data = NumericSummary.from_values(np.array([5.0, 10.0]), missing=1)
    merged = all_missing.merge(data)
    assert merged.missing == 8
    assert merged.total == 10
    assert merged.count == 2
    assert merged.mean == pytest.approx(7.5)


# --------------------------------------------------------------------------- #
# StreamingHistogram
# --------------------------------------------------------------------------- #
@given(values=st.lists(finite_floats, min_size=0, max_size=300),
       n_chunks=st.integers(min_value=1, max_value=8),
       bins=st.integers(min_value=1, max_value=40))
@settings(max_examples=50, deadline=None)
def test_streaming_histogram_merge_matches_whole(values, n_chunks, bins):
    low, high = -1e5, 1e5
    whole = StreamingHistogram.from_values(np.asarray(values), bins, low, high)
    merged = merge_all([StreamingHistogram.from_values(chunk, bins, low, high)
                        for chunk in split_points(values, n_chunks)])
    np.testing.assert_array_equal(merged.counts, whole.counts)
    assert merged.underflow == whole.underflow
    assert merged.overflow == whole.overflow
    in_range = [v for v in values if low <= v <= high]
    assert whole.total == len(in_range)
    assert whole.underflow == sum(1 for v in values if v < low)
    assert whole.overflow == sum(1 for v in values if v > high)


def test_streaming_histogram_incremental_update():
    sketch = StreamingHistogram.with_range(4, 0.0, 4.0)
    sketch.update(np.array([0.5, 1.5]))
    sketch.update(np.array([2.5, 3.5, -1.0, 9.0, np.nan]))
    assert sketch.counts.tolist() == [1, 1, 1, 1]
    assert sketch.underflow == 1 and sketch.overflow == 1


# --------------------------------------------------------------------------- #
# ReservoirSketch
# --------------------------------------------------------------------------- #
@given(values=st.lists(finite_floats, min_size=0, max_size=120),
       n_chunks=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_reservoir_exact_below_capacity(values, n_chunks):
    capacity = max(len(values), 1)
    chunks = split_points(values, n_chunks)
    merged = merge_all([
        ReservoirSketch.from_frame(DataFrame({"x": chunk}), capacity, seed=3)
        for chunk in chunks])
    assert merged.n_seen == len(values)
    assert merged.is_exact
    kept = merged.frame.column("x").to_numpy()
    np.testing.assert_allclose(kept, np.asarray(values, dtype=np.float64))


@given(values=st.lists(finite_floats, min_size=30, max_size=200),
       capacity=st.integers(min_value=5, max_value=25),
       n_chunks=st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_reservoir_bounded_and_drawn_from_input(values, capacity, n_chunks):
    chunks = split_points(values, n_chunks)
    merged = merge_all([
        ReservoirSketch.from_frame(DataFrame({"x": chunk}), capacity, seed=11)
        for chunk in chunks])
    assert merged.n_seen == len(values)
    assert len(merged.frame) == min(capacity, len(values))
    universe = set(np.asarray(values, dtype=np.float64).tolist())
    assert set(merged.frame.column("x").to_numpy().tolist()) <= universe
    # Deterministic: the same merge replays to the same sample.
    replay = merge_all([
        ReservoirSketch.from_frame(DataFrame({"x": chunk}), capacity, seed=11)
        for chunk in chunks])
    np.testing.assert_array_equal(replay.frame.column("x").to_numpy(),
                                  merged.frame.column("x").to_numpy())


# --------------------------------------------------------------------------- #
# DistinctSketch
# --------------------------------------------------------------------------- #
@given(values=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=0, max_size=400),
       n_chunks=st.integers(min_value=1, max_value=8),
       capacity=st.integers(min_value=4, max_value=64))
@settings(max_examples=50, deadline=None)
def test_distinct_merge_equals_whole_exactly(values, n_chunks, capacity):
    whole = DistinctSketch.from_values(values, capacity=capacity)
    merged = merge_all([DistinctSketch.from_values(list(chunk), capacity=capacity)
                        for chunk in np.array_split(np.asarray(values, dtype=object),
                                                    n_chunks)])
    assert merged.hashes == whole.hashes
    assert merged.estimate() == whole.estimate()


@given(distinct=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_distinct_exact_below_capacity_and_bounded_error_above(distinct):
    values = [f"value-{index}" for index in range(distinct)]
    sketch = DistinctSketch.from_values(values * 3, capacity=128)
    if distinct <= 128:
        assert sketch.estimate() == distinct
    else:
        assert len(sketch.hashes) == 128
        assert sketch.estimate() == pytest.approx(distinct, rel=0.5)


# --------------------------------------------------------------------------- #
# Bounded CategoricalSummary (space-bounded counts + distinct sketch)
# --------------------------------------------------------------------------- #
@given(values=st.lists(st.integers(min_value=0, max_value=40),
                       min_size=0, max_size=300),
       split=st.integers(min_value=0, max_value=300),
       capacity=st.integers(min_value=3, max_value=50))
@settings(max_examples=50, deadline=None)
def test_bounded_categorical_count_exact_under_pruning(values, split, capacity):
    values = [f"cat-{v}" for v in values]
    split = min(split, len(values))
    whole = CategoricalSummary.from_values(values, capacity=capacity)
    merged = CategoricalSummary.from_values(values[:split], capacity=capacity) \
        .merge(CategoricalSummary.from_values(values[split:], capacity=capacity))
    exact = CategoricalSummary.from_values(values)
    # Present-value totals and lengths stay exact no matter the pruning.
    for summary in (whole, merged):
        assert summary.count == exact.count
        assert summary.total == exact.total
        assert summary.total_length == exact.total_length
        assert len(summary.counts) <= capacity
    if len(set(values)) <= capacity:
        assert merged.counts == exact.counts
        assert merged.distinct == exact.distinct


def test_bounded_categorical_distinct_estimate_when_pruned():
    values = [f"unique-{index}" for index in range(5_000)]
    chunks = [values[:2_000], values[2_000:4_000], values[4_000:]]
    merged = CategoricalSummary.merge_all(
        [CategoricalSummary.from_values(chunk, capacity=100) for chunk in chunks])
    assert len(merged.counts) <= 100
    assert merged.count == 5_000
    assert merged.distinct == pytest.approx(5_000, rel=0.1)


# --------------------------------------------------------------------------- #
# NullitySketch
# --------------------------------------------------------------------------- #
mask_strategy = st.integers(min_value=1, max_value=120).flatmap(
    lambda rows: st.integers(min_value=1, max_value=6).flatmap(
        lambda cols: st.lists(
            st.lists(st.booleans(), min_size=cols, max_size=cols),
            min_size=rows, max_size=rows)))


@given(rows=mask_strategy, n_chunks=st.integers(min_value=1, max_value=6),
       n_bins=st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_nullity_sketch_split_invariant(rows, n_chunks, n_bins):
    mask = np.asarray(rows, dtype=np.bool_)
    columns = [f"c{index}" for index in range(mask.shape[1])]
    total = mask.shape[0]
    whole = NullitySketch.from_mask(mask, columns, 0, total, n_bins)

    partials = []
    start = 0
    for chunk in np.array_split(mask, n_chunks, axis=0):
        partials.append(NullitySketch.from_mask(chunk, columns, start, total,
                                                n_bins))
        start += chunk.shape[0]
    merged = merge_all(partials)

    np.testing.assert_array_equal(merged.counts, whole.counts)
    np.testing.assert_array_equal(merged.co_counts, whole.co_counts)
    np.testing.assert_array_equal(merged.bin_missing, whole.bin_missing)
    assert merged.n_rows_seen == whole.n_rows_seen == total


@given(rows=mask_strategy)
@settings(max_examples=50, deadline=None)
def test_nullity_sketch_matches_mask_based_statistics(rows):
    mask = np.asarray(rows, dtype=np.bool_)
    columns = [f"c{index}" for index in range(mask.shape[1])]
    sketch = NullitySketch.from_mask(mask, columns, 0, mask.shape[0], n_bins=8)

    # Spectrum densities match the mask-based computation bin for bin.
    spectrum = missing_spectrum(mask, columns, n_bins=8)
    np.testing.assert_allclose(sketch.spectrum_densities(), spectrum.densities,
                               atol=1e-12)
    np.testing.assert_array_equal(sketch.bin_edges, spectrum.bin_edges)

    # Closed-form nullity correlation matches the Pearson-on-mask route.
    kept_sketch, matrix_sketch = sketch.nullity_correlation()
    kept_mask, matrix_mask = nullity_correlation(mask, columns)
    assert kept_sketch == kept_mask
    np.testing.assert_allclose(matrix_sketch, matrix_mask, atol=1e-9)

    # Count-derived distances equal the Euclidean distances linkage uses.
    if len(columns) >= 2:
        labels_sketch, _ = nullity_dendrogram(mask, columns)
        from scipy.spatial.distance import pdist
        np.testing.assert_allclose(sketch.nullity_distances(),
                                   pdist(mask.T.astype(np.float64)), atol=1e-9)
        assert labels_sketch == list(columns)


# --------------------------------------------------------------------------- #
# DuplicateSketch
# --------------------------------------------------------------------------- #
small_values = st.integers(min_value=0, max_value=6)


def _duplicate_frame(codes, missing_flags):
    """A two-column frame from small integer codes (forces duplicates)."""
    return DataFrame({
        "number": [None if missing else float(code)
                   for code, missing in zip(codes, missing_flags)],
        "label": [f"v{code % 3}" for code in codes],
    })


@given(codes=st.lists(small_values, min_size=0, max_size=300),
       flags=st.lists(st.booleans(), min_size=300, max_size=300),
       n_chunks=st.integers(min_value=1, max_value=9))
@settings(max_examples=50, deadline=None)
def test_duplicate_sketch_merge_matches_whole(codes, flags, n_chunks):
    from repro.stats.sketches import DuplicateSketch

    frame = _duplicate_frame(codes, flags)
    whole = DuplicateSketch.from_frame(frame)
    splits = np.array_split(np.arange(len(frame)), n_chunks)
    merged = merge_all([
        DuplicateSketch.from_frame(frame.slice(int(part[0]), int(part[-1]) + 1)
                                   if part.size else frame.slice(0, 0))
        for part in splits])
    assert merged.n_rows == whole.n_rows == len(frame)
    assert merged.saturated == whole.saturated
    assert merged.duplicate_count() == whole.duplicate_count()


@given(codes=st.lists(small_values, min_size=1, max_size=300),
       flags=st.lists(st.booleans(), min_size=300, max_size=300))
@settings(max_examples=50, deadline=None)
def test_duplicate_sketch_matches_exact_scan(codes, flags):
    from repro.stats.sketches import DuplicateSketch

    frame = _duplicate_frame(codes, flags)
    sketch = DuplicateSketch.from_frame(frame)
    assert not sketch.saturated
    assert sketch.duplicate_count() == frame.duplicate_row_count()


@given(codes=st.lists(st.integers(min_value=0, max_value=10_000),
                      min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_duplicate_sketch_saturates_instead_of_lying(codes):
    from repro.stats.sketches import DuplicateSketch

    frame = DataFrame({"number": [float(code) for code in codes]})
    bounded = DuplicateSketch.from_frame(frame, capacity=4)
    distinct = len(set(codes))
    if distinct <= 4:
        assert bounded.duplicate_count() == frame.duplicate_row_count()
    else:
        assert bounded.saturated
        assert bounded.duplicate_count() is None
    # Merging a saturated sketch stays saturated (never resurrects a count).
    merged = bounded.merge(DuplicateSketch.from_frame(frame, capacity=4))
    assert merged.n_rows == 2 * len(frame)
    if distinct > 4:
        assert merged.duplicate_count() is None
