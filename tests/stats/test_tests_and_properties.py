"""Tests for the insight statistical tests plus property-based merge checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import CategoricalSummary, NumericSummary
from repro.stats.histogram import Histogram, compute_histogram
from repro.stats.tests import chi_square_uniformity, ks_similarity, normality_test


class TestNormality:
    def test_normal_data_passes(self):
        values = np.random.default_rng(0).normal(0, 1, 5000)
        assert normality_test(values).passed

    def test_exponential_data_fails(self):
        values = np.random.default_rng(0).exponential(1.0, 5000)
        assert not normality_test(values).passed

    def test_small_and_constant_samples(self):
        assert not normality_test(np.arange(5.0)).passed
        assert not normality_test(np.full(100, 3.0)).passed

    def test_sampling_keeps_result_stable(self):
        values = np.random.default_rng(1).normal(0, 1, 100_000)
        assert normality_test(values, max_samples=2000).passed


class TestUniformity:
    def test_uniform_counts_pass(self):
        assert chi_square_uniformity([100, 98, 103, 99]).passed

    def test_skewed_counts_fail(self):
        assert not chi_square_uniformity([500, 20, 10, 5]).passed

    def test_degenerate_inputs(self):
        assert not chi_square_uniformity([5]).passed
        assert not chi_square_uniformity([]).passed
        assert not chi_square_uniformity([0, 0, 0]).passed


class TestKsSimilarity:
    def test_same_distribution_passes(self):
        rng = np.random.default_rng(3)
        assert ks_similarity(rng.normal(0, 1, 4000), rng.normal(0, 1, 4000)).passed

    def test_shifted_distribution_fails(self):
        rng = np.random.default_rng(3)
        assert not ks_similarity(rng.normal(0, 1, 4000),
                                 rng.normal(1.0, 1, 4000)).passed

    def test_tiny_samples_pass_by_default(self):
        assert ks_similarity(np.array([1.0, 2.0]), np.array([5.0, 6.0])).passed


# ---------------------------------------------------------------------------- #
# Property-based merge invariants: splitting data into chunks and merging the
# partial summaries must match computing on the whole array, for any split.
# ---------------------------------------------------------------------------- #
finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


@given(values=st.lists(finite_floats, min_size=2, max_size=400),
       n_chunks=st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_numeric_summary_merge_is_split_invariant(values, n_chunks):
    array = np.asarray(values)
    whole = NumericSummary.from_values(array)
    merged = NumericSummary.merge_all(
        [NumericSummary.from_values(chunk) for chunk in np.array_split(array, n_chunks)])
    assert merged.count == whole.count
    assert np.isclose(merged.mean, whole.mean, rtol=1e-9, atol=1e-9)
    assert np.isclose(merged.sum1, whole.sum1, rtol=1e-9, atol=1e-6)
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum


@given(values=st.lists(st.sampled_from(["a", "b", "c", "dd"]),
                       min_size=1, max_size=300),
       split=st.integers(min_value=0, max_value=300))
@settings(max_examples=50, deadline=None)
def test_categorical_summary_merge_is_split_invariant(values, split):
    split = min(split, len(values))
    whole = CategoricalSummary.from_values(values)
    merged = CategoricalSummary.from_values(values[:split]).merge(
        CategoricalSummary.from_values(values[split:]))
    assert merged.counts == whole.counts
    assert merged.distinct == whole.distinct
    assert merged.total_length == whole.total_length


@given(values=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                       min_size=1, max_size=500),
       n_chunks=st.integers(min_value=1, max_value=6),
       bins=st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_histogram_merge_is_split_invariant(values, n_chunks, bins):
    array = np.asarray(values)
    whole = compute_histogram(array, bins, (0.0, 100.0))
    merged = Histogram.merge_all(
        [compute_histogram(chunk, bins, (0.0, 100.0))
         for chunk in np.array_split(array, n_chunks)])
    assert np.array_equal(whole.counts, merged.counts)
    assert whole.total == len(values)
