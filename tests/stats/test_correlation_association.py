"""Tests for correlation matrices and missing-value association statistics."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import EDAError
from repro.stats.association import (
    column_missing_counts,
    missing_spectrum,
    nullity_correlation,
    nullity_dendrogram,
)
from repro.stats.correlation import (
    PearsonPartial,
    correlation_matrix,
    kendall_tau_matrix,
    pearson_matrix,
    spearman_matrix,
    top_correlated_pairs,
)


@pytest.fixture
def correlated_matrix():
    rng = np.random.default_rng(2)
    x = rng.normal(0, 1, 3000)
    y = 2 * x + rng.normal(0, 0.3, 3000)
    z = rng.normal(0, 1, 3000)
    matrix = np.column_stack([x, y, z])
    matrix[::11, 1] = np.nan
    return matrix


class TestPearson:
    def test_matches_numpy_on_complete_data(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(0, 1, (500, 4))
        ours = pearson_matrix(matrix)
        reference = np.corrcoef(matrix, rowvar=False)
        assert np.allclose(ours, reference, atol=1e-10)

    def test_merged_partials_match_whole(self, correlated_matrix):
        whole = pearson_matrix(correlated_matrix)
        partials = [PearsonPartial.from_matrix(chunk)
                    for chunk in np.array_split(correlated_matrix, 6)]
        merged = PearsonPartial.merge_all(partials).finalize()
        assert np.allclose(whole, merged, equal_nan=True, atol=1e-10)

    def test_pairwise_deletion_matches_scipy(self, correlated_matrix):
        ours = pearson_matrix(correlated_matrix)
        both = np.isfinite(correlated_matrix[:, 0]) & np.isfinite(correlated_matrix[:, 1])
        reference, _ = scipy_stats.pearsonr(correlated_matrix[both, 0],
                                            correlated_matrix[both, 1])
        assert ours[0, 1] == pytest.approx(reference, abs=1e-10)

    def test_constant_column_gives_nan(self):
        matrix = np.column_stack([np.ones(50), np.arange(50.0)])
        result = pearson_matrix(matrix)
        assert np.isnan(result[0, 1])
        assert result[0, 0] == 1.0


class TestRankCorrelations:
    def test_spearman_matches_scipy(self, correlated_matrix):
        ours = spearman_matrix(correlated_matrix)
        both = np.isfinite(correlated_matrix[:, 0]) & np.isfinite(correlated_matrix[:, 1])
        reference, _ = scipy_stats.spearmanr(correlated_matrix[both, 0],
                                             correlated_matrix[both, 1])
        assert ours[0, 1] == pytest.approx(reference, abs=1e-10)

    def test_kendall_matches_scipy_when_unsampled(self, correlated_matrix):
        ours = kendall_tau_matrix(correlated_matrix, max_rows=10_000)
        both = np.isfinite(correlated_matrix[:, 0]) & np.isfinite(correlated_matrix[:, 1])
        reference, _ = scipy_stats.kendalltau(correlated_matrix[both, 0],
                                              correlated_matrix[both, 1])
        assert ours[0, 1] == pytest.approx(reference, abs=1e-10)

    def test_kendall_sampling_keeps_strong_correlations(self, correlated_matrix):
        sampled = kendall_tau_matrix(correlated_matrix, max_rows=500)
        assert sampled[0, 1] > 0.7

    def test_correlation_matrix_dispatch(self, correlated_matrix):
        for method in ("pearson", "spearman", "kendall"):
            matrix = correlation_matrix(correlated_matrix, method)
            assert matrix.shape == (3, 3)
            assert np.allclose(np.diag(matrix), 1.0)
        with pytest.raises(EDAError):
            correlation_matrix(correlated_matrix, "cramers_v")

    def test_top_correlated_pairs(self, correlated_matrix):
        matrix = pearson_matrix(correlated_matrix)
        pairs = top_correlated_pairs(matrix, ["x", "y", "z"], threshold=0.5)
        assert pairs[0][:2] == ("x", "y")
        assert all(abs(value) >= 0.5 for _, _, value in pairs)


class TestMissingAssociation:
    @pytest.fixture
    def mask(self):
        rng = np.random.default_rng(4)
        base = rng.random((2000, 4)) < np.array([0.0, 0.2, 0.2, 0.6])
        base[:, 2] = base[:, 1]  # columns b and c are missing together
        return base

    def test_missing_spectrum_shape_and_range(self, mask):
        spectrum = missing_spectrum(mask, ["a", "b", "c", "d"], n_bins=16)
        assert spectrum.densities.shape == (16, 4)
        assert np.all(spectrum.densities >= 0) and np.all(spectrum.densities <= 1)
        assert np.allclose(spectrum.series_for("a"), 0.0)
        with pytest.raises(EDAError):
            spectrum.series_for("missing_column")

    def test_spectrum_mean_matches_column_rate(self, mask):
        spectrum = missing_spectrum(mask, ["a", "b", "c", "d"], n_bins=10)
        assert spectrum.densities[:, 3].mean() == pytest.approx(mask[:, 3].mean(),
                                                                abs=0.01)

    def test_nullity_correlation_drops_complete_columns(self, mask):
        kept, matrix = nullity_correlation(mask, ["a", "b", "c", "d"])
        assert "a" not in kept
        index_b, index_c = kept.index("b"), kept.index("c")
        assert matrix[index_b, index_c] == pytest.approx(1.0)

    def test_nullity_correlation_all_complete(self):
        kept, matrix = nullity_correlation(np.zeros((10, 3), dtype=bool),
                                           ["a", "b", "c"])
        assert kept == []
        assert matrix.shape == (0, 0)

    def test_dendrogram_merges_similar_columns_first(self, mask):
        labels, nodes = nullity_dendrogram(mask, ["a", "b", "c", "d"])
        assert len(nodes) == 3
        first_merge = {nodes[0].left, nodes[0].right}
        assert first_merge == {1, 2}  # b and c share their missingness pattern

    def test_dendrogram_single_column(self):
        labels, nodes = nullity_dendrogram(np.zeros((5, 1), dtype=bool), ["only"])
        assert labels == ["only"]
        assert nodes == []

    def test_column_missing_counts(self, mask):
        counts = column_missing_counts(mask, ["a", "b", "c", "d"])
        assert counts["a"] == 0
        assert counts["d"] == int(mask[:, 3].sum())
