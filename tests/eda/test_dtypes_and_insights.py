"""Tests for semantic type detection, insights and the how-to guide."""

import numpy as np
import pytest

from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_frame_types, detect_semantic_type
from repro.eda.howto import GUIDE_KEYS, guides_for, how_to_guide
from repro.eda.insights import (
    categorical_column_insights,
    correlation_insights,
    dataset_insights,
    numeric_column_insights,
    outlier_insight,
    similarity_insight,
)
from repro.frame import Column, DataFrame
from repro.stats.descriptive import CategoricalSummary, NumericSummary
from repro.stats.histogram import compute_histogram


class TestSemanticTypes:
    def test_float_is_numerical(self):
        assert detect_semantic_type(Column("x", [1.5, 2.5, 3.5])) is \
            SemanticType.NUMERICAL

    def test_string_is_categorical(self):
        assert detect_semantic_type(Column("x", ["a", "b", "c"])) is \
            SemanticType.CATEGORICAL

    def test_bool_is_categorical(self):
        assert detect_semantic_type(Column("x", [True, False, True])) is \
            SemanticType.CATEGORICAL

    def test_low_cardinality_int_is_categorical(self):
        assert detect_semantic_type(Column("x", [1, 2, 3, 1, 2, 3])) is \
            SemanticType.CATEGORICAL

    def test_high_cardinality_int_is_numerical(self):
        assert detect_semantic_type(Column("x", list(range(100)))) is \
            SemanticType.NUMERICAL

    def test_constant_detection(self):
        assert detect_semantic_type(Column("x", [7, 7, 7])) is SemanticType.CONSTANT
        assert detect_semantic_type(Column("x", [None, None])) is SemanticType.CONSTANT

    def test_datetime_detection(self):
        column = Column("x", ["2020-01-01", "2021-01-01", "2022-03-04"])
        assert detect_semantic_type(column) is SemanticType.DATETIME

    def test_detect_frame_types(self, house_frame):
        types = detect_frame_types(house_frame)
        assert types["price"] is SemanticType.NUMERICAL
        assert types["city"] is SemanticType.CATEGORICAL
        assert types["year_built"] is SemanticType.NUMERICAL

    def test_short_codes(self):
        assert SemanticType.NUMERICAL.short == "N"
        assert SemanticType.CATEGORICAL.short == "C"


class TestInsights:
    @pytest.fixture
    def config(self):
        return Config.from_user()

    def test_missing_insight_triggered_by_threshold(self, config):
        summary = NumericSummary.from_column(Column("x", [1.0, None, None, 4.0]))
        insights = numeric_column_insights("x", summary, None, config)
        assert any(insight.kind == "missing" for insight in insights)
        strict = Config.from_user({"insight.missing.threshold": 0.9})
        assert not any(insight.kind == "missing" for insight in
                       numeric_column_insights("x", summary, None, strict))

    def test_skewness_insight(self, config):
        values = np.random.default_rng(0).exponential(1.0, 3000) ** 2
        summary = NumericSummary.from_values(values)
        insights = numeric_column_insights("x", summary, None, config)
        assert any(insight.kind == "skewed" for insight in insights)

    def test_normality_insight(self, config):
        values = np.random.default_rng(0).normal(10, 2, 3000)
        summary = NumericSummary.from_values(values)
        histogram = compute_histogram(values, 50)
        insights = numeric_column_insights("x", summary, histogram, config,
                                           sample=values)
        assert any(insight.kind == "normal" for insight in insights)

    def test_infinite_insight(self, config):
        summary = NumericSummary.from_values(np.array([1.0, np.inf, 2.0]))
        summary.total = 3
        insights = numeric_column_insights("x", summary, None, config)
        assert any(insight.kind == "infinite" and insight.severity == "warning"
                   for insight in insights)

    def test_outlier_insight(self, config):
        assert outlier_insight("x", outlier_count=50, total=1000, config=config)
        assert not outlier_insight("x", outlier_count=1, total=1000, config=config)

    def test_high_cardinality_insight(self, config):
        summary = CategoricalSummary.from_values([f"v{i}" for i in range(200)])
        insights = categorical_column_insights("x", summary, config)
        assert any(insight.kind == "high_cardinality" for insight in insights)

    def test_constant_insight(self, config):
        summary = CategoricalSummary.from_values(["same"] * 20)
        insights = categorical_column_insights("x", summary, config)
        assert any(insight.kind == "constant" for insight in insights)

    def test_uniform_categorical_insight(self, config):
        summary = CategoricalSummary.from_values(["a", "b", "c", "d"] * 100)
        insights = categorical_column_insights("x", summary, config)
        assert any(insight.kind == "uniform" for insight in insights)

    def test_dataset_insights_duplicates(self, config):
        insights = dataset_insights(n_rows=100, duplicate_rows=20,
                                    missing_rates={"a": 0.0}, config=config)
        assert any(insight.kind == "duplicates" for insight in insights)

    def test_correlation_insights(self, config):
        matrix = np.array([[1.0, 0.95], [0.95, 1.0]])
        insights = correlation_insights(["a", "b"], matrix, "pearson", config)
        assert len(insights) == 1
        assert "highly correlated" in insights[0].message

    def test_similarity_insight_flags_changed_distribution(self, config):
        rng = np.random.default_rng(1)
        insights = similarity_insight("x", "missing_impact",
                                      rng.normal(0, 1, 2000),
                                      rng.normal(3, 1, 2000), config)
        assert insights[0].severity == "warning"

    def test_insights_disabled_globally(self):
        config = Config.from_user({"insight.enabled": False})
        summary = NumericSummary.from_column(Column("x", [1.0, None, None]))
        assert numeric_column_insights("x", summary, None, config) == []
        assert dataset_insights(10, 10, {"a": 1.0}, config) == []


class TestHowToGuide:
    def test_every_guide_key_exists_in_defaults(self):
        from repro.eda.config import DEFAULTS
        for keys in GUIDE_KEYS.values():
            for key in keys:
                assert key in DEFAULTS

    def test_guide_contains_example_with_key(self):
        entry = how_to_guide("histogram", call='plot(df, "price")')
        assert "hist.bins" in entry.keys
        assert "hist.bins" in entry.example
        assert "plot(df" in entry.example

    def test_unknown_visualization_returns_none(self):
        assert how_to_guide("spiral_chart") is None

    def test_guides_for_filters_unknown(self):
        guides = guides_for(["histogram", "unknown_viz"])
        assert set(guides) == {"histogram"}

    def test_guide_as_text(self):
        text = how_to_guide("box_plot").as_text()
        assert "box.whisker" in text
        text = how_to_guide("nullity_dendrogram").as_text()
        assert "no tunable parameters" in text
