"""Figure 2: the mapping rules between EDA tasks and stats/plots.

These tests assert that every call form of the task-centric API produces
exactly the visualization families the paper's Figure 2 prescribes for the
detected column types.
"""

import pytest

from repro.eda import plot, plot_correlation, plot_missing


class TestPlotMappingRules:
    def test_overview_row(self, house_frame):
        intermediates = plot(house_frame, mode="intermediates")
        assert intermediates.task == "overview"
        variables = intermediates["variables"]
        # Histogram for each numerical column, bar chart for each categorical.
        assert "histogram" in variables["price"]
        assert "histogram" in variables["size"]
        assert "bar_chart" in variables["city"]
        assert "bar_chart" in variables["house_type"]
        assert "overview" in intermediates

    def test_univariate_numerical_row(self, house_frame):
        intermediates = plot(house_frame, "price", mode="intermediates")
        expected = {"stats", "histogram", "kde_plot", "qq_plot", "box_plot"}
        assert expected <= set(intermediates.visualization_names())
        assert intermediates.meta["semantic_type"] == "numerical"

    def test_univariate_categorical_row(self, house_frame):
        intermediates = plot(house_frame, "city", mode="intermediates")
        expected = {"stats", "bar_chart", "pie_chart", "word_cloud",
                    "word_frequencies"}
        assert expected <= set(intermediates.visualization_names())

    def test_bivariate_nn_row(self, house_frame):
        intermediates = plot(house_frame, "size", "price", mode="intermediates")
        expected = {"scatter_plot", "hexbin_plot", "binned_box_plot"}
        assert expected <= set(intermediates.visualization_names())
        assert intermediates.meta["combination"] == "NN"

    @pytest.mark.parametrize("first,second", [("city", "price"), ("price", "city")])
    def test_bivariate_nc_and_cn_rows(self, house_frame, first, second):
        intermediates = plot(house_frame, first, second, mode="intermediates")
        expected = {"box_plot", "multi_line_chart"}
        assert expected <= set(intermediates.visualization_names())
        assert intermediates.meta["combination"] == "CN"

    def test_bivariate_cc_row(self, house_frame):
        intermediates = plot(house_frame, "city", "house_type", mode="intermediates")
        expected = {"nested_bar_chart", "stacked_bar_chart", "heat_map"}
        assert expected <= set(intermediates.visualization_names())
        assert intermediates.meta["combination"] == "CC"


class TestCorrelationMappingRules:
    def test_overview_row_has_three_methods(self, house_frame):
        intermediates = plot_correlation(house_frame, mode="intermediates")
        expected = {"correlation_pearson", "correlation_spearman",
                    "correlation_kendall"}
        assert expected <= set(intermediates.visualization_names())
        for name in expected:
            matrix = intermediates[name]["matrix"]
            assert len(matrix) == len(intermediates[name]["columns"])

    def test_single_column_row_gives_vectors(self, house_frame):
        intermediates = plot_correlation(house_frame, "price", mode="intermediates")
        vector = intermediates["correlation_pearson"]
        assert vector["column"] == "price"
        assert "price" not in vector["others"]
        assert len(vector["values"]) == len(vector["others"])

    def test_pair_row_gives_scatter_with_regression(self, house_frame):
        intermediates = plot_correlation(house_frame, "size", "price",
                                         mode="intermediates")
        scatter = intermediates["correlation_scatter"]
        assert "slope" in scatter and "intercept" in scatter
        assert intermediates.stats["pearson_correlation"] == pytest.approx(
            scatter["correlation"])


class TestMissingMappingRules:
    def test_overview_row(self, house_frame):
        intermediates = plot_missing(house_frame, mode="intermediates")
        expected = {"missing_bar_chart", "missing_spectrum",
                    "nullity_correlation", "nullity_dendrogram"}
        assert expected <= set(intermediates.visualization_names())

    def test_single_column_row_compares_all_other_columns(self, house_frame):
        intermediates = plot_missing(house_frame, "price", mode="intermediates")
        impact = intermediates["missing_impact"]
        assert set(impact) == set(house_frame.columns) - {"price"}
        assert impact["size"]["type"] == "numerical"
        assert impact["city"]["type"] == "categorical"
        for block in impact.values():
            assert len(block["before_counts"]) == len(block["after_counts"])

    def test_pair_row_numerical_target(self, house_frame):
        intermediates = plot_missing(house_frame, "price", "size",
                                     mode="intermediates")
        expected = {"missing_impact", "pdf", "cdf", "box_plot"}
        assert expected <= set(intermediates.visualization_names())

    def test_pair_row_categorical_target(self, house_frame):
        intermediates = plot_missing(house_frame, "price", "city",
                                     mode="intermediates")
        assert intermediates["missing_impact"]["type"] == "categorical"
