"""Multi-file scans must match the single concatenated file.

Every compute kind is run twice over the same logical dataset — once on
``scan_csv(concatenated.csv)``, once on ``scan_csv([a.csv, b.csv, c.csv])``
with the rows split across three files at uneven boundaries — and the
intermediates must agree exactly.  Both runs stream, so there is no
float-tolerance asymmetry to excuse: the multi-file source concatenates
per-file chunk partitions into the very same global row ranges the
single-file scan produces, and every reduction is a deterministic sketch.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import DataFrame, create_report, plot, plot_correlation, plot_missing
from repro.frame.io import scan_csv, write_csv
from repro.graph import TaskCache, get_global_cache, set_global_cache

N_ROWS = 2_100
CHUNK_ROWS = 250
#: Uneven split points: files of 900, 700 and 500 rows.
SPLITS = (900, 1_600)


@pytest.fixture(scope="module")
def csv_paths(tmp_path_factory):
    """One concatenated CSV plus the same rows split across three files."""
    rng = np.random.default_rng(123)
    price = rng.normal(250_000, 60_000, N_ROWS)
    price[rng.random(N_ROWS) < 0.08] = np.nan
    size = rng.normal(1_800, 400, N_ROWS)
    rating = rng.integers(1, 6, N_ROWS).astype(float)
    rating[rng.random(N_ROWS) < 0.30] = np.nan
    city = rng.choice(["vancouver", "toronto", "montreal", "calgary"],
                      N_ROWS, p=[0.4, 0.3, 0.2, 0.1])
    kind = rng.choice(["detached", "condo", "townhouse"], N_ROWS)
    frame = DataFrame({
        "price": price,
        "size": size,
        "rating": rating,
        "city": list(city),
        "house_type": list(kind),
    })
    directory = tmp_path_factory.mktemp("multifile")
    whole = str(directory / "houses.csv")
    write_csv(frame, whole)
    parts = []
    boundaries = (0,) + SPLITS + (N_ROWS,)
    for index in range(len(boundaries) - 1):
        part = str(directory / f"part-{index}.csv")
        write_csv(frame.slice(boundaries[index], boundaries[index + 1]), part)
        parts.append(part)
    return whole, parts


@pytest.fixture(autouse=True)
def fresh_cache():
    previous = get_global_cache()
    set_global_cache(TaskCache())
    yield
    set_global_cache(previous)


#: Sampling cutoffs lifted above the dataset size so sample-derived items
#: are bit-comparable (same convention as the streaming-equivalence suite).
CONFIG = {"scatter.sample_size": N_ROWS + 1,
          "correlation.scatter_sample_size": N_ROWS + 1}


@pytest.fixture(params=["synchronous", "threaded", "process", "remote"])
def config(request):
    """The suite config crossed with every execution backend.

    Multi-file scans are exactly the workload the process scheduler ships
    to workers, so the whole suite runs under all three ``compute.scheduler``
    values and must produce identical intermediates.
    """
    return dict(CONFIG, **{"compute.scheduler": request.param,
                           "compute.max_workers": 2})


def _single(csv_paths):
    whole, _ = csv_paths
    return scan_csv(whole, chunk_rows=CHUNK_ROWS)


def _multi(csv_paths):
    _, parts = csv_paths
    return scan_csv(parts, chunk_rows=CHUNK_ROWS)


#: The on-disk footprint legitimately differs: the split files repeat the
#: header line, so the summed multi-file size exceeds the single file's.
EXCLUDED_KEYS = {"memory_bytes"}


def assert_equivalent(multi, single, path="items"):
    """Recursive comparison (same float-tolerant shape as the streaming suite)."""
    if isinstance(single, dict):
        assert isinstance(multi, dict), path
        keys_single = set(single) - EXCLUDED_KEYS
        keys_multi = set(multi) - EXCLUDED_KEYS
        assert keys_multi == keys_single, f"{path}: {keys_multi ^ keys_single}"
        for key in keys_single:
            assert_equivalent(multi[key], single[key], f"{path}.{key}")
        return
    if isinstance(single, (list, tuple)):
        assert len(multi) == len(single), path
        for index, (left, right) in enumerate(zip(multi, single)):
            assert_equivalent(left, right, f"{path}[{index}]")
        return
    if isinstance(single, float) or isinstance(multi, float):
        left, right = float(multi), float(single)
        if math.isnan(left) and math.isnan(right):
            return
        assert left == pytest.approx(right, rel=1e-6, abs=1e-9), path
        return
    assert multi == single, path


def _compare_call(call, csv_paths, config):
    multi = call(_multi(csv_paths), config)
    single = call(_single(csv_paths), config)
    assert_equivalent(multi.items, single.items)
    multi_kinds = sorted((i.kind, i.column) for i in multi.insights)
    single_kinds = sorted((i.kind, i.column) for i in single.insights)
    assert multi_kinds == single_kinds
    return multi


def test_overview_matches_concatenated(csv_paths, config):
    result = _compare_call(
        lambda df, config: plot(df, config=config, mode="intermediates"),
        csv_paths, config)
    assert result.stats["n_rows"] == N_ROWS
    # duplicate counting runs through the sketch on both sides
    assert result.stats["duplicate_rows"] is not None


def test_univariate_matches_concatenated(csv_paths, config):
    _compare_call(
        lambda df, config: plot(df, "price", config=config,
                                mode="intermediates"), csv_paths, config)
    _compare_call(
        lambda df, config: plot(df, "city", config=config,
                                mode="intermediates"), csv_paths, config)


@pytest.mark.parametrize("pair", [("price", "size"),        # N x N
                                  ("city", "price"),        # C x N
                                  ("city", "house_type")])  # C x C
def test_bivariate_matches_concatenated(csv_paths, config, pair):
    _compare_call(
        lambda df, config: plot(df, pair[0], pair[1], config=config,
                                mode="intermediates"), csv_paths, config)


def test_correlation_matches_concatenated(csv_paths, config):
    _compare_call(
        lambda df, config: plot_correlation(df, config=config,
                                            mode="intermediates"),
        csv_paths, config)
    _compare_call(
        lambda df, config: plot_correlation(df, "price", "size", config=config,
                                            mode="intermediates"),
        csv_paths, config)


def test_missing_overview_matches_concatenated(csv_paths, config):
    result = _compare_call(
        lambda df, config: plot_missing(df, config=config,
                                        mode="intermediates"),
        csv_paths, config)
    for item in ("missing_bar_chart", "missing_spectrum",
                 "nullity_correlation", "nullity_dendrogram"):
        assert item in result.items


def test_create_report_matches_concatenated(csv_paths, config):
    multi = create_report(_multi(csv_paths), config=config)
    single = create_report(_single(csv_paths), config=config)
    assert multi.section_names == single.section_names
    for name in single.section_names:
        assert_equivalent(multi.sections[name].items,
                          single.sections[name].items, path=name)
    assert sorted(multi.interactions) == sorted(single.interactions)
    for key in single.interactions:
        assert_equivalent(multi.interactions[key], single.interactions[key],
                          path=f"interactions.{key}")


def test_multifile_rescan_hits_the_cross_call_cache(csv_paths):
    """Fresh scan handles over unchanged files must reuse cached partitions:
    the task keys depend only on (path, byte ranges, file stamps)."""
    cold = plot(_multi(csv_paths), mode="intermediates")
    warm = plot(_multi(csv_paths), mode="intermediates")   # brand-new scans
    assert_equivalent(warm.items, cold.items)
    warm_hits = sum(report.cache_hits
                    for report in warm.meta["execution_reports"])
    assert warm_hits > 0
