"""Tests for the public task-centric API surface."""

import pytest

from repro.eda import plot, plot_correlation, plot_missing
from repro.errors import ConfigError, EDAError
from repro.render import Container


class TestArgumentValidation:
    def test_first_argument_must_be_a_dataframe(self):
        with pytest.raises(EDAError):
            plot([1, 2, 3])

    def test_col2_without_col1(self, house_frame):
        with pytest.raises(EDAError):
            plot(house_frame, None, "price")
        with pytest.raises(EDAError):
            plot_correlation(house_frame, None, "price")
        with pytest.raises(EDAError):
            plot_missing(house_frame, None, "price")

    def test_invalid_mode(self, house_frame):
        with pytest.raises(EDAError):
            plot(house_frame, mode="json")

    def test_invalid_config_key_is_rejected_early(self, house_frame):
        with pytest.raises(ConfigError):
            plot(house_frame, "price", config={"hist.binz": 10})


class TestReturnTypes:
    def test_plot_returns_container_by_default(self, house_frame):
        container = plot(house_frame, "price")
        assert isinstance(container, Container)
        assert container.tab_names[0] == "stats"
        assert "<svg" in container.to_html()

    def test_intermediates_mode_returns_raw_values(self, house_frame):
        intermediates = plot(house_frame, "price", mode="intermediates")
        assert intermediates.task == "univariate"
        assert "histogram" in intermediates

    def test_call_string_reflected_in_title(self, house_frame):
        container = plot_correlation(house_frame, "size", "price")
        assert 'plot_correlation(df, "size", "price")' in container.title

    def test_display_limits_tabs(self, house_frame):
        container = plot(house_frame, "price", display=["histogram", "stats"])
        assert set(container.tab_names) == {"stats", "histogram"}

    def test_insight_badges_follow_intermediates(self, house_frame):
        container = plot(house_frame, "price")
        assert len(container.insights) == len(container.intermediates.insights)

    def test_config_flows_through(self, house_frame):
        container = plot(house_frame, "price", config={"hist.bins": 13})
        assert len(container.intermediates["histogram"]["counts"]) == 13

    def test_panel_lookup(self, house_frame):
        container = plot(house_frame, "city")
        panel = container.panel("bar_chart")
        assert panel.title == "Bar Chart"
        with pytest.raises(KeyError):
            container.panel("no_such_panel")

    def test_save_writes_html(self, house_frame, tmp_path):
        path = tmp_path / "univariate.html"
        plot(house_frame, "price").save(str(path))
        content = path.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "<svg" in content
