"""Incremental refresh must be invisible in the results.

The contract: ``refresh()`` after an append produces *bit-identical*
intermediates to a cold scan of the grown file — for every compute kind,
over both a single-file scan and a glob-backed multi-file source, under all
four execution schedulers.  The refreshed handle's extended chunk layout
generally differs from the cold rescan's (the old last chunk stays partial,
new chunks follow it), so this suite is also the proof that every reduction
is split-invariant.

On top of equivalence, the warm runs must actually *be* incremental: the
``meta["incremental"]`` / ``Report.incremental_stats`` counters record that
the pre-append chunks answered from the cross-call cache.
"""

from __future__ import annotations

import glob as glob_module
import math

import numpy as np
import pytest

import repro
from repro import create_report, plot, plot_correlation, plot_missing
from repro.frame.io import scan_csv
from repro.graph import TaskCache, get_global_cache, set_global_cache

N_BASE = 600
N_APPEND = 30
N_TOTAL = N_BASE + N_APPEND
CHUNK_ROWS = 100


def _rows(start, stop, rng):
    lines = []
    for index in range(start, stop):
        price = "" if rng.random() < 0.08 else f"{rng.normal(250_000, 60_000):.2f}"
        size = f"{rng.normal(1_800, 400):.2f}"
        city = rng.choice(["vancouver", "toronto", "montreal"])
        # Appends bring *new* dictionary entries (high-cardinality district)
        # and grow existing tallies (duplicate-heavy badge): the refreshed
        # unified dictionary must equal the cold rescan's.
        district = "" if rng.random() < 0.05 else \
            f"district-{rng.integers(0, 150):03d}"
        badge = rng.choice(["standard", "premium"], p=[0.95, 0.05])
        lines.append(f"{price},{size},{city},{district},{badge}\n")
    return "".join(lines)


@pytest.fixture()
def grown_csv(tmp_path):
    """A single CSV plus an ``append()`` closure adding N_APPEND rows."""
    rng = np.random.default_rng(42)
    path = str(tmp_path / "houses.csv")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("price,size,city,district,badge\n")
        handle.write(_rows(0, N_BASE, rng))

    def append():
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(_rows(N_BASE, N_TOTAL, rng))

    return path, append


@pytest.fixture()
def grown_glob(tmp_path):
    """Two part files matching a glob, plus an ``append()`` closure that
    grows one member *and* drops a third matching file."""
    rng = np.random.default_rng(43)
    boundaries = (0, 250, N_BASE)
    for index in range(2):
        with open(tmp_path / f"part-{index}.csv", "w", encoding="utf-8") as handle:
            handle.write("price,size,city,district,badge\n")
            handle.write(_rows(boundaries[index], boundaries[index + 1], rng))
    pattern = str(tmp_path / "part-*.csv")

    def append():
        split = N_BASE + N_APPEND // 2
        with open(tmp_path / "part-1.csv", "a", encoding="utf-8") as handle:
            handle.write(_rows(N_BASE, split, rng))
        with open(tmp_path / "part-2.csv", "w", encoding="utf-8") as handle:
            handle.write("price,size,city,district,badge\n")
            handle.write(_rows(split, N_TOTAL, rng))

    return pattern, append


@pytest.fixture(autouse=True)
def fresh_cache():
    previous = get_global_cache()
    set_global_cache(TaskCache())
    yield
    set_global_cache(previous)


#: Sampling cutoffs above the dataset size keep sample-derived items
#: bit-comparable (same convention as the streaming-equivalence suite).
CONFIG = {"scatter.sample_size": N_TOTAL + 1,
          "correlation.scatter_sample_size": N_TOTAL + 1}


@pytest.fixture(params=["synchronous", "threaded", "process", "remote"])
def config(request):
    return dict(CONFIG, **{"compute.scheduler": request.param,
                           "compute.max_workers": 2})


EXCLUDED_KEYS = {"memory_bytes"}


def assert_equivalent(warm, cold, path="items"):
    if isinstance(cold, dict):
        assert isinstance(warm, dict), path
        keys_cold = set(cold) - EXCLUDED_KEYS
        keys_warm = set(warm) - EXCLUDED_KEYS
        assert keys_warm == keys_cold, f"{path}: {keys_warm ^ keys_cold}"
        for key in keys_cold:
            assert_equivalent(warm[key], cold[key], f"{path}.{key}")
        return
    if isinstance(cold, (list, tuple)):
        assert len(warm) == len(cold), path
        for index, (left, right) in enumerate(zip(warm, cold)):
            assert_equivalent(left, right, f"{path}[{index}]")
        return
    if isinstance(cold, float) or isinstance(warm, float):
        left, right = float(warm), float(cold)
        if math.isnan(left) and math.isnan(right):
            return
        assert left == pytest.approx(right, rel=1e-6, abs=1e-9), path
        return
    assert warm == cold, path


#: The compute kinds of the grid, each a (name, callable) pair.
CALLS = [
    ("overview", lambda df, cfg: plot(df, config=cfg, mode="intermediates")),
    ("univariate-num", lambda df, cfg: plot(df, "price", config=cfg,
                                            mode="intermediates")),
    ("univariate-cat", lambda df, cfg: plot(df, "city", config=cfg,
                                            mode="intermediates")),
    ("univariate-highcard", lambda df, cfg: plot(df, "district", config=cfg,
                                                 mode="intermediates")),
    ("bivariate", lambda df, cfg: plot(df, "price", "size", config=cfg,
                                       mode="intermediates")),
    ("bivariate-CC", lambda df, cfg: plot(df, "city", "badge", config=cfg,
                                          mode="intermediates")),
    ("correlation", lambda df, cfg: plot_correlation(df, config=cfg,
                                                     mode="intermediates")),
    ("missing", lambda df, cfg: plot_missing(df, config=cfg,
                                             mode="intermediates")),
]


def _refresh_grid(handle_factory, append, config, call):
    """Cold run → append → refresh → warm run; compare against a genuinely
    cold run over the grown data and return the warm result."""
    handle = handle_factory()
    call(handle, config)                      # populate the cross-call cache
    append()
    warm = call(repro.refresh(handle), config)
    set_global_cache(TaskCache())             # reference run must be cold
    cold = call(handle_factory(), config)
    assert_equivalent(warm.items, cold.items)
    warm_kinds = sorted((i.kind, i.column) for i in warm.insights)
    cold_kinds = sorted((i.kind, i.column) for i in cold.insights)
    assert warm_kinds == cold_kinds
    return warm


def _expects_chunk_reuse(name, config):
    """Whether the warm run must show parse-chunk reuse for this cell.

    The nullity sketch is indexed against the *total* row count (its
    spectrum bins span every row), so an append rewrites every nullity
    chunk key; synchronous/threaded still reuse the coordinator-cached
    parse chunks, but the process/remote schedulers bundle parse+sketch
    inside workers (chunk results never reach the coordinator cache), so
    the missing kind legitimately re-parses there.
    """
    bundling = config["compute.scheduler"] in ("process", "remote")
    return not (name == "missing" and bundling)


@pytest.mark.parametrize("name,call", CALLS, ids=[c[0] for c in CALLS])
def test_refresh_equals_cold_single_file(grown_csv, config, name, call):
    path, append = grown_csv
    warm = _refresh_grid(lambda: scan_csv(path, chunk_rows=CHUNK_ROWS),
                         append, config, call)
    incremental = warm.meta["incremental"]
    assert incremental["enabled"]
    if _expects_chunk_reuse(name, config):
        # The pre-append chunks answered from the cache: the warm run
        # reused more parse chunks than it executed.
        assert incremental["chunks_reused"] > incremental["chunks_new"] > 0


@pytest.mark.parametrize("name,call", CALLS, ids=[c[0] for c in CALLS])
def test_refresh_equals_cold_multifile(grown_glob, config, name, call):
    pattern, append = grown_glob

    def factory():
        return scan_csv(sorted(glob_module.glob(pattern)),
                        chunk_rows=CHUNK_ROWS)

    handle = scan_csv(pattern, chunk_rows=CHUNK_ROWS)
    call(handle, config)
    append()
    warm = call(repro.refresh(handle), config)
    set_global_cache(TaskCache())
    cold = call(factory(), config)
    assert_equivalent(warm.items, cold.items)
    incremental = warm.meta["incremental"]
    assert incremental["enabled"]
    if _expects_chunk_reuse(name, config):
        assert incremental["chunks_reused"] > 0


def test_report_refresh_equals_cold_report(grown_csv):
    path, append = grown_csv
    config = dict(CONFIG, **{"compute.scheduler": "threaded",
                             "compute.max_workers": 2})
    report = create_report(scan_csv(path, chunk_rows=CHUNK_ROWS),
                           config=config)
    append()
    warm = report.refresh()
    set_global_cache(TaskCache())
    cold = create_report(scan_csv(path, chunk_rows=CHUNK_ROWS), config=config)

    assert warm.section_names == cold.section_names
    for name in cold.section_names:
        assert_equivalent(warm.sections[name].items,
                          cold.sections[name].items, path=name)
    assert sorted(warm.interactions) == sorted(cold.interactions)
    for key in cold.interactions:
        assert_equivalent(warm.interactions[key], cold.interactions[key],
                          path=f"interactions.{key}")
    # The refreshed report reused nearly every pre-append chunk; the cold
    # one reused nothing beyond its own intra-report sharing.
    stats = warm.incremental_stats
    assert stats["enabled"]
    assert stats["chunks_reused"] > stats["chunks_new"] > 0
    assert stats["bytes_reparsed"] > 0
    ratio = stats["chunks_reused"] / (stats["chunks_reused"] + stats["chunks_new"])
    assert ratio >= 0.8


def test_top_level_refresh_dispatches_reports_and_sources(grown_csv):
    path, append = grown_csv
    scan = scan_csv(path, chunk_rows=CHUNK_ROWS)
    report = create_report(scan, config={"compute.scheduler": "synchronous"})
    append()
    assert isinstance(repro.refresh(report), repro.Report)
    refreshed_scan = repro.refresh(scan)
    assert refreshed_scan.n_rows == N_TOTAL
    frame = repro.DataFrame({"x": [1, 2]})
    assert repro.refresh(frame) is frame


def test_refresh_preserves_where_filter(grown_csv):
    path, append = grown_csv
    report = create_report(scan_csv(path, chunk_rows=CHUNK_ROWS),
                           config={"compute.scheduler": "synchronous"},
                           where=("size", ">", 1_800))
    append()
    warm = report.refresh()
    set_global_cache(TaskCache())
    cold = create_report(scan_csv(path, chunk_rows=CHUNK_ROWS),
                         config={"compute.scheduler": "synchronous"},
                         where=("size", ">", 1_800))
    assert warm.section_names == cold.section_names
    for name in cold.section_names:
        assert_equivalent(warm.sections[name].items,
                          cold.sections[name].items, path=name)
    assert warm.where == ("size", ">", 1_800)
