"""Projection pushdown must never change results — only the work done.

Every compute kind (including ``create_report`` and the missing overview)
is run twice over the same data — once with ``compute.projection`` enabled
(the default) and once disabled (full-width partition tasks, the
pre-projection behaviour) — and the intermediates must agree bit-for-bit.
The grid crosses all three sources (in-memory frame, single-file scan,
multi-file scan) with all three schedulers.

A second group of tests pins the *work* claims: single-column tasks over a
scanned CSV execute only projected parses (asserted via the new
``projected_parses`` / ``full_parses`` counters), whole-row tasks collapse
onto full parses, and projected and full-table runs interoperate through
the cross-call cache without wrong-shape hits.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro import DataFrame, create_report, plot, plot_correlation, plot_missing
from repro.frame.io import read_csv, scan_csv, write_csv
from repro.graph import TaskCache, get_global_cache, set_global_cache

N_ROWS = 900
CHUNK_ROWS = 150

#: Dataset-stat keys that legitimately differ between source kinds (not
#: between projection modes — within one source they must match exactly).
EXCLUDED_KEYS = {"memory_bytes"}


@pytest.fixture(scope="module")
def csv_paths(tmp_path_factory):
    """One dataset written as a single CSV and as two part files."""
    rng = np.random.default_rng(21)
    price = rng.normal(250_000, 60_000, N_ROWS)
    price[rng.random(N_ROWS) < 0.08] = np.nan
    size = rng.normal(1_800, 400, N_ROWS)
    rating = rng.integers(1, 6, N_ROWS).astype(float)
    rating[rng.random(N_ROWS) < 0.25] = np.nan
    city = rng.choice(["vancouver", "toronto", "montreal"], N_ROWS)
    kind = rng.choice(["detached", "condo", "townhouse"], N_ROWS)
    # Dictionary-encoding archetypes: high-cardinality and duplicate-heavy
    # string columns must project identically to the full-width parse.
    district = [None if missing else f"district-{code:03d}"
                for missing, code in zip(rng.random(N_ROWS) < 0.05,
                                         rng.integers(0, 200, N_ROWS))]
    badge = rng.choice(["standard", "premium"], N_ROWS, p=[0.95, 0.05])
    frame = DataFrame({
        "price": price,
        "size": size,
        "rating": rating,
        "city": list(city),
        "house_type": list(kind),
        "district": district,
        "badge": list(badge),
    })
    directory = tmp_path_factory.mktemp("projection")
    whole = str(directory / "houses.csv")
    write_csv(frame, whole)
    split = N_ROWS // 2
    part_a = str(directory / "part-a.csv")
    part_b = str(directory / "part-b.csv")
    write_csv(frame.slice(0, split), part_a)
    write_csv(frame.slice(split, N_ROWS), part_b)
    return {"whole": whole, "parts": [part_a, part_b]}


def _make_source(kind, csv_paths):
    if kind == "memory":
        return read_csv(csv_paths["whole"])
    if kind == "scan":
        return scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
    return scan_csv(csv_paths["parts"], chunk_rows=CHUNK_ROWS)


@pytest.fixture(params=["memory", "scan", "multifile"])
def source_kind(request):
    return request.param


@pytest.fixture(params=["synchronous", "threaded", "process", "remote"])
def scheduler_name(request):
    return request.param


@pytest.fixture
def base_config(scheduler_name):
    """A fresh cache per test; sampling cutoffs lifted for bit-equality."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    yield {
        "compute.scheduler": scheduler_name,
        "compute.max_workers": 2,
        "scatter.sample_size": N_ROWS + 1,
        "correlation.scatter_sample_size": N_ROWS + 1,
    }
    set_global_cache(previous)


def assert_equivalent(projected, unprojected, path="items"):
    """Recursive comparison with float tolerance."""
    if isinstance(unprojected, dict):
        assert isinstance(projected, dict), path
        keys_full = set(unprojected) - EXCLUDED_KEYS
        keys_proj = set(projected) - EXCLUDED_KEYS
        assert keys_proj == keys_full, f"{path}: {keys_proj ^ keys_full}"
        for key in keys_full:
            assert_equivalent(projected[key], unprojected[key], f"{path}.{key}")
        return
    if isinstance(unprojected, (list, tuple)):
        assert len(projected) == len(unprojected), path
        for index, (left, right) in enumerate(zip(projected, unprojected)):
            assert_equivalent(left, right, f"{path}[{index}]")
        return
    if isinstance(unprojected, float) or isinstance(projected, float):
        left, right = float(projected), float(unprojected)
        if math.isnan(left) and math.isnan(right):
            return
        assert left == pytest.approx(right, rel=1e-6, abs=1e-9), path
        return
    assert projected == unprojected, path


CALLS = {
    "overview": lambda df, config: plot(df, config=config, mode="intermediates"),
    "univariate-numeric": lambda df, config: plot(
        df, "price", config=config, mode="intermediates"),
    "univariate-categorical": lambda df, config: plot(
        df, "city", config=config, mode="intermediates"),
    "bivariate-NN": lambda df, config: plot(
        df, "price", "size", config=config, mode="intermediates"),
    "bivariate-CN": lambda df, config: plot(
        df, "city", "price", config=config, mode="intermediates"),
    "bivariate-CC": lambda df, config: plot(
        df, "city", "house_type", config=config, mode="intermediates"),
    "univariate-highcard": lambda df, config: plot(
        df, "district", config=config, mode="intermediates"),
    "bivariate-CC-highcard": lambda df, config: plot(
        df, "district", "badge", config=config, mode="intermediates"),
    "correlation-overview": lambda df, config: plot_correlation(
        df, config=config, mode="intermediates"),
    "missing-overview": lambda df, config: plot_missing(
        df, config=config, mode="intermediates"),
}


@pytest.mark.parametrize("call_name", sorted(CALLS))
def test_projected_equals_unprojected(csv_paths, source_kind, base_config,
                                      call_name):
    call = CALLS[call_name]
    projected = call(_make_source(source_kind, csv_paths),
                     config={**base_config, "compute.projection": True})
    set_global_cache(TaskCache())   # no cross-run contamination
    unprojected = call(_make_source(source_kind, csv_paths),
                       config={**base_config, "compute.projection": False})
    assert_equivalent(projected.items, unprojected.items)
    projected_insights = sorted((i.kind, i.column) for i in projected.insights)
    unprojected_insights = sorted((i.kind, i.column)
                                  for i in unprojected.insights)
    assert projected_insights == unprojected_insights
    # The disabled run must not have planned any projected partition task.
    assert unprojected.meta["projection"]["projected_parse_tasks"] == 0


def test_create_report_projected_equals_unprojected(csv_paths, source_kind,
                                                    base_config):
    projected = create_report(
        _make_source(source_kind, csv_paths),
        config={**base_config, "compute.projection": True})
    set_global_cache(TaskCache())
    unprojected = create_report(
        _make_source(source_kind, csv_paths),
        config={**base_config, "compute.projection": False})
    assert projected.section_names == unprojected.section_names
    for name in unprojected.section_names:
        assert_equivalent(projected.sections[name].items,
                          unprojected.sections[name].items, path=name)
    assert sorted(projected.interactions) == sorted(unprojected.interactions)
    for key in unprojected.interactions:
        assert_equivalent(projected.interactions[key],
                          unprojected.interactions[key],
                          path=f"interactions.{key}")
    assert unprojected.projection_stats["projected_parse_tasks"] == 0


# --------------------------------------------------------------------------- #
# Work claims: what actually gets parsed.
# --------------------------------------------------------------------------- #
def _parse_totals(intermediates):
    reports = intermediates.meta["execution_reports"]
    return (sum(report.projected_parses for report in reports),
            sum(report.full_parses for report in reports))


def test_single_column_plot_parses_only_projected_chunks(csv_paths):
    """plot(scan, col) must execute projected parses exclusively."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        result = plot(scan, "price", mode="intermediates")
        projected, full = _parse_totals(result)
        assert projected > 0
        assert full == 0
        plan = result.meta["projection"]
        assert plan["enabled"] is True
        assert plan["projected_parse_tasks"] > 0
        assert plan["full_parse_tasks"] == 0
        # 7-column table, single-column projection: 6 columns pruned per chunk.
        assert plan["columns_pruned"] == 6 * plan["projected_parse_tasks"]
    finally:
        set_global_cache(previous)


def test_whole_row_task_collapses_onto_full_parses(csv_paths):
    """The nullity sketch reads every column: no projected parse is built."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        result = plot_missing(scan, mode="intermediates")
        projected, full = _parse_totals(result)
        assert full > 0
        assert projected == 0
        assert result.meta["projection"]["columns_pruned"] == 0
    finally:
        set_global_cache(previous)


def test_multifile_single_column_plot_is_projected(csv_paths):
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        source = scan_csv(csv_paths["parts"], chunk_rows=CHUNK_ROWS)
        result = plot(source, "price", mode="intermediates")
        projected, full = _parse_totals(result)
        assert projected > 0 and full == 0
    finally:
        set_global_cache(previous)


def test_projection_disabled_for_in_memory_sources(csv_paths):
    """In-memory slices are zero-copy views: the planner never fragments
    them into per-column-set tasks (full slices stay shared across calls)."""
    frame = read_csv(csv_paths["whole"])
    result = plot(frame, "price", mode="intermediates",
                  config={"compute.use_graph": "always"})
    plan = result.meta["projection"]
    assert plan["enabled"] is False
    assert plan["projected_parse_tasks"] == 0


def test_projected_stage_reuse_within_one_call(csv_paths):
    """Stage 2 (histograms, sample) of plot(scan, col) re-requests the same
    column set as stage 1 and must reuse its projected parse tasks via the
    cache instead of re-parsing.

    Pinned to the threaded backend: under the process scheduler a chunk
    parse consumed entirely inside its worker bundle deliberately never
    reaches the coordinator, so it cannot enter the cross-call cache (the
    documented bundle trade-off) and stage 2 re-parses instead.
    """
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        result = plot(scan, "price", mode="intermediates",
                      config={"compute.scheduler": "threaded"})
        reports = result.meta["execution_reports"]
        assert len(reports) >= 2
        stage2 = reports[1]
        assert stage2.projected_parses == 0 and stage2.full_parses == 0, \
            "stage 2 must be served the stage-1 parses from the cache"
        assert stage2.cache_hits > 0
    finally:
        set_global_cache(previous)


# --------------------------------------------------------------------------- #
# Warm-cache interop: projected and full-table runs share one cache.
# --------------------------------------------------------------------------- #
def test_warm_cache_interop_projected_then_full_table(csv_paths):
    """A full-table report after single-column plots must return exactly the
    cold-reference results — a cached single-column partition can never be
    served where a full-width one is needed (the keys differ by
    projection), and vice versa."""
    previous = get_global_cache()
    try:
        # Cold reference, composed with no cache at all.
        set_global_cache(TaskCache())
        reference = create_report(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS),
            config={"cache.enabled": False})

        # Projected single-column runs first, then the full-table report
        # against the same (now warm) cache.
        set_global_cache(TaskCache())
        plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "price",
             mode="intermediates")
        plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "city",
             mode="intermediates")
        warm = create_report(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS))
        assert warm.section_names == reference.section_names
        for name in reference.section_names:
            assert_equivalent(warm.sections[name].items,
                              reference.sections[name].items, path=name)

        # And the reverse: a projected run against a cache warmed by the
        # full-table report.
        reference_plot = plot(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "price",
            mode="intermediates", config={"cache.enabled": False})
        warm_plot = plot(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "price",
            mode="intermediates")
        assert_equivalent(warm_plot.items, reference_plot.items)
    finally:
        set_global_cache(previous)


def test_warm_cache_projected_replay_executes_no_parses(csv_paths):
    """Re-running the same projected call must serve every projected parse
    (and its sketches) from the cross-call cache."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        cold = plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS),
                    "price", mode="intermediates")
        warm = plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS),
                    "price", mode="intermediates")
        assert_equivalent(warm.items, cold.items)
        projected, full = _parse_totals(warm)
        assert projected == 0 and full == 0
        warm_hits = sum(report.cache_hits
                        for report in warm.meta["execution_reports"])
        assert warm_hits > 0
    finally:
        set_global_cache(previous)
