"""Predicate pushdown must never change results — only the work done.

Every compute kind (including ``create_report``) is run over a filtered
input in two pushdown modes — ``compute.predicates`` enabled (the default:
the filter runs inside each chunk's parse and zone maps may skip whole
chunks) and disabled (every chunk parses; the filter still runs inside the
parse) — and the intermediates must exactly match the reference computed on
the in-memory frame filtered with one plain boolean mask.  The grid crosses
all three sources (in-memory frame, single-file scan, multi-file scan) with
all three schedulers.

A second group pins the warm-cache interop claims: filtered and unfiltered
parses of the same chunk occupy distinct cache keys (so a warm cache can
never serve the wrong rows), and replaying the same filtered call executes
zero parse tasks.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import DataFrame, create_report, plot, plot_correlation, plot_missing
from repro.frame.io import read_csv, scan_csv, write_csv
from repro.graph import TaskCache, get_global_cache, set_global_cache

N_ROWS = 900
CHUNK_ROWS = 150

#: The pushed-down filter every grid cell applies.  ``price`` carries NaNs,
#: so the grid also pins the missing-never-matches semantics.
PREDICATE = ("price", ">", 250_000.0)

#: Dataset-stat keys that legitimately differ between source kinds (not
#: between pushdown modes — within one source they must match exactly).
EXCLUDED_KEYS = {"memory_bytes"}


@pytest.fixture(scope="module")
def csv_paths(tmp_path_factory):
    """One dataset written as a single CSV and as two part files."""
    rng = np.random.default_rng(27)
    price = rng.normal(250_000, 60_000, N_ROWS)
    price[rng.random(N_ROWS) < 0.08] = np.nan
    size = rng.normal(1_800, 400, N_ROWS)
    rating = rng.integers(1, 6, N_ROWS).astype(float)
    rating[rng.random(N_ROWS) < 0.25] = np.nan
    city = rng.choice(["vancouver", "toronto", "montreal"], N_ROWS)
    kind = rng.choice(["detached", "condo", "townhouse"], N_ROWS)
    # Listing dates grow monotonically with the row index (with some
    # missing), so chunked scans have disjoint per-chunk date ranges and a
    # datetime range filter genuinely prunes chunks through the zone maps.
    listed = [None if rng.random() < 0.05 else
              str(np.datetime64("2021-01-01T00:00:00")
                  + np.timedelta64(int(i * 280 / N_ROWS), "D"))
              for i in range(N_ROWS)]
    frame = DataFrame({
        "price": price,
        "size": size,
        "rating": rating,
        "city": list(city),
        "house_type": list(kind),
        "listed": listed,
    })
    directory = tmp_path_factory.mktemp("predicate")
    whole = str(directory / "houses.csv")
    write_csv(frame, whole)
    split = N_ROWS // 2
    part_a = str(directory / "part-a.csv")
    part_b = str(directory / "part-b.csv")
    write_csv(frame.slice(0, split), part_a)
    write_csv(frame.slice(split, N_ROWS), part_b)
    return {"whole": whole, "parts": [part_a, part_b]}


def _make_source(kind, csv_paths):
    if kind == "memory":
        return read_csv(csv_paths["whole"])
    if kind == "scan":
        return scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
    return scan_csv(csv_paths["parts"], chunk_rows=CHUNK_ROWS)


def _mask_filtered_frame(csv_paths):
    """The reference semantics: one vectorized boolean mask, missing False."""
    frame = read_csv(csv_paths["whole"])
    return frame[frame.price > 250_000.0]


@pytest.fixture(params=["memory", "scan", "multifile"])
def source_kind(request):
    return request.param


@pytest.fixture(params=["synchronous", "threaded", "process", "remote"])
def scheduler_name(request):
    return request.param


@pytest.fixture(params=[True, False], ids=["pushdown", "no-pushdown"])
def predicates_enabled(request):
    return request.param


@pytest.fixture
def base_config(scheduler_name):
    """A fresh cache per test; sampling cutoffs lifted for bit-equality."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    yield {
        "compute.scheduler": scheduler_name,
        "compute.max_workers": 2,
        "scatter.sample_size": N_ROWS + 1,
        "correlation.scatter_sample_size": N_ROWS + 1,
    }
    set_global_cache(previous)


def assert_equivalent(filtered, reference, path="items"):
    """Recursive comparison with float tolerance."""
    if isinstance(reference, dict):
        assert isinstance(filtered, dict), path
        keys_ref = set(reference) - EXCLUDED_KEYS
        keys_new = set(filtered) - EXCLUDED_KEYS
        assert keys_new == keys_ref, f"{path}: {keys_new ^ keys_ref}"
        for key in keys_ref:
            assert_equivalent(filtered[key], reference[key], f"{path}.{key}")
        return
    if isinstance(reference, (list, tuple)):
        assert len(filtered) == len(reference), path
        for index, (left, right) in enumerate(zip(filtered, reference)):
            assert_equivalent(left, right, f"{path}[{index}]")
        return
    if isinstance(reference, float) or isinstance(filtered, float):
        left, right = float(filtered), float(reference)
        if math.isnan(left) and math.isnan(right):
            return
        assert left == pytest.approx(right, rel=1e-6, abs=1e-9), path
        return
    assert filtered == reference, path


CALLS = {
    "overview": lambda df, config, **kw: plot(
        df, config=config, mode="intermediates", **kw),
    "univariate-numeric": lambda df, config, **kw: plot(
        df, "size", config=config, mode="intermediates", **kw),
    "univariate-categorical": lambda df, config, **kw: plot(
        df, "city", config=config, mode="intermediates", **kw),
    "bivariate-NN": lambda df, config, **kw: plot(
        df, "price", "size", config=config, mode="intermediates", **kw),
    "bivariate-CN": lambda df, config, **kw: plot(
        df, "city", "size", config=config, mode="intermediates", **kw),
    "bivariate-CC": lambda df, config, **kw: plot(
        df, "city", "house_type", config=config, mode="intermediates", **kw),
    "correlation-overview": lambda df, config, **kw: plot_correlation(
        df, config=config, mode="intermediates", **kw),
    "missing-overview": lambda df, config, **kw: plot_missing(
        df, config=config, mode="intermediates", **kw),
}

#: Reference intermediates per call, computed once on the mask-filtered
#: in-memory frame with the cache off (the grid's ground truth).
_REFERENCES = {}


def _reference(call_name, csv_paths):
    if call_name not in _REFERENCES:
        config = {
            "cache.enabled": False,
            "compute.scheduler": "synchronous",
            "scatter.sample_size": N_ROWS + 1,
            "correlation.scatter_sample_size": N_ROWS + 1,
        }
        _REFERENCES[call_name] = CALLS[call_name](
            _mask_filtered_frame(csv_paths), config)
    return _REFERENCES[call_name]


@pytest.mark.parametrize("call_name", sorted(CALLS))
def test_filtered_equals_mask_filtered(csv_paths, source_kind, base_config,
                                       predicates_enabled, call_name):
    call = CALLS[call_name]
    reference = _reference(call_name, csv_paths)
    result = call(_make_source(source_kind, csv_paths),
                  config={**base_config,
                          "compute.predicates": predicates_enabled},
                  where=PREDICATE)
    assert_equivalent(result.items, reference.items)
    result_insights = sorted((i.kind, i.column) for i in result.insights)
    reference_insights = sorted((i.kind, i.column)
                                for i in reference.insights)
    assert result_insights == reference_insights
    if not predicates_enabled:
        # Pruning off: the zone maps must not have skipped anything.
        assert result.meta["predicate"]["chunks_skipped"] == 0


# --------------------------------------------------------------------------- #
# Datetime predicates: the same grid over a datetime range filter.
#
# The listing dates are monotone in the row index, so chunked scans carry
# disjoint per-chunk date ranges — a range filter must both produce the
# mask-filtered results AND actually skip the out-of-range chunks (this
# whole path used to die earlier: the zone-map save crashed on datetime
# statistics and datetime literals were rejected by the predicate compiler).
# --------------------------------------------------------------------------- #
DATETIME_PREDICATE = ("listed", ">", "2021-08-01T00:00:00")

DATETIME_CALLS = ["overview", "univariate-numeric"]

_DATETIME_REFERENCES = {}


def _datetime_reference(call_name, csv_paths):
    if call_name not in _DATETIME_REFERENCES:
        frame = read_csv(csv_paths["whole"])
        filtered = frame[
            frame.listed > np.datetime64("2021-08-01T00:00:00", "s")]
        config = {
            "cache.enabled": False,
            "compute.scheduler": "synchronous",
            "scatter.sample_size": N_ROWS + 1,
            "correlation.scatter_sample_size": N_ROWS + 1,
        }
        _DATETIME_REFERENCES[call_name] = CALLS[call_name](filtered, config)
    return _DATETIME_REFERENCES[call_name]


@pytest.mark.parametrize("call_name", DATETIME_CALLS)
def test_datetime_filtered_equals_mask_filtered(csv_paths, source_kind,
                                                base_config,
                                                predicates_enabled,
                                                call_name):
    call = CALLS[call_name]
    reference = _datetime_reference(call_name, csv_paths)
    result = call(_make_source(source_kind, csv_paths),
                  config={**base_config,
                          "compute.predicates": predicates_enabled},
                  where=DATETIME_PREDICATE)
    assert_equivalent(result.items, reference.items)
    skipped = result.meta["predicate"]["chunks_skipped"]
    if not predicates_enabled:
        assert skipped == 0
    elif source_kind != "memory":
        # The dates are sorted, so the zone maps must prune the chunks
        # entirely before the cutoff — datetime statistics survived the
        # sidecar and compared against the ISO literal.
        assert skipped > 0


# --------------------------------------------------------------------------- #
# String predicates: dictionary-encoded equality over the same grid.
#
# ``city == literal`` resolves the literal to a dictionary code once per
# chunk and compares int32 codes; ``!=`` must keep the SQL-like
# missing-never-matches semantics.  Results must equal the mask-filtered
# in-memory reference for every source and scheduler.
# --------------------------------------------------------------------------- #
STRING_PREDICATES = {
    "eq": ("city", "==", "vancouver"),
    "ne": ("city", "!=", "montreal"),
}

STRING_CALLS = ["univariate-numeric", "bivariate-CC"]

_STRING_REFERENCES = {}


def _string_reference(call_name, predicate, csv_paths):
    key = (call_name, predicate)
    if key not in _STRING_REFERENCES:
        from repro.frame.predicate import Predicate
        frame = read_csv(csv_paths["whole"])
        filtered = frame.filter(Predicate.from_spec((predicate,)).mask(frame))
        config = {
            "cache.enabled": False,
            "compute.scheduler": "synchronous",
            "scatter.sample_size": N_ROWS + 1,
            "correlation.scatter_sample_size": N_ROWS + 1,
        }
        _STRING_REFERENCES[key] = CALLS[call_name](filtered, config)
    return _STRING_REFERENCES[key]


@pytest.mark.parametrize("predicate_name", sorted(STRING_PREDICATES))
@pytest.mark.parametrize("call_name", STRING_CALLS)
def test_string_filtered_equals_mask_filtered(csv_paths, source_kind,
                                              base_config, predicates_enabled,
                                              call_name, predicate_name):
    predicate = STRING_PREDICATES[predicate_name]
    reference = _string_reference(call_name, predicate, csv_paths)
    result = CALLS[call_name](
        _make_source(source_kind, csv_paths),
        config={**base_config, "compute.predicates": predicates_enabled},
        where=predicate)
    assert_equivalent(result.items, reference.items)
    if not predicates_enabled:
        assert result.meta["predicate"]["chunks_skipped"] == 0


def test_string_equality_prunes_chunks_via_distinct_sets(tmp_path):
    """A string literal absent from a chunk's dictionary prunes the chunk
    without parsing it — through the zone map's exact distinct set, where
    min/max ranges alone could not prune.

    Chunk layout: the first three chunks hold {"apple", "cherry"}, the last
    three {"banana", "date"}.  Filtering on ``fruit == "banana"`` cannot be
    range-pruned for the apple/cherry chunks ("apple" <= "banana" <=
    "cherry") — only distinct-set membership proves the miss.
    """
    rng = np.random.default_rng(11)
    chunk_rows, n_chunks = 150, 6
    fruit = []
    for chunk in range(n_chunks):
        pool = ["apple", "cherry"] if chunk < 3 else ["banana", "date"]
        fruit.extend(rng.choice(pool, chunk_rows))
    frame = DataFrame({
        "fruit": fruit,
        "size": rng.normal(100.0, 10.0, chunk_rows * n_chunks),
    })
    path = str(tmp_path / "fruit.csv")
    write_csv(frame, path)

    from repro.frame.predicate import Predicate
    mask = Predicate.from_spec((("fruit", "==", "banana"),)).mask(frame)
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        reference = plot(frame.filter(mask), "size", mode="intermediates",
                         config={"cache.enabled": False})
        scan = scan_csv(path, chunk_rows=chunk_rows)
        plot(scan, "size", mode="intermediates")    # persist the zone maps
        set_global_cache(TaskCache())
        scan = scan_csv(path, chunk_rows=chunk_rows)
        result = plot(scan, "size", mode="intermediates",
                      where=("fruit", "==", "banana"))
        assert_equivalent(result.items, reference.items)
        assert result.meta["predicate"]["chunks_skipped"] == 3
    finally:
        set_global_cache(previous)


def test_datetime_where_accepts_datetime_objects(csv_paths):
    """datetime / numpy.datetime64 literals in where= match the ISO-string
    spec exactly (they normalize to the same pushed-down conjunct)."""
    from datetime import datetime
    previous = get_global_cache()
    try:
        set_global_cache(TaskCache())
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        via_string = plot(scan, "size", mode="intermediates",
                          where=DATETIME_PREDICATE)
        set_global_cache(TaskCache())
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        via_datetime = plot(scan, "size", mode="intermediates",
                            where=scan.listed > datetime(2021, 8, 1))
        assert_equivalent(via_datetime.items, via_string.items)
        assert via_datetime.meta["predicate"]["predicate"] == \
            via_string.meta["predicate"]["predicate"]
    finally:
        set_global_cache(previous)


def test_create_report_filtered_equals_mask_filtered(csv_paths, source_kind,
                                                     base_config,
                                                     predicates_enabled):
    reference = create_report(
        _mask_filtered_frame(csv_paths),
        config={"cache.enabled": False, "compute.scheduler": "synchronous",
                "scatter.sample_size": N_ROWS + 1,
                "correlation.scatter_sample_size": N_ROWS + 1})
    set_global_cache(TaskCache())
    report = create_report(
        _make_source(source_kind, csv_paths),
        config={**base_config, "compute.predicates": predicates_enabled},
        where=PREDICATE)
    assert report.section_names == reference.section_names
    for name in reference.section_names:
        assert_equivalent(report.sections[name].items,
                          reference.sections[name].items, path=name)
    assert sorted(report.interactions) == sorted(reference.interactions)
    for key in reference.interactions:
        assert_equivalent(report.interactions[key],
                          reference.interactions[key],
                          path=f"interactions.{key}")
    if not predicates_enabled:
        assert report.predicate_stats["chunks_skipped"] == 0


def test_lazy_indexing_matches_where_kwarg(csv_paths):
    """``plot(scan[scan.price > v], col)`` is the same filter as where=."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        indexed = plot(scan[scan.price > 250_000.0], "size",
                       mode="intermediates")
        set_global_cache(TaskCache())
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        keyword = plot(scan, "size", mode="intermediates", where=PREDICATE)
        assert_equivalent(indexed.items, keyword.items)
        assert indexed.meta["predicate"] == keyword.meta["predicate"]
    finally:
        set_global_cache(previous)


def test_unsupported_where_falls_back_with_warning(csv_paths):
    """A callable filter cannot be pushed into the scan: the input is
    materialized (with a UserWarning) and filtered eagerly — results still
    match the pushed-down run exactly."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        with pytest.warns(UserWarning, match="cannot be pushed"):
            fallback = plot(
                scan, "size", mode="intermediates",
                where=lambda frame: frame.price > 250_000.0)
        assert fallback.meta["predicate"]["enabled"] is False
        set_global_cache(TaskCache())
        scan = scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS)
        pushed = plot(scan, "size", mode="intermediates", where=PREDICATE)
        assert_equivalent(fallback.items, pushed.items)
    finally:
        set_global_cache(previous)


def test_where_rejects_unfilterable_values(csv_paths):
    from repro.errors import EDAError
    frame = read_csv(csv_paths["whole"])
    with pytest.raises(EDAError, match="unsupported where= filter"):
        plot(frame, "size", mode="intermediates", where=42)
    with pytest.raises(EDAError, match="boolean mask"):
        plot(frame, "size", mode="intermediates",
             where=np.zeros(3, dtype=bool))


# --------------------------------------------------------------------------- #
# Warm-cache interop: filtered and unfiltered runs share one cache safely.
# --------------------------------------------------------------------------- #
def _parse_totals(intermediates):
    reports = intermediates.meta["execution_reports"]
    return (sum(report.projected_parses for report in reports),
            sum(report.full_parses for report in reports))


def test_warm_cache_interop_filtered_vs_unfiltered(csv_paths):
    """Filtered parses occupy distinct cache keys: running the unfiltered
    call first (warming the cache with full-row chunks) must not change the
    filtered results, and vice versa."""
    previous = get_global_cache()
    try:
        set_global_cache(TaskCache())
        cold_filtered = plot(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "size",
            mode="intermediates", where=PREDICATE,
            config={"cache.enabled": False})

        set_global_cache(TaskCache())
        plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "size",
             mode="intermediates")
        warm_filtered = plot(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "size",
            mode="intermediates", where=PREDICATE)
        assert_equivalent(warm_filtered.items, cold_filtered.items)

        # Reverse order: the filtered run must not poison the unfiltered one.
        cold_plain = plot(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "size",
            mode="intermediates", config={"cache.enabled": False})
        set_global_cache(TaskCache())
        plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "size",
             mode="intermediates", where=PREDICATE)
        warm_plain = plot(
            scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS), "size",
            mode="intermediates")
        assert_equivalent(warm_plain.items, cold_plain.items)
    finally:
        set_global_cache(previous)


def test_warm_filtered_replay_executes_no_parses(csv_paths):
    """Re-running the same filtered call must serve every filtered parse
    (and its sketches) from the cross-call cache."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        cold = plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS),
                    "size", mode="intermediates", where=PREDICATE)
        warm = plot(scan_csv(csv_paths["whole"], chunk_rows=CHUNK_ROWS),
                    "size", mode="intermediates", where=PREDICATE)
        assert_equivalent(warm.items, cold.items)
        projected, full = _parse_totals(warm)
        assert projected == 0 and full == 0
        warm_hits = sum(report.cache_hits
                        for report in warm.meta["execution_reports"])
        assert warm_hits > 0
    finally:
        set_global_cache(previous)
