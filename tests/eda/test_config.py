"""Tests for the Config Manager."""

import pytest

from repro.eda.config import Config, DEFAULTS, available_config_keys
from repro.errors import ConfigError


@pytest.fixture(autouse=True)
def _clean_scheduler_env(monkeypatch):
    """Pin the library defaults: this suite tests Config itself, so the
    REPRO_SCHEDULER / REPRO_REMOTE_WORKERS environment overrides (used by
    CI to run everything under the process and remote backends) must not
    leak in.  The env-specific tests set them back explicitly via
    monkeypatch."""
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    monkeypatch.delenv("REPRO_REMOTE_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_REMOTE_AUTHKEY", raising=False)


class TestDefaults:
    def test_defaults_are_complete(self):
        config = Config.from_user()
        for key in DEFAULTS:
            assert config.get(key) == DEFAULTS[key]

    def test_available_keys_sorted(self):
        keys = available_config_keys()
        assert keys == sorted(keys)
        assert "hist.bins" in keys

    def test_no_overrides_reported_by_default(self):
        assert Config.from_user().user_overrides() == {}


class TestOverrides:
    def test_override_is_applied(self):
        config = Config.from_user({"hist.bins": 200})
        assert config.get("hist.bins") == 200
        assert config.user_overrides() == {"hist.bins": 200}

    def test_unknown_key_suggests_closest(self):
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user({"hist.bin": 10})
        assert "hist.bins" in str(excinfo.value)

    def test_getitem_and_get_raise_for_unknown_keys(self):
        config = Config.from_user()
        with pytest.raises(ConfigError):
            config.get("nope.nope")
        with pytest.raises(ConfigError):
            config["nope.nope"]

    def test_with_overrides_returns_new_config(self):
        base = Config.from_user()
        derived = base.with_overrides({"kde.grid_points": 400})
        assert base.get("kde.grid_points") == DEFAULTS["kde.grid_points"]
        assert derived.get("kde.grid_points") == 400

    def test_group_strips_prefix(self):
        group = Config.from_user().group("hist")
        assert group == {"bins": DEFAULTS["hist.bins"],
                         "auto_bins": DEFAULTS["hist.auto_bins"]}


class TestValidation:
    @pytest.mark.parametrize("key,value", [
        ("hist.bins", 0), ("hist.bins", -3), ("hist.bins", 2.5),
        ("hist.bins", True), ("scatter.sample_size", "many"),
    ])
    def test_positive_int_keys(self, key, value):
        with pytest.raises(ConfigError):
            Config.from_user({key: value})

    @pytest.mark.parametrize("value", [-0.1, 1.5, "high", True])
    def test_rate_keys(self, value):
        with pytest.raises(ConfigError):
            Config.from_user({"insight.missing.threshold": value})

    def test_rate_keys_accept_boundaries(self):
        config = Config.from_user({"insight.missing.threshold": 0.0,
                                   "insight.zeros.threshold": 1.0})
        assert config.get("insight.missing.threshold") == 0.0

    def test_graph_mode_validation(self):
        assert Config.from_user({"compute.use_graph": "never"}).get(
            "compute.use_graph") == "never"
        with pytest.raises(ConfigError):
            Config.from_user({"compute.use_graph": "sometimes"})

    def test_correlation_methods_validation(self):
        config = Config.from_user({"correlation.methods": ["pearson"]})
        assert config.get("correlation.methods") == ("pearson",)
        with pytest.raises(ConfigError):
            Config.from_user({"correlation.methods": ["phi_k"]})
        with pytest.raises(ConfigError):
            Config.from_user({"correlation.methods": []})

    def test_aggregate_validation(self):
        assert Config.from_user({"line.aggregate": "median"}).get(
            "line.aggregate") == "median"
        with pytest.raises(ConfigError):
            Config.from_user({"line.aggregate": "mode"})

    def test_max_workers_validation(self):
        assert Config.from_user({"compute.max_workers": 4}).get(
            "compute.max_workers") == 4
        assert Config.from_user({"compute.max_workers": None}).get(
            "compute.max_workers") is None
        with pytest.raises(ConfigError):
            Config.from_user({"compute.max_workers": 0})

    @pytest.mark.parametrize("name", ["synchronous", "threaded", "process",
                                      "remote"])
    def test_scheduler_accepts_registered_backends(self, name):
        assert Config.from_user({"compute.scheduler": name}).get(
            "compute.scheduler") == name

    def test_scheduler_rejects_unknown_value_with_suggestion(self):
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user({"compute.scheduler": "proces"})
        assert "process" in str(excinfo.value)
        assert "did you mean" in str(excinfo.value)

    def test_scheduler_env_default_applies_and_user_key_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "process")
        assert Config.from_user().get("compute.scheduler") == "process"
        assert Config.from_user({"compute.scheduler": "threaded"}).get(
            "compute.scheduler") == "threaded"

    def test_scheduler_env_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "procss")
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user()
        assert "process" in str(excinfo.value)

    def test_scheduler_remote_typo_suggests_remote(self):
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user({"compute.scheduler": "remot"})
        assert "remote" in str(excinfo.value)

    def test_remote_workers_validation(self):
        assert Config.from_user({"compute.remote.workers": 4}).get(
            "compute.remote.workers") == 4
        # 0 is valid: attached-only pools spawn no local workers.
        assert Config.from_user({"compute.remote.workers": 0}).get(
            "compute.remote.workers") == 0
        assert Config.from_user().get("compute.remote.workers") is None
        with pytest.raises(ConfigError):
            Config.from_user({"compute.remote.workers": -1})
        with pytest.raises(ConfigError):
            Config.from_user({"compute.remote.workers": True})

    def test_remote_workers_env_default_applies_and_user_key_wins(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_WORKERS", "3")
        assert Config.from_user().get("compute.remote.workers") == 3
        assert Config.from_user({"compute.remote.workers": 2}).get(
            "compute.remote.workers") == 2

    def test_remote_workers_env_garbage_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_WORKERS", "many")
        with pytest.raises(ConfigError):
            Config.from_user()

    def test_remote_bind_validation(self):
        assert Config.from_user({"compute.remote.bind": "0.0.0.0:8786"}).get(
            "compute.remote.bind") == "0.0.0.0:8786"
        with pytest.raises(ConfigError):
            Config.from_user({"compute.remote.bind": "no-port-here"})
        with pytest.raises(ConfigError):
            Config.from_user({"compute.remote.bind": "host:99999"})
        with pytest.raises(ConfigError):
            Config.from_user({"compute.remote.bind": 8786})

    @pytest.mark.parametrize("key", ["compute.remote.heartbeat_s",
                                     "compute.remote.timeout_s"])
    def test_remote_interval_validation(self, key):
        assert Config.from_user({key: 1}).get(key) == 1.0
        assert Config.from_user({key: 0.5}).get(key) == 0.5
        with pytest.raises(ConfigError):
            Config.from_user({key: 0})
        with pytest.raises(ConfigError):
            Config.from_user({key: -2.0})
        with pytest.raises(ConfigError):
            Config.from_user({key: True})

    def test_remote_authkey_validation(self):
        assert Config.from_user().get("compute.remote.authkey") is None
        assert Config.from_user({"compute.remote.authkey": "s3cret"}).get(
            "compute.remote.authkey") == "s3cret"
        with pytest.raises(ConfigError):
            Config.from_user({"compute.remote.authkey": ""})
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user({"compute.remote.authkey": b"bytes-key"})
        # The validation error must not echo the (secret) value.
        assert "bytes-key" not in str(excinfo.value)

    def test_remote_authkey_env_default_applies_and_user_key_wins(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_AUTHKEY", "from-env")
        assert Config.from_user().get("compute.remote.authkey") == "from-env"
        assert Config.from_user({"compute.remote.authkey": "explicit"}).get(
            "compute.remote.authkey") == "explicit"

    def test_remote_authkey_typo_suggests_key(self):
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user({"compute.remote.authky": "s3cret"})
        assert "compute.remote.authkey" in str(excinfo.value)


class TestConfigHygiene:
    """Unknown dotted keys must raise with a did-you-mean suggestion.

    A typo in a pipeline-control key (``compute.*`` / ``memory.*`` /
    ``cache.*``) silently ignored would mean e.g. the process scheduler the
    user asked for never runs; the Config Manager must reject the key and
    name the closest real one.
    """

    @pytest.mark.parametrize("typo,expected", [
        ("compute.sheduler", "compute.scheduler"),
        ("compute.schedular", "compute.scheduler"),
        ("compute.maxworkers", "compute.max_workers"),
        ("compute.predicate", "compute.predicates"),
        ("compute.projections", "compute.projection"),
        ("memory.budget_byte", "memory.budget_bytes"),
        ("memory.chunk_row", "memory.chunk_rows"),
        ("cache.enable", "cache.enabled"),
        ("cache.maxbytes", "cache.max_bytes"),
        ("compute.remote.worker", "compute.remote.workers"),
        ("compute.remote.binds", "compute.remote.bind"),
        ("compute.remote.heartbeat", "compute.remote.heartbeat_s"),
        ("compute.remote.timeout", "compute.remote.timeout_s"),
    ])
    def test_typoed_key_suggests_real_key(self, typo, expected):
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user({typo: 1})
        message = str(excinfo.value)
        assert typo in message
        assert expected in message, f"no suggestion for {typo!r}: {message}"

    def test_unknown_key_rejected_in_with_overrides_too(self):
        with pytest.raises(ConfigError) as excinfo:
            Config.from_user().with_overrides({"compute.sheduler": "process"})
        assert "compute.scheduler" in str(excinfo.value)


class TestDisplay:
    def test_wants_everything_by_default(self):
        config = Config.from_user()
        assert config.wants("histogram")
        assert config.wants("anything")

    def test_display_restricts_visualizations(self):
        config = Config.from_user(display=["Histogram", "box_plot"])
        assert config.wants("histogram")
        assert config.wants("Box_Plot")
        assert not config.wants("qq_plot")
