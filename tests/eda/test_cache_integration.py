"""End-to-end tests of the cross-call cache through the EDA API.

These tests exercise the interactive-session promise of the paper: repeated
``plot*`` calls on the same frame reuse intermediates computed by earlier
calls, while a mutated frame never sees stale results and disabling the
cache reproduces identical output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eda import plot, plot_correlation, plot_missing
from repro.frame import Column, DataFrame
from repro.graph import TaskCache, get_global_cache, set_global_cache

#: Force the graph stage on tiny test data, with several partitions.
GRAPH_CONFIG = {
    "compute.use_graph": "always",
    "compute.partition_rows": 100,
}


@pytest.fixture(autouse=True)
def fresh_cache():
    """Give every test its own global cache and restore the old one after."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    yield
    set_global_cache(previous)


def _session_frame(n: int = 400) -> DataFrame:
    rng = np.random.default_rng(7)
    price = rng.normal(100.0, 20.0, n)
    price[rng.random(n) < 0.1] = np.nan
    return DataFrame({
        "price": price,
        "size": rng.normal(2000.0, 300.0, n),
        "city": list(rng.choice(["a", "b", "c"], n)),
    })


def _report_totals(intermediates):
    reports = intermediates.meta["execution_reports"]
    executed = sum(report.tasks_executed for report in reports)
    hits = sum(report.cache_hits for report in reports)
    return executed, hits


class TestWarmCalls:
    def test_repeated_plot_hits_cache(self):
        frame = _session_frame()
        cold = plot(frame, config=GRAPH_CONFIG, mode="intermediates")
        warm = plot(frame, config=GRAPH_CONFIG, mode="intermediates")

        cold_executed, cold_hits = _report_totals(cold)
        warm_executed, warm_hits = _report_totals(warm)
        assert cold_executed > 0
        assert warm_hits > 0
        assert warm_executed < cold_executed
        assert warm.items == cold.items

    def test_cache_spans_different_eda_functions(self):
        frame = _session_frame()
        plot(frame, config=GRAPH_CONFIG, mode="intermediates")
        # plot_correlation shares the partition slices built by plot().
        correlation = plot_correlation(frame, config=GRAPH_CONFIG,
                                       mode="intermediates")
        _, hits = _report_totals(correlation)
        assert hits > 0

    def test_equal_content_new_object_still_hits(self):
        frame = _session_frame()
        clone = frame.copy()
        cold = plot(frame, "price", config=GRAPH_CONFIG, mode="intermediates")
        warm = plot(clone, "price", config=GRAPH_CONFIG, mode="intermediates")
        _, hits = _report_totals(warm)
        assert hits > 0
        assert warm.items == cold.items


class TestInvalidation:
    def test_mutated_frame_is_recomputed(self):
        frame = _session_frame()
        before = plot(frame, "price", config=GRAPH_CONFIG, mode="intermediates")

        shifted = frame.with_column(
            Column("price", frame.column("price").to_numpy() + 1000.0))
        after = plot(shifted, "price", config=GRAPH_CONFIG, mode="intermediates")

        assert after["stats"]["mean"] == pytest.approx(
            before["stats"]["mean"] + 1000.0, rel=1e-6)

    def test_missing_analysis_not_poisoned_by_other_frame(self):
        first = _session_frame()
        plot_missing(first, config=GRAPH_CONFIG, mode="intermediates")
        second = _session_frame(300)
        result = plot_missing(second, config=GRAPH_CONFIG, mode="intermediates")
        assert result["stats"]["n_rows"] == 300


class TestReportAttribution:
    def test_report_sections_do_not_duplicate_execution_reports(self):
        from repro.report import create_report
        frame = _session_frame()
        report = create_report(frame, config=GRAPH_CONFIG)
        per_section = sum(len(s.meta["execution_reports"])
                          for s in report.sections.values())
        # Sections partition the context's reports (interactions may own a
        # few attributed to no section), so the sum never exceeds the
        # canonical top-level list.
        assert per_section <= len(report.execution_reports)
        section_lists = [s.meta["execution_reports"]
                         for s in report.sections.values()]
        for index, first in enumerate(section_lists):
            for second in section_lists[index + 1:]:
                assert not (set(map(id, first)) & set(map(id, second)))


class TestDisabledCache:
    def test_disabled_cache_matches_enabled_results(self):
        frame = _session_frame()
        enabled_config = dict(GRAPH_CONFIG)
        disabled_config = dict(GRAPH_CONFIG, **{"cache.enabled": False})

        plot(frame, config=enabled_config, mode="intermediates")  # warm the cache
        warm = plot(frame, config=enabled_config, mode="intermediates")
        fresh = plot(frame, config=disabled_config, mode="intermediates")

        assert fresh.items == warm.items
        assert fresh.stats == warm.stats

    def test_disabled_cache_never_hits(self):
        frame = _session_frame()
        config = dict(GRAPH_CONFIG, **{"cache.enabled": False})
        plot(frame, config=config, mode="intermediates")
        second = plot(frame, config=config, mode="intermediates")
        executed, hits = _report_totals(second)
        assert hits == 0
        assert executed > 0
        assert len(get_global_cache()) == 0

    def test_max_bytes_is_respected_end_to_end(self):
        frame = _session_frame()
        config = dict(GRAPH_CONFIG, **{"cache.max_bytes": 50_000})
        plot(frame, config=config, mode="intermediates")
        cache = get_global_cache()
        assert cache.max_bytes == 50_000
        assert cache.stats.current_bytes <= 50_000

    def test_default_config_does_not_resize_shared_cache(self):
        frame = _session_frame()
        cache = get_global_cache()
        cache.resize(50_000)
        # A call without an explicit cache.max_bytes override must leave
        # the shared budget alone rather than snapping it back to default.
        plot(frame, config=GRAPH_CONFIG, mode="intermediates")
        assert cache.max_bytes == 50_000

    def test_explicit_default_value_restores_budget(self):
        from repro.eda.config import DEFAULTS
        frame = _session_frame()
        cache = get_global_cache()
        plot(frame, config=dict(GRAPH_CONFIG, **{"cache.max_bytes": 50_000}),
             mode="intermediates")
        assert cache.max_bytes == 50_000
        # Explicitly passing the default value must undo the shrink.
        default_bytes = DEFAULTS["cache.max_bytes"]
        plot(frame, config=dict(GRAPH_CONFIG,
                                **{"cache.max_bytes": default_bytes}),
             mode="intermediates")
        assert cache.max_bytes == default_bytes
