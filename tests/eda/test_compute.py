"""Tests of the Compute module's numeric correctness and pipeline behaviour."""

import numpy as np
import pytest

from repro.eda.compute import (
    ComputeContext,
    compute_bivariate,
    compute_correlation_overview,
    compute_missing_overview,
    compute_missing_single,
    compute_overview,
    compute_univariate,
)
from repro.eda.config import Config
from repro.errors import ColumnNotFoundError, EDAError
from repro.frame import DataFrame


@pytest.fixture
def config():
    return Config.from_user()


class TestOverview:
    def test_dataset_statistics(self, house_frame, config):
        intermediates = compute_overview(house_frame, config)
        stats = intermediates.stats
        assert stats["n_rows"] == len(house_frame)
        assert stats["n_columns"] == 5
        assert stats["n_numerical"] == 3
        assert stats["n_categorical"] == 2
        assert stats["missing_cells"] == sum(house_frame.missing_counts().values())
        assert 0 <= stats["missing_cells_rate"] <= 1

    def test_variable_entries_have_stats(self, house_frame, config):
        intermediates = compute_overview(house_frame, config)
        for name in house_frame.columns:
            assert "stats" in intermediates["variables"][name]

    def test_display_filter_removes_charts(self, house_frame):
        config = Config.from_user(display=["stats"])
        intermediates = compute_overview(house_frame, config)
        assert "histogram" not in intermediates["variables"]["price"]
        assert "bar_chart" not in intermediates["variables"]["city"]


class TestUnivariate:
    def test_numeric_statistics_match_column(self, house_frame, config):
        intermediates = compute_univariate(house_frame, "size", config)
        column = house_frame.column("size")
        assert intermediates.stats["mean"] == pytest.approx(column.mean())
        assert intermediates.stats["std"] == pytest.approx(column.std())
        assert intermediates.stats["min"] == pytest.approx(column.min())
        assert intermediates.stats["max"] == pytest.approx(column.max())
        assert intermediates.stats["missing"] == column.missing_count()

    def test_histogram_total_equals_present_count(self, house_frame, config):
        intermediates = compute_univariate(house_frame, "price", config)
        histogram = intermediates["histogram"]
        assert sum(histogram["counts"]) == house_frame.column("price").count()
        assert len(histogram["edges"]) == len(histogram["counts"]) + 1

    def test_hist_bins_config_is_respected(self, house_frame):
        config = Config.from_user({"hist.bins": 17})
        intermediates = compute_univariate(house_frame, "price", config)
        assert len(intermediates["histogram"]["counts"]) == 17

    def test_quantiles_are_ordered(self, house_frame, config):
        stats = compute_univariate(house_frame, "price", config).stats
        assert stats["min"] <= stats["q1"] <= stats["median"] <= stats["q3"] <= stats["max"]

    def test_categorical_counts_match_value_counts(self, house_frame, config):
        intermediates = compute_univariate(house_frame, "city", config)
        bar = intermediates["bar_chart"]
        expected = dict(house_frame.column("city").value_counts())
        assert dict(zip(bar["categories"], bar["counts"])) == \
            {key: expected[key] for key in bar["categories"]}
        pie = intermediates["pie_chart"]
        assert sum(pie["counts"]) == house_frame.column("city").count()

    def test_word_frequencies_lowercase_option(self):
        frame = DataFrame({"text": ["Alpha Beta", "alpha", "BETA beta"]})
        lowered = compute_univariate(frame, "text", Config.from_user())
        words = dict(zip(lowered["word_frequencies"]["words"],
                         lowered["word_frequencies"]["counts"]))
        assert words["alpha"] == 2
        assert words["beta"] == 3

    def test_unknown_column_raises_with_suggestion(self, house_frame, config):
        with pytest.raises(ColumnNotFoundError) as excinfo:
            compute_univariate(house_frame, "prices", config)
        assert "price" in str(excinfo.value)


class TestBivariate:
    def test_nn_correlation_matches_direct(self, house_frame, config):
        intermediates = compute_bivariate(house_frame, "size", "price", config)
        both = house_frame.column("size").notna() & house_frame.column("price").notna()
        x = house_frame.column("size").filter(both).to_numpy()
        y = house_frame.column("price").filter(both).to_numpy()
        expected = np.corrcoef(x, y)[0, 1]
        assert intermediates.stats["pearson_correlation"] == pytest.approx(expected,
                                                                           abs=1e-9)

    def test_scatter_sample_size_respected(self, house_frame):
        config = Config.from_user({"scatter.sample_size": 50})
        intermediates = compute_bivariate(house_frame, "size", "price", config)
        assert len(intermediates["scatter_plot"]["x"]) <= 50

    def test_cn_box_plot_groups(self, house_frame, config):
        intermediates = compute_bivariate(house_frame, "city", "size", config)
        boxes = intermediates["box_plot"]["boxes"]
        categories = {box["category"] for box in boxes}
        assert categories <= set(house_frame.column("city").unique())
        for box in boxes:
            assert box["q1"] <= box["median"] <= box["q3"]

    def test_cc_heat_map_counts(self, house_frame, config):
        intermediates = compute_bivariate(house_frame, "city", "house_type", config)
        heat = intermediates["heat_map"]
        total = sum(sum(row) for row in heat["counts"])
        both = house_frame.column("city").notna() & \
            house_frame.column("house_type").notna()
        assert total == int(both.sum())


class TestCorrelationAndMissing:
    def test_correlation_requires_two_numeric_columns(self, config):
        frame = DataFrame({"only": [1.0, 2.0, 3.0], "cat": ["a", "b", "c"]})
        with pytest.raises(EDAError):
            compute_correlation_overview(frame, config)

    def test_correlation_matrix_is_symmetric(self, house_frame, config):
        intermediates = compute_correlation_overview(house_frame, config)
        matrix = np.asarray(intermediates["correlation_pearson"]["matrix"])
        assert np.allclose(matrix, matrix.T, equal_nan=True)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_missing_overview_counts(self, house_frame, config):
        intermediates = compute_missing_overview(house_frame, config)
        bar = intermediates["missing_bar_chart"]
        counts = dict(zip(bar["columns"], bar["missing_counts"]))
        assert counts == house_frame.missing_counts()

    def test_missing_single_row_counts(self, house_frame, config):
        intermediates = compute_missing_single(house_frame, "price", config)
        stats = intermediates.stats
        assert stats["missing_rows"] == house_frame.column("price").missing_count()
        assert stats["rows_after_drop"] == len(house_frame) - stats["missing_rows"]


class TestPipelineModes:
    def test_graph_and_local_modes_agree(self, house_frame):
        local = compute_univariate(house_frame, "price",
                                   Config.from_user({"compute.use_graph": "never"}))
        graph = compute_univariate(
            house_frame, "price",
            Config.from_user({"compute.use_graph": "always",
                              "compute.partition_rows": 64}))
        assert local.stats["mean"] == pytest.approx(graph.stats["mean"])
        assert local.stats["missing"] == graph.stats["missing"]
        assert local["histogram"]["counts"] == graph["histogram"]["counts"]

    def test_graph_mode_records_stage_timings(self, house_frame):
        config = Config.from_user({"compute.use_graph": "always",
                                   "compute.partition_rows": 100})
        intermediates = compute_overview(house_frame, config)
        assert "precompute_chunk_sizes" in intermediates.timings
        assert "graph" in intermediates.timings
        assert "local" in intermediates.timings

    def test_context_reports_sharing(self, house_frame):
        config = Config.from_user({"compute.use_graph": "always",
                                   "compute.partition_rows": 100})
        context = ComputeContext(house_frame, config)
        compute_overview(house_frame, config, context=context)
        assert context.reports, "the engine should have produced execution reports"
        assert all(report.engine == "lazy" for report in context.reports)

    def test_eager_engine_configuration(self, house_frame):
        config = Config.from_user({"compute.engine": "eager",
                                   "compute.use_graph": "always",
                                   "compute.partition_rows": 200})
        intermediates = compute_univariate(house_frame, "price", config)
        assert intermediates.stats["mean"] == pytest.approx(
            house_frame.column("price").mean())
