"""Streaming (scan_csv) results must match the in-memory path.

Every compute kind is run twice over the same CSV — once on the fully
materialized ``read_csv`` frame, once on the out-of-core ``scan_csv`` handle
split into many small chunks — and the intermediates must agree, with the
cross-call cache enabled and disabled.

One documented divergence is excluded from the comparison:

* ``memory_bytes`` (in-memory footprint vs. on-disk size).

``duplicate_rows`` — historically a second divergence — is now compared
too: the streaming path counts duplicates through the bounded row-hash
``DuplicateSketch`` and must match the in-memory exact scan while the
distinct rows fit its capacity (they do here).

The test dataset stays below every sampling cutoff (scatter, kendall,
reservoir capacities), so even the sample-derived items are bit-comparable.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro import DataFrame, create_report, plot, plot_correlation, plot_missing
from repro.frame.io import read_csv, scan_csv, write_csv
from repro.graph import TaskCache, get_global_cache, set_global_cache

N_ROWS = 2_500
CHUNK_ROWS = 300

#: Dataset-stat keys that legitimately differ between the two modes.
EXCLUDED_KEYS = {"memory_bytes"}


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    """A CSV with numeric, categorical and missing-heavy columns."""
    rng = np.random.default_rng(99)
    price = rng.normal(250_000, 60_000, N_ROWS)
    price[rng.random(N_ROWS) < 0.08] = np.nan
    size = rng.normal(1_800, 400, N_ROWS)
    rating = rng.integers(1, 6, N_ROWS).astype(float)
    rating[rng.random(N_ROWS) < 0.30] = np.nan
    city = rng.choice(["vancouver", "toronto", "montreal", "calgary"],
                      N_ROWS, p=[0.4, 0.3, 0.2, 0.1])
    kind = rng.choice(["detached", "condo", "townhouse"], N_ROWS)
    # String-column archetypes for the dictionary encoding: high-cardinality
    # (most chunk dictionaries near-distinct), low-cardinality/duplicate-
    # heavy (tiny dictionary, massively repeated codes), plus missing.
    district = [None if missing else f"district-{code:03d}"
                for missing, code in zip(rng.random(N_ROWS) < 0.05,
                                         rng.integers(0, 300, N_ROWS))]
    badge = rng.choice(["standard", "premium"], N_ROWS, p=[0.95, 0.05])
    frame = DataFrame({
        "price": price,
        "size": size,
        "rating": rating,
        "city": list(city),
        "house_type": list(kind),
        "district": district,
        "badge": list(badge),
    })
    path = tmp_path_factory.mktemp("streaming") / "houses.csv"
    write_csv(frame, str(path))
    return str(path)


@pytest.fixture(params=["synchronous", "threaded", "process", "remote"])
def scheduler_name(request):
    """Every registered execution backend; results must not depend on it."""
    return request.param


@pytest.fixture(params=[True, False], ids=["cache-on", "cache-off"])
def cache_config(request, scheduler_name):
    """A fresh process-wide cache per test, toggled on/off via config.

    The sampling cutoffs are lifted above the dataset size so both modes
    retain every row — the in-memory sample and the streaming reservoir are
    then the exact same rows and all sample-derived items are comparable.
    The whole suite is crossed with ``compute.scheduler`` so all three
    execution backends are pinned to identical intermediates.
    """
    previous = get_global_cache()
    set_global_cache(TaskCache())
    yield {"cache.enabled": request.param,
           "compute.scheduler": scheduler_name,
           "compute.max_workers": 2,
           "scatter.sample_size": N_ROWS + 1,
           "correlation.scatter_sample_size": N_ROWS + 1}
    set_global_cache(previous)


def _memory_frame(csv_path):
    return read_csv(csv_path)


def _scan(csv_path):
    return scan_csv(csv_path, chunk_rows=CHUNK_ROWS)


def assert_equivalent(streaming, in_memory, path="items"):
    """Recursive comparison with float tolerance and documented exclusions."""
    if isinstance(in_memory, dict):
        assert isinstance(streaming, dict), path
        keys_memory = set(in_memory) - EXCLUDED_KEYS
        keys_streaming = set(streaming) - EXCLUDED_KEYS
        assert keys_streaming == keys_memory, \
            f"{path}: {keys_streaming ^ keys_memory}"
        for key in keys_memory:
            assert_equivalent(streaming[key], in_memory[key], f"{path}.{key}")
        return
    if isinstance(in_memory, (list, tuple)):
        assert len(streaming) == len(in_memory), path
        for index, (left, right) in enumerate(zip(streaming, in_memory)):
            assert_equivalent(left, right, f"{path}[{index}]")
        return
    if isinstance(in_memory, float) or isinstance(streaming, float):
        left, right = float(streaming), float(in_memory)
        if math.isnan(left) and math.isnan(right):
            return
        assert left == pytest.approx(right, rel=1e-6, abs=1e-9), path
        return
    assert streaming == in_memory, path


def _compare_call(call, csv_path, config):
    streaming = call(_scan(csv_path), config=config)
    in_memory = call(_memory_frame(csv_path), config=config)
    assert_equivalent(streaming.items, in_memory.items)
    streaming_kinds = sorted((i.kind, i.column) for i in streaming.insights)
    memory_kinds = sorted((i.kind, i.column) for i in in_memory.insights)
    assert streaming_kinds == memory_kinds
    return streaming


def test_overview_equivalent(csv_path, cache_config):
    def call(df, config):
        return plot(df, config=config, mode="intermediates")
    _compare_call(call, csv_path, cache_config)


def test_univariate_numeric_equivalent(csv_path, cache_config):
    def call(df, config):
        return plot(df, "price", config=config, mode="intermediates")
    result = _compare_call(call, csv_path, cache_config)
    assert "histogram" in result.items and "qq_plot" in result.items


def test_univariate_categorical_equivalent(csv_path, cache_config):
    def call(df, config):
        return plot(df, "city", config=config, mode="intermediates")
    result = _compare_call(call, csv_path, cache_config)
    assert "bar_chart" in result.items and "pie_chart" in result.items


def test_univariate_high_cardinality_string_equivalent(csv_path, cache_config):
    """Per-chunk dictionaries are near-distinct here; unification at combine
    time must still match the whole-column in-memory encoding."""
    def call(df, config):
        return plot(df, "district", config=config, mode="intermediates")
    _compare_call(call, csv_path, cache_config)


def test_univariate_duplicate_heavy_string_equivalent(csv_path, cache_config):
    def call(df, config):
        return plot(df, "badge", config=config, mode="intermediates")
    _compare_call(call, csv_path, cache_config)


@pytest.mark.parametrize("pair", [("price", "size"),      # N x N
                                  ("city", "price"),      # C x N
                                  ("city", "house_type"),   # C x C
                                  ("district", "badge")])   # C x C, high card
def test_bivariate_equivalent(csv_path, cache_config, pair):
    def call(df, config):
        return plot(df, pair[0], pair[1], config=config, mode="intermediates")
    _compare_call(call, csv_path, cache_config)


def test_correlation_overview_equivalent(csv_path, cache_config):
    def call(df, config):
        return plot_correlation(df, config=config, mode="intermediates")
    result = _compare_call(call, csv_path, cache_config)
    for method in ("pearson", "spearman", "kendall"):
        assert f"correlation_{method}" in result.items


def test_correlation_single_and_pair_equivalent(csv_path, cache_config):
    def single(df, config):
        return plot_correlation(df, "price", config=config, mode="intermediates")

    def pair(df, config):
        return plot_correlation(df, "price", "size", config=config,
                                mode="intermediates")
    _compare_call(single, csv_path, cache_config)
    _compare_call(pair, csv_path, cache_config)


def test_missing_overview_equivalent(csv_path, cache_config):
    def call(df, config):
        return plot_missing(df, config=config, mode="intermediates")
    result = _compare_call(call, csv_path, cache_config)
    for item in ("missing_bar_chart", "missing_spectrum",
                 "nullity_correlation", "nullity_dendrogram"):
        assert item in result.items


def test_missing_single_and_pair_equivalent(csv_path, cache_config):
    def single(df, config):
        return plot_missing(df, "rating", config=config, mode="intermediates")

    def pair(df, config):
        return plot_missing(df, "rating", "price", config=config,
                            mode="intermediates")
    _compare_call(single, csv_path, cache_config)
    _compare_call(pair, csv_path, cache_config)


def test_create_report_equivalent(csv_path, cache_config):
    streaming = create_report(_scan(csv_path), config=cache_config)
    in_memory = create_report(_memory_frame(csv_path), config=cache_config)
    assert streaming.section_names == in_memory.section_names
    for name in in_memory.section_names:
        assert_equivalent(streaming.sections[name].items,
                          in_memory.sections[name].items, path=name)
    assert sorted(streaming.interactions) == sorted(in_memory.interactions)
    for key in in_memory.interactions:
        assert_equivalent(streaming.interactions[key],
                          in_memory.interactions[key], path=f"interactions.{key}")


def test_streaming_repeat_with_warm_cache_is_identical(csv_path):
    """A second streaming run served from the cache must change nothing."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        cold = plot(_scan(csv_path), mode="intermediates",
                    config={"cache.enabled": True})
        warm = plot(_scan(csv_path), mode="intermediates",
                    config={"cache.enabled": True})
        assert_equivalent(warm.items, cold.items)
        warm_reports = warm.meta["execution_reports"]
        assert sum(report.cache_hits for report in warm_reports) > 0
    finally:
        set_global_cache(previous)


def test_streaming_releases_partitions(csv_path):
    """The scheduler must free parsed chunks as their sketches finish."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        result = plot(_scan(csv_path), mode="intermediates",
                      config={"cache.enabled": False})
        reports = result.meta["execution_reports"]
        assert reports, "streaming run must go through the graph engine"
    finally:
        set_global_cache(previous)


def test_streaming_duplicate_rows_match_exact_scan(tmp_path):
    """A scan with real duplicates must report the exact in-memory count."""
    rng = np.random.default_rng(7)
    base = DataFrame({
        "price": rng.normal(100, 10, 400).round(1),
        "rating": [None if i % 7 == 0 else float(i % 5) for i in range(400)],
        "city": list(rng.choice(["x", "y", "z"], 400)),
    })
    from repro.frame.frame import concat_rows
    duplicated = concat_rows([base, base.slice(0, 120)])
    path = str(tmp_path / "dupes.csv")
    write_csv(duplicated, path)

    expected = read_csv(path).duplicate_row_count()
    assert expected >= 120
    streaming = plot(scan_csv(path, chunk_rows=75), mode="intermediates")
    assert streaming.stats["duplicate_rows"] == expected


def test_missing_single_over_scan_warns_before_materializing(csv_path):
    """The fine-grained missing tasks break the memory bound: they must say
    so (with an estimated size) before falling back to materialization."""
    with pytest.warns(UserWarning, match="materializ"):
        plot_missing(_scan(csv_path), "rating", mode="intermediates")
    with pytest.warns(UserWarning, match="MB estimated"):
        plot_missing(_scan(csv_path), "rating", "price", mode="intermediates")


def test_scan_rejects_unknown_column(csv_path):
    with pytest.raises(Exception):
        plot(_scan(csv_path), "not_a_column", mode="intermediates")


def test_streaming_pair_counts_are_capacity_bounded(csv_path):
    """Two categorical columns over a scan must not accumulate an unbounded
    pair table: the reduction prunes to the streaming capacity."""
    from repro.eda.compute.base import (
        STREAMING_CATEGORY_CAPACITY,
        _chunk_pair_counts_bounded,
        _combine_pair_counts_bounded,
    )
    from repro.frame.frame import DataFrame as _DF

    chunk = _DF({"a": [f"a{i}" for i in range(500)],
                 "b": [f"b{i}" for i in range(500)]})
    counts = _chunk_pair_counts_bounded(chunk, "a", "b", 100)
    assert len(counts) == 100
    merged = _combine_pair_counts_bounded([counts, counts])
    assert len(merged) <= STREAMING_CATEGORY_CAPACITY
    # And the end-to-end C x C call over a scan still matches in-memory on
    # low-cardinality data (exact below the bound) — covered by
    # test_bivariate_equivalent; here we just confirm the streaming call
    # goes through the bounded reduction without error.
    result = plot(_scan(csv_path), "city", "house_type", mode="intermediates")
    assert "nested_bar_chart" in result.items or "stats" in result.items
