"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    TABLE2_DATASETS,
    bird_strike_dataset,
    bitcoin_dataset,
    delayed_flights_dataset,
    generate_dataset,
    load_kaggle_like,
    table2_dataset_names,
)
from repro.datasets.kaggle import table2_entry
from repro.datasets.synthetic import ColumnSpec, DatasetSpec, mixed_spec
from repro.errors import DatasetError
from repro.eda.dtypes import SemanticType, detect_frame_types


class TestSyntheticGenerator:
    def test_mixed_spec_shapes(self):
        spec = mixed_spec("demo", n_rows=500, n_numerical=4, n_categorical=3)
        assert spec.n_numerical == 4
        assert spec.n_categorical == 3
        frame = generate_dataset(spec)
        assert frame.shape == (500, 7)

    def test_generation_is_deterministic(self):
        spec = mixed_spec("demo", 200, 2, 2, seed=9)
        assert generate_dataset(spec) == generate_dataset(spec)

    def test_missing_rate_is_applied(self):
        spec = DatasetSpec("m", 2000, [ColumnSpec("x", "normal", missing_rate=0.3)])
        frame = generate_dataset(spec)
        assert frame.column("x").missing_rate() == pytest.approx(0.3, abs=0.05)

    def test_categorical_cardinality(self):
        spec = DatasetSpec("c", 5000, [ColumnSpec("c", "categorical", cardinality=12)])
        frame = generate_dataset(spec)
        assert frame.column("c").nunique() == 12

    def test_invalid_specs_rejected(self):
        with pytest.raises(DatasetError):
            ColumnSpec("x", kind="mystery")
        with pytest.raises(DatasetError):
            ColumnSpec("x", missing_rate=1.5)
        with pytest.raises(DatasetError):
            generate_dataset(DatasetSpec("empty", 10, []))

    def test_scaled_spec(self):
        spec = mixed_spec("demo", 100, 1, 1).scaled(1000)
        assert spec.n_rows == 1000


class TestTable2Datasets:
    def test_catalog_has_fifteen_entries(self):
        assert len(TABLE2_DATASETS) == 15
        assert len(table2_dataset_names()) == 15

    def test_entries_match_paper_shapes(self):
        titanic = table2_entry("titanic")
        assert titanic.n_rows == 891
        assert titanic.n_numerical == 7 and titanic.n_categorical == 5
        credit = table2_entry("credit")
        assert credit.n_columns == 25
        assert credit.paper_speedup == pytest.approx(20.8, abs=0.1)

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            table2_entry("mnist")
        with pytest.raises(DatasetError):
            load_kaggle_like("mnist")

    @pytest.mark.parametrize("name", ["heart", "titanic", "chess"])
    def test_generated_shape_matches_entry(self, name):
        entry = table2_entry(name)
        frame = load_kaggle_like(name)
        assert frame.shape == (entry.n_rows, entry.n_columns)
        types = detect_frame_types(frame)
        numerical = sum(1 for semantic in types.values()
                        if semantic is SemanticType.NUMERICAL)
        # The synthetic generator reproduces the numerical/categorical split
        # (low-cardinality integer columns may read as categorical).
        assert abs(numerical - entry.n_numerical) <= 2

    def test_row_scale(self):
        frame = load_kaggle_like("rain", row_scale=0.01)
        assert len(frame) == 1420


class TestScenarioDatasets:
    def test_bitcoin_schema(self):
        frame = bitcoin_dataset(n_rows=1000)
        assert frame.shape == (1000, 8)
        assert frame.columns[:2] == ["timestamp", "open"]
        close = frame.column("close").to_numpy(drop_missing=True)
        assert np.all(close > 0)
        with pytest.raises(DatasetError):
            bitcoin_dataset(0)

    def test_bird_strike_shape_and_missing_pattern(self):
        frame = bird_strike_dataset(n_rows=5000)
        assert frame.shape == (5000, 12)
        assert frame.column("cost_repair").missing_count() > 0
        # Rows without damage drive the missing repair costs (the ground truth
        # pattern the study's task 4 asks about).
        damage = np.array([value == "no damage" for value in
                           frame.column("damage_level").to_list()])
        missing = frame.column("cost_repair").isna()
        assert missing[damage].mean() > missing[~damage].mean()

    def test_delayed_flights_shape_and_correlation(self):
        frame = delayed_flights_dataset(n_rows=5000)
        assert frame.shape == (5000, 14)
        both = frame.column("departure_delay").notna() & \
            frame.column("arrival_delay").notna()
        x = frame.column("departure_delay").filter(both).to_numpy()
        y = frame.column("arrival_delay").filter(both).to_numpy()
        assert np.corrcoef(x, y)[0, 1] > 0.85

    def test_scenario_datasets_reject_bad_sizes(self):
        with pytest.raises(DatasetError):
            bird_strike_dataset(0)
        with pytest.raises(DatasetError):
            delayed_flights_dataset(-5)
