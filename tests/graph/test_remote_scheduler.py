"""Tests for the socket-based remote scheduler and its wire protocol.

The remote backend inherits the process backend's planning (hybrid
dispatch, ``can_run_in_worker``), so these tests pin what is genuinely new:

* **wire protocol** — length-prefixed, checksummed framing that rejects
  corruption, bad magic, unknown types and oversized frames;
* **authentication** — nothing a client sends is unpickled before it
  answers the coordinator's HMAC challenge; a stray or wrong-key client
  is rejected without disturbing the pool, and a correct-key handshake
  (the attach-mode contract) is admitted;
* **failure semantics** — a worker killed mid-bundle gets its bundles
  re-dispatched to a live worker (counted in ``RunStats.redispatched``)
  and the run completes with correct results; a wedged worker is detected
  via the per-task timeout, which starts at the worker's STARTED frame so
  queue wait behind a slow-but-healthy bundle never trips it;
* **accounting** — shipped/received wire bytes and per-worker utilization
  reach ``RunStats``, and a warm-cache replay ships zero bundles and zero
  bytes.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.graph import (
    SynchronousScheduler,
    Task,
    TaskCache,
    available_schedulers,
    delayed,
    get_scheduler,
)
from repro.graph import wire
from repro.graph.remote import (
    AFFINITY_SPILL_INFLIGHT,
    RemoteExecutor,
    RemoteScheduler,
    _bundle_affinity,
    shutdown_remote_pools,
)

@pytest.fixture(scope="module", autouse=True)
def _reap_remote_pools():
    yield
    shutdown_remote_pools()


# --------------------------------------------------------------------------- #
# Module-level task functions (the picklability contract requires them).
# --------------------------------------------------------------------------- #
def make_values(n):
    return list(range(n))


def square_sum(values):
    return sum(v * v for v in values)


def worker_pid(values):
    return os.getpid()


def combine_sum(parts):
    return sum(parts)


def boom(values):
    raise ValueError("boom in remote worker")


def crash_once(marker_path, values):
    """Kill the executing worker on first call, succeed on re-dispatch."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        os._exit(3)
    return sum(values)


def stall_once(marker_path, values):
    """Exceed the pool's task timeout on first call, succeed on re-dispatch."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        time.sleep(30.0)
    return sum(values)


def sleep_then_sum(seconds, values):
    """A healthy-but-slow task: sleeps, then reduces."""
    time.sleep(seconds)
    return sum(values)


def path_length(path, offset):
    """A parse-shaped task: path first, like a CSV byte-range parse."""
    return len(path) + offset


def chunked_graph(n_chunks=4, chunk_func=square_sum):
    """A reduction-shaped graph: chunk roots -> per-chunk work -> combine."""
    chunks = [delayed(make_values, prefix="chunk")(10 + i)
              for i in range(n_chunks)]
    partials = [chunk.then(chunk_func) for chunk in chunks]
    return delayed(combine_sum, prefix="combine")(partials)


@pytest.fixture
def scheduler():
    # Default pool parameters on purpose: every test sharing them reuses
    # one process-wide pool, so interpreter spawn cost is paid once.
    instance = RemoteScheduler(workers=2)
    yield instance
    instance.close()


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
class TestWireProtocol:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        return left, right

    def test_roundtrip(self):
        left, right = self._pair()
        payload = wire.dump_payload({"id": "w1", "pid": 42})
        sent = wire.send_frame(left, wire.MSG_HELLO, payload)
        assert sent == len(payload) + 13          # 4s + B + I + I header
        msg_type, received = wire.recv_frame(right)
        assert msg_type == wire.MSG_HELLO
        assert wire.load_payload(received) == {"id": "w1", "pid": 42}

    def test_empty_payload_roundtrip(self):
        left, right = self._pair()
        wire.send_frame(left, wire.MSG_PING)
        assert wire.recv_frame(right) == (wire.MSG_PING, b"")

    def test_bad_magic_rejected(self):
        left, right = self._pair()
        left.sendall(b"XXXX" + wire.pack_frame(wire.MSG_PING)[4:])
        with pytest.raises(wire.WireError, match="magic"):
            wire.recv_frame(right)

    def test_unknown_type_rejected(self):
        left, right = self._pair()
        frame = bytearray(wire.pack_frame(wire.MSG_PING))
        frame[4] = 250
        left.sendall(bytes(frame))
        with pytest.raises(wire.WireError, match="type"):
            wire.recv_frame(right)

    def test_corrupted_payload_rejected(self):
        left, right = self._pair()
        frame = bytearray(wire.pack_frame(wire.MSG_TASK, b"hello world"))
        frame[-1] ^= 0xFF                          # flip a payload bit
        left.sendall(bytes(frame))
        with pytest.raises(wire.WireError, match="checksum"):
            wire.recv_frame(right)

    def test_oversized_announcement_rejected_without_reading(self):
        left, right = self._pair()
        header = wire._HEADER.pack(wire.MAGIC, wire.MSG_TASK,
                                   wire.MAX_FRAME_BYTES + 1, 0)
        left.sendall(header)
        with pytest.raises(wire.WireError, match="frame limit"):
            wire.recv_frame(right)

    def test_oversized_payload_refused_on_send(self):
        class Huge(bytes):
            def __len__(self):
                return wire.MAX_FRAME_BYTES + 1

        with pytest.raises(wire.WireError, match="frame limit"):
            wire.pack_frame(wire.MSG_TASK, Huge())

    def test_eof_raises_connection_closed(self):
        left, right = self._pair()
        left.close()
        with pytest.raises(wire.ConnectionClosed):
            wire.recv_frame(right)

    def test_parse_address(self):
        assert wire.parse_address("127.0.0.1:8786") == ("127.0.0.1", 8786)
        assert wire.parse_address("somehost:0") == ("somehost", 0)
        for bad in ("no-port", ":8786", "host:port", "host:70000"):
            with pytest.raises(wire.WireError):
                wire.parse_address(bad)


# --------------------------------------------------------------------------- #
# Scheduler basics
# --------------------------------------------------------------------------- #
class TestRemoteSchedulerBasics:
    def test_registered(self):
        assert "remote" in available_schedulers()
        assert isinstance(get_scheduler("remote", workers=1), RemoteScheduler)

    def test_agrees_with_synchronous(self, scheduler):
        total = chunked_graph()
        expected = total.compute(scheduler=SynchronousScheduler())
        assert total.compute(scheduler=scheduler) == expected

    def test_bundles_run_in_worker_processes(self, scheduler):
        chunk = delayed(make_values, prefix="chunk")(5)
        pid = chunk.then(worker_pid).compute(scheduler=scheduler)
        assert pid != os.getpid()

    def test_wire_accounting_reaches_run_stats(self, scheduler):
        chunked_graph().compute(scheduler=scheduler)
        run = scheduler.last_run
        assert run.shipped >= 8                    # 4 roots + 4 members
        assert run.shipped_bytes > 0
        assert run.bytes_received > 0
        assert run.redispatched == 0
        assert run.worker_utilization, "per-worker utilization must be reported"
        assert all(0.0 <= busy <= 1.0
                   for busy in run.worker_utilization.values())

    def test_worker_task_exception_names_the_task(self, scheduler):
        from repro.errors import SchedulerError
        chunk = delayed(make_values, prefix="chunk")(5)
        bad = chunk.then(boom)
        with pytest.raises(SchedulerError) as excinfo:
            bad.compute(scheduler=scheduler)
        assert excinfo.value.key == bad.key
        assert "boom in remote worker" in str(excinfo.value.cause)

    def test_bundle_affinity_picks_the_parse_path_argument(self):
        task = Task("read_csv_partition-0", make_values,
                    ("/data/part-0.csv", 0, 4096), {})
        assert _bundle_affinity(task) == "/data/part-0.csv"
        # Projected/filtered parse variants still classify.
        task = Task("read_csv_partition.proj.filt-3", make_values,
                    ("data/part-1.csv", 0, 4096), {})
        assert _bundle_affinity(task) == "data/part-1.csv"
        assert _bundle_affinity(Task("chunk-0", make_values, (7,), {})) is None

    def test_bundle_affinity_ignores_non_parse_and_non_path_args(self):
        # A slash-bearing string in a non-parse task (e.g. a date format)
        # must not pin the bundle to a worker.
        task = Task("sketch-1", make_values, ("%m/%d/%Y",), {})
        assert _bundle_affinity(task) is None
        # A parse task whose first argument is not a path (in-memory
        # slices carry the frame itself) has no file to shard by.
        task = Task("partition-2", make_values, (object(), 0, 100), {})
        assert _bundle_affinity(task) is None

    def test_single_path_scan_does_not_pin(self, scheduler):
        # Every bundle of a single-file scan must round-robin across the
        # pool: with pinning active they would all land on one worker and
        # the remote backend would run serially.
        chunks = [delayed(path_length, prefix="read_csv_partition")(
            "/data/only.csv", offset) for offset in range(4)]
        total = delayed(combine_sum, prefix="combine")(chunks)
        total.compute(scheduler=scheduler)
        assert scheduler._affinity_active is False

        # Two distinct paths in the parse tasks switch pinning on.
        chunks = [delayed(path_length, prefix="read_csv_partition")(path, 0)
                  for path in ("/data/a.csv", "/data/b.csv")]
        total = delayed(combine_sum, prefix="combine")(chunks)
        total.compute(scheduler=scheduler)
        assert scheduler._affinity_active is True

    def test_pinned_bundles_spill_when_owner_backs_up(self, scheduler):
        executor = scheduler.executor()
        assert isinstance(executor, RemoteExecutor)
        pool = executor.pool()
        assert pool.wait_for_workers(2, timeout=60.0) >= 2
        # Saturate the affinity owner with slow pinned tasks; once its
        # queue reaches the spill threshold, further pinned submissions
        # must land on the other (idle) worker instead of queueing.
        futures = [pool.submit(sleep_then_sum, 0.4, [1],
                               affinity="/data/hot.csv")
                   for _ in range(AFFINITY_SPILL_INFLIGHT + 2)]
        with pool._lock:
            owner = pool._affinity["/data/hot.csv"]
            spread = {task.worker
                      for link in pool._workers.values()
                      for task in link.inflight.values()}
        assert owner in spread
        assert len(spread) > 1, "overflow beyond the spill threshold must " \
                                "reach a second worker"
        assert all(f.result(timeout=60.0) == 1 for f in futures)


# --------------------------------------------------------------------------- #
# Authentication
# --------------------------------------------------------------------------- #
class TestAuthentication:
    def test_wrong_key_rejected_without_unpickling(self, scheduler):
        executor = scheduler.executor()
        assert isinstance(executor, RemoteExecutor)
        pool = executor.pool()
        pool.wait_for_workers(1, timeout=60.0)
        before = pool.stats_snapshot().rejected_connections
        host, port = wire.parse_address(pool.address)
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.settimeout(10.0)
            msg_type, nonce = wire.recv_frame(sock)
            assert msg_type == wire.MSG_CHALLENGE
            assert len(nonce) == wire.NONCE_BYTES
            wire.send_frame(sock, wire.MSG_HELLO, wire.dump_json(
                {"id": "intruder", "pid": 1, "host": "elsewhere",
                 "digest": wire.compute_digest("not-the-key", nonce),
                 "nonce": "00" * wire.NONCE_BYTES}))
            # No WELCOME: the coordinator hangs up on a wrong digest.
            with pytest.raises(wire.ConnectionClosed):
                wire.recv_frame(sock)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if pool.stats_snapshot().rejected_connections > before:
                break
            time.sleep(0.05)
        assert pool.stats_snapshot().rejected_connections > before
        assert "intruder" not in pool.worker_ids()
        # The pool still serves real work afterwards.
        assert pool.submit(square_sum, [1, 2]).result(timeout=30.0) == 5

    def test_shared_key_handshake_admits_attached_client(self):
        # The attach-mode contract: a client holding the configured key
        # passes the challenge-response and joins the pool; the WELCOME
        # digest proves the coordinator holds the key too.
        executor = RemoteExecutor(workers=0, authkey="s3cret-handshake")
        pool = executor.pool()
        try:
            host, port = wire.parse_address(pool.address)
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.settimeout(10.0)
                msg_type, nonce = wire.recv_frame(sock)
                assert msg_type == wire.MSG_CHALLENGE
                counter_nonce = os.urandom(wire.NONCE_BYTES)
                wire.send_frame(sock, wire.MSG_HELLO, wire.dump_json(
                    {"id": "attached", "pid": 0, "host": "elsewhere",
                     "digest": wire.compute_digest("s3cret-handshake", nonce),
                     "nonce": counter_nonce.hex()}))
                msg_type, payload = wire.recv_frame(sock)
                assert msg_type == wire.MSG_WELCOME
                assert wire.verify_digest(
                    "s3cret-handshake", counter_nonce,
                    wire.load_json(payload).get("digest"))
                assert pool.wait_for_workers(1, timeout=10.0) == 1
                assert pool.worker_ids() == ["attached"]
        finally:
            executor.discard()

    def test_worker_refuses_unauthenticated_coordinator(self):
        # TASK frames carry pickled callables, so a worker must hang up on
        # a "coordinator" that cannot answer its counter-nonce.
        from repro.graph.remote import worker_main
        server = socket.create_server(("127.0.0.1", 0))
        server.settimeout(10.0)
        host, port = server.getsockname()[:2]
        outcome = {}

        def run_worker():
            try:
                worker_main(host, port, worker_id="w", authkey="worker-key")
            except SystemExit as error:
                outcome["exit"] = str(error)

        thread = threading.Thread(target=run_worker, daemon=True)
        thread.start()
        try:
            conn, _ = server.accept()
            conn.settimeout(10.0)
            wire.send_frame(conn, wire.MSG_CHALLENGE,
                            b"\x00" * wire.NONCE_BYTES)
            msg_type, payload = wire.recv_frame(conn)
            assert msg_type == wire.MSG_HELLO
            hello = wire.load_json(payload)
            wire.send_frame(conn, wire.MSG_WELCOME, wire.dump_json(
                {"digest": wire.compute_digest(
                    "not-the-workers-key", bytes.fromhex(hello["nonce"]))}))
            # The worker must disconnect instead of serving tasks.
            with pytest.raises(wire.ConnectionClosed):
                wire.recv_frame(conn)
            conn.close()
        finally:
            server.close()
        thread.join(timeout=10.0)
        assert "handshake" in outcome["exit"]

    def test_worker_without_key_exits_early(self, monkeypatch):
        from repro.graph.remote import AUTHKEY_ENV, worker_main
        monkeypatch.delenv(AUTHKEY_ENV, raising=False)
        with pytest.raises(SystemExit, match=AUTHKEY_ENV):
            worker_main("127.0.0.1", 1, worker_id="w")


# --------------------------------------------------------------------------- #
# Failure semantics
# --------------------------------------------------------------------------- #
class TestFailureSemantics:
    def test_worker_crash_mid_bundle_redispatches(self, tmp_path, scheduler):
        # First execution of the bundle kills its worker after dropping a
        # marker file; the pool must detect the dead connection, re-dispatch
        # the bundle to a live worker (which sees the marker and succeeds)
        # and complete the run with the right answer — not hang, not fail.
        marker = str(tmp_path / "crashed-once")
        chunks = [delayed(make_values, prefix="chunk")(10 + i)
                  for i in range(4)]
        partials = [delayed(square_sum, prefix="sq")(chunk)
                    for chunk in chunks[1:]]
        partials.append(delayed(crash_once, prefix="sq")(marker, chunks[0]))
        total = delayed(combine_sum, prefix="combine")(partials)

        # Computed by hand — running crash_once through the synchronous
        # scheduler would os._exit this very process.
        expected = sum(square_sum(range(10 + i)) for i in (1, 2, 3)) \
            + sum(range(10))
        assert total.compute(scheduler=scheduler) == expected
        assert scheduler.last_run.redispatched >= 1

    def test_slow_worker_timeout_redispatches(self, tmp_path):
        # A bundle outliving timeout_s marks its worker as wedged; the
        # bundle must move to a live worker instead of stalling the run.
        marker = str(tmp_path / "stalled-once")
        scheduler = RemoteScheduler(workers=2, heartbeat_s=0.3, timeout_s=2.0)
        try:
            chunk = delayed(make_values, prefix="chunk")(10)
            slow = delayed(stall_once, prefix="sq")(marker, chunk)
            started = time.monotonic()
            assert slow.compute(scheduler=scheduler) == sum(range(10))
            assert time.monotonic() - started < 25.0, \
                "re-dispatch must beat the 30s stall"
            assert scheduler.last_run.redispatched >= 1
        finally:
            scheduler.close()

    def test_queue_wait_does_not_trip_the_task_timeout(self):
        # Workers execute their queue serially, so the last of four 0.5s
        # bundles dispatched to one worker waits ~1.5s — past timeout_s —
        # before it runs.  The timeout must clock from the worker's
        # STARTED frame, not from dispatch: every bundle completes on the
        # original worker with zero re-dispatches.
        executor = RemoteExecutor(workers=1, heartbeat_s=0.2, timeout_s=1.0)
        pool = executor.pool()
        try:
            futures = [pool.submit(sleep_then_sum, 0.5, [i])
                       for i in range(4)]
            assert [f.result(timeout=60.0) for f in futures] == [0, 1, 2, 3]
            assert pool.stats_snapshot().redispatched == 0
        finally:
            executor.discard()

    def test_malformed_handshake_rejected_pool_unharmed(self, scheduler):
        executor = scheduler.executor()
        assert isinstance(executor, RemoteExecutor)
        pool = executor.pool()
        pool.wait_for_workers(1, timeout=60.0)
        before = pool.stats_snapshot().rejected_connections
        host, port = wire.parse_address(pool.address)

        # A stray client speaking garbage instead of a HELLO frame.
        with socket.create_connection((host, port), timeout=5.0) as stray:
            stray.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 64)
        # A well-framed client whose first message is not HELLO.
        with socket.create_connection((host, port), timeout=5.0) as stray:
            wire.send_frame(stray, wire.MSG_RESULT, wire.dump_payload((1, True, 2)))

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if pool.stats_snapshot().rejected_connections >= before + 2:
                break
            time.sleep(0.05)
        assert pool.stats_snapshot().rejected_connections >= before + 2

        # The pool still serves real work afterwards.
        assert pool.submit(square_sum, [1, 2, 3]).result(timeout=30.0) == 14

    def test_shut_down_pool_refuses_submissions(self):
        executor = RemoteExecutor(workers=1, heartbeat_s=1.9)
        pool = executor.pool()
        assert pool.submit(square_sum, [2]).result(timeout=60.0) == 4
        executor.discard()
        from repro.graph.remote import RemoteExecutionError
        with pytest.raises(RemoteExecutionError):
            pool.submit(square_sum, [2])


# --------------------------------------------------------------------------- #
# Cache interplay
# --------------------------------------------------------------------------- #
class TestCacheInterplay:
    def test_warm_replay_ships_zero_bundles_and_bytes(self):
        cache = TaskCache()
        scheduler = RemoteScheduler(workers=2, cache=cache)
        try:
            cold = chunked_graph().compute(scheduler=scheduler)
            assert scheduler.last_run.shipped > 0
            assert scheduler.last_run.shipped_bytes > 0
            warm = chunked_graph().compute(scheduler=scheduler)
            assert warm == cold
            run = scheduler.last_run
            assert run.executed == 0
            assert run.cache_hits > 0
            assert run.shipped == 0
            assert run.shipped_bytes == 0
            assert run.bytes_received == 0
        finally:
            scheduler.close()

    def test_warm_replay_without_pool_ships_nothing(self):
        # A fully warm run must not even start workers: a scheduler whose
        # every task is served from cache reports zero wire traffic from a
        # pool that was never created.
        cache = TaskCache()
        warm_scheduler = RemoteScheduler(workers=2, cache=cache,
                                         heartbeat_s=1.7)
        cold_scheduler = RemoteScheduler(workers=2, cache=cache)
        try:
            cold = chunked_graph().compute(scheduler=cold_scheduler)
            assert chunked_graph().compute(scheduler=warm_scheduler) == cold
            run = warm_scheduler.last_run
            assert run.shipped == 0 and run.shipped_bytes == 0
            executor = warm_scheduler.executor()
            assert isinstance(executor, RemoteExecutor)
            assert executor.pool(create=False) is None, \
                "a fully cached run must not spawn workers"
        finally:
            warm_scheduler.close()
            cold_scheduler.close()
