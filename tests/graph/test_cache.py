"""Tests for the cross-call intermediate cache (repro.graph.cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frame import DataFrame
from repro.graph import (
    SynchronousScheduler,
    TaskCache,
    ThreadedScheduler,
    assign_cache_keys,
    delayed,
)
from repro.graph.cache import estimate_size
from repro.graph.delayed import merge_graphs
from repro.graph.optimize import optimize


def _double(value):
    return value * 2


def _add(first, second):
    return first + second


def _total(frame: DataFrame, column: str) -> float:
    values = frame.column(column).to_numpy(drop_missing=True)
    return float(values.sum())


def _optimized_graph(*values):
    graph, keys = merge_graphs(list(values))
    optimized, output_map, _ = optimize(graph, keys)
    return optimized, [output_map[key] for key in keys]


class TestCacheKeys:
    def test_same_structure_same_keys_across_builds(self):
        first = delayed(_add)(delayed(_double)(21), 1)
        second = delayed(_add)(delayed(_double)(21), 1)
        keys_first = assign_cache_keys(first.graph)
        keys_second = assign_cache_keys(second.graph)
        # Graph keys are counter-based and differ; cache keys must not.
        assert set(keys_first.values()) == set(keys_second.values())
        assert keys_first[first.key] == keys_second[second.key]

    def test_different_arguments_different_keys(self):
        first = delayed(_double)(21)
        second = delayed(_double)(22)
        assert assign_cache_keys(first.graph)[first.key] != \
            assign_cache_keys(second.graph)[second.key]

    def test_frame_arguments_keyed_by_content(self):
        def key_of(frame):
            value = delayed(_total)(frame, "x")
            return assign_cache_keys(value.graph)[value.key]

        assert key_of(DataFrame({"x": [1.0, 2.0, 3.0]})) == \
            key_of(DataFrame({"x": [1.0, 2.0, 3.0]}))
        assert key_of(DataFrame({"x": [1.0, 2.0, 3.0]})) != \
            key_of(DataFrame({"x": [1.0, 2.0, 4.0]}))

    def test_closures_and_impure_tasks_are_uncacheable(self):
        def closure(value):
            return value

        lazy_closure = delayed(closure)(1)
        assert assign_cache_keys(lazy_closure.graph)[lazy_closure.key] is None

        impure = delayed(_double, pure=False)(21)
        assert assign_cache_keys(impure.graph)[impure.key] is None

    def test_uncacheable_dependency_propagates(self):
        impure = delayed(_double, pure=False)(21)
        consumer = impure.then(_add, 1)
        keys = assign_cache_keys(consumer.graph)
        assert keys[consumer.key] is None

    def test_csv_partition_keys_change_when_file_is_overwritten(self, tmp_path):
        import os
        import time as time_module

        from repro.graph import PartitionedFrame

        path = tmp_path / "data.csv"
        path.write_text("x\n" + "\n".join(str(i) for i in range(10)) + "\n")

        def partition_key(csv_path):
            partitioned = PartitionedFrame.from_csv(str(csv_path), partition_rows=100)
            part = partitioned.partitions[0]
            return assign_cache_keys(part.graph)[part.key]

        first = partition_key(path)
        assert first is not None
        # Same-length overwrite: identical byte boundaries, different content.
        time_module.sleep(0.01)  # ensure a new mtime
        path.write_text("x\n" + "\n".join(str(9 - i if i < 10 else i)
                                          for i in range(10)) + "\n")
        assert partition_key(path) != first


class TestTaskCache:
    def test_lookup_and_stats(self):
        cache = TaskCache(max_bytes=1 << 20)
        hit, _ = cache.lookup("missing")
        assert not hit
        cache.put("k", 42)
        hit, value = cache.lookup("k")
        assert hit and value == 42
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_lru_eviction_respects_max_bytes(self):
        payload = np.zeros(1000, dtype=np.float64)  # ~8 KB each
        entry_size = estimate_size(payload)
        cache = TaskCache(max_bytes=entry_size * 3)
        for index in range(5):
            cache.put(f"k{index}", payload.copy())
        assert cache.stats.current_bytes <= cache.max_bytes
        assert cache.stats.evictions >= 2
        # The oldest entries were evicted, the newest survive.
        assert "k0" not in cache
        assert "k4" in cache

    def test_lookup_refreshes_lru_position(self):
        payload = np.zeros(1000, dtype=np.float64)
        cache = TaskCache(max_bytes=estimate_size(payload) * 2)
        cache.put("a", payload.copy())
        cache.put("b", payload.copy())
        cache.lookup("a")               # refresh "a": "b" is now the LRU entry
        cache.put("c", payload.copy())
        assert "a" in cache
        assert "b" not in cache

    def test_oversized_value_rejected(self):
        cache = TaskCache(max_bytes=64)
        assert not cache.put("big", np.zeros(1000))
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_resize_evicts(self):
        payload = np.zeros(1000, dtype=np.float64)
        cache = TaskCache(max_bytes=estimate_size(payload) * 4)
        for index in range(4):
            cache.put(f"k{index}", payload.copy())
        cache.resize(estimate_size(payload) * 2)
        assert len(cache) <= 2
        assert cache.stats.current_bytes <= cache.max_bytes

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            TaskCache(max_bytes=0)

    def test_views_are_detached_on_store(self):
        base = np.arange(1000, dtype=np.float64)
        view = base[100:200]
        cache = TaskCache()
        cache.put("slice", view)
        _, stored = cache.lookup("slice")
        # The entry owns its memory: it no longer pins the parent buffer.
        assert stored.base is None
        np.testing.assert_array_equal(stored, base[100:200])

    def test_sliced_frame_detached_on_store(self):
        frame = DataFrame({"x": np.arange(1000.0)})
        part = frame.slice(0, 100)
        assert part.column("x").data.base is not None  # a view going in
        cache = TaskCache()
        cache.put("part", part)
        _, stored = cache.lookup("part")
        assert stored.column("x").data.base is None
        assert stored == part


@pytest.mark.parametrize("scheduler_factory",
                         [SynchronousScheduler, ThreadedScheduler])
class TestSchedulerCacheIntegration:
    def test_second_run_executes_nothing(self, scheduler_factory):
        cache = TaskCache()
        scheduler = scheduler_factory(cache=cache)

        cold = delayed(_add)(delayed(_double)(21), 1)
        graph, outputs = _optimized_graph(cold)
        assert scheduler.execute(graph, outputs) == {outputs[0]: 43}
        assert scheduler.last_run.executed == 2
        assert scheduler.last_run.cache_hits == 0

        warm = delayed(_add)(delayed(_double)(21), 1)  # rebuilt from scratch
        graph, outputs = _optimized_graph(warm)
        assert scheduler.execute(graph, outputs) == {outputs[0]: 43}
        assert scheduler.last_run.executed == 0
        assert scheduler.last_run.cache_hits == 1
        assert scheduler.last_run.skipped == 1  # the _double ancestor

    def test_partial_overlap_runs_only_new_work(self, scheduler_factory):
        cache = TaskCache()
        scheduler = scheduler_factory(cache=cache)

        shared = delayed(_double)(21)
        graph, outputs = _optimized_graph(shared)
        scheduler.execute(graph, outputs)

        extended = delayed(_add)(delayed(_double)(21), 8)
        graph, outputs = _optimized_graph(extended)
        assert scheduler.execute(graph, outputs)[outputs[0]] == 50
        assert scheduler.last_run.cache_hits == 1   # the shared _double node
        assert scheduler.last_run.executed == 1     # only the new _add node

    def test_without_cache_everything_runs(self, scheduler_factory):
        scheduler = scheduler_factory()
        value = delayed(_add)(delayed(_double)(21), 1)
        graph, outputs = _optimized_graph(value)
        scheduler.execute(graph, outputs)
        scheduler.execute(graph, outputs)
        assert scheduler.last_run.executed == 2
        assert scheduler.last_run.cache_hits == 0

    def test_impure_tasks_never_served_from_cache(self, scheduler_factory):
        calls = {"count": 0}

        def impure_payload(value):
            calls["count"] += 1
            return value

        cache = TaskCache()
        scheduler = scheduler_factory(cache=cache)
        for _ in range(2):
            value = delayed(impure_payload, pure=False)(7)
            graph, outputs = _optimized_graph(value)
            scheduler.execute(graph, outputs)
        assert calls["count"] == 2
