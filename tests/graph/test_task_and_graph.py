"""Tests for Task, tokenization and the TaskGraph container."""

import operator

import pytest

from repro.errors import CycleError, GraphError
from repro.graph import Task, TaskGraph, TaskRef, tokenize


def make_task(key, func, *args, **kwargs):
    return Task(key, func, args, kwargs)


class TestTask:
    def test_dependencies_from_refs(self):
        task = make_task("c", operator.add, TaskRef("a"), TaskRef("b"))
        assert set(task.dependencies()) == {"a", "b"}

    def test_nested_refs_are_found(self):
        task = make_task("c", sum, [TaskRef("a"), TaskRef("b")])
        assert set(task.dependencies()) == {"a", "b"}
        task = make_task("c", dict, values={"k": TaskRef("a")})
        assert task.dependencies() == ["a"]

    def test_execute_resolves_refs(self):
        task = make_task("c", operator.add, TaskRef("a"), 10)
        assert task.execute({"a": 5}) == 15

    def test_substitute_rewrites_refs(self):
        task = make_task("c", operator.add, TaskRef("a"), TaskRef("b"))
        rewritten = task.substitute({"a": "z"})
        assert set(rewritten.dependencies()) == {"z", "b"}

    def test_identical_calls_share_tokens(self):
        first = make_task("k1", operator.add, 1, 2)
        second = make_task("k2", operator.add, 1, 2)
        assert first.token == second.token

    def test_different_args_different_tokens(self):
        assert make_task("k1", operator.add, 1, 2).token != \
            make_task("k2", operator.add, 1, 3).token

    def test_lambdas_never_share_tokens(self):
        assert make_task("k1", lambda x: x, 1).token != \
            make_task("k2", lambda x: x, 1).token

    def test_tokenize_handles_containers(self):
        token_a = tokenize(sum, ([1, 2, TaskRef("a")],), {})
        token_b = tokenize(sum, ([1, 2, TaskRef("a")],), {})
        assert token_a == token_b
        assert token_a != tokenize(sum, ([1, 2, TaskRef("b")],), {})


class TestTaskGraph:
    def build_chain(self):
        graph = TaskGraph()
        graph.add(make_task("a", int, 1))
        graph.add(make_task("b", operator.add, TaskRef("a"), 1))
        graph.add(make_task("c", operator.mul, TaskRef("b"), 2))
        return graph

    def test_toposort_orders_dependencies_first(self):
        order = self.build_chain().toposort()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detection(self):
        graph = TaskGraph()
        graph.add(make_task("a", operator.add, TaskRef("b"), 1))
        graph.add(make_task("b", operator.add, TaskRef("a"), 1))
        with pytest.raises(CycleError):
            graph.toposort()

    def test_validate_unknown_dependency(self):
        graph = TaskGraph([make_task("a", operator.add, TaskRef("ghost"), 1)])
        with pytest.raises(GraphError):
            graph.validate()

    def test_ancestors(self):
        graph = self.build_chain()
        assert graph.ancestors(["c"]) == {"a", "b", "c"}
        assert graph.ancestors(["b"]) == {"a", "b"}

    def test_dependents(self):
        dependents = self.build_chain().dependents()
        assert dependents["a"] == {"b"}
        assert dependents["c"] == set()

    def test_re_adding_same_key_with_different_contents_raises(self):
        graph = TaskGraph([make_task("a", int, 1)])
        with pytest.raises(GraphError):
            graph.add(make_task("a", int, 2))

    def test_update_merges_graphs(self):
        first = TaskGraph([make_task("a", int, 1)])
        second = TaskGraph([make_task("b", int, 2)])
        first.update(second)
        assert set(first.keys()) == {"a", "b"}

    def test_getitem_unknown_key(self):
        with pytest.raises(GraphError):
            TaskGraph()["missing"]

    def test_copy_is_shallow_but_independent(self):
        graph = self.build_chain()
        copy = graph.copy()
        copy.add(make_task("d", int, 4))
        assert "d" not in graph
