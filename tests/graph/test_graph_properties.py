"""Property-based tests of the graph layer (hypothesis)."""

import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame
from repro.graph import PartitionedFrame, compute, delayed, precompute_chunk_sizes
from repro.graph.scheduler import SynchronousScheduler, ThreadedScheduler


@given(n_rows=st.integers(min_value=0, max_value=5000),
       partition_rows=st.integers(min_value=1, max_value=700))
@settings(max_examples=80, deadline=None)
def test_chunk_boundaries_partition_the_row_range(n_rows, partition_rows):
    boundaries = precompute_chunk_sizes(n_rows, partition_rows=partition_rows)
    assert boundaries[0][0] == 0
    assert boundaries[-1][1] == n_rows or (n_rows == 0 and boundaries == [(0, 0)])
    for (start_a, stop_a), (start_b, _) in zip(boundaries, boundaries[1:]):
        assert stop_a == start_b
        assert stop_a - start_a <= partition_rows


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=500),
       partition_rows=st.integers(min_value=1, max_value=100))
@settings(max_examples=40, deadline=None)
def test_partitioned_sum_equals_direct_sum(values, partition_rows):
    frame = DataFrame({"x": values})
    partitioned = PartitionedFrame.from_frame(frame, partition_rows=partition_rows)
    total = partitioned.reduction(
        chunk=lambda part: part.column("x").sum(),
        combine=lambda parts: float(sum(parts))).compute()
    assert np.isclose(total, float(np.sum(values)), rtol=1e-9, atol=1e-6)


@given(numbers=st.lists(st.integers(min_value=-1000, max_value=1000),
                        min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_schedulers_agree_on_random_fan_in_graphs(numbers):
    lazy_values = [delayed(operator.mul)(number, 2) for number in numbers]
    total = delayed(sum)(lazy_values)
    synchronous = compute(total, scheduler=SynchronousScheduler())[0]
    threaded = compute(total, scheduler=ThreadedScheduler(max_workers=4))[0]
    assert synchronous == threaded == 2 * sum(numbers)


@given(numbers=st.lists(st.integers(min_value=0, max_value=50),
                        min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_cse_never_changes_results(numbers):
    lazy_values = [delayed(operator.add)(number, 1) for number in numbers]
    with_cse = compute(*lazy_values, enable_cse=True)
    without_cse = compute(*lazy_values, enable_cse=False)
    assert with_cse == without_cse == [number + 1 for number in numbers]
