"""Tests for the partitioned frame and chunk-size precompute stage."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.frame import DataFrame
from repro.graph import PartitionedFrame, precompute_chunk_sizes
from repro.graph.partition import tree_combine
from repro.graph.delayed import delayed


@pytest.fixture
def wide_frame() -> DataFrame:
    rng = np.random.default_rng(5)
    return DataFrame({
        "x": rng.normal(0, 1, 1000),
        "y": rng.integers(0, 50, 1000),
        "g": list(rng.choice(["a", "b", "c"], 1000)),
    })


class TestPrecomputeChunkSizes:
    def test_covers_all_rows(self):
        boundaries = precompute_chunk_sizes(1050, partition_rows=100)
        assert boundaries[0] == (0, 100)
        assert boundaries[-1] == (1000, 1050)
        assert sum(stop - start for start, stop in boundaries) == 1050

    def test_n_partitions(self):
        boundaries = precompute_chunk_sizes(1000, n_partitions=4)
        assert len(boundaries) == 4

    def test_empty_input(self):
        assert precompute_chunk_sizes(0) == [(0, 0)]

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            precompute_chunk_sizes(10, partition_rows=5, n_partitions=2)
        with pytest.raises(GraphError):
            precompute_chunk_sizes(10, partition_rows=0)
        with pytest.raises(GraphError):
            precompute_chunk_sizes(-1)
        with pytest.raises(GraphError):
            precompute_chunk_sizes(10, n_partitions=0)


class TestPartitionedFrame:
    def test_partition_counts_and_rows(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=128)
        assert partitioned.npartitions == 8
        assert partitioned.n_rows == 1000
        assert partitioned.columns == wide_frame.columns

    def test_compute_round_trips_the_frame(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=300)
        assert partitioned.compute() == wide_frame

    def test_reduction_matches_direct_computation(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=100)
        total = partitioned.reduction(
            chunk=lambda part: part.column("x").sum(),
            combine=lambda parts: sum(parts)).compute()
        assert total == pytest.approx(wide_frame.column("x").sum())

    def test_reduction_with_finalize(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=100)
        mean = partitioned.reduction(
            chunk=lambda part: (part.column("x").sum(), len(part)),
            combine=lambda parts: (sum(p[0] for p in parts), sum(p[1] for p in parts)),
            finalize=lambda pair: pair[0] / pair[1]).compute()
        assert mean == pytest.approx(wide_frame.column("x").mean())

    def test_single_partition_still_runs_combine(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=5000)
        assert partitioned.npartitions == 1
        total = partitioned.reduction(
            chunk=lambda part: len(part),
            combine=lambda parts: sum(parts)).compute()
        assert total == 1000

    def test_map_partitions(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=250)
        lengths = [value.compute() for value in partitioned.map_partitions(len)]
        assert sum(lengths) == 1000

    def test_column_values(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=400)
        columns = [value.compute() for value in partitioned.column_values("x")]
        assert sum(len(column) for column in columns) == 1000
        with pytest.raises(GraphError):
            partitioned.column_values("missing_column")

    def test_partition_slices_are_shared_between_reductions(self, wide_frame):
        from repro.graph.delayed import merge_graphs
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=100)
        first = partitioned.reduction(chunk=len, combine=sum)
        second = partitioned.reduction(
            chunk=lambda part: part.column("y").sum(), combine=sum)
        merged, _ = merge_graphs([first, second])
        slice_tasks = [key for key in merged.keys() if key.startswith("partition-")]
        assert len(slice_tasks) == partitioned.npartitions


class TestCsvPartitioning:
    def test_from_csv_round_trips_the_frame(self, wide_frame, tmp_path):
        from repro.frame.io import write_csv
        path = tmp_path / "wide.csv"
        write_csv(wide_frame, str(path))
        partitioned = PartitionedFrame.from_csv(str(path), partition_rows=128)
        assert partitioned.npartitions == 8
        assert partitioned.n_rows == len(wide_frame)
        assert partitioned.columns == wide_frame.columns
        total = partitioned.reduction(
            chunk=lambda part: part.column("x").sum(),
            combine=lambda parts: float(sum(parts))).compute()
        assert total == pytest.approx(wide_frame.column("x").sum())

    def test_from_csv_partitions_share_dtypes(self, wide_frame, tmp_path):
        from repro.frame.io import write_csv
        path = tmp_path / "wide.csv"
        write_csv(wide_frame, str(path))
        partitioned = PartitionedFrame.from_csv(str(path), partition_rows=400)
        frames = [partition.compute() for partition in partitioned.partitions]
        dtype_sets = {tuple(sorted((name, dtype.value)
                                   for name, dtype in frame.dtypes.items()))
                      for frame in frames}
        assert len(dtype_sets) == 1

    def test_precompute_csv_chunks_validation(self, tmp_path):
        from repro.graph.partition import precompute_csv_chunks
        path = tmp_path / "tiny.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        columns, boundaries, ranges = precompute_csv_chunks(str(path), 10)
        assert columns == ["a", "b"]
        assert boundaries == [(0, 2)]
        assert len(ranges) == 1
        with pytest.raises(GraphError):
            precompute_csv_chunks(str(path), 0)


class TestTreeCombine:
    def test_tree_combine_handles_many_levels(self):
        values = [delayed(int)(index) for index in range(30)]
        total = tree_combine(values, combine=sum, split_every=4)
        assert total.compute() == sum(range(30))

    def test_tree_combine_empty_raises(self):
        with pytest.raises(GraphError):
            tree_combine([], combine=sum)

    def test_mismatched_boundaries_rejected(self, wide_frame):
        partitioned = PartitionedFrame.from_frame(wide_frame, partition_rows=100)
        with pytest.raises(GraphError):
            PartitionedFrame(partitioned.partitions, wide_frame.columns, [(0, 10)])
