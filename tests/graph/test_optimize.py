"""Tests for the graph optimization passes."""

import operator

from repro.graph import TaskGraph, Task, TaskRef, cull, common_subexpression_elimination, fuse_linear_chains, optimize
from repro.graph.scheduler import SynchronousScheduler


def make_task(key, func, *args):
    return Task(key, func, args, {})


def build_diamond():
    """base -> (left, right) -> top, plus an unused orphan task."""
    graph = TaskGraph()
    graph.add(make_task("base", int, 3))
    graph.add(make_task("left", operator.add, TaskRef("base"), 1))
    graph.add(make_task("right", operator.add, TaskRef("base"), 1))
    graph.add(make_task("top", operator.mul, TaskRef("left"), TaskRef("right")))
    graph.add(make_task("orphan", int, 99))
    return graph


class TestCull:
    def test_cull_removes_unreachable_tasks(self):
        graph = build_diamond()
        culled, stats = cull(graph, ["top"])
        assert "orphan" not in culled
        assert stats.culled == 1
        assert len(culled) == 4

    def test_cull_keeps_everything_needed(self):
        culled, _ = cull(build_diamond(), ["top", "orphan"])
        assert len(culled) == 5


class TestCSE:
    def test_identical_tasks_are_merged(self):
        graph = build_diamond()
        merged, output_map, stats = common_subexpression_elimination(graph, ["top"])
        # left and right compute the same value and collapse into one task.
        assert stats.merged_by_cse == 1
        assert len(merged) == 4

    def test_merged_graph_produces_same_result(self):
        graph = build_diamond()
        merged, output_map, _ = common_subexpression_elimination(graph, ["top"])
        result = SynchronousScheduler().execute(merged, [output_map["top"]])
        assert result[output_map["top"]] == 16

    def test_transitive_merging(self):
        graph = TaskGraph()
        graph.add(make_task("a1", int, 5))
        graph.add(make_task("a2", int, 5))
        graph.add(make_task("b1", operator.add, TaskRef("a1"), 1))
        graph.add(make_task("b2", operator.add, TaskRef("a2"), 1))
        merged, _, stats = common_subexpression_elimination(graph, ["b1", "b2"])
        assert stats.merged_by_cse == 2
        assert len(merged) == 2


class TestFusion:
    def test_linear_chain_is_fused(self):
        graph = TaskGraph()
        graph.add(make_task("a", int, 3))
        graph.add(make_task("b", operator.add, TaskRef("a"), 1))
        graph.add(make_task("c", operator.mul, TaskRef("b"), 2))
        fused, stats = fuse_linear_chains(graph, ["c"])
        assert stats.fused == 2
        assert len(fused) == 1
        result = SynchronousScheduler().execute(fused, ["c"])
        assert result["c"] == 8

    def test_fusion_preserves_shared_producers(self):
        graph = build_diamond()
        fused, _ = fuse_linear_chains(graph, ["top"])
        # base has two consumers so it must survive as its own task.
        assert "base" in fused
        result = SynchronousScheduler().execute(fused, ["top"])
        assert result["top"] == 16

    def test_outputs_are_never_fused_away(self):
        graph = TaskGraph()
        graph.add(make_task("a", int, 3))
        graph.add(make_task("b", operator.add, TaskRef("a"), 1))
        fused, _ = fuse_linear_chains(graph, ["a", "b"])
        assert "a" in fused and "b" in fused


class TestOptimizePipeline:
    def test_full_pipeline_correctness(self):
        graph = build_diamond()
        optimized, output_map, stats = optimize(graph, ["top"], enable_cse=True,
                                                enable_fusion=True)
        key = output_map["top"]
        result = SynchronousScheduler().execute(optimized, [key])
        assert result[key] == 16
        assert stats.culled == 1
        assert stats.merged_by_cse == 1

    def test_pipeline_with_optimizations_disabled(self):
        graph = build_diamond()
        optimized, output_map, stats = optimize(graph, ["top"], enable_cse=False)
        assert stats.merged_by_cse == 0
        result = SynchronousScheduler().execute(optimized, [output_map["top"]])
        assert result[output_map["top"]] == 16
