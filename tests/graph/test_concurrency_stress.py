"""Concurrency stress: parallel scanned-frame reports over one shared cache.

Many threads run streaming EDA calls at once — each call builds its own
ThreadedScheduler (so thread pools nest) while all of them read and write the
same process-wide TaskCache.  Three things must hold under this hammering:

* no lost updates — every parallel result equals the serial reference;
* the cache's byte accounting stays consistent with its actual contents;
* the memory-release pass never drops a result another task still needs
  (a lost dependency would surface as a SchedulerError / KeyError).
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import DataFrame, plot, plot_missing
from repro.frame.io import scan_csv, write_csv
from repro.graph import TaskCache, get_global_cache, set_global_cache
from repro.graph.cache import estimate_size

N_ROWS = 1_200
CHUNK_ROWS = 128
THREADS = 8
CALLS_PER_KIND = 6


@pytest.fixture(scope="module")
def csv_paths(tmp_path_factory):
    """Two distinct CSVs so cache keys from different files interleave."""
    base = tmp_path_factory.mktemp("stress")
    paths = []
    for seed in (1, 2):
        rng = np.random.default_rng(seed)
        values = rng.normal(seed * 10.0, 3.0, N_ROWS)
        values[rng.random(N_ROWS) < 0.1] = np.nan
        frame = DataFrame({
            "metric": values,
            "count": rng.integers(0, 50, N_ROWS),
            "label": list(rng.choice(["red", "green", "blue"], N_ROWS)),
        })
        path = base / f"stress-{seed}.csv"
        write_csv(frame, str(path))
        paths.append(str(path))
    return paths


def _overview(path):
    return plot(scan_csv(path, chunk_rows=CHUNK_ROWS), mode="intermediates")


def _univariate(path):
    return plot(scan_csv(path, chunk_rows=CHUNK_ROWS), "metric",
                mode="intermediates")


def _missing(path):
    return plot_missing(scan_csv(path, chunk_rows=CHUNK_ROWS),
                        mode="intermediates")


CALL_KINDS = (_overview, _univariate, _missing)


def _flatten(value, prefix=""):
    """Flatten nested dict/list intermediates into comparable leaves."""
    if isinstance(value, dict):
        for key, item in value.items():
            yield from _flatten(item, f"{prefix}.{key}")
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from _flatten(item, f"{prefix}[{index}]")
    else:
        yield prefix, value


def assert_same_result(result, reference, label):
    flat_result = dict(_flatten(result.items))
    flat_reference = dict(_flatten(reference.items))
    assert flat_result.keys() == flat_reference.keys(), label
    for key, expected in flat_reference.items():
        actual = flat_result[key]
        if isinstance(expected, float):
            if math.isnan(expected):
                assert isinstance(actual, float) and math.isnan(actual), \
                    f"{label}{key}"
            else:
                assert actual == pytest.approx(expected, rel=1e-9), f"{label}{key}"
        else:
            assert actual == expected, f"{label}{key}"


def test_parallel_streaming_reports_are_consistent(csv_paths):
    previous = get_global_cache()
    cache = TaskCache(max_bytes=32 * 1024 * 1024)
    set_global_cache(cache)
    try:
        # Serial references, computed before any concurrency (cold cache).
        references = {(call.__name__, path): call(path)
                      for call in CALL_KINDS for path in csv_paths}

        jobs = [(call, path)
                for call in CALL_KINDS
                for path in csv_paths
                for _ in range(CALLS_PER_KIND)]

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            futures = [(call.__name__, path, pool.submit(call, path))
                       for call, path in jobs]
            for name, path, future in futures:
                result = future.result(timeout=120)
                assert_same_result(result, references[(name, path)],
                                   f"{name}:{path}:")

        # Cache accounting must agree with its actual contents after the storm.
        stats = cache.stats
        assert stats.entries == len(cache)
        with cache._lock:
            actual_bytes = sum(size for _, size in cache._entries.values())
        assert stats.current_bytes == actual_bytes
        assert stats.current_bytes <= cache.max_bytes
        assert stats.hits + stats.misses > 0
        # The storm repeated identical calls, so the cache must have served
        # a meaningful share of them.
        assert stats.hits > 0
    finally:
        set_global_cache(previous)


def test_parallel_calls_with_cache_disabled_still_agree(csv_paths):
    """Without the cache there is no shared mutable state but the scheduler
    release pass still runs; parallel results must stay correct."""
    previous = get_global_cache()
    set_global_cache(TaskCache())
    try:
        config = {"cache.enabled": False}
        path = csv_paths[0]
        reference = plot(scan_csv(path, chunk_rows=CHUNK_ROWS),
                         mode="intermediates", config=config)
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            futures = [pool.submit(
                plot, scan_csv(path, chunk_rows=CHUNK_ROWS),
                mode="intermediates", config=config) for _ in range(THREADS)]
            for future in futures:
                assert_same_result(future.result(timeout=120), reference,
                                   "cache-off:")
    finally:
        set_global_cache(previous)
