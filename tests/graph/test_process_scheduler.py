"""Tests for the multiprocess scheduler and the executor layer.

The process backend's contract has three parts that the threaded scheduler
never had to honour, and each gets pinned here:

* **hybrid dispatch** — value-picklable, dependency-free tasks ship to
  worker processes as bundles (root + its single-dependency consumers);
  everything else (combines, closures, big in-memory payloads) runs on the
  coordinator thread, so results stay identical to the synchronous backend;
* **failure semantics** — a task raising inside a worker propagates as a
  ``SchedulerError`` naming that task; a worker process dying mid-task
  surfaces as a ``SchedulerError`` too (never a hang), and the scheduler
  recovers with a fresh pool on the next run;
* **cache interplay** — the cross-call cache plan applies before dispatch,
  so warm runs ship nothing.
"""

from __future__ import annotations

import operator
import os
import threading

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.graph import (
    ProcessScheduler,
    SynchronousScheduler,
    Task,
    TaskCache,
    TaskGraph,
    TaskRef,
    ThreadedScheduler,
    available_schedulers,
    delayed,
    get_scheduler,
)
from repro.graph.executor import (
    MAX_SHIP_PAYLOAD_BYTES,
    can_run_in_worker,
    run_task_bundle,
)


# --------------------------------------------------------------------------- #
# Module-level task functions (the picklability contract requires them).
# --------------------------------------------------------------------------- #
def make_values(n):
    return list(range(n))


def square_sum(values):
    return sum(v * v for v in values)


def worker_pid(values):
    return os.getpid()


def combine_sum(parts):
    return sum(parts)


def boom(values):
    raise ValueError("boom in worker")


def kill_worker(values):
    os._exit(3)


@pytest.fixture
def scheduler():
    instance = ProcessScheduler(max_workers=2)
    yield instance
    instance.close()


def chunked_graph(n_chunks=4, chunk_func=square_sum):
    """A reduction-shaped graph: chunk roots -> per-chunk work -> combine."""
    chunks = [delayed(make_values, prefix="chunk")(10 + i)
              for i in range(n_chunks)]
    partials = [chunk.then(chunk_func) for chunk in chunks]
    return delayed(combine_sum, prefix="combine")(partials)


class TestProcessSchedulerBasics:
    def test_registered(self):
        assert "process" in available_schedulers()
        assert isinstance(get_scheduler("process"), ProcessScheduler)

    def test_agrees_with_synchronous(self, scheduler):
        total = chunked_graph()
        expected = total.compute(scheduler=SynchronousScheduler())
        assert total.compute(scheduler=scheduler) == expected

    def test_simple_graph(self, scheduler):
        graph = TaskGraph()
        graph.add(Task("a", int, (2,), {}))
        graph.add(Task("b", operator.add, (TaskRef("a"), 3), {}))
        graph.add(Task("c", operator.mul, (TaskRef("a"), TaskRef("b")), {}))
        assert scheduler.execute(graph, ["b", "c"]) == {"b": 5, "c": 10}

    def test_synchronous_accepts_max_workers(self):
        # The engine layer constructs every registered scheduler with one
        # uniform signature; "synchronous" must tolerate (and ignore) it.
        scheduler = get_scheduler("synchronous", max_workers=4)
        assert isinstance(scheduler, SynchronousScheduler)

    def test_pool_is_reused_across_executes(self, scheduler):
        first = chunked_graph(2).compute(scheduler=scheduler)
        executor = scheduler._executor
        second = chunked_graph(2).compute(scheduler=scheduler)
        assert first == second
        assert scheduler._executor is executor

    def test_worker_pool_is_shared_across_schedulers(self):
        # Engines are rebuilt per EDA call; respawning workers each time
        # would dominate interactive sessions, so pools are process-wide
        # (keyed by worker count).  With one worker, two schedulers must
        # land their tasks on the same process.
        first = ProcessScheduler(max_workers=1)
        second = ProcessScheduler(max_workers=1)
        try:
            chunk_a = delayed(make_values, prefix="chunk")(5)
            chunk_b = delayed(make_values, prefix="chunk")(6)
            pid_a = chunk_a.then(worker_pid).compute(scheduler=first)
            pid_b = chunk_b.then(worker_pid).compute(scheduler=second)
            assert pid_a == pid_b != os.getpid()
        finally:
            first.close()
            second.close()


class TestHybridDispatch:
    def test_chunk_work_runs_in_worker_processes(self, scheduler):
        chunks = [delayed(make_values, prefix="chunk")(5 + i) for i in range(3)]
        pids = delayed(combine_sum, prefix="combine")(
            [chunk.then(worker_pid) for chunk in chunks])
        # worker_pid returns the executing PID; summing three of them from
        # the coordinator's PID is astronomically unlikely, but we assert
        # the stronger per-run counter instead.
        pids.compute(scheduler=scheduler)
        assert scheduler.last_run.shipped >= 6      # 3 roots + 3 members

    def test_member_pids_differ_from_coordinator(self, scheduler):
        chunk = delayed(make_values, prefix="chunk")(5)
        pid = chunk.then(worker_pid)
        value = pid.compute(scheduler=scheduler)
        assert value != os.getpid()

    def test_combines_stay_on_coordinator(self, scheduler):
        # A combine has many TaskRef dependencies, so it must run inline;
        # its PID is the coordinator's.
        chunks = [delayed(make_values, prefix="chunk")(4) for _ in range(2)]
        combined = delayed(worker_pid, prefix="combine")(
            [c.then(square_sum) for c in chunks])
        assert combined.compute(scheduler=scheduler) == os.getpid()

    def test_closures_run_on_coordinator(self, scheduler):
        captured = []

        def closure_task(values):            # not module-level: unshippable
            captured.append(threading.get_ident())
            return len(values)

        chunk = delayed(make_values, prefix="chunk")(7)
        result = chunk.then(closure_task).compute(scheduler=scheduler)
        assert result == 7
        assert captured, "closure must have run in this process"

    def test_oversized_payload_is_not_shippable(self):
        small = Task("small", square_sum, (tuple(range(10)),), {})
        assert can_run_in_worker(small)
        big_array = np.zeros(MAX_SHIP_PAYLOAD_BYTES // 8 + 16, dtype=np.float64)
        big = Task("big", square_sum, (big_array,), {})
        assert not can_run_in_worker(big)

    def test_live_object_payload_is_not_shippable(self):
        class Opaque:
            pass

        assert not can_run_in_worker(Task("t", square_sum, (Opaque(),), {}))

    def test_lambda_is_not_shippable(self):
        assert not can_run_in_worker(Task("t", lambda: 1, (), {}))

    def test_run_task_bundle_withholds_root_when_asked(self):
        root = Task("root", make_values, (4,), {})
        member = Task("member", square_sum, (TaskRef("root"),), {})
        outcome = run_task_bundle(root, [member], False)
        assert outcome.root is None
        assert outcome.members == {"member": 14}
        outcome = run_task_bundle(root, [member], True)
        assert outcome.root == [0, 1, 2, 3]


class TestFailureSemantics:
    def test_worker_task_exception_names_the_task(self, scheduler):
        chunk = delayed(make_values, prefix="chunk")(5)
        bad = chunk.then(boom)
        with pytest.raises(SchedulerError) as excinfo:
            bad.compute(scheduler=scheduler)
        assert excinfo.value.key == bad.key
        assert isinstance(excinfo.value.cause, ValueError)
        assert "boom in worker" in str(excinfo.value.cause)

    def test_coordinator_task_exception_names_the_task(self, scheduler):
        graph = TaskGraph()
        graph.add(Task("a", int, (2,), {}))
        graph.add(Task("bad", boom, ((TaskRef("a"), TaskRef("a")),), {}))
        with pytest.raises(SchedulerError) as excinfo:
            scheduler.execute(graph, ["bad"])
        assert excinfo.value.key == "bad"

    def test_worker_crash_raises_instead_of_hanging(self, scheduler):
        chunk = delayed(make_values, prefix="chunk")(5)
        fatal = chunk.then(kill_worker)
        with pytest.raises(SchedulerError):
            fatal.compute(scheduler=scheduler)

    def test_scheduler_recovers_after_pool_crash(self, scheduler):
        chunk = delayed(make_values, prefix="chunk")(5)
        with pytest.raises(SchedulerError):
            chunk.then(kill_worker).compute(scheduler=scheduler)
        # The broken pool was discarded; a fresh one serves the next run.
        assert chunked_graph(2).compute(scheduler=scheduler) == \
            chunked_graph(2).compute(scheduler=SynchronousScheduler())


class TestCacheInterplay:
    def test_warm_run_ships_nothing(self):
        cache = TaskCache()
        scheduler = ProcessScheduler(max_workers=2, cache=cache)
        try:
            cold = chunked_graph().compute(scheduler=scheduler)
            assert scheduler.last_run.shipped > 0
            warm = chunked_graph().compute(scheduler=scheduler)
            assert warm == cold
            assert scheduler.last_run.executed == 0
            assert scheduler.last_run.shipped == 0
            assert scheduler.last_run.cache_hits > 0
        finally:
            scheduler.close()

    def test_all_three_schedulers_share_cache_semantics(self):
        expected = chunked_graph().compute(scheduler=SynchronousScheduler())
        for name in available_schedulers():
            cache = TaskCache()
            scheduler = get_scheduler(name, cache=cache)
            try:
                assert chunked_graph().compute(scheduler=scheduler) == expected
                assert chunked_graph().compute(scheduler=scheduler) == expected
                assert scheduler.last_run.cache_hits > 0
            finally:
                scheduler.close()


class TestThreadedRefactor:
    """The shared driver must preserve the threaded scheduler's behaviour."""

    def test_threaded_still_agrees(self):
        scheduler = ThreadedScheduler(max_workers=4)
        try:
            expected = chunked_graph().compute(scheduler=SynchronousScheduler())
            assert chunked_graph().compute(scheduler=scheduler) == expected
        finally:
            scheduler.close()

    def test_release_counter_still_reported(self):
        scheduler = ThreadedScheduler(max_workers=2)
        try:
            chunked_graph().compute(scheduler=scheduler)
            assert scheduler.last_run.released > 0
        finally:
            scheduler.close()


class TestProjectedBundles:
    """Projected CSV parses satisfy the picklability contract and ship."""

    def test_projected_parse_tasks_ship_to_workers(self, tmp_path):
        from repro.frame.frame import DataFrame
        from repro.frame.io import scan_csv, write_csv
        from repro.frame.source import CsvSource
        from repro.graph.partition import PartitionedFrame

        frame = DataFrame({
            "a": np.arange(600, dtype=np.float64),
            "b": [f"s{i}" for i in range(600)],
            "c": np.arange(600, dtype=np.float64) * 2,
        })
        path = str(tmp_path / "ship.csv")
        write_csv(frame, path)
        source = CsvSource(scan_csv(path, chunk_rows=150))
        projected = PartitionedFrame.from_source(source, columns=("a",))

        for part in projected.partitions:
            task = part.graph[part.key]
            assert can_run_in_worker(task), \
                "a projected parse must stay value-picklable"

        reduction = projected.reduction(_sum_column_a, _sum_floats)
        scheduler = ProcessScheduler(max_workers=2)
        try:
            total = reduction.compute(scheduler=scheduler)
            assert total == pytest.approx(float(np.arange(600).sum()))
            assert scheduler.last_run.shipped > 0
            assert scheduler.last_run.projected_parses == 4
            assert scheduler.last_run.full_parses == 0
        finally:
            scheduler.close()


class TestFilteredBundles:
    """Filtered (predicate-pushdown) CSV parses ship to workers too."""

    def test_filtered_parse_tasks_ship_to_workers(self, tmp_path):
        from repro.frame.frame import DataFrame
        from repro.frame.io import scan_csv, write_csv
        from repro.frame.predicate import compile_predicate
        from repro.frame.source import CsvSource, FilteredSource
        from repro.graph.partition import PartitionedFrame
        from repro.utils import is_filtered_parse_key

        frame = DataFrame({
            "a": np.arange(600, dtype=np.float64),
            "b": [f"s{i}" for i in range(600)],
        })
        path = str(tmp_path / "filtered.csv")
        write_csv(frame, path)
        predicate = compile_predicate(("a", ">=", 300.0))
        # Pruning off so every chunk's filtered parse actually ships (the
        # data is sorted, so zone maps would otherwise skip half of them).
        source = FilteredSource(
            CsvSource(scan_csv(path, chunk_rows=150)),
            predicate).without_pruning()
        filtered = PartitionedFrame.from_source(source, columns=("a",),
                                                predicate=predicate)

        for part in filtered.partitions:
            task = part.graph[part.key]
            assert can_run_in_worker(task), \
                "a filtered parse must stay value-picklable"
            assert is_filtered_parse_key(part.key)

        reduction = filtered.reduction(_sum_column_a, _sum_floats)
        scheduler = ProcessScheduler(max_workers=2)
        try:
            total = reduction.compute(scheduler=scheduler)
            assert total == pytest.approx(float(np.arange(300, 600).sum()))
            assert scheduler.last_run.shipped > 0
            # The filter marker composes with projection classification.
            assert scheduler.last_run.projected_parses == 4
            assert scheduler.last_run.full_parses == 0
        finally:
            scheduler.close()

    def test_filtered_and_plain_parses_have_distinct_keys(self, tmp_path):
        from repro.frame.frame import DataFrame
        from repro.frame.io import scan_csv, write_csv
        from repro.frame.predicate import compile_predicate
        from repro.frame.source import CsvSource, FilteredSource
        from repro.graph.partition import PartitionedFrame

        frame = DataFrame({"a": np.arange(100, dtype=np.float64)})
        path = str(tmp_path / "keys.csv")
        write_csv(frame, path)
        predicate = compile_predicate(("a", "<", 10.0))
        plain = PartitionedFrame.from_source(
            CsvSource(scan_csv(path, chunk_rows=50)))
        filtered = PartitionedFrame.from_source(
            FilteredSource(CsvSource(scan_csv(path, chunk_rows=50)),
                           predicate).without_pruning(),
            predicate=predicate)
        plain_keys = {part.key for part in plain.partitions}
        filtered_keys = {part.key for part in filtered.partitions}
        assert not plain_keys & filtered_keys, \
            "filtered parses must never collide with unfiltered cache keys"


def _sum_column_a(partition):
    assert partition.columns == ["a"], "worker must receive the projection"
    return float(np.nansum(partition.column("a").to_numpy()))


def _sum_floats(values):
    return float(sum(values))
