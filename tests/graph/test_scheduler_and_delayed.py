"""Tests for the schedulers and the delayed API."""

import operator
import threading
import time

import pytest

from repro.errors import SchedulerError
from repro.graph import (
    SynchronousScheduler,
    Task,
    TaskGraph,
    TaskRef,
    ThreadedScheduler,
    compute,
    delayed,
    get_scheduler,
)


def failing(_value):
    raise ValueError("boom")


class TestSchedulers:
    def build_graph(self):
        graph = TaskGraph()
        graph.add(Task("a", int, (2,), {}))
        graph.add(Task("b", operator.add, (TaskRef("a"), 3), {}))
        graph.add(Task("c", operator.mul, (TaskRef("a"), TaskRef("b")), {}))
        return graph

    @pytest.mark.parametrize("scheduler", [SynchronousScheduler(),
                                           ThreadedScheduler(max_workers=4)])
    def test_schedulers_agree(self, scheduler):
        results = scheduler.execute(self.build_graph(), ["b", "c"])
        assert results == {"b": 5, "c": 10}

    def test_get_returns_values_in_order(self):
        assert SynchronousScheduler().get(self.build_graph(), ["c", "b"]) == [10, 5]

    @pytest.mark.parametrize("scheduler", [SynchronousScheduler(),
                                           ThreadedScheduler(max_workers=2)])
    def test_task_failure_is_wrapped(self, scheduler):
        graph = self.build_graph()
        graph.add(Task("bad", failing, (TaskRef("a"),), {}))
        with pytest.raises(SchedulerError) as excinfo:
            scheduler.execute(graph, ["bad"])
        assert excinfo.value.key == "bad"
        assert isinstance(excinfo.value.cause, ValueError)

    def test_threaded_scheduler_runs_independent_tasks_concurrently(self):
        barrier = threading.Barrier(2, timeout=5)

        def wait_at_barrier(tag):
            barrier.wait()
            return tag

        graph = TaskGraph()
        graph.add(Task("x", wait_at_barrier, ("x",), {}))
        graph.add(Task("y", wait_at_barrier, ("y",), {}))
        results = ThreadedScheduler(max_workers=2).execute(graph, ["x", "y"])
        assert results == {"x": "x", "y": "y"}

    def test_get_scheduler_factory(self):
        assert isinstance(get_scheduler("synchronous"), SynchronousScheduler)
        assert isinstance(get_scheduler("threaded", max_workers=2), ThreadedScheduler)
        with pytest.raises(SchedulerError):
            get_scheduler("quantum")

    def test_dispatch_latency_slows_synchronous_scheduler(self):
        graph = self.build_graph()
        fast = SynchronousScheduler()
        slow = SynchronousScheduler(dispatch_latency=0.01)
        started = time.perf_counter()
        fast.execute(graph, ["c"])
        fast_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        slow.execute(graph, ["c"])
        slow_elapsed = time.perf_counter() - started
        assert slow_elapsed > fast_elapsed


class TestDelayed:
    def test_delayed_defers_execution(self):
        calls = []

        def record(value):
            calls.append(value)
            return value * 2

        lazy = delayed(record)(21)
        assert calls == []
        assert lazy.compute() == 42
        assert calls == [21]

    def test_delayed_composition(self):
        add = delayed(operator.add)
        total = add(add(1, 2), add(3, 4))
        assert total.compute() == 10

    def test_then_chains_a_call(self):
        value = delayed(int)(21).then(operator.mul, 2)
        assert value.compute() == 42

    def test_compute_shares_identical_pure_calls(self):
        counter = {"calls": 0}

        def expensive(value):
            counter["calls"] += 1
            return value + 1

        first = delayed(expensive)(10)
        second = delayed(expensive)(10)
        results = compute(first, second)
        assert results == [11, 11]
        assert counter["calls"] == 1

    def test_impure_calls_are_not_shared(self):
        counter = {"calls": 0}

        def tick(_ignored):
            counter["calls"] += 1
            return counter["calls"]

        first = delayed(tick, pure=False)(0)
        second = delayed(tick, pure=False)(0)
        results = compute(first, second)
        assert sorted(results) == [1, 2]
        assert counter["calls"] == 2

    def test_compute_passes_plain_values_through(self):
        lazy = delayed(operator.add)(1, 2)
        results = compute("plain", lazy, 7)
        assert results == ["plain", 3, 7]

    def test_compute_return_stats(self):
        lazy_a = delayed(operator.add)(1, 2)
        lazy_b = delayed(operator.add)(1, 2)
        results, stats = compute(lazy_a, lazy_b, return_stats=True)
        assert results == [3, 3]
        assert stats.merged_by_cse == 1

    def test_delayed_arguments_inside_containers(self):
        lazy_values = [delayed(int)(index) for index in range(5)]
        total = delayed(sum)(lazy_values)
        assert total.compute() == 10
