"""Tests for the execution engines (Fig. 6a) and the cluster model (Fig. 6c)."""

import operator

import pytest

from repro.errors import GraphError
from repro.graph import (
    ClusterCostModel,
    ClusterRPCEngine,
    EagerEngine,
    LazyEngine,
    SimulatedCluster,
    available_engines,
    delayed,
    get_engine,
)


def build_workload():
    """Three lazy values that share a common expensive sub-computation."""
    counter = {"calls": 0}

    def expensive(value):
        counter["calls"] += 1
        return value * 2

    base = delayed(expensive)(21)
    double = base.then(operator.add, 0)
    squared = base.then(operator.mul, 2)
    other = delayed(expensive)(21)
    return [double, squared, other], counter


class TestEngines:
    def test_registry(self):
        assert set(available_engines()) == {"lazy", "eager", "cluster-rpc"}
        assert isinstance(get_engine("lazy"), LazyEngine)
        with pytest.raises(GraphError):
            get_engine("spark")

    @pytest.mark.parametrize("engine", [LazyEngine(), EagerEngine(),
                                        ClusterRPCEngine(dispatch_latency=0.0)])
    def test_all_engines_produce_identical_results(self, engine):
        values, _ = build_workload()
        assert engine.compute(values) == [42, 84, 42]

    def test_lazy_engine_shares_work(self):
        values, counter = build_workload()
        results, report = LazyEngine().compute_with_report(values)
        assert results == [42, 84, 42]
        assert counter["calls"] == 1
        assert report.graphs_built == 1
        assert report.shared_tasks >= 1
        assert report.sharing_ratio > 0

    def test_eager_engine_repeats_work(self):
        values, counter = build_workload()
        results, report = EagerEngine().compute_with_report(values)
        assert results == [42, 84, 42]
        assert counter["calls"] == 3
        assert report.graphs_built == len(values)
        assert report.shared_tasks == 0

    def test_cluster_rpc_engine_reports_single_graph(self):
        values, _ = build_workload()
        results, report = ClusterRPCEngine(dispatch_latency=0.0).compute_with_report(values)
        assert results == [42, 84, 42]
        assert report.graphs_built == 1

    def test_lazy_engine_without_cse_still_correct(self):
        values, counter = build_workload()
        engine = LazyEngine(enable_cse=False)
        assert engine.compute(values) == [42, 84, 42]
        assert counter["calls"] == 2  # the two independently-built calls run twice


class TestClusterCostModel:
    def test_more_workers_is_never_slower(self):
        model = ClusterCostModel()
        times = model.sweep(100_000_000, [1, 2, 4, 8])
        assert times == sorted(times, reverse=True)

    def test_overhead_bounds_the_speedup(self):
        model = ClusterCostModel(coordination_overhead_s=100.0)
        assert model.estimate_seconds(1_000_000, 1000) >= 100.0

    def test_invalid_arguments(self):
        model = ClusterCostModel()
        with pytest.raises(GraphError):
            model.estimate_seconds(10, 0)
        with pytest.raises(GraphError):
            model.estimate_seconds(-1, 1)

    def test_calibration_matches_measurement(self):
        model = ClusterCostModel().calibrate_from_single_node(
            n_rows=1_000_000, measured_seconds=20.0, io_fraction=0.4)
        assert model.estimate_seconds(1_000_000, 1) == pytest.approx(20.0)
        assert model.estimate_seconds(1_000_000, 4) < 20.0

    def test_calibration_validation(self):
        with pytest.raises(GraphError):
            ClusterCostModel().calibrate_from_single_node(10, 0.0)
        with pytest.raises(GraphError):
            ClusterCostModel().calibrate_from_single_node(10, 5.0, io_fraction=1.5)

    def test_calibrate_recovers_synthetic_curve(self):
        # Wall times generated from a known t(w) = c + K/w must be
        # recovered exactly: overhead c, divisible seconds K, and hence
        # every prediction on the measured worker counts.
        overhead, divisible = 3.0, 24.0
        measurements = [(w, overhead + divisible / w) for w in (1, 2, 4, 8)]
        model = ClusterCostModel.calibrate(measurements, n_rows=1_000_000,
                                           bytes_per_row=50.0,
                                           io_fraction=0.25)
        assert model.coordination_overhead_s == pytest.approx(overhead)
        for workers, seconds in measurements:
            assert model.estimate_seconds(1_000_000, workers) == \
                pytest.approx(seconds)
        # io_fraction splits K: 25% scan at 50 B/row, 75% compute.
        assert model.hdfs_bandwidth_bytes_per_s == \
            pytest.approx(1_000_000 * 50.0 / (divisible * 0.25))
        assert model.worker_throughput_rows_per_s == \
            pytest.approx(1_000_000 / (divisible * 0.75))

    def test_calibrate_flat_curve_predicts_no_speedup(self):
        # A machine where extra workers do not help (1 core, contention)
        # must calibrate to an almost-all-overhead model instead of
        # inventing a speedup that the fit's negative slope disproves.
        model = ClusterCostModel.calibrate([(1, 10.0), (2, 11.0), (4, 10.5)],
                                           n_rows=100_000)
        one = model.estimate_seconds(100_000, 1)
        eight = model.estimate_seconds(100_000, 8)
        assert one / eight < 1.15
        assert model.coordination_overhead_s > 0.0

    def test_calibrate_superlinear_curve_clamps_overhead(self):
        # Superlinear scaling (cache effects) would fit a negative
        # overhead; the clamp keeps every component non-negative while
        # still predicting improvement with workers.
        model = ClusterCostModel.calibrate([(1, 20.0), (4, 2.0)],
                                           n_rows=100_000)
        assert model.coordination_overhead_s == 0.0
        times = model.sweep(100_000, [1, 2, 4, 8])
        assert times == sorted(times, reverse=True)

    def test_calibrate_validation(self):
        with pytest.raises(GraphError):
            ClusterCostModel.calibrate([(1, 10.0)], n_rows=100)
        with pytest.raises(GraphError):
            ClusterCostModel.calibrate([(1, 10.0), (1, 11.0)], n_rows=100)
        with pytest.raises(GraphError):
            ClusterCostModel.calibrate([(1, 10.0), (2, -1.0)], n_rows=100)
        with pytest.raises(GraphError):
            ClusterCostModel.calibrate([(0, 10.0), (2, 5.0)], n_rows=100)
        with pytest.raises(GraphError):
            ClusterCostModel.calibrate([(1, 10.0), (2, 6.0)], n_rows=0)
        with pytest.raises(GraphError):
            ClusterCostModel.calibrate([(1, 10.0), (2, 6.0)], n_rows=100,
                                       io_fraction=1.0)


class TestSimulatedCluster:
    def test_results_preserve_order(self):
        cluster = SimulatedCluster(n_workers=2, read_bandwidth_bytes_per_s=1e9)
        results = cluster.run([1, 2, 3, 4], [10, 10, 10, 10], lambda x: x * 10)
        assert results == [10, 20, 30, 40]

    def test_more_workers_reduce_wall_time(self):
        partitions = list(range(8))
        sizes = [200_000] * 8  # 1ms of simulated I/O each at 200 MB/s
        slow_cluster = SimulatedCluster(n_workers=1, read_bandwidth_bytes_per_s=2e8)
        fast_cluster = SimulatedCluster(n_workers=8, read_bandwidth_bytes_per_s=2e8)
        _, slow = slow_cluster.timed_run(partitions, sizes, lambda x: x)
        _, fast = fast_cluster.timed_run(partitions, sizes, lambda x: x)
        assert fast < slow

    def test_validation(self):
        with pytest.raises(GraphError):
            SimulatedCluster(n_workers=0)
        cluster = SimulatedCluster(n_workers=1)
        with pytest.raises(GraphError):
            cluster.run([1], [1, 2], lambda x: x)
