"""Baseline systems the paper compares against.

Only one baseline is needed for the evaluation: an eager, whole-dataset
profiler with the same report sections as Pandas-profiling.  It is
implemented on the same frame substrate as DataPrep.EDA so the comparison
isolates the *execution strategy* (eager per-visualization versus one shared
lazy graph), not the data structures.
"""

from repro.baselines.profiler import EagerProfileReport, eager_profile_report

__all__ = ["EagerProfileReport", "eager_profile_report"]
