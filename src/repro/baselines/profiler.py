"""An eager whole-dataset profiler (the Pandas-profiling stand-in).

The real Pandas-profiling is not available in this environment, so Table 2
and Figure 6(b) compare against this reimplementation.  It reproduces the
baseline's *cost structure* rather than its exact code:

* it always profiles every column and every section — there is no way to ask
  for a subset (the paper's "coarse-grained API" critique);
* every visualization recomputes what it needs from the raw column — value
  counts, minima/maxima, quantiles and histograms are not shared between the
  statistics table, the histogram and the common/extreme value tables;
* the Interactions section renders a scatter for every pair of numerical
  columns from the full data;
* the Correlations section computes Pearson, Spearman and Kendall tau on the
  full dataset (DataPrep.EDA samples Kendall), each with its own pass;
* everything runs eagerly on a single thread — no task graph, no sharing, no
  parallelism.

This mirrors how Pandas-profiling derives a report and is the honest
competitor for the benchmarks: the gap measured against
:func:`repro.report.create_report` comes from redundant work and missing
parallelism, not from artificial sleeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import EDAError
from repro.frame.column import Column
from repro.frame.frame import DataFrame
from repro.stats.association import missing_spectrum, nullity_correlation, nullity_dendrogram
from repro.stats.correlation import kendall_tau_matrix, pearson_matrix, spearman_matrix
from repro.stats.histogram import compute_histogram


@dataclass
class EagerProfileReport:
    """The result of :func:`eager_profile_report`."""

    title: str
    overview: Dict[str, Any]
    variables: Dict[str, Dict[str, Any]]
    interactions: Dict[str, Any]
    correlations: Dict[str, Any]
    missing: Dict[str, Any]
    timings: Dict[str, float] = field(default_factory=dict)
    html: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        """Total wall-clock seconds spent building the report."""
        return sum(self.timings.values())

    @property
    def section_names(self) -> List[str]:
        """The five report sections, mirroring the baseline's layout."""
        return ["Overview", "Variables", "Interactions", "Correlations",
                "Missing Values"]

    def __repr__(self) -> str:
        return (f"EagerProfileReport(title={self.title!r}, "
                f"columns={len(self.variables)}, seconds={self.total_seconds:.2f})")


def eager_profile_report(df: DataFrame, title: str = "Profile Report",
                         histogram_bins: int = 50,
                         kendall_max_rows: Optional[int] = None,
                         render: bool = False) -> EagerProfileReport:
    """Profile *df* eagerly, one section and one visualization at a time.

    *kendall_max_rows* caps the rows used for Kendall's tau (None = use all
    rows, like the real baseline).  The cap exists so very large benchmark
    datasets do not dominate total runtime; Table 2-scale data uses all rows.

    With ``render=True`` the report is also rendered to HTML — the baseline
    always produces the full rendered report, so the Table 2 benchmark passes
    ``render=True`` to compare end-to-end report generation for both tools.
    """
    if not isinstance(df, DataFrame):
        raise EDAError("eager_profile_report expects a repro.frame.DataFrame")
    timings: Dict[str, float] = {}

    started = time.perf_counter()
    overview = _overview_section(df)
    timings["overview"] = time.perf_counter() - started

    started = time.perf_counter()
    variables = {name: _variable_section(df.column(name), histogram_bins)
                 for name in df.columns}
    timings["variables"] = time.perf_counter() - started

    started = time.perf_counter()
    interactions = _interactions_section(df)
    timings["interactions"] = time.perf_counter() - started

    started = time.perf_counter()
    correlations = _correlations_section(df, kendall_max_rows)
    timings["correlations"] = time.perf_counter() - started

    started = time.perf_counter()
    missing = _missing_section(df)
    timings["missing"] = time.perf_counter() - started

    report = EagerProfileReport(title=title, overview=overview, variables=variables,
                                interactions=interactions, correlations=correlations,
                                missing=missing, timings=timings)
    if render:
        started = time.perf_counter()
        report.html = _render_report(report)
        report.timings["render"] = time.perf_counter() - started
    return report


def _render_report(report: EagerProfileReport, width: int = 640,
                   height: int = 360) -> str:
    """Render every section of the eager report to HTML, one chart at a time.

    The baseline renders everything it computed: a statistics table and chart
    per column, one scatter per numerical pair, three correlation heat maps
    and the four missing-value charts.  Nothing is shared or parallelised.
    """
    from repro.render.charts import (
        render_bar_chart,
        render_heat_map,
        render_histogram,
        render_scatter,
        render_stats_table,
    )

    parts: List[str] = [f"<h1>{report.title}</h1>"]
    parts.append(render_stats_table(report.overview, width, height,
                                    title="Dataset statistics"))
    for column, section in report.variables.items():
        parts.append(render_stats_table(section["stats"], width, height,
                                        title=f"Statistics of {column}"))
        if "histogram" in section:
            parts.append(render_histogram(section["histogram"], width, height,
                                          title=f"Histogram of {column}"))
        if "common_values" in section:
            common = section["common_values"]
            parts.append(render_bar_chart(
                {"categories": [str(value) for value, _ in common],
                 "counts": [count for _, count in common]},
                width, height, title=f"Common values of {column}"))
    for pair, data in report.interactions.items():
        parts.append(render_scatter(data, width, height,
                                    title=f"Interaction: {pair}"))
    if report.correlations:
        columns = report.correlations["columns"]
        for method in ("pearson", "spearman", "kendall"):
            parts.append(render_heat_map(report.correlations[method], columns,
                                         columns, width, height,
                                         title=f"{method.title()} correlation",
                                         diverging=True))
    missing = report.missing
    if missing.get("counts"):
        parts.append(render_bar_chart(
            {"categories": list(missing["counts"].keys()),
             "counts": list(missing["counts"].values())},
            width, height, title="Missing values per column"))
    if missing.get("correlation") and missing["correlation"]["columns"]:
        parts.append(render_heat_map(
            missing["correlation"]["matrix"], missing["correlation"]["columns"],
            missing["correlation"]["columns"], width, height,
            title="Nullity correlation", diverging=True))
    return "\n".join(parts)


# --------------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------------- #
def _overview_section(df: DataFrame) -> Dict[str, Any]:
    missing_cells = sum(df.column(name).missing_count() for name in df.columns)
    numeric = df.numeric_columns()
    return {
        "n_rows": len(df),
        "n_columns": df.n_columns,
        "n_numerical": len(numeric),
        "n_categorical": df.n_columns - len(numeric),
        "missing_cells": missing_cells,
        "missing_cells_rate": missing_cells / max(len(df) * df.n_columns, 1),
        "duplicate_rows": df.duplicate_row_count(),
        "memory_bytes": df.memory_bytes(),
    }


def _variable_section(column: Column, histogram_bins: int) -> Dict[str, Any]:
    """Profile one column the way the baseline does: each block on its own.

    Note how the minimum/maximum, quantiles and value counts are recomputed
    by the blocks that need them instead of being shared — this is the
    redundant work the paper's Compute module eliminates.
    """
    section: Dict[str, Any] = {"dtype": column.dtype.value}
    section["stats"] = column.describe()

    if column.dtype.is_numeric:
        values = column.to_numpy(drop_missing=True).astype(np.float64)
        # Histogram block: rescans for min/max.
        if values.size:
            low, high = float(values.min()), float(values.max())
            histogram = compute_histogram(values, histogram_bins, (low, high))
            section["histogram"] = {"counts": histogram.counts.tolist(),
                                    "edges": histogram.edges.tolist()}
        # Quantile block: recomputes quantiles from the raw values.
        section["quantiles"] = {
            str(probability): float(np.quantile(values, probability))
            for probability in (0.05, 0.25, 0.5, 0.75, 0.95)
        } if values.size else {}
        # Extreme values block: two full sorts.
        if values.size:
            section["minimum_values"] = np.sort(values)[:10].tolist()
            section["maximum_values"] = np.sort(values)[-10:][::-1].tolist()
        # Common values block: a full value-count pass.
        section["common_values"] = column.value_counts()[:10]
    else:
        # Common values / length blocks each re-walk the raw values.
        section["common_values"] = column.value_counts()[:10]
        lengths = [len(str(value)) for value in column.dropna().to_list()]
        section["length_stats"] = {
            "mean_length": float(np.mean(lengths)) if lengths else float("nan"),
            "min_length": int(np.min(lengths)) if lengths else 0,
            "max_length": int(np.max(lengths)) if lengths else 0,
        }
        section["first_rows"] = [str(value) for value in column.head(5).to_list()]
    return section


def _interactions_section(df: DataFrame) -> Dict[str, Any]:
    """A scatter for every pair of numerical columns, from the full data."""
    numeric = df.numeric_columns()
    interactions: Dict[str, Any] = {}
    for index, first in enumerate(numeric):
        x_column = df.column(first)
        for second in numeric[index + 1:]:
            y_column = df.column(second)
            keep = x_column.notna() & y_column.notna()
            x = x_column.filter(keep).to_numpy().astype(np.float64)
            y = y_column.filter(keep).to_numpy().astype(np.float64)
            # The baseline renders up to 10k points per pair.
            if x.size > 10_000:
                x, y = x[:10_000], y[:10_000]
            interactions[f"{first} x {second}"] = {
                "x": x.tolist(), "y": y.tolist(),
                "x_label": first, "y_label": second,
            }
    return interactions


def _correlations_section(df: DataFrame,
                          kendall_max_rows: Optional[int]) -> Dict[str, Any]:
    """Pearson, Spearman and Kendall matrices, each from its own pass."""
    numeric = df.numeric_columns()
    if len(numeric) < 2:
        return {}
    matrix = _dense_matrix(df, numeric)
    correlations = {
        "columns": numeric,
        "pearson": pearson_matrix(matrix).tolist(),
        "spearman": spearman_matrix(matrix).tolist(),
    }
    kendall_input = matrix
    if kendall_max_rows is not None and matrix.shape[0] > kendall_max_rows:
        kendall_input = matrix[:kendall_max_rows]
    correlations["kendall"] = kendall_tau_matrix(
        kendall_input, max_rows=kendall_input.shape[0] or 1).tolist()
    return correlations


def _missing_section(df: DataFrame) -> Dict[str, Any]:
    mask = df.missing_mask()
    columns = df.columns
    if not mask.size:
        return {"counts": {}, "spectrum": None, "correlation": None,
                "dendrogram": None}
    spectrum = missing_spectrum(mask, columns)
    kept, matrix = nullity_correlation(mask, columns)
    labels, linkage = nullity_dendrogram(mask, columns)
    return {
        "counts": {name: int(mask[:, index].sum())
                   for index, name in enumerate(columns)},
        "spectrum": {"columns": spectrum.columns,
                     "densities": spectrum.densities.tolist()},
        "correlation": {"columns": kept, "matrix": matrix.tolist()},
        "dendrogram": {"labels": labels,
                       "steps": [{"left": node.left, "right": node.right,
                                  "distance": node.distance, "size": node.size}
                                 for node in linkage]},
    }


def _dense_matrix(df: DataFrame, columns: List[str]) -> np.ndarray:
    arrays = []
    for name in columns:
        column = df.column(name)
        values = column.to_numpy(drop_missing=False).astype(np.float64)
        values[column.isna()] = np.nan
        arrays.append(values)
    return np.column_stack(arrays)
