"""repro — a reproduction of DataPrep.EDA (SIGMOD 2021).

Task-centric exploratory data analysis in Python, built from scratch on top
of three substrates implemented in this package: a columnar DataFrame
(:mod:`repro.frame`), a lazy task-graph execution engine (:mod:`repro.graph`)
and an SVG/HTML render layer (:mod:`repro.render`).

Public API
----------
* :func:`repro.plot`, :func:`repro.plot_correlation`, :func:`repro.plot_missing`
  — the task-centric EDA functions (Figure 2 of the paper).
* :func:`repro.create_report` — the full profile report (Table 2 workload).
* :func:`repro.read_csv` / :class:`repro.DataFrame` — data ingestion.
* :func:`repro.cache_stats` / :func:`repro.clear_cache` — the cross-call
  intermediate cache that makes repeated calls on the same frame fast.

Quickstart
----------
>>> import repro
>>> df = repro.read_csv("houses.csv")
>>> repro.plot(df, "price")            # univariate analysis
>>> repro.plot_correlation(df)          # correlation matrices (warm: reuses
...                                     # the partition scans of the plot call)
>>> repro.plot_missing(df, "price")     # missing-value impact
>>> repro.create_report(df).save("report.html")
>>> repro.cache_stats()["hits"]         # work avoided across those calls
"""

from typing import Any, Dict

from repro.frame import (
    Column,
    CsvSource,
    DataFrame,
    FilteredSource,
    FrameSource,
    InMemorySource,
    MultiFileCsvSource,
    Predicate,
    ScannedFrame,
    SourceCapabilities,
    SourcePartition,
    as_source,
    compile_predicate,
    read_csv,
    scan_csv,
    write_csv,
)
from repro.eda import Config, plot, plot_correlation, plot_missing
from repro.frame.source import refresh_input
from repro.graph import clear_global_cache, get_global_cache
from repro.report import Report, create_report

__version__ = "0.1.0"


def cache_stats() -> Dict[str, Any]:
    """Counters of the process-wide intermediate cache (hits, misses, bytes)."""
    return get_global_cache().stats.as_dict()


def refresh(handle: Any) -> Any:
    """Re-resolve an EDA handle against the current on-disk state.

    ``refresh(report)`` recomputes a :class:`Report` from its remembered
    source (equivalent to ``report.refresh()``); any other handle — a
    ``scan_csv`` result, a streaming source, a filtered view — is
    re-resolved in place of its files.  Appends are recognised as growth:
    the refreshed handle's unchanged chunks keep their per-chunk content
    stamps, so the next EDA call reuses their cached sketch states and
    executes only the new chunks (``meta["incremental"]`` /
    ``Report.incremental_stats`` count the reuse).  In-memory inputs pass
    through unchanged.
    """
    if isinstance(handle, Report):
        return handle.refresh()
    return refresh_input(handle)


def clear_cache() -> None:
    """Empty the process-wide intermediate cache.

    Note this is *not* a substitute for
    :meth:`DataFrame.invalidate_fingerprint` after mutating numpy buffers
    in place: the stale fingerprint is cached on the frame object itself,
    so plotting the mutated frame would repopulate the cache under the old
    key. Always invalidate the frame's fingerprint; clear the cache to
    reclaim memory."""
    clear_global_cache()


__all__ = [
    "Column",
    "Config",
    "CsvSource",
    "DataFrame",
    "FilteredSource",
    "FrameSource",
    "InMemorySource",
    "MultiFileCsvSource",
    "Predicate",
    "Report",
    "ScannedFrame",
    "SourceCapabilities",
    "SourcePartition",
    "as_source",
    "cache_stats",
    "clear_cache",
    "compile_predicate",
    "create_report",
    "plot",
    "plot_correlation",
    "plot_missing",
    "read_csv",
    "refresh",
    "refresh_input",
    "scan_csv",
    "write_csv",
    "__version__",
]
