"""repro — a reproduction of DataPrep.EDA (SIGMOD 2021).

Task-centric exploratory data analysis in Python, built from scratch on top
of three substrates implemented in this package: a columnar DataFrame
(:mod:`repro.frame`), a lazy task-graph execution engine (:mod:`repro.graph`)
and an SVG/HTML render layer (:mod:`repro.render`).

Public API
----------
* :func:`repro.plot`, :func:`repro.plot_correlation`, :func:`repro.plot_missing`
  — the task-centric EDA functions (Figure 2 of the paper).
* :func:`repro.create_report` — the full profile report (Table 2 workload).
* :func:`repro.read_csv` / :class:`repro.DataFrame` — data ingestion.

Quickstart
----------
>>> import repro
>>> df = repro.read_csv("houses.csv")
>>> repro.plot(df, "price")            # univariate analysis
>>> repro.plot_correlation(df)          # correlation matrices
>>> repro.plot_missing(df, "price")     # missing-value impact
>>> repro.create_report(df).save("report.html")
"""

from repro.frame import Column, DataFrame, read_csv, write_csv
from repro.eda import Config, plot, plot_correlation, plot_missing
from repro.report import Report, create_report

__version__ = "0.1.0"

__all__ = [
    "Column",
    "Config",
    "DataFrame",
    "Report",
    "create_report",
    "plot",
    "plot_correlation",
    "plot_missing",
    "read_csv",
    "write_csv",
    "__version__",
]
