"""Generic synthetic dataset generation.

A :class:`DatasetSpec` describes the shape of a dataset (rows, numerical and
categorical columns, missing rates); :func:`generate_dataset` turns it into a
:class:`~repro.frame.DataFrame` deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.frame.column import Column
from repro.frame.frame import DataFrame

#: Distribution families supported for numerical columns.
NUMERIC_DISTRIBUTIONS = ("normal", "lognormal", "uniform", "integer", "exponential")

_CATEGORY_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel",
    "india", "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
    "quebec", "romeo", "sierra", "tango", "uniform", "victor", "whiskey",
    "xray", "yankee", "zulu",
)


@dataclass
class ColumnSpec:
    """Specification of one synthetic column."""

    name: str
    kind: str = "normal"              # one of NUMERIC_DISTRIBUTIONS or "categorical"
    missing_rate: float = 0.0
    cardinality: int = 8              # categorical columns only
    mean: float = 0.0
    std: float = 1.0
    low: float = 0.0
    high: float = 100.0
    skew_categories: bool = True      # Zipf-like category frequencies

    def __post_init__(self) -> None:
        if self.kind != "categorical" and self.kind not in NUMERIC_DISTRIBUTIONS:
            raise DatasetError(f"unknown column kind {self.kind!r}")
        if not 0.0 <= self.missing_rate < 1.0:
            raise DatasetError("missing_rate must be in [0, 1)")
        if self.cardinality <= 0:
            raise DatasetError("cardinality must be positive")


@dataclass
class DatasetSpec:
    """Specification of a whole synthetic dataset."""

    name: str
    n_rows: int
    columns: List[ColumnSpec] = field(default_factory=list)
    seed: int = 0

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self.columns)

    @property
    def n_numerical(self) -> int:
        """Number of numerical columns."""
        return sum(1 for column in self.columns if column.kind != "categorical")

    @property
    def n_categorical(self) -> int:
        """Number of categorical columns."""
        return sum(1 for column in self.columns if column.kind == "categorical")

    def scaled(self, n_rows: int) -> "DatasetSpec":
        """A copy of this spec with a different row count."""
        return DatasetSpec(name=self.name, n_rows=n_rows, columns=list(self.columns),
                           seed=self.seed)


def mixed_spec(name: str, n_rows: int, n_numerical: int, n_categorical: int,
               missing_rate: float = 0.02, seed: int = 0) -> DatasetSpec:
    """A dataset spec with the requested numerical/categorical split.

    Numerical columns rotate through the supported distribution families and
    categorical columns rotate through a range of cardinalities, so generated
    datasets exercise every code path of the compute module.
    """
    columns: List[ColumnSpec] = []
    for index in range(n_numerical):
        kind = NUMERIC_DISTRIBUTIONS[index % len(NUMERIC_DISTRIBUTIONS)]
        columns.append(ColumnSpec(
            name=f"num_{index}", kind=kind,
            missing_rate=missing_rate if index % 3 == 0 else 0.0,
            mean=float(10 * (index + 1)), std=float(1 + index % 5),
            low=0.0, high=float(100 * (index + 1))))
    for index in range(n_categorical):
        columns.append(ColumnSpec(
            name=f"cat_{index}", kind="categorical",
            missing_rate=missing_rate if index % 2 == 0 else 0.0,
            cardinality=(3, 5, 8, 12, 26, 60)[index % 6]))
    return DatasetSpec(name=name, n_rows=n_rows, columns=columns, seed=seed)


def generate_dataset(spec: DatasetSpec) -> DataFrame:
    """Generate the DataFrame described by *spec* (deterministic per seed)."""
    rng = np.random.default_rng(spec.seed)
    columns = []
    for index, column_spec in enumerate(spec.columns):
        columns.append(_generate_column(column_spec, spec.n_rows, rng))
    if not columns:
        raise DatasetError("dataset spec has no columns")
    return DataFrame(columns)


def _generate_column(spec: ColumnSpec, n_rows: int, rng: np.random.Generator) -> Column:
    if spec.kind == "categorical":
        return _categorical_column(spec, n_rows, rng)
    return _numeric_column(spec, n_rows, rng)


def _numeric_column(spec: ColumnSpec, n_rows: int, rng: np.random.Generator) -> Column:
    if spec.kind == "normal":
        values = rng.normal(spec.mean, max(spec.std, 1e-9), n_rows)
    elif spec.kind == "lognormal":
        values = rng.lognormal(np.log(max(abs(spec.mean), 1.0)),
                               max(spec.std, 1e-9) / 4, n_rows)
    elif spec.kind == "uniform":
        values = rng.uniform(spec.low, max(spec.high, spec.low + 1e-9), n_rows)
    elif spec.kind == "exponential":
        values = rng.exponential(max(abs(spec.mean), 1.0), n_rows)
    elif spec.kind == "integer":
        values = rng.integers(int(spec.low), int(max(spec.high, spec.low + 1)),
                              n_rows).astype(np.float64)
    else:
        raise DatasetError(f"unknown numeric kind {spec.kind!r}")
    if spec.missing_rate > 0:
        missing = rng.random(n_rows) < spec.missing_rate
        values = values.astype(np.float64)
        values[missing] = np.nan
    if spec.kind == "integer" and spec.missing_rate == 0:
        return Column(spec.name, values.astype(np.int64))
    return Column(spec.name, values)


def _categorical_column(spec: ColumnSpec, n_rows: int,
                        rng: np.random.Generator) -> Column:
    categories = _category_labels(spec.cardinality)
    if spec.skew_categories:
        weights = 1.0 / np.arange(1, spec.cardinality + 1)
        probabilities = weights / weights.sum()
    else:
        probabilities = np.full(spec.cardinality, 1.0 / spec.cardinality)
    values = rng.choice(categories, size=n_rows, p=probabilities).astype(object)
    if spec.missing_rate > 0:
        missing = rng.random(n_rows) < spec.missing_rate
        values[missing] = None
    return Column(spec.name, list(values))


def _category_labels(cardinality: int) -> np.ndarray:
    labels = []
    for index in range(cardinality):
        word = _CATEGORY_WORDS[index % len(_CATEGORY_WORDS)]
        suffix = index // len(_CATEGORY_WORDS)
        labels.append(f"{word}{suffix}" if suffix else word)
    return np.asarray(labels, dtype=object)
