"""Synthetic stand-ins for the 15 Kaggle datasets of Table 2.

Each entry records the published shape of the dataset — number of rows,
number of columns and the numerical/categorical split — exactly as Table 2
lists them.  :func:`load_kaggle_like` generates a seeded synthetic dataset
with that shape (optionally row-scaled so the benchmark suite stays fast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.synthetic import DatasetSpec, generate_dataset, mixed_spec
from repro.errors import DatasetError
from repro.frame.frame import DataFrame


@dataclass(frozen=True)
class Table2Entry:
    """Shape of one Table 2 dataset plus the paper's measured timings."""

    name: str
    n_rows: int
    n_columns: int
    n_numerical: int
    n_categorical: int
    size_label: str
    paper_pandas_profiling_seconds: float
    paper_dataprep_seconds: float

    @property
    def paper_speedup(self) -> float:
        """Speedup reported in the paper (Pandas-profiling / DataPrep.EDA)."""
        return self.paper_pandas_profiling_seconds / self.paper_dataprep_seconds


#: The 15 datasets of Table 2 with the timings published in the paper.
TABLE2_DATASETS: List[Table2Entry] = [
    Table2Entry("heart", 303, 14, 14, 0, "11KB", 17.7, 2.0),
    Table2Entry("diabetes", 768, 9, 9, 0, "23KB", 28.3, 1.6),
    Table2Entry("automobile", 205, 26, 10, 16, "26KB", 38.2, 3.9),
    Table2Entry("titanic", 891, 12, 7, 5, "64KB", 17.8, 2.1),
    Table2Entry("women", 8553, 10, 5, 5, "500KB", 19.8, 2.3),
    Table2Entry("credit", 30000, 25, 25, 0, "2.7MB", 127.0, 6.1),
    Table2Entry("solar", 33000, 11, 7, 4, "2.8MB", 25.1, 2.7),
    Table2Entry("suicide", 28000, 12, 6, 6, "2.8MB", 20.6, 2.8),
    Table2Entry("diamonds", 54000, 11, 8, 3, "3MB", 28.2, 3.1),
    Table2Entry("chess", 20000, 16, 6, 10, "7.3MB", 23.6, 4.3),
    Table2Entry("adult", 49000, 15, 6, 9, "5.7MB", 23.2, 4.0),
    Table2Entry("basketball", 53000, 31, 21, 10, "9.2MB", 126.2, 9.9),
    Table2Entry("conflicts", 34000, 25, 10, 15, "13MB", 34.9, 8.6),
    Table2Entry("rain", 142000, 24, 17, 7, "13.5MB", 100.1, 11.6),
    Table2Entry("hotel", 119000, 32, 20, 12, "16MB", 83.2, 13.0),
]

_BY_NAME: Dict[str, Table2Entry] = {entry.name: entry for entry in TABLE2_DATASETS}


def table2_dataset_names() -> List[str]:
    """Names of the Table 2 datasets in publication order."""
    return [entry.name for entry in TABLE2_DATASETS]


def table2_entry(name: str) -> Table2Entry:
    """Look up one Table 2 entry by dataset name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DatasetError(
            f"unknown Table 2 dataset {name!r}; "
            f"available: {table2_dataset_names()}") from None


def load_kaggle_like(name: str, row_scale: float = 1.0,
                     missing_rate: float = 0.03,
                     seed: Optional[int] = None) -> DataFrame:
    """Generate a synthetic dataset shaped like one of the Table 2 datasets.

    *row_scale* multiplies the row count (the benchmarks use ``< 1`` scales to
    keep run times reasonable on a laptop while preserving the relative cost
    ordering across datasets).
    """
    entry = table2_entry(name)
    n_rows = max(int(entry.n_rows * row_scale), 50)
    spec = kaggle_spec(name, n_rows=n_rows, missing_rate=missing_rate, seed=seed)
    return generate_dataset(spec)


def kaggle_spec(name: str, n_rows: Optional[int] = None,
                missing_rate: float = 0.03,
                seed: Optional[int] = None) -> DatasetSpec:
    """The synthetic :class:`DatasetSpec` matching one Table 2 dataset."""
    entry = table2_entry(name)
    resolved_seed = seed if seed is not None else abs(hash(name)) % (2 ** 31)
    return mixed_spec(name=name,
                      n_rows=n_rows if n_rows is not None else entry.n_rows,
                      n_numerical=entry.n_numerical,
                      n_categorical=entry.n_categorical,
                      missing_rate=missing_rate,
                      seed=resolved_seed)
