"""Synthetic stand-in for the Kaggle bitcoin historical dataset (Figure 6).

The real dataset has 4.7 million rows and 8 columns of minute-level OHLCV
trading data.  The generator below produces a random-walk price series with
the same schema; the row count is a parameter because Figure 6(b) scales the
data from 10 million to 100 million rows by duplication.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.frame.column import Column
from repro.frame.frame import DataFrame

#: Row count of the original Kaggle dataset.
ORIGINAL_ROWS = 4_700_000

#: Column names of the original dataset.
COLUMNS = ("timestamp", "open", "high", "low", "close",
           "volume_btc", "volume_currency", "weighted_price")


def bitcoin_dataset(n_rows: int = 100_000, seed: int = 0,
                    missing_rate: float = 0.01) -> DataFrame:
    """Generate *n_rows* of bitcoin-shaped minute-level trading data.

    The price follows a geometric random walk; high/low bracket open/close;
    volumes are log-normal.  A small fraction of rows has missing prices,
    mirroring the gaps in the real feed.
    """
    if n_rows <= 0:
        raise DatasetError("n_rows must be positive")
    rng = np.random.default_rng(seed)

    timestamp = 1_325_317_920 + 60 * np.arange(n_rows, dtype=np.int64)
    returns = rng.normal(0.0, 0.002, n_rows)
    close = 400.0 * np.exp(np.cumsum(returns))
    open_price = np.concatenate([[close[0]], close[:-1]])
    spread = np.abs(rng.normal(0.0, 0.002, n_rows)) * close
    high = np.maximum(open_price, close) + spread
    low = np.minimum(open_price, close) - spread
    volume_btc = rng.lognormal(1.0, 1.2, n_rows)
    volume_currency = volume_btc * close
    weighted_price = (high + low + close) / 3.0

    if missing_rate > 0:
        missing = rng.random(n_rows) < missing_rate
        for series in (open_price, high, low, close, weighted_price):
            series[missing] = np.nan

    return DataFrame([
        Column("timestamp", timestamp),
        Column("open", open_price),
        Column("high", high),
        Column("low", low),
        Column("close", close),
        Column("volume_btc", volume_btc),
        Column("volume_currency", volume_currency),
        Column("weighted_price", weighted_price),
    ])
