"""Synthetic stand-ins for the user-study datasets (Section 6.3).

* **BirdStrike** — 12 columns of bird-strike damage reports, ~220,000 rows
  compiled from 2,050 USA airports and 310 foreign airports.
* **DelayedFlights** — 14 columns of flight delay/cancellation records,
  5,819,079 rows in the original (generated scaled-down by default).

The generators reproduce the schema, the numerical/categorical mix, realistic
missing-value patterns and a handful of "ground truth" relationships (e.g. a
correlated pair, a column with a heavy missing-value concentration) that the
simulated study tasks ask about.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.frame.column import Column
from repro.frame.frame import DataFrame

#: Original row counts, for reference and for full-scale generation.
BIRD_STRIKE_ORIGINAL_ROWS = 220_000
DELAYED_FLIGHTS_ORIGINAL_ROWS = 5_819_079


def bird_strike_dataset(n_rows: int = 50_000, seed: int = 11) -> DataFrame:
    """Generate a BirdStrike-shaped dataset (12 columns)."""
    if n_rows <= 0:
        raise DatasetError("n_rows must be positive")
    rng = np.random.default_rng(seed)

    airports = [f"airport_{index:04d}" for index in range(2360)]
    species = ["gull", "hawk", "pigeon", "sparrow", "goose", "duck", "owl",
               "crow", "starling", "unknown"]
    phases = ["approach", "climb", "landing roll", "take-off run", "descent",
              "en route", "taxi"]
    damage_levels = ["no damage", "minor", "substantial", "destroyed"]
    size_levels = ["small", "medium", "large"]

    height = np.abs(rng.gamma(1.2, 900.0, n_rows))
    speed = rng.normal(140.0, 40.0, n_rows).clip(0, 400)
    # Ground-truth relationship: repair cost grows with aircraft speed.
    cost_repair = (speed * 180.0 + rng.lognormal(6.0, 1.4, n_rows)).clip(0, None)
    wildlife_struck = rng.poisson(1.4, n_rows) + 1

    # Ground-truth missing pattern: cost columns are mostly missing when the
    # damage level is "no damage" — exactly what study task 4 asks about.
    damage = rng.choice(damage_levels, n_rows, p=[0.62, 0.25, 0.11, 0.02])
    cost_missing = (damage == "no damage") & (rng.random(n_rows) < 0.8)
    cost_repair = cost_repair.astype(np.float64)
    cost_repair[cost_missing] = np.nan
    cost_other = rng.lognormal(5.0, 1.8, n_rows)
    cost_other[cost_missing | (rng.random(n_rows) < 0.1)] = np.nan
    height[rng.random(n_rows) < 0.05] = np.nan

    return DataFrame([
        Column("record_id", np.arange(1, n_rows + 1)),
        Column("airport", list(rng.choice(airports, n_rows))),
        Column("aircraft_size", list(rng.choice(size_levels, n_rows, p=[0.3, 0.5, 0.2]))),
        Column("species", list(rng.choice(species, n_rows))),
        Column("flight_phase", list(rng.choice(phases, n_rows))),
        Column("damage_level", list(damage)),
        Column("height_ft", height),
        Column("speed_knots", speed),
        Column("cost_repair", cost_repair),
        Column("cost_other", cost_other),
        Column("wildlife_struck", wildlife_struck),
        Column("warning_issued", list(rng.choice(["yes", "no"], n_rows, p=[0.4, 0.6]))),
    ])


def delayed_flights_dataset(n_rows: int = 100_000, seed: int = 13) -> DataFrame:
    """Generate a DelayedFlights-shaped dataset (14 columns)."""
    if n_rows <= 0:
        raise DatasetError("n_rows must be positive")
    rng = np.random.default_rng(seed)

    carriers = ["WN", "AA", "DL", "UA", "B6", "AS", "NK", "F9", "HA", "G4"]
    origins = [f"APT{index:03d}" for index in range(300)]
    months = rng.integers(1, 13, n_rows)
    day_of_week = rng.integers(1, 8, n_rows)
    distance = rng.gamma(2.0, 400.0, n_rows).clip(60, 5000)
    scheduled_dep = rng.integers(0, 2400, n_rows).astype(np.float64)

    # Ground-truth relationships: departure delay drives arrival delay almost
    # one-for-one (the high-correlation pair study task 5 asks for), and late
    # evening departures are more delayed.
    dep_delay = (rng.exponential(18.0, n_rows) - 6.0 +
                 (scheduled_dep / 2400.0) * 25.0)
    arr_delay = dep_delay + rng.normal(0.0, 8.0, n_rows)
    carrier_delay = np.where(rng.random(n_rows) < 0.3,
                             np.abs(rng.normal(15, 20, n_rows)), 0.0)
    weather_delay = np.where(rng.random(n_rows) < 0.08,
                             np.abs(rng.normal(35, 30, n_rows)), 0.0)
    cancelled = (rng.random(n_rows) < 0.021).astype(np.int64)

    # Missing pattern: delay breakdowns are only reported for delayed flights.
    not_delayed = arr_delay < 15
    carrier_delay = carrier_delay.astype(np.float64)
    weather_delay = weather_delay.astype(np.float64)
    carrier_delay[not_delayed] = np.nan
    weather_delay[not_delayed] = np.nan
    arr_delay = arr_delay.astype(np.float64)
    arr_delay[cancelled == 1] = np.nan

    return DataFrame([
        Column("month", months),
        Column("day_of_week", day_of_week),
        Column("carrier", list(rng.choice(carriers, n_rows))),
        Column("origin", list(rng.choice(origins, n_rows))),
        Column("destination", list(rng.choice(origins, n_rows))),
        Column("scheduled_departure", scheduled_dep),
        Column("departure_delay", dep_delay),
        Column("arrival_delay", arr_delay),
        Column("carrier_delay", carrier_delay),
        Column("weather_delay", weather_delay),
        Column("distance_miles", distance),
        Column("taxi_out_minutes", rng.gamma(2.5, 6.0, n_rows)),
        Column("cancelled", cancelled),
        Column("diverted", (rng.random(n_rows) < 0.003).astype(np.int64)),
    ])
