"""Synthetic dataset generators for the evaluation harness.

The paper benchmarks on 15 Kaggle datasets (Table 2), the bitcoin dataset
(Figure 6) and two user-study datasets (BirdStrike, DelayedFlights).  None of
them can be downloaded in this environment, so this package generates seeded
synthetic datasets that match each one's published *shape* — row count,
column count, numerical/categorical split and a realistic missing-value rate
— which is what the performance results depend on.
"""

from repro.datasets.synthetic import ColumnSpec, DatasetSpec, generate_dataset
from repro.datasets.kaggle import TABLE2_DATASETS, load_kaggle_like, table2_dataset_names
from repro.datasets.bitcoin import bitcoin_dataset
from repro.datasets.userstudy import bird_strike_dataset, delayed_flights_dataset

__all__ = [
    "ColumnSpec",
    "DatasetSpec",
    "TABLE2_DATASETS",
    "bird_strike_dataset",
    "bitcoin_dataset",
    "delayed_flights_dataset",
    "generate_dataset",
    "load_kaggle_like",
    "table2_dataset_names",
]
