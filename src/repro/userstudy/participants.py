"""The participant model of the simulated user study."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import DatasetError


@dataclass
class Participant:
    """A simulated study participant.

    Attributes
    ----------
    participant_id:
        Stable identifier, 0-based.
    skill:
        ``"novice"`` or ``"skilled"`` (the paper's pre-screen split).
    speed:
        Multiplier on think time (lower = faster); drawn around 1.0 for
        skilled and around 1.35 for novice participants.
    care:
        Multiplier on the probability of answering correctly once a task is
        completed; skilled analysts both read plots better and sanity-check
        more.
    """

    participant_id: int
    skill: str
    speed: float
    care: float

    @property
    def is_skilled(self) -> bool:
        """Whether the participant passed the skilled pre-screen."""
        return self.skill == "skilled"


def recruit_participants(n_participants: int = 32, skilled_fraction: float = 0.5,
                         seed: int = 0) -> List[Participant]:
    """Create the simulated participant pool.

    Half the pool is skilled by default, mirroring the recruitment balance of
    the original study.
    """
    if n_participants <= 0:
        raise DatasetError("n_participants must be positive")
    if not 0.0 <= skilled_fraction <= 1.0:
        raise DatasetError("skilled_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_skilled = int(round(n_participants * skilled_fraction))
    participants = []
    for index in range(n_participants):
        skilled = index < n_skilled
        speed = float(rng.normal(1.0 if skilled else 1.35, 0.12))
        care = float(rng.normal(1.0 if skilled else 0.88, 0.05))
        participants.append(Participant(
            participant_id=index,
            skill="skilled" if skilled else "novice",
            speed=max(speed, 0.6),
            care=min(max(care, 0.6), 1.1),
        ))
    return participants
