"""The five study tasks of Section 6.3.

Each task records how many tool interactions it takes with a task-centric
tool, how well the coarse-grained profile report covers it, and how much
reasoning is involved — the knobs the simulation uses to model completion
time and answer correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class StudyTask:
    """One of the five sequential tasks participants complete."""

    task_id: int
    name: str
    description: str
    #: Number of tool interactions a task-centric tool needs (plot calls).
    interactions: int
    #: Minutes of reading/reasoning a median skilled analyst needs on top of
    #: tool latency.
    think_minutes: float
    #: How well the all-columns profile report answers the task directly
    #: (1.0 = the report shows it outright, 0.0 = requires fine-grained
    #: analysis the report does not offer).
    report_coverage: float

    def __str__(self) -> str:
        return f"Task {self.task_id}: {self.name}"


#: The five tasks, matching the descriptions in Section 6.3:
#: tasks 1-3 are distribution analyses (univariate, bivariate, skewness),
#: task 4 is missing-value impact, task 5 is correlation hunting.
STUDY_TASKS: List[StudyTask] = [
    StudyTask(1, "univariate distribution",
              "Describe the distribution of a single column across the dataset.",
              interactions=1, think_minutes=2.0, report_coverage=0.9),
    StudyTask(2, "bivariate distribution",
              "Describe how a numeric column varies across the categories of "
              "another column.",
              interactions=2, think_minutes=3.0, report_coverage=0.35),
    StudyTask(3, "skewness check",
              "Identify which columns are strongly skewed.",
              interactions=2, think_minutes=2.5, report_coverage=0.7),
    StudyTask(4, "missing-value impact",
              "Examine where missing values concentrate and how dropping them "
              "changes another column's distribution.",
              interactions=2, think_minutes=3.5, report_coverage=0.3),
    StudyTask(5, "correlation hunting",
              "Find the pairs of columns with the highest correlation.",
              interactions=1, think_minutes=2.5, report_coverage=0.75),
]
