"""The within-subjects study protocol and its aggregate metrics.

The simulation walks every participant through one 50-minute session per
tool: the five tasks are attempted sequentially; each attempt consumes tool
latency plus think time, and produces a correct answer with a probability
driven by tool granularity, dataset complexity and participant skill.  The
aggregate statistics mirror the ones reported in Section 6.3: completed
tasks, correct answers and relative accuracy (correct / completed), split by
tool, dataset and skill level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.userstudy.participants import Participant, recruit_participants
from repro.userstudy.tasks import STUDY_TASKS, StudyTask

#: The two tools compared in the study.
TOOLS = ("dataprep", "pandas_profiling")

#: The two study datasets; DelayedFlights is the "complex" one.
DATASETS = ("BirdStrike", "DelayedFlights")

#: Relative complexity of each dataset (affects think time and error rates).
DATASET_COMPLEXITY = {"BirdStrike": 1.0, "DelayedFlights": 1.6}


@dataclass
class ToolLatencies:
    """Measured tool latencies (seconds) that ground the simulation.

    ``dataprep_task_seconds`` is the latency of one fine-grained ``plot*``
    call; ``profile_report_seconds`` is the time to generate the baseline's
    full report, per dataset.  The defaults follow the paper's measurements;
    the Figure 7 benchmark overrides them with timings measured from the
    systems in this repository.
    """

    dataprep_task_seconds: Dict[str, float] = field(
        default_factory=lambda: {"BirdStrike": 2.5, "DelayedFlights": 6.0})
    profile_report_seconds: Dict[str, float] = field(
        default_factory=lambda: {"BirdStrike": 45.0, "DelayedFlights": 400.0})


@dataclass
class TaskOutcome:
    """Result of one participant attempting one task."""

    participant_id: int
    skill: str
    tool: str
    dataset: str
    task_id: int
    completed: bool
    correct: bool
    minutes_spent: float


@dataclass
class StudyResult:
    """All task outcomes plus the aggregate metrics of the study."""

    outcomes: List[TaskOutcome]
    session_minutes: float

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def _select(self, tool: Optional[str] = None, dataset: Optional[str] = None,
                skill: Optional[str] = None) -> List[TaskOutcome]:
        selected = self.outcomes
        if tool is not None:
            selected = [outcome for outcome in selected if outcome.tool == tool]
        if dataset is not None:
            selected = [outcome for outcome in selected if outcome.dataset == dataset]
        if skill is not None:
            selected = [outcome for outcome in selected if outcome.skill == skill]
        return selected

    def completed_per_participant(self, tool: str, dataset: Optional[str] = None,
                                  skill: Optional[str] = None) -> float:
        """Mean number of completed tasks per participant session."""
        selected = self._select(tool, dataset, skill)
        if not selected:
            return 0.0
        sessions = {(outcome.participant_id, outcome.dataset) for outcome in selected}
        completed = sum(1 for outcome in selected if outcome.completed)
        return completed / len(sessions)

    def correct_per_participant(self, tool: str, dataset: Optional[str] = None,
                                skill: Optional[str] = None) -> float:
        """Mean number of correct answers per participant session."""
        selected = self._select(tool, dataset, skill)
        if not selected:
            return 0.0
        sessions = {(outcome.participant_id, outcome.dataset) for outcome in selected}
        correct = sum(1 for outcome in selected if outcome.correct)
        return correct / len(sessions)

    def relative_accuracy(self, tool: str, dataset: Optional[str] = None,
                          skill: Optional[str] = None) -> float:
        """Correct answers / completed tasks (the paper's headline metric)."""
        selected = self._select(tool, dataset, skill)
        completed = sum(1 for outcome in selected if outcome.completed)
        if completed == 0:
            return 0.0
        correct = sum(1 for outcome in selected if outcome.correct)
        return correct / completed

    def completion_ratio(self) -> float:
        """Completed-task ratio DataPrep.EDA / baseline (paper: 2.05x)."""
        baseline = self.completed_per_participant("pandas_profiling")
        if baseline == 0:
            return float("inf")
        return self.completed_per_participant("dataprep") / baseline

    def correctness_ratio(self) -> float:
        """Correct-answer ratio DataPrep.EDA / baseline (paper: 2.2x)."""
        baseline = self.correct_per_participant("pandas_profiling")
        if baseline == 0:
            return float("inf")
        return self.correct_per_participant("dataprep") / baseline

    def summary(self) -> Dict[str, float]:
        """The headline numbers reported in Section 6.3."""
        return {
            "dataprep_completed": self.completed_per_participant("dataprep"),
            "baseline_completed": self.completed_per_participant("pandas_profiling"),
            "completion_ratio": self.completion_ratio(),
            "dataprep_correct": self.correct_per_participant("dataprep"),
            "baseline_correct": self.correct_per_participant("pandas_profiling"),
            "correctness_ratio": self.correctness_ratio(),
            "dataprep_relative_accuracy": self.relative_accuracy("dataprep"),
            "baseline_relative_accuracy": self.relative_accuracy("pandas_profiling"),
        }


def summarize_by_skill(result: StudyResult) -> Dict[str, Dict[str, float]]:
    """Figure 7: relative accuracy per tool, dataset and skill level."""
    table: Dict[str, Dict[str, float]] = {}
    for tool in TOOLS:
        for dataset in DATASETS:
            for skill in ("novice", "skilled"):
                key = f"{tool}/{dataset}/{skill}"
                table[key] = {
                    "relative_accuracy": result.relative_accuracy(tool, dataset, skill),
                    "completed": result.completed_per_participant(tool, dataset, skill),
                    "correct": result.correct_per_participant(tool, dataset, skill),
                }
    return table


def run_user_study(n_participants: int = 32, session_minutes: float = 25.0,
                   latencies: Optional[ToolLatencies] = None,
                   seed: int = 7) -> StudyResult:
    """Run the simulated within-subjects study.

    Each participant completes one session per tool; tool-dataset pairings and
    ordering are counterbalanced across the pool.  *session_minutes* is the
    time budget per session (the original 50-minute session covered both
    tools plus surveys, so half of it is a session here).
    """
    if n_participants <= 0:
        raise DatasetError("n_participants must be positive")
    latencies = latencies or ToolLatencies()
    rng = np.random.default_rng(seed)
    participants = recruit_participants(n_participants, seed=seed)

    outcomes: List[TaskOutcome] = []
    for participant in participants:
        # Counterbalancing: alternate which tool sees which dataset and which
        # session comes first (order effects are not modelled beyond this).
        if participant.participant_id % 2 == 0:
            assignment = (("dataprep", DATASETS[0]), ("pandas_profiling", DATASETS[1]))
        else:
            assignment = (("dataprep", DATASETS[1]), ("pandas_profiling", DATASETS[0]))
        for tool, dataset in assignment:
            outcomes.extend(_run_session(participant, tool, dataset,
                                         session_minutes, latencies, rng))
    return StudyResult(outcomes=outcomes, session_minutes=session_minutes)


def _run_session(participant: Participant, tool: str, dataset: str,
                 session_minutes: float, latencies: ToolLatencies,
                 rng: np.random.Generator) -> List[TaskOutcome]:
    complexity = DATASET_COMPLEXITY[dataset]
    remaining = session_minutes
    outcomes: List[TaskOutcome] = []

    report_generated = False
    for task in STUDY_TASKS:
        if remaining <= 0:
            outcomes.append(TaskOutcome(participant.participant_id, participant.skill,
                                        tool, dataset, task.task_id, False, False, 0.0))
            continue
        minutes, correct_probability = _attempt(
            participant, tool, dataset, task, complexity, latencies,
            report_generated, rng)
        if tool == "pandas_profiling":
            report_generated = True
        completed = minutes <= remaining
        spent = min(minutes, remaining)
        remaining -= spent
        correct = bool(completed and rng.random() < correct_probability)
        outcomes.append(TaskOutcome(participant.participant_id, participant.skill,
                                    tool, dataset, task.task_id, completed, correct,
                                    spent))
    return outcomes


def _attempt(participant: Participant, tool: str, dataset: str, task: StudyTask,
             complexity: float, latencies: ToolLatencies, report_generated: bool,
             rng: np.random.Generator) -> Tuple[float, float]:
    """Minutes needed and probability of a correct answer for one attempt."""
    think = task.think_minutes * participant.speed * complexity * \
        float(rng.normal(1.0, 0.15))
    think = max(think, 0.5)

    if tool == "dataprep":
        # One plot call per interaction; results are task-specific, so the
        # reading overhead is low and mostly independent of dataset width.
        tool_minutes = task.interactions * \
            latencies.dataprep_task_seconds[dataset] / 60.0
        minutes = think + tool_minutes + 0.4 * task.interactions
        correct = 0.9 * participant.care
        # Fine-grained output keeps the skill gap and complexity penalty small.
        correct -= 0.03 * (complexity - 1.0)
    else:
        # The profile report is generated once per session (the first task
        # pays for it) and re-read for every task.
        report_minutes = 0.0 if report_generated else \
            latencies.profile_report_seconds[dataset] / 60.0
        navigation = 1.5 * complexity * participant.speed
        minutes = think + report_minutes + navigation
        # Tasks the all-columns report does not directly cover require manual
        # digging: more time, much lower accuracy — and the penalty is worse
        # for novices and for the complex dataset.
        gap = 1.0 - task.report_coverage
        minutes += gap * 6.0 * complexity * participant.speed
        correct = (0.40 + 0.48 * task.report_coverage) * participant.care
        correct -= 0.28 * gap * (complexity - 1.0)
        if not participant.is_skilled:
            correct -= 0.15 * gap * complexity
    return minutes, float(np.clip(correct, 0.02, 0.98))
