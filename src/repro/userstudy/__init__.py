"""Simulated user study (Section 6.3 / Figure 7 of the paper).

The original evaluation recruited 32 human participants; that is not
reproducible offline, so this package provides a calibrated stochastic
simulation of the study protocol: within-subjects design, two datasets
(BirdStrike, DelayedFlights), five sequential tasks per session, a fixed
session time budget and a participant model with novice/skilled levels.

The simulation's tool-latency inputs are *measured* from this repository's
DataPrep.EDA reproduction and the eager baseline profiler, so the study
outcome is grounded in the systems actually built here; the behavioural
parameters (think time, error rates) are calibrated to the paper's published
aggregate statistics and documented in EXPERIMENTS.md as a substitution.
"""

from repro.userstudy.tasks import STUDY_TASKS, StudyTask
from repro.userstudy.participants import Participant, recruit_participants
from repro.userstudy.study import (
    StudyResult,
    ToolLatencies,
    run_user_study,
    summarize_by_skill,
)

__all__ = [
    "Participant",
    "STUDY_TASKS",
    "StudyResult",
    "StudyTask",
    "ToolLatencies",
    "recruit_participants",
    "run_user_study",
    "summarize_by_skill",
]
