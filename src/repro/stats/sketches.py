"""Mergeable one-pass sketches for out-of-core streaming EDA.

Every sketch in this module follows one protocol (:class:`Mergeable`): it can
be built from a single chunk of data in one pass, two partial sketches can be
``merge``-d into the sketch of the concatenation, and the derived statistics
are read only after the final merge.  That is exactly the shape the
tree-reduction executor (:meth:`repro.graph.partition.PartitionedFrame.reduction`)
needs, so a report over a CSV larger than memory can stream chunk by chunk
with a bounded footprint:

* :class:`MomentsSketch` — streaming central moments (count, mean, M2..M4)
  with the Welford/Chan pairwise merge; numerically stable where raw power
  sums are not.  :class:`repro.stats.descriptive.NumericSummary` is built on
  top of it.
* :class:`StreamingHistogram` — a fixed-range histogram that accepts
  incremental ``update`` batches and tracks values clipped outside its range.
* :class:`ReservoirSketch` — a bounded uniform row sample with a
  deterministic weighted merge; exact (keeps every row) while the total fits
  the capacity.
* :class:`DistinctSketch` — a bounded distinct-count estimator (k minimum
  hash values); exact until more than ``capacity`` distinct values are seen.
* :class:`NullitySketch` — per-column missing counts, pairwise co-missing
  counts and row-binned missing densities, sufficient to reconstruct the
  whole ``plot_missing(df)`` overview (bar chart, spectrum, nullity
  correlation and dendrogram) without ever materializing the full mask.
* :class:`DuplicateSketch` — a bounded multiset of 64-bit row hashes;
  duplicate-row counts stay exact while the distinct rows fit the
  capacity, and the sketch degrades to "unknown" (never a wrong number)
  once they do not.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
    runtime_checkable,
)

import numpy as np

from repro.errors import EDAError
from repro.stats.histogram import Histogram


# --------------------------------------------------------------------------- #
# The merge protocol
# --------------------------------------------------------------------------- #
@runtime_checkable
class Mergeable(Protocol):
    """Anything that can combine two partial results into one.

    ``a.merge(b)`` must return a new object equal (up to floating-point
    noise) to the sketch of the concatenated input, and must be associative
    so a tree reduction can combine partials in any grouping.
    """

    def merge(self, other: "Mergeable") -> "Mergeable":  # pragma: no cover
        ...


SketchT = TypeVar("SketchT", bound=Mergeable)


def merge_all(sketches: Sequence[SketchT]) -> SketchT:
    """Merge a non-empty sequence of mergeable sketches left to right."""
    if not sketches:
        raise EDAError("cannot merge zero sketches")
    merged = sketches[0]
    for sketch in sketches[1:]:
        merged = merged.merge(sketch)
    return merged


# --------------------------------------------------------------------------- #
# Streaming moments (Welford / Chan parallel merge)
# --------------------------------------------------------------------------- #
@dataclass
class MomentsSketch:
    """One-pass central moments of a stream of finite floats.

    Stores ``count``, ``mean`` and the central moment sums ``M2 = sum((x -
    mean)^2)``, ``M3``, ``M4`` plus min/max.  ``merge`` uses the pairwise
    update formulas of Chan et al. (the parallel generalization of Welford's
    algorithm), so merging sketches of arbitrary splits reproduces the sketch
    of the concatenation without the catastrophic cancellation that raw power
    sums suffer on large, far-from-zero data.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    m3: float = 0.0
    m4: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: np.ndarray) -> "MomentsSketch":
        """Sketch of an array; non-finite entries are ignored."""
        values = np.asarray(values, dtype=np.float64)
        finite = values[np.isfinite(values)]
        sketch = cls()
        if finite.size == 0:
            return sketch
        mean = float(finite.mean())
        deltas = finite - mean
        sketch.count = int(finite.size)
        sketch.mean = mean
        sketch.m2 = float(np.sum(deltas ** 2))
        sketch.m3 = float(np.sum(deltas ** 3))
        sketch.m4 = float(np.sum(deltas ** 4))
        sketch.minimum = float(finite.min())
        sketch.maximum = float(finite.max())
        return sketch

    def update(self, value: float) -> None:
        """Welford single-value update (the strictly streaming entry point)."""
        if not math.isfinite(value):
            return
        n0 = self.count
        n = n0 + 1
        delta = value - self.mean
        delta_n = delta / n
        delta_n2 = delta_n * delta_n
        term = delta * delta_n * n0
        self.count = n
        self.mean += delta_n
        self.m4 += (term * delta_n2 * (n * n - 3 * n + 3)
                    + 6 * delta_n2 * self.m2 - 4 * delta_n * self.m3)
        self.m3 += term * delta_n * (n - 2) - 3 * delta_n * self.m2
        self.m2 += term
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "MomentsSketch") -> "MomentsSketch":
        """Chan et al. pairwise combination of two partial sketches."""
        if self.count == 0:
            return MomentsSketch(other.count, other.mean, other.m2, other.m3,
                                 other.m4, other.minimum, other.maximum)
        if other.count == 0:
            return MomentsSketch(self.count, self.mean, self.m2, self.m3,
                                 self.m4, self.minimum, self.maximum)
        na, nb = self.count, other.count
        n = na + nb
        delta = other.mean - self.mean
        delta2 = delta * delta
        mean = self.mean + delta * nb / n
        m2 = self.m2 + other.m2 + delta2 * na * nb / n
        m3 = (self.m3 + other.m3
              + delta ** 3 * na * nb * (na - nb) / (n * n)
              + 3.0 * delta * (na * other.m2 - nb * self.m2) / n)
        m4 = (self.m4 + other.m4
              + delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) / (n ** 3)
              + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
              + 4.0 * delta * (na * other.m3 - nb * self.m3) / n)
        return MomentsSketch(count=n, mean=mean, m2=m2, m3=m3, m4=m4,
                             minimum=min(self.minimum, other.minimum),
                             maximum=max(self.maximum, other.maximum))

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN below two values."""
        if self.count < 2:
            return float("nan")
        return max(self.m2, 0.0) / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")

    @property
    def skewness(self) -> float:
        """Fisher-Pearson skewness; 0 on degenerate spread."""
        if self.count < 3:
            return float("nan")
        m2 = self.m2 / self.count
        if m2 <= 0:
            return 0.0
        return (self.m3 / self.count) / m2 ** 1.5

    @property
    def kurtosis(self) -> float:
        """Excess kurtosis; 0 on degenerate spread."""
        if self.count < 4:
            return float("nan")
        m2 = self.m2 / self.count
        if m2 <= 0:
            return 0.0
        return (self.m4 / self.count) / (m2 * m2) - 3.0


# --------------------------------------------------------------------------- #
# Fixed-range streaming histogram
# --------------------------------------------------------------------------- #
@dataclass
class StreamingHistogram(Histogram):
    """A :class:`Histogram` that accepts incremental batches.

    The edges are fixed up front (from a precomputed global min/max), so two
    sketches built over different chunks are mergeable by adding counts.
    Values outside the range are not silently lost: they are tallied in
    ``underflow`` / ``overflow``.
    """

    underflow: int = 0
    overflow: int = 0

    @classmethod
    def with_range(cls, bins: int, low: float, high: float) -> "StreamingHistogram":
        """An empty sketch with fixed edges over ``[low, high]``."""
        if bins <= 0:
            raise EDAError("bins must be positive")
        if not (math.isfinite(low) and math.isfinite(high)):
            low, high = 0.0, 1.0
        if high <= low:
            high = low + 1.0
        edges = np.linspace(low, high, bins + 1)
        return cls(edges=edges, counts=np.zeros(bins, dtype=np.int64))

    @classmethod
    def from_values(cls, values: np.ndarray, bins: int, low: float,
                    high: float) -> "StreamingHistogram":
        """One-shot construction: an empty sketch updated with one batch."""
        sketch = cls.with_range(bins, low, high)
        sketch.update(values)
        return sketch

    def update(self, values: np.ndarray) -> None:
        """Add one batch of values; non-finite entries are ignored."""
        values = np.asarray(values, dtype=np.float64)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return
        low, high = float(self.edges[0]), float(self.edges[-1])
        counts, _ = np.histogram(finite, bins=self.edges)
        self.counts = self.counts + counts.astype(np.int64)
        self.underflow += int((finite < low).sum())
        self.overflow += int((finite > high).sum())

    def merge(self, other: Histogram) -> "StreamingHistogram":
        """Merge with another histogram built over identical edges."""
        if self.edges.shape != other.edges.shape or \
                not np.allclose(self.edges, other.edges):
            raise EDAError("cannot merge histograms with different bin edges")
        return StreamingHistogram(
            edges=self.edges, counts=self.counts + other.counts,
            underflow=self.underflow + int(getattr(other, "underflow", 0)),
            overflow=self.overflow + int(getattr(other, "overflow", 0)))


# --------------------------------------------------------------------------- #
# Bounded uniform row sample (reservoir)
# --------------------------------------------------------------------------- #
@dataclass
class ReservoirSketch:
    """A bounded uniform row sample of a (possibly huge) DataFrame stream.

    While ``n_seen <= capacity`` the sketch simply keeps every row, so small
    datasets round-trip exactly; beyond that it holds a uniform sample of
    ``capacity`` rows.  ``merge`` draws from the two reservoirs with weights
    proportional to how many original rows each retained row represents,
    using an RNG seeded from the deterministic ``(seed, n_seen)`` state so
    replays — and therefore cross-call cache keys — are stable.
    """

    capacity: int
    frame: Any                      # repro.frame.frame.DataFrame
    n_seen: int = 0
    seed: int = 0

    @classmethod
    def from_frame(cls, frame: Any, capacity: int, seed: int = 0) -> "ReservoirSketch":
        """Sketch of one chunk: keep everything or a seeded uniform sample."""
        if capacity <= 0:
            raise EDAError("capacity must be positive")
        kept = frame if len(frame) <= capacity else frame.sample(capacity, seed=seed)
        return cls(capacity=capacity, frame=kept, n_seen=len(frame), seed=seed)

    def merge(self, other: "ReservoirSketch") -> "ReservoirSketch":
        """Combine two reservoirs into one uniform sample of both streams."""
        from repro.frame.frame import concat_rows
        if self.capacity != other.capacity:
            raise EDAError("cannot merge reservoirs with different capacities")
        n_seen = self.n_seen + other.n_seen
        parts = [sketch.frame for sketch in (self, other) if len(sketch.frame)]
        if not parts:
            return ReservoirSketch(self.capacity, self.frame, n_seen, self.seed)
        combined = concat_rows(parts) if len(parts) > 1 else parts[0]
        if n_seen <= self.capacity or len(combined) <= self.capacity:
            return ReservoirSketch(self.capacity, combined, n_seen, self.seed)
        weights = np.concatenate([
            np.full(len(sketch.frame), sketch.n_seen / len(sketch.frame))
            for sketch in (self, other) if len(sketch.frame)])
        weights = weights / weights.sum()
        rng = np.random.default_rng(
            (self.seed, self.n_seen, other.n_seen, self.capacity))
        indices = rng.choice(len(combined), size=self.capacity, replace=False,
                             p=weights)
        indices.sort()
        return ReservoirSketch(self.capacity, combined.take(indices), n_seen,
                               self.seed)

    @property
    def is_exact(self) -> bool:
        """True while the reservoir still holds every row it has seen."""
        return self.n_seen == len(self.frame)

    def quantiles(self, column: str, probabilities: Sequence[float]) -> List[float]:
        """Quantile estimates of one numeric column from the retained rows."""
        values = self.frame.column(column).to_numpy(drop_missing=True)
        values = np.asarray(values, dtype=np.float64)
        values = values[np.isfinite(values)]
        if values.size == 0:
            return [float("nan") for _ in probabilities]
        return [float(value) for value in np.quantile(values, list(probabilities))]


# --------------------------------------------------------------------------- #
# Bounded distinct count (k minimum values)
# --------------------------------------------------------------------------- #
def _hash64(value: Any) -> int:
    """Deterministic 64-bit hash of a value's string form (process-stable)."""
    digest = hashlib.blake2b(repr(value).encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass
class DistinctSketch:
    """K-minimum-values distinct-count estimator with bounded memory.

    Keeps the ``capacity`` smallest 64-bit hashes of the values seen.  While
    fewer than ``capacity`` distinct hashes exist the count is exact; beyond
    that the k-th smallest hash estimates the distinct count as
    ``(k - 1) / h_k`` with ``h_k`` the k-th hash scaled to ``(0, 1]``.  All
    operations are deterministic, so merging sketches of any split equals
    the sketch of the concatenation exactly.
    """

    capacity: int = 4096
    hashes: Tuple[int, ...] = ()

    @classmethod
    def from_values(cls, values: Iterable[Any], capacity: int = 4096
                    ) -> "DistinctSketch":
        """Sketch of an iterable of (hashable-by-repr) values."""
        if capacity <= 0:
            raise EDAError("capacity must be positive")
        unique = {_hash64(value) for value in values}
        return cls(capacity=capacity,
                   hashes=tuple(sorted(unique)[:capacity]))

    def update(self, values: Iterable[Any]) -> "DistinctSketch":
        """Return a new sketch that has also seen *values*."""
        merged = set(self.hashes) | {_hash64(value) for value in values}
        return DistinctSketch(capacity=self.capacity,
                              hashes=tuple(sorted(merged)[:self.capacity]))

    def merge(self, other: "DistinctSketch") -> "DistinctSketch":
        """Union of two sketches (keeps the smallest ``capacity`` hashes)."""
        capacity = min(self.capacity, other.capacity)
        merged = sorted(set(self.hashes) | set(other.hashes))[:capacity]
        return DistinctSketch(capacity=capacity, hashes=tuple(merged))

    @property
    def saturated(self) -> bool:
        """True once the sketch can no longer count exactly."""
        return len(self.hashes) >= self.capacity

    def estimate(self) -> int:
        """Distinct-count estimate (exact while not saturated)."""
        if not self.saturated:
            return len(self.hashes)
        kth = self.hashes[-1] + 1            # scale to (0, 1]
        fraction = kth / float(2 ** 64)
        return int(round((len(self.hashes) - 1) / fraction))


# --------------------------------------------------------------------------- #
# Bounded duplicate-row counting
# --------------------------------------------------------------------------- #
#: Distinct row-hash bound of a DuplicateSketch: 16k entries keep the sketch
#: (two 8-byte arrays) and its merge transients around a quarter megabyte,
#: small against the streaming memory budgets, while staying exact for
#: datasets with up to 16k distinct rows — which covers the "mostly
#: duplicated log file" shape the count is interesting for.
DUPLICATE_SKETCH_CAPACITY = 16_384

#: FNV-1a 64-bit parameters for the vectorized row-hash combination.
_FNV_OFFSET = np.uint64(1469598103934665603)
_FNV_PRIME = np.uint64(1099511628211)

#: Code standing in for a missing cell; missing cells compare equal to each
#: other, matching DataFrame.duplicate_row_count.
_MISSING_CODE = np.uint64(0x9E3779B97F4A7C15)

_EMPTY_U64 = np.zeros(0, dtype=np.uint64)
_EMPTY_I64 = np.zeros(0, dtype=np.int64)


def _column_hash_codes(column: Any) -> np.ndarray:
    """Per-row 64-bit codes of one Column; equal values get equal codes."""
    if getattr(column, "is_dictionary", False):
        # Hash the (small) dictionary once and gather by code — no per-row
        # python loop and no decoded object array.
        dictionary = column.dictionary
        table = np.fromiter((_hash64(value) for value in dictionary.tolist()),
                            dtype=np.uint64, count=dictionary.size)
        codes = table[np.where(column.codes < 0, 0, column.codes)] \
            if dictionary.size else np.zeros(len(column), dtype=np.uint64)
        codes[column.isna()] = _MISSING_CODE
        return codes
    data = column.data
    if data.dtype == object:
        uniques, inverse = np.unique(data.astype(str), return_inverse=True)
        table = np.fromiter((_hash64(value) for value in uniques),
                            dtype=np.uint64, count=len(uniques))
        codes = table[inverse]
    elif np.issubdtype(data.dtype, np.floating):
        canonical = data.astype(np.float64) + 0.0       # -0.0 → +0.0
        canonical[np.isnan(canonical)] = np.nan          # one NaN bit pattern
        codes = canonical.view(np.uint64)
    elif np.issubdtype(data.dtype, np.datetime64):
        codes = data.astype("datetime64[s]").view(np.int64).view(np.uint64)
    else:                                                # INT / BOOL
        codes = data.astype(np.int64).view(np.uint64)
    codes = codes.copy()
    codes[column.isna()] = _MISSING_CODE
    return codes


def frame_row_hashes(frame: Any) -> np.ndarray:
    """Vectorized 64-bit hash per row of a DataFrame chunk.

    Rows hash equal iff every cell compares equal column-wise, with missing
    cells equal to each other — the same equality
    :meth:`repro.frame.frame.DataFrame.duplicate_row_count` uses, so hash
    multiset counts reproduce the exact scan up to (negligible) 64-bit
    collisions.
    """
    hashes = np.full(len(frame), _FNV_OFFSET, dtype=np.uint64)
    for name in frame.columns:
        codes = _column_hash_codes(frame.column(name))
        hashes = (hashes ^ codes) * _FNV_PRIME
    return hashes


@dataclass
class DuplicateSketch:
    """Mergeable duplicate-row counter with a capacity bound.

    Holds the multiset of row hashes as a sorted unique-hash array plus
    per-hash multiplicities.  While the distinct hashes fit ``capacity``
    the duplicate count ``n_rows - distinct`` is exact; the moment a merge
    (or a single chunk) exceeds the bound the sketch drops its arrays and
    reports the count as unknown (``None``) rather than a wrong number —
    memory stays bounded either way.
    """

    capacity: int = DUPLICATE_SKETCH_CAPACITY
    hashes: np.ndarray = field(default_factory=lambda: _EMPTY_U64)
    counts: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    n_rows: int = 0
    saturated: bool = False

    @classmethod
    def from_frame(cls, frame: Any,
                   capacity: int = DUPLICATE_SKETCH_CAPACITY) -> "DuplicateSketch":
        """Sketch of one chunk's rows."""
        if capacity <= 0:
            raise EDAError("capacity must be positive")
        if len(frame) == 0 or not frame.columns:
            return cls(capacity=capacity, n_rows=len(frame))
        uniques, counts = np.unique(frame_row_hashes(frame), return_counts=True)
        sketch = cls(capacity=capacity, hashes=uniques,
                     counts=counts.astype(np.int64), n_rows=len(frame))
        return sketch._bounded()

    def _bounded(self) -> "DuplicateSketch":
        if len(self.hashes) > self.capacity:
            return DuplicateSketch(capacity=self.capacity, n_rows=self.n_rows,
                                   saturated=True)
        return self

    def merge(self, other: "DuplicateSketch") -> "DuplicateSketch":
        """Add two chunk multisets (union of hashes, summed multiplicities)."""
        if self.capacity != other.capacity:
            raise EDAError("cannot merge duplicate sketches with different "
                           "capacities")
        total = self.n_rows + other.n_rows
        if self.saturated or other.saturated:
            return DuplicateSketch(capacity=self.capacity, n_rows=total,
                                   saturated=True)
        # Both sides hold <= capacity hashes, so the concatenation transient
        # below is bounded by 2 * capacity entries (~0.5 MB at the default);
        # there is no sound earlier cutoff — overlapping hash sets can make
        # the union fit capacity even when the lengths sum past it.
        merged_hashes = np.concatenate([self.hashes, other.hashes])
        merged_counts = np.concatenate([self.counts, other.counts])
        uniques, inverse = np.unique(merged_hashes, return_inverse=True)
        summed = np.zeros(len(uniques), dtype=np.int64)
        np.add.at(summed, inverse, merged_counts)
        return DuplicateSketch(capacity=self.capacity, hashes=uniques,
                               counts=summed, n_rows=total)._bounded()

    @property
    def distinct(self) -> int:
        """Distinct row hashes currently held (0 once saturated)."""
        return len(self.hashes)

    def duplicate_count(self) -> Optional[int]:
        """Rows that duplicate an earlier row, or None once saturated."""
        if self.saturated:
            return None
        if not len(self.hashes):
            return 0
        return int(self.n_rows - len(self.hashes))


# --------------------------------------------------------------------------- #
# Missing-value (nullity) sketch
# --------------------------------------------------------------------------- #
@dataclass
class NullitySketch:
    """Everything ``plot_missing(df)`` needs, in one mergeable pass.

    Accumulates, per chunk of rows: per-column missing counts, the pairwise
    co-missing count matrix and missing counts per global row bin (the
    missing spectrum).  The bin edges are computed from the *global* row
    count — known up front from the chunk-size precompute stage — so every
    chunk contributes to the same fixed bins and merging is pure addition.

    The finalizers reproduce the exact in-memory statistics:

    * missing bar chart   — ``counts``;
    * missing spectrum    — ``bin_missing / bin_rows``;
    * nullity correlation — Pearson of the missingness indicators, derived
      from ``(n, S_i, S_ij)`` in closed form;
    * nullity dendrogram  — average linkage over the Euclidean distance
      ``sqrt(S_i + S_j - 2 S_ij)`` between indicator columns.
    """

    columns: Tuple[str, ...]
    n_rows_total: int
    bin_edges: np.ndarray
    counts: np.ndarray              # (C,)   per-column missing counts
    co_counts: np.ndarray           # (C, C) pairwise co-missing counts
    bin_missing: np.ndarray         # (B, C) missing counts per global row bin
    n_rows_seen: int = 0

    @staticmethod
    def global_bin_edges(n_rows_total: int, n_bins: int) -> np.ndarray:
        """The spectrum's global row-bin edges (mirrors ``missing_spectrum``)."""
        n_bins = max(1, min(n_bins, n_rows_total)) if n_rows_total else 1
        return np.linspace(0, n_rows_total, n_bins + 1, dtype=np.int64)

    @classmethod
    def empty(cls, columns: Sequence[str], n_rows_total: int,
              n_bins: int) -> "NullitySketch":
        """An all-zero sketch (the identity element of ``merge``)."""
        edges = cls.global_bin_edges(n_rows_total, n_bins)
        width = len(columns)
        return cls(columns=tuple(columns), n_rows_total=int(n_rows_total),
                   bin_edges=edges,
                   counts=np.zeros(width, dtype=np.int64),
                   co_counts=np.zeros((width, width), dtype=np.int64),
                   bin_missing=np.zeros((edges.size - 1, width), dtype=np.int64))

    @classmethod
    def from_mask(cls, mask: np.ndarray, columns: Sequence[str], row_start: int,
                  n_rows_total: int, n_bins: int) -> "NullitySketch":
        """Sketch of one chunk's missing mask starting at global *row_start*."""
        sketch = cls.empty(columns, n_rows_total, n_bins)
        mask = np.asarray(mask, dtype=np.bool_)
        if mask.ndim != 2 or mask.shape[1] != len(columns):
            raise EDAError("mask shape does not match the column list")
        rows = mask.shape[0]
        if rows == 0:
            return sketch
        as_int = mask.astype(np.int64)
        sketch.counts = as_int.sum(axis=0)
        sketch.co_counts = as_int.T @ as_int
        sketch.n_rows_seen = rows
        edges = sketch.bin_edges
        first = int(np.searchsorted(edges, row_start, side="right")) - 1
        first = max(0, min(first, edges.size - 2))
        for index in range(first, edges.size - 1):
            low, high = int(edges[index]), int(edges[index + 1])
            if low >= row_start + rows:
                break
            block = as_int[max(0, low - row_start):max(0, high - row_start)]
            if block.shape[0]:
                sketch.bin_missing[index] += block.sum(axis=0)
        return sketch

    def merge(self, other: "NullitySketch") -> "NullitySketch":
        """Add two chunk sketches built over the same columns and bins."""
        if self.columns != other.columns or \
                self.n_rows_total != other.n_rows_total or \
                self.bin_edges.shape != other.bin_edges.shape:
            raise EDAError("cannot merge nullity sketches of different shapes")
        merged = NullitySketch(
            columns=self.columns, n_rows_total=self.n_rows_total,
            bin_edges=self.bin_edges,
            counts=self.counts + other.counts,
            co_counts=self.co_counts + other.co_counts,
            bin_missing=self.bin_missing + other.bin_missing,
            n_rows_seen=self.n_rows_seen + other.n_rows_seen)
        return merged

    # ------------------------------------------------------------------ #
    # Finalizers
    # ------------------------------------------------------------------ #
    def missing_per_column(self) -> Dict[str, int]:
        """Per-column missing cell counts."""
        return {name: int(count)
                for name, count in zip(self.columns, self.counts)}

    def spectrum_densities(self) -> np.ndarray:
        """Missing density per global row bin, shape ``(B, C)``."""
        widths = np.diff(self.bin_edges).astype(np.float64)
        safe = np.where(widths > 0, widths, 1.0)
        return self.bin_missing / safe[:, None]

    def nullity_correlation(self) -> Tuple[List[str], np.ndarray]:
        """Pearson correlation of missingness indicators, in closed form.

        Columns that are never or always missing carry no information and
        are dropped, matching :func:`repro.stats.association.nullity_correlation`.
        """
        n = self.n_rows_seen
        counts = self.counts.astype(np.float64)
        keep = (counts > 0) & (counts < n)
        kept = [name for name, keep_it in zip(self.columns, keep) if keep_it]
        if not kept:
            return [], np.zeros((0, 0))
        s = counts[keep]
        sij = self.co_counts[np.ix_(keep, keep)].astype(np.float64)
        covariance = n * sij - np.outer(s, s)
        spread = np.sqrt(n * s - s * s)
        matrix = covariance / np.outer(spread, spread)
        np.fill_diagonal(matrix, 1.0)
        return kept, np.clip(matrix, -1.0, 1.0)

    def nullity_distances(self) -> np.ndarray:
        """Condensed Euclidean distances between missingness indicators."""
        width = len(self.columns)
        counts = self.counts.astype(np.float64)
        condensed: List[float] = []
        for i in range(width):
            for j in range(i + 1, width):
                squared = counts[i] + counts[j] - 2.0 * float(self.co_counts[i, j])
                condensed.append(math.sqrt(max(squared, 0.0)))
        return np.asarray(condensed, dtype=np.float64)


__all__ = [
    "DUPLICATE_SKETCH_CAPACITY",
    "DistinctSketch",
    "DuplicateSketch",
    "Mergeable",
    "MomentsSketch",
    "NullitySketch",
    "ReservoirSketch",
    "StreamingHistogram",
    "frame_row_hashes",
    "merge_all",
]
