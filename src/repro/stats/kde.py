"""Gaussian kernel density estimation for the KDE plot.

The KDE curve is evaluated from a histogram rather than the raw sample so it
can be produced from mergeable intermediates: the compute module builds one
fine-grained histogram in the graph stage and derives the KDE locally, which
is exactly the "reduce in Dask, post-process in Pandas" split of the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import EDAError
from repro.stats.histogram import Histogram


def silverman_bandwidth(count: int, std: float) -> float:
    """Silverman's rule-of-thumb bandwidth for a Gaussian kernel."""
    if count <= 0 or not np.isfinite(std) or std <= 0:
        return 1.0
    return 1.06 * std * count ** (-1.0 / 5.0)


def gaussian_kde_curve(histogram: Histogram, std: float,
                       grid_points: int = 200,
                       bandwidth: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate a Gaussian KDE from histogram intermediates.

    The density is a Gaussian mixture centered at the bin midpoints and
    weighted by the bin counts.  Returns ``(grid, density)``.
    """
    if grid_points <= 1:
        raise EDAError("grid_points must be at least 2")
    total = histogram.total
    grid = np.linspace(histogram.edges[0], histogram.edges[-1], grid_points)
    if total == 0:
        return grid, np.zeros_like(grid)
    if bandwidth is None:
        bandwidth = silverman_bandwidth(total, std)
    if not np.isfinite(bandwidth) or bandwidth <= 0:
        bandwidth = max(float(np.mean(histogram.widths)), 1e-9)
    centers = histogram.centers
    weights = histogram.counts / total
    # (grid, centers) outer difference; histograms are small (<=500 bins) so
    # the dense matrix is tiny even for very large datasets.
    z = (grid[:, None] - centers[None, :]) / bandwidth
    kernel = np.exp(-0.5 * z ** 2) / (bandwidth * np.sqrt(2.0 * np.pi))
    density = kernel @ weights
    return grid, density
