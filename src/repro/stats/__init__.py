"""Statistics kernels used by the EDA compute module.

Every kernel is either *mergeable* (it exposes chunk / combine / finalize
pieces so it can run over a :class:`~repro.graph.partition.PartitionedFrame`
inside one task graph) or explicitly a *local-stage* computation that runs on
already-reduced data — mirroring the paper's Dask-stage / Pandas-stage split
(Section 5.2).
"""

from repro.stats.descriptive import (
    CategoricalSummary,
    NumericSummary,
    categorical_summary_of,
    numeric_summary_of,
)
from repro.stats.histogram import Histogram, compute_histogram, freedman_diaconis_bins
from repro.stats.kde import gaussian_kde_curve, silverman_bandwidth
from repro.stats.qq import box_plot_stats, normal_qq_points, quantiles_from_histogram
from repro.stats.correlation import (
    correlation_matrix,
    kendall_tau_matrix,
    pearson_matrix,
    spearman_matrix,
)
from repro.stats.association import (
    missing_spectrum,
    nullity_correlation,
    nullity_dendrogram,
)
from repro.stats.tests import (
    chi_square_uniformity,
    ks_similarity,
    normality_test,
)
from repro.stats.sketches import (
    DistinctSketch,
    MomentsSketch,
    NullitySketch,
    ReservoirSketch,
    StreamingHistogram,
    merge_all,
)

__all__ = [
    "CategoricalSummary",
    "DistinctSketch",
    "Histogram",
    "MomentsSketch",
    "NullitySketch",
    "NumericSummary",
    "ReservoirSketch",
    "StreamingHistogram",
    "merge_all",
    "box_plot_stats",
    "categorical_summary_of",
    "chi_square_uniformity",
    "compute_histogram",
    "correlation_matrix",
    "freedman_diaconis_bins",
    "gaussian_kde_curve",
    "kendall_tau_matrix",
    "ks_similarity",
    "missing_spectrum",
    "normal_qq_points",
    "normality_test",
    "nullity_correlation",
    "nullity_dendrogram",
    "numeric_summary_of",
    "pearson_matrix",
    "quantiles_from_histogram",
    "silverman_bandwidth",
    "spearman_matrix",
]
