"""Statistical tests backing the auto-insight component.

Each helper returns a small result record rather than a bare p-value so the
insight layer can explain *why* something was flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass
class TestResult:
    """Outcome of a statistical test used for insights."""

    statistic: float
    p_value: float
    passed: bool
    description: str


def normality_test(values: np.ndarray, alpha: float = 0.05,
                   max_samples: int = 5000, seed: int = 0) -> TestResult:
    """D'Agostino-Pearson normality test (sampled for large inputs).

    ``passed`` is True when the data is *consistent with* a normal
    distribution (we fail to reject normality at level *alpha*).
    """
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size < 20:
        return TestResult(float("nan"), float("nan"), False,
                          "not enough data for a normality test")
    if values.size > max_samples:
        rng = np.random.default_rng(seed)
        values = rng.choice(values, size=max_samples, replace=False)
    if np.allclose(values, values[0]):
        return TestResult(float("nan"), 0.0, False, "constant values are not normal")
    statistic, p_value = scipy_stats.normaltest(values)
    passed = bool(p_value > alpha)
    return TestResult(float(statistic), float(p_value), passed,
                      "consistent with a normal distribution" if passed
                      else "deviates from a normal distribution")


def chi_square_uniformity(counts: Sequence[int], alpha: float = 0.05) -> TestResult:
    """Chi-squared test of category counts against the uniform distribution.

    ``passed`` is True when the counts are consistent with uniformity.
    """
    counts = np.asarray(list(counts), dtype=np.float64)
    counts = counts[np.isfinite(counts)]
    if counts.size < 2 or counts.sum() == 0:
        return TestResult(float("nan"), float("nan"), False,
                          "not enough categories for a uniformity test")
    expected = np.full(counts.size, counts.sum() / counts.size)
    statistic, p_value = scipy_stats.chisquare(counts, expected)
    passed = bool(p_value > alpha)
    return TestResult(float(statistic), float(p_value), passed,
                      "consistent with a uniform distribution" if passed
                      else "deviates from a uniform distribution")


def ks_similarity(sample_a: np.ndarray, sample_b: np.ndarray,
                  alpha: float = 0.05, max_samples: int = 5000,
                  seed: int = 0) -> TestResult:
    """Two-sample Kolmogorov–Smirnov test of distribution similarity.

    ``passed`` is True when the two samples are consistent with coming from
    the same distribution — the paper's "whether two distributions are
    similar" insight and the basis of the ``plot_missing(df, col1, col2)``
    impact analysis.
    """
    rng = np.random.default_rng(seed)
    cleaned = []
    for sample in (sample_a, sample_b):
        sample = np.asarray(sample, dtype=np.float64)
        sample = sample[np.isfinite(sample)]
        if sample.size > max_samples:
            sample = rng.choice(sample, size=max_samples, replace=False)
        cleaned.append(sample)
    sample_a, sample_b = cleaned
    if sample_a.size < 5 or sample_b.size < 5:
        return TestResult(float("nan"), float("nan"), True,
                          "not enough data to compare distributions")
    statistic, p_value = scipy_stats.ks_2samp(sample_a, sample_b)
    passed = bool(p_value > alpha)
    return TestResult(float(statistic), float(p_value), passed,
                      "distributions are similar" if passed
                      else "distributions differ")
