"""Missing-value association statistics (the plot_missing(df) intermediates).

These reproduce the four overview visualizations the paper lists for
``plot_missing(df)``: the per-column missing bar chart (trivially derived
from counts), the missing spectrum plot, the nullity correlation heat map and
the nullity dendrogram (both adopted from the Missingno library).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.cluster import hierarchy
from scipy.spatial.distance import squareform

from repro.errors import EDAError
from repro.stats.correlation import pearson_matrix


@dataclass
class MissingSpectrum:
    """Missing-value density along row order, one series per column."""

    columns: List[str]
    bin_edges: np.ndarray
    #: shape (n_bins, n_columns); fraction of missing cells per bin/column.
    densities: np.ndarray

    def series_for(self, column: str) -> np.ndarray:
        """Missing density series of one column."""
        try:
            index = self.columns.index(column)
        except ValueError:
            raise EDAError(f"unknown column {column!r}") from None
        return self.densities[:, index]


def missing_spectrum(mask: np.ndarray, columns: Sequence[str],
                     n_bins: int = 32) -> MissingSpectrum:
    """Compute the missing spectrum from a boolean missing mask.

    *mask* has shape ``(n_rows, n_columns)`` with True marking a missing
    cell.  Rows are grouped into *n_bins* contiguous blocks and the fraction
    of missing cells per block and column is reported, which visualizes
    *where* in the file the missing values concentrate.
    """
    mask = np.asarray(mask, dtype=np.bool_)
    if mask.ndim != 2:
        raise EDAError("mask must be 2-D (rows x columns)")
    n_rows = mask.shape[0]
    if mask.shape[1] != len(columns):
        raise EDAError("mask width does not match number of columns")
    n_bins = max(1, min(n_bins, n_rows)) if n_rows else 1
    edges = np.linspace(0, n_rows, n_bins + 1, dtype=np.int64)
    densities = np.zeros((n_bins, len(columns)), dtype=np.float64)
    for index in range(n_bins):
        start, stop = edges[index], edges[index + 1]
        block = mask[start:stop]
        if block.shape[0]:
            densities[index] = block.mean(axis=0)
    return MissingSpectrum(columns=list(columns), bin_edges=edges, densities=densities)


def nullity_correlation(mask: np.ndarray, columns: Sequence[str]
                        ) -> Tuple[List[str], np.ndarray]:
    """Pearson correlation between the missingness indicators of columns.

    Columns that are never missing or always missing carry no information and
    are dropped (their correlation is undefined), matching Missingno.
    Returns the retained column names and the correlation matrix.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim != 2:
        raise EDAError("mask must be 2-D (rows x columns)")
    variances = mask.var(axis=0)
    keep = variances > 0
    kept_columns = [name for name, keep_it in zip(columns, keep) if keep_it]
    if not kept_columns:
        return [], np.zeros((0, 0))
    matrix = pearson_matrix(mask[:, keep])
    return kept_columns, matrix


@dataclass
class DendrogramNode:
    """One merge step of the hierarchical clustering of column nullity."""

    left: int
    right: int
    distance: float
    size: int


def nullity_dendrogram(mask: np.ndarray, columns: Sequence[str]
                       ) -> Tuple[List[str], List[DendrogramNode]]:
    """Hierarchical clustering of columns by missingness pattern similarity.

    Uses average linkage over the Euclidean distance between the columns'
    binary missingness vectors (the Missingno dendrogram).  Returns the
    column labels and the linkage steps; leaf indices below ``len(columns)``
    refer to columns, larger indices refer to earlier merge steps.
    """
    mask = np.asarray(mask, dtype=np.float64)
    n_columns = mask.shape[1] if mask.ndim == 2 else 0
    if n_columns != len(columns):
        raise EDAError("mask width does not match number of columns")
    if n_columns < 2:
        return list(columns), []
    linkage = hierarchy.linkage(mask.T, method="average", metric="euclidean")
    nodes = [DendrogramNode(left=int(row[0]), right=int(row[1]),
                            distance=float(row[2]), size=int(row[3]))
             for row in linkage]
    return list(columns), nodes


def nullity_dendrogram_from_distances(condensed: np.ndarray,
                                      columns: Sequence[str]
                                      ) -> Tuple[List[str], List[DendrogramNode]]:
    """Dendrogram from precomputed condensed pairwise distances.

    The out-of-core path derives the Euclidean distances between the
    missingness indicator columns in closed form from mergeable counts
    (``sqrt(S_i + S_j - 2 S_ij)``, see
    :class:`repro.stats.sketches.NullitySketch`), then clusters them here —
    identical to :func:`nullity_dendrogram`, which computes the same
    distances from the materialized mask.
    """
    if len(columns) < 2:
        return list(columns), []
    linkage = hierarchy.linkage(np.asarray(condensed, dtype=np.float64),
                                method="average")
    nodes = [DendrogramNode(left=int(row[0]), right=int(row[1]),
                            distance=float(row[2]), size=int(row[3]))
             for row in linkage]
    return list(columns), nodes


def column_missing_counts(mask: np.ndarray, columns: Sequence[str]) -> Dict[str, int]:
    """Per-column missing cell counts from a boolean mask."""
    mask = np.asarray(mask, dtype=np.bool_)
    return {name: int(mask[:, index].sum()) for index, name in enumerate(columns)}
