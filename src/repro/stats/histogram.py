"""Mergeable histograms with shared bin edges."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EDAError


@dataclass
class Histogram:
    """A fixed-edge histogram that can be merged across partitions."""

    edges: np.ndarray
    counts: np.ndarray

    @property
    def n_bins(self) -> int:
        """Number of bins."""
        return int(self.counts.size)

    @property
    def total(self) -> int:
        """Total number of counted values."""
        return int(self.counts.sum())

    @property
    def centers(self) -> np.ndarray:
        """Midpoint of each bin."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def widths(self) -> np.ndarray:
        """Width of each bin."""
        return np.diff(self.edges)

    def density(self) -> np.ndarray:
        """Probability-density normalisation of the counts."""
        total = self.total
        widths = self.widths
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / (total * np.where(widths > 0, widths, 1.0))

    def merge(self, other: "Histogram") -> "Histogram":
        """Merge two histograms built over identical edges."""
        if self.edges.shape != other.edges.shape or \
                not np.allclose(self.edges, other.edges):
            raise EDAError("cannot merge histograms with different bin edges")
        return Histogram(self.edges, self.counts + other.counts)

    @staticmethod
    def merge_all(histograms: Sequence["Histogram"]) -> "Histogram":
        """Merge a list of histograms with identical edges."""
        if not histograms:
            raise EDAError("cannot merge zero histograms")
        merged = histograms[0]
        for histogram in histograms[1:]:
            merged = merged.merge(histogram)
        return merged

    def as_plot_data(self) -> Tuple[List[float], List[int]]:
        """``(bin centers, counts)`` lists ready to feed a bar-style chart."""
        return self.centers.tolist(), self.counts.astype(int).tolist()


def compute_histogram(values: np.ndarray, bins: int,
                      value_range: Optional[Tuple[float, float]] = None) -> Histogram:
    """Histogram of an array of present values.

    When *value_range* is given the edges are fixed to it, which makes the
    result mergeable with histograms of other partitions computed over the
    same range (the compute module shares the global min/max for this).
    Non-finite values are ignored.
    """
    if bins <= 0:
        raise EDAError("bins must be positive")
    values = np.asarray(values, dtype=np.float64)
    finite = values[np.isfinite(values)]
    if value_range is None:
        if finite.size == 0:
            value_range = (0.0, 1.0)
        else:
            value_range = (float(finite.min()), float(finite.max()))
    low, high = value_range
    if not math.isfinite(low) or not math.isfinite(high):
        low, high = 0.0, 1.0
    if high <= low:
        high = low + 1.0
    counts, edges = np.histogram(finite, bins=bins, range=(low, high))
    return Histogram(edges=edges, counts=counts.astype(np.int64))


def freedman_diaconis_bins(count: int, q25: float, q75: float,
                           minimum: float, maximum: float,
                           fallback: int = 50, max_bins: int = 200) -> int:
    """Freedman–Diaconis rule for the number of bins.

    Falls back to *fallback* when the IQR is degenerate, and clamps to
    ``[1, max_bins]`` so charts stay readable.
    """
    if count <= 1 or not all(map(math.isfinite, (q25, q75, minimum, maximum))):
        return fallback
    iqr = q75 - q25
    data_range = maximum - minimum
    if iqr <= 0 or data_range <= 0:
        return fallback
    width = 2.0 * iqr / count ** (1.0 / 3.0)
    if width <= 0:
        return fallback
    return int(min(max_bins, max(1, round(data_range / width))))
