"""Mergeable descriptive summaries for numeric and categorical columns.

Both summary types support ``merge`` so per-partition partial summaries can
be combined in a tree reduction; the derived statistics (mean, variance,
skewness, kurtosis, entropy, ...) are computed only at finalization time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame.column import Column


@dataclass
class NumericSummary:
    """Mergeable moments-based summary of a numeric column.

    The four raw power sums allow mean, variance, skewness and kurtosis to be
    derived after merging, matching the single-pass statistics the paper's
    Compute module shares across the stats table, box plot and Q-Q plot.
    """

    count: int = 0
    missing: int = 0
    infinite: int = 0
    zeros: int = 0
    negatives: int = 0
    total: int = 0
    sum1: float = 0.0
    sum2: float = 0.0
    sum3: float = 0.0
    sum4: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: np.ndarray, missing: int = 0) -> "NumericSummary":
        """Summary of an array of present (non-missing) float values."""
        values = np.asarray(values, dtype=np.float64)
        finite = values[np.isfinite(values)]
        summary = cls()
        summary.total = int(values.size) + int(missing)
        summary.missing = int(missing)
        summary.infinite = int(np.isinf(values).sum())
        summary.count = int(finite.size)
        if finite.size:
            summary.zeros = int((finite == 0).sum())
            summary.negatives = int((finite < 0).sum())
            summary.sum1 = float(finite.sum())
            summary.sum2 = float(np.square(finite).sum())
            summary.sum3 = float(np.power(finite, 3).sum())
            summary.sum4 = float(np.power(finite, 4).sum())
            summary.minimum = float(finite.min())
            summary.maximum = float(finite.max())
        return summary

    @classmethod
    def from_column(cls, column: Column) -> "NumericSummary":
        """Summary of a numeric :class:`Column` (missing values excluded)."""
        return cls.from_values(column.to_numpy(drop_missing=True).astype(np.float64),
                               missing=column.missing_count())

    def merge(self, other: "NumericSummary") -> "NumericSummary":
        """Combine two partial summaries (associative and commutative)."""
        merged = NumericSummary(
            count=self.count + other.count,
            missing=self.missing + other.missing,
            infinite=self.infinite + other.infinite,
            zeros=self.zeros + other.zeros,
            negatives=self.negatives + other.negatives,
            total=self.total + other.total,
            sum1=self.sum1 + other.sum1,
            sum2=self.sum2 + other.sum2,
            sum3=self.sum3 + other.sum3,
            sum4=self.sum4 + other.sum4,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )
        return merged

    @staticmethod
    def merge_all(summaries: Sequence["NumericSummary"]) -> "NumericSummary":
        """Merge a list of partial summaries."""
        merged = NumericSummary()
        for summary in summaries:
            merged = merged.merge(summary)
        return merged

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        """Mean of the finite values (NaN when empty)."""
        return self.sum1 / self.count if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1) of the finite values."""
        if self.count < 2:
            return float("nan")
        mean = self.mean
        centered = self.sum2 - self.count * mean * mean
        return max(centered, 0.0) / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation of the finite values."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")

    @property
    def skewness(self) -> float:
        """Fisher-Pearson skewness derived from the raw power sums."""
        if self.count < 3:
            return float("nan")
        n = self.count
        mean = self.mean
        m2 = self.sum2 / n - mean ** 2
        if m2 <= 0:
            return 0.0
        m3 = self.sum3 / n - 3 * mean * self.sum2 / n + 2 * mean ** 3
        return m3 / m2 ** 1.5

    @property
    def kurtosis(self) -> float:
        """Excess kurtosis derived from the raw power sums."""
        if self.count < 4:
            return float("nan")
        n = self.count
        mean = self.mean
        m2 = self.sum2 / n - mean ** 2
        if m2 <= 0:
            return 0.0
        m4 = (self.sum4 / n
              - 4 * mean * self.sum3 / n
              + 6 * mean ** 2 * self.sum2 / n
              - 3 * mean ** 4)
        return m4 / m2 ** 2 - 3.0

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean (NaN when the mean is zero or undefined)."""
        mean = self.mean
        if mean == 0 or mean != mean:
            return float("nan")
        return self.std / mean

    @property
    def value_range(self) -> float:
        """max - min of the finite values (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.maximum - self.minimum

    @property
    def missing_rate(self) -> float:
        """Fraction of missing entries out of all rows seen."""
        return self.missing / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flatten the summary + derived statistics into a dictionary."""
        return {
            "count": self.count,
            "missing": self.missing,
            "missing_rate": self.missing_rate,
            "infinite": self.infinite,
            "zeros": self.zeros,
            "negatives": self.negatives,
            "mean": self.mean,
            "std": self.std,
            "variance": self.variance,
            "cv": self.coefficient_of_variation,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
            "range": self.value_range,
            "skewness": self.skewness,
            "kurtosis": self.kurtosis,
            "sum": self.sum1,
        }


@dataclass
class CategoricalSummary:
    """Mergeable summary of a categorical (string-like) column."""

    counts: Dict[str, int] = field(default_factory=dict)
    missing: int = 0
    total: int = 0
    total_length: int = 0
    min_length: Optional[int] = None
    max_length: Optional[int] = None

    @classmethod
    def from_values(cls, values: Iterable[Any], missing: int = 0) -> "CategoricalSummary":
        """Summary of an iterable of present values (stringified)."""
        summary = cls(missing=missing)
        counts: Dict[str, int] = {}
        for value in values:
            text = str(value)
            counts[text] = counts.get(text, 0) + 1
            length = len(text)
            summary.total_length += length
            summary.min_length = length if summary.min_length is None \
                else min(summary.min_length, length)
            summary.max_length = length if summary.max_length is None \
                else max(summary.max_length, length)
        summary.counts = counts
        present = sum(counts.values())
        summary.total = present + missing
        return summary

    @classmethod
    def from_column(cls, column: Column) -> "CategoricalSummary":
        """Summary of a :class:`Column` treated as categorical."""
        present = [value for value, is_missing in zip(column.to_list(), column.isna())
                   if not is_missing]
        return cls.from_values(present, missing=column.missing_count())

    def merge(self, other: "CategoricalSummary") -> "CategoricalSummary":
        """Combine two partial summaries."""
        counts = dict(self.counts)
        for value, count in other.counts.items():
            counts[value] = counts.get(value, 0) + count
        lengths = [length for length in (self.min_length, other.min_length)
                   if length is not None]
        max_lengths = [length for length in (self.max_length, other.max_length)
                       if length is not None]
        return CategoricalSummary(
            counts=counts,
            missing=self.missing + other.missing,
            total=self.total + other.total,
            total_length=self.total_length + other.total_length,
            min_length=min(lengths) if lengths else None,
            max_length=max(max_lengths) if max_lengths else None,
        )

    @staticmethod
    def merge_all(summaries: Sequence["CategoricalSummary"]) -> "CategoricalSummary":
        """Merge a list of partial summaries."""
        merged = CategoricalSummary()
        for summary in summaries:
            merged = merged.merge(summary)
        return merged

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of present values."""
        return sum(self.counts.values())

    @property
    def distinct(self) -> int:
        """Number of distinct present values."""
        return len(self.counts)

    @property
    def missing_rate(self) -> float:
        """Fraction of missing entries out of all rows seen."""
        return self.missing / self.total if self.total else 0.0

    @property
    def mean_length(self) -> float:
        """Mean string length of present values."""
        count = self.count
        return self.total_length / count if count else float("nan")

    @property
    def entropy(self) -> float:
        """Shannon entropy (bits) of the category distribution."""
        count = self.count
        if count == 0:
            return 0.0
        entropy = 0.0
        for frequency in self.counts.values():
            p = frequency / count
            entropy -= p * math.log2(p)
        return entropy

    def top_values(self, n: int = 10) -> List[Tuple[str, int]]:
        """The *n* most frequent values as ``(value, count)`` pairs."""
        ordered = sorted(self.counts.items(), key=lambda pair: (-pair[1], pair[0]))
        return ordered[:n]

    def mode(self) -> Optional[str]:
        """Most frequent value (None when the column is empty)."""
        top = self.top_values(1)
        return top[0][0] if top else None

    def as_dict(self) -> Dict[str, Any]:
        """Flatten the summary + derived statistics into a dictionary."""
        top = self.top_values(1)
        return {
            "count": self.count,
            "missing": self.missing,
            "missing_rate": self.missing_rate,
            "distinct": self.distinct,
            "unique_rate": self.distinct / self.count if self.count else 0.0,
            "top": top[0][0] if top else None,
            "top_freq": top[0][1] if top else 0,
            "entropy": self.entropy,
            "mean_length": self.mean_length,
            "min_length": self.min_length,
            "max_length": self.max_length,
        }


def numeric_summary_of(column: Column) -> NumericSummary:
    """Convenience wrapper used by the eager baseline profiler."""
    return NumericSummary.from_column(column)


def categorical_summary_of(column: Column) -> CategoricalSummary:
    """Convenience wrapper used by the eager baseline profiler."""
    return CategoricalSummary.from_column(column)
