"""Mergeable descriptive summaries for numeric and categorical columns.

Both summary types implement the sketch ``merge`` protocol of
:mod:`repro.stats.sketches` so per-partition partial summaries can be
combined in a tree reduction; the derived statistics (mean, variance,
skewness, kurtosis, entropy, ...) are computed only at finalization time.

:class:`NumericSummary` is built on :class:`~repro.stats.sketches.MomentsSketch`
(streaming central moments with the Welford/Chan pairwise merge), which keeps
the derived moments numerically stable even when millions of chunk summaries
are merged during an out-of-core scan.  :class:`CategoricalSummary` is exact
by default; the streaming path bounds it with a ``capacity`` so a
high-cardinality column cannot grow the per-chunk state past the memory
budget — a :class:`~repro.stats.sketches.DistinctSketch` then keeps the
distinct count honest once pruning starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame.column import Column
from repro.stats.sketches import DistinctSketch, MomentsSketch
from repro.stats.sketches import merge_all as _merge_all_sketches


@dataclass
class NumericSummary:
    """Mergeable moments-based summary of a numeric column.

    The central-moment sketch allows mean, variance, skewness and kurtosis
    to be derived after merging, matching the single-pass statistics the
    paper's Compute module shares across the stats table, box plot and Q-Q
    plot.  The raw power sums of the previous representation remain
    available as derived properties (``sum1`` .. ``sum4``).
    """

    moments: MomentsSketch = field(default_factory=MomentsSketch)
    missing: int = 0
    infinite: int = 0
    zeros: int = 0
    negatives: int = 0
    total: int = 0

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: np.ndarray, missing: int = 0) -> "NumericSummary":
        """Summary of an array of present (non-missing) float values."""
        values = np.asarray(values, dtype=np.float64)
        finite = values[np.isfinite(values)]
        summary = cls(moments=MomentsSketch.from_values(finite))
        summary.total = int(values.size) + int(missing)
        summary.missing = int(missing)
        summary.infinite = int(np.isinf(values).sum())
        if finite.size:
            summary.zeros = int((finite == 0).sum())
            summary.negatives = int((finite < 0).sum())
        return summary

    @classmethod
    def from_column(cls, column: Column) -> "NumericSummary":
        """Summary of a numeric :class:`Column` (missing values excluded)."""
        return cls.from_values(column.to_numpy(drop_missing=True).astype(np.float64),
                               missing=column.missing_count())

    def merge(self, other: "NumericSummary") -> "NumericSummary":
        """Combine two partial summaries (associative and commutative)."""
        return NumericSummary(
            moments=self.moments.merge(other.moments),
            missing=self.missing + other.missing,
            infinite=self.infinite + other.infinite,
            zeros=self.zeros + other.zeros,
            negatives=self.negatives + other.negatives,
            total=self.total + other.total,
        )

    @staticmethod
    def merge_all(summaries: Sequence["NumericSummary"]) -> "NumericSummary":
        """Merge a list of partial summaries."""
        if not summaries:
            return NumericSummary()
        return _merge_all_sketches(list(summaries))

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of finite values."""
        return self.moments.count

    @property
    def minimum(self) -> float:
        """Smallest finite value (``inf`` when empty, as merge identity)."""
        return self.moments.minimum

    @property
    def maximum(self) -> float:
        """Largest finite value (``-inf`` when empty, as merge identity)."""
        return self.moments.maximum

    @property
    def sum1(self) -> float:
        """Raw power sum ``sum(x)``, derived from the central moments."""
        return self.moments.mean * self.count

    @property
    def sum2(self) -> float:
        """Raw power sum ``sum(x^2)``, derived from the central moments."""
        mean, n = self.moments.mean, self.count
        return self.moments.m2 + n * mean * mean

    @property
    def sum3(self) -> float:
        """Raw power sum ``sum(x^3)``, derived from the central moments."""
        mean, n = self.moments.mean, self.count
        return self.moments.m3 + 3.0 * mean * self.moments.m2 + n * mean ** 3

    @property
    def sum4(self) -> float:
        """Raw power sum ``sum(x^4)``, derived from the central moments."""
        mean, n = self.moments.mean, self.count
        return (self.moments.m4 + 4.0 * mean * self.moments.m3
                + 6.0 * mean * mean * self.moments.m2 + n * mean ** 4)

    @property
    def mean(self) -> float:
        """Mean of the finite values (NaN when empty)."""
        return self.moments.mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1) of the finite values."""
        return self.moments.variance

    @property
    def std(self) -> float:
        """Sample standard deviation of the finite values."""
        return self.moments.std

    @property
    def skewness(self) -> float:
        """Fisher-Pearson skewness derived from the central moments."""
        return self.moments.skewness

    @property
    def kurtosis(self) -> float:
        """Excess kurtosis derived from the central moments."""
        return self.moments.kurtosis

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean (NaN when the mean is zero or undefined)."""
        mean = self.mean
        if mean == 0 or mean != mean:
            return float("nan")
        return self.std / mean

    @property
    def value_range(self) -> float:
        """max - min of the finite values (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.maximum - self.minimum

    @property
    def missing_rate(self) -> float:
        """Fraction of missing entries out of all rows seen."""
        return self.missing / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flatten the summary + derived statistics into a dictionary."""
        return {
            "count": self.count,
            "missing": self.missing,
            "missing_rate": self.missing_rate,
            "infinite": self.infinite,
            "zeros": self.zeros,
            "negatives": self.negatives,
            "mean": self.mean,
            "std": self.std,
            "variance": self.variance,
            "cv": self.coefficient_of_variation,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
            "range": self.value_range,
            "skewness": self.skewness,
            "kurtosis": self.kurtosis,
            "sum": self.sum1,
        }


@dataclass
class CategoricalSummary:
    """Mergeable summary of a categorical (string-like) column.

    Exact and unbounded by default.  When built with a ``capacity`` (the
    out-of-core streaming path does this), the value-count table is pruned
    to the ``capacity`` most frequent entries whenever it grows past the
    bound; ``pruned_count`` keeps the present-value total exact,
    ``pruned_max`` bounds the count error of any surviving entry, and a
    :class:`~repro.stats.sketches.DistinctSketch` — fed every distinct value
    *before* pruning — keeps the distinct count accurate.
    """

    counts: Dict[str, int] = field(default_factory=dict)
    missing: int = 0
    total: int = 0
    total_length: int = 0
    min_length: Optional[int] = None
    max_length: Optional[int] = None
    capacity: Optional[int] = None
    pruned_count: int = 0
    pruned_max: int = 0
    distinct_sketch: Optional[DistinctSketch] = None

    @classmethod
    def from_values(cls, values: Iterable[Any], missing: int = 0,
                    capacity: Optional[int] = None) -> "CategoricalSummary":
        """Summary of an iterable of present values (stringified)."""
        summary = cls(missing=missing, capacity=capacity)
        counts: Dict[str, int] = {}
        for value in values:
            text = str(value)
            counts[text] = counts.get(text, 0) + 1
            length = len(text)
            summary.total_length += length
            summary.min_length = length if summary.min_length is None \
                else min(summary.min_length, length)
            summary.max_length = length if summary.max_length is None \
                else max(summary.max_length, length)
        summary.counts = counts
        present = sum(counts.values())
        summary.total = present + missing
        if capacity is not None:
            summary.distinct_sketch = DistinctSketch.from_values(counts.keys())
            summary._prune()
        return summary

    @classmethod
    def from_codes(cls, codes: np.ndarray, dictionary: np.ndarray,
                   missing: int = 0,
                   capacity: Optional[int] = None) -> "CategoricalSummary":
        """Summary from a dictionary encoding — one ``bincount`` over the
        codes plus O(dictionary) python work, no per-row loop.

        Produces exactly what :meth:`from_values` would for the decoded
        values: the same counts, length statistics, pruning and distinct
        sketch.
        """
        summary = cls(missing=missing, capacity=capacity)
        present = codes[codes >= 0]
        if present.size:
            tallies = np.bincount(present, minlength=dictionary.size)
            used = np.flatnonzero(tallies)
            lengths = np.fromiter(
                (len(str(dictionary[index])) for index in used),
                dtype=np.int64, count=used.size)
            summary.counts = {str(dictionary[index]): int(tallies[index])
                              for index in used}
            summary.total_length = int((lengths * tallies[used]).sum())
            summary.min_length = int(lengths.min())
            summary.max_length = int(lengths.max())
        summary.total = int(present.size) + missing
        if capacity is not None:
            summary.distinct_sketch = DistinctSketch.from_values(
                summary.counts.keys())
            summary._prune()
        return summary

    @classmethod
    def from_column(cls, column: Column,
                    capacity: Optional[int] = None) -> "CategoricalSummary":
        """Summary of a :class:`Column` treated as categorical."""
        if getattr(column, "is_dictionary", False):
            return cls.from_codes(column.codes[~column.isna()],
                                  column.dictionary,
                                  missing=column.missing_count(),
                                  capacity=capacity)
        present = [value for value, is_missing in zip(column.to_list(), column.isna())
                   if not is_missing]
        return cls.from_values(present, missing=column.missing_count(),
                               capacity=capacity)

    def _prune(self) -> None:
        """Drop the least frequent entries beyond ``capacity`` (in place)."""
        if self.capacity is None or len(self.counts) <= self.capacity:
            return
        ordered = sorted(self.counts.items(), key=lambda pair: (-pair[1], pair[0]))
        kept, dropped = ordered[:self.capacity], ordered[self.capacity:]
        self.pruned_count += sum(count for _, count in dropped)
        self.pruned_max = max([self.pruned_max] + [count for _, count in dropped])
        self.counts = dict(kept)

    def merge(self, other: "CategoricalSummary") -> "CategoricalSummary":
        """Combine two partial summaries."""
        counts = dict(self.counts)
        for value, count in other.counts.items():
            counts[value] = counts.get(value, 0) + count
        lengths = [length for length in (self.min_length, other.min_length)
                   if length is not None]
        max_lengths = [length for length in (self.max_length, other.max_length)
                       if length is not None]
        capacities = [cap for cap in (self.capacity, other.capacity)
                      if cap is not None]
        merged = CategoricalSummary(
            counts=counts,
            missing=self.missing + other.missing,
            total=self.total + other.total,
            total_length=self.total_length + other.total_length,
            min_length=min(lengths) if lengths else None,
            max_length=max(max_lengths) if max_lengths else None,
            capacity=min(capacities) if capacities else None,
            pruned_count=self.pruned_count + other.pruned_count,
            pruned_max=max(self.pruned_max, other.pruned_max),
            distinct_sketch=self._merged_sketch(other),
        )
        merged._prune()
        return merged

    def _merged_sketch(self, other: "CategoricalSummary"
                       ) -> Optional[DistinctSketch]:
        """Union the distinct sketches, covering any unbounded side's keys."""
        if self.distinct_sketch is None and other.distinct_sketch is None:
            return None
        first = self.distinct_sketch or DistinctSketch.from_values(self.counts.keys())
        second = other.distinct_sketch or DistinctSketch.from_values(other.counts.keys())
        return first.merge(second)

    @staticmethod
    def merge_all(summaries: Sequence["CategoricalSummary"]) -> "CategoricalSummary":
        """Merge a list of partial summaries."""
        if not summaries:
            return CategoricalSummary()
        return _merge_all_sketches(list(summaries))

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of present values (exact even after pruning)."""
        return sum(self.counts.values()) + self.pruned_count

    @property
    def distinct(self) -> int:
        """Number of distinct present values (estimated once pruned)."""
        if self.pruned_count and self.distinct_sketch is not None:
            return max(len(self.counts), self.distinct_sketch.estimate())
        return len(self.counts)

    @property
    def missing_rate(self) -> float:
        """Fraction of missing entries out of all rows seen."""
        return self.missing / self.total if self.total else 0.0

    @property
    def mean_length(self) -> float:
        """Mean string length of present values."""
        count = self.count
        return self.total_length / count if count else float("nan")

    @property
    def entropy(self) -> float:
        """Shannon entropy (bits) of the (retained) category distribution."""
        count = self.count
        if count == 0:
            return 0.0
        entropy = 0.0
        for frequency in self.counts.values():
            p = frequency / count
            entropy -= p * math.log2(p)
        return entropy

    def top_values(self, n: int = 10) -> List[Tuple[str, int]]:
        """The *n* most frequent values as ``(value, count)`` pairs."""
        ordered = sorted(self.counts.items(), key=lambda pair: (-pair[1], pair[0]))
        return ordered[:n]

    def mode(self) -> Optional[str]:
        """Most frequent value (None when the column is empty)."""
        top = self.top_values(1)
        return top[0][0] if top else None

    def as_dict(self) -> Dict[str, Any]:
        """Flatten the summary + derived statistics into a dictionary."""
        top = self.top_values(1)
        return {
            "count": self.count,
            "missing": self.missing,
            "missing_rate": self.missing_rate,
            "distinct": self.distinct,
            "unique_rate": self.distinct / self.count if self.count else 0.0,
            "top": top[0][0] if top else None,
            "top_freq": top[0][1] if top else 0,
            "entropy": self.entropy,
            "mean_length": self.mean_length,
            "min_length": self.min_length,
            "max_length": self.max_length,
        }


def numeric_summary_of(column: Column) -> NumericSummary:
    """Convenience wrapper used by the eager baseline profiler."""
    return NumericSummary.from_column(column)


def categorical_summary_of(column: Column) -> CategoricalSummary:
    """Convenience wrapper used by the eager baseline profiler."""
    return CategoricalSummary.from_column(column)
