"""Correlation matrices: Pearson, Spearman and Kendall's tau.

The paper computes the Pearson correlation matrix in the Dask stage (it is
mergeable: only sums, squared sums and cross products are needed) and hands
the small ``m x m`` matrix to Pandas for filtering.  Spearman and Kendall are
rank statistics and are evaluated in the local stage; for very large inputs
the compute module samples rows first (documented behaviour, matching the
spirit of the paper's "sampling / sketches" future-work discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import EDAError

#: Correlation methods supported by :func:`correlation_matrix`.
METHODS = ("pearson", "spearman", "kendall")


@dataclass
class PearsonPartial:
    """Mergeable partial sums for a Pearson correlation matrix.

    For columns matrix ``X`` (rows x m), keeps per-pair counts and the sums
    needed to finish the correlation after merging, while ignoring rows with
    missing values per pair (pairwise deletion, like ``DataFrame.corr``).
    """

    counts: np.ndarray
    sums: np.ndarray
    square_sums: np.ndarray
    cross_sums: np.ndarray

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "PearsonPartial":
        """Build partial sums from a dense float matrix (NaN = missing)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise EDAError("expected a 2-D matrix of column values")
        valid = np.isfinite(matrix)
        filled = np.where(valid, matrix, 0.0)
        counts = valid.astype(np.float64).T @ valid.astype(np.float64)
        sums = filled.T @ valid.astype(np.float64)
        square_sums = (filled ** 2).T @ valid.astype(np.float64)
        cross_sums = filled.T @ filled
        return cls(counts=counts, sums=sums, square_sums=square_sums,
                   cross_sums=cross_sums)

    def merge(self, other: "PearsonPartial") -> "PearsonPartial":
        """Combine partial sums from two row chunks."""
        return PearsonPartial(
            counts=self.counts + other.counts,
            sums=self.sums + other.sums,
            square_sums=self.square_sums + other.square_sums,
            cross_sums=self.cross_sums + other.cross_sums,
        )

    @staticmethod
    def merge_all(partials: Sequence["PearsonPartial"]) -> "PearsonPartial":
        """Merge a list of partials."""
        if not partials:
            raise EDAError("cannot merge zero partials")
        merged = partials[0]
        for partial in partials[1:]:
            merged = merged.merge(partial)
        return merged

    def finalize(self) -> np.ndarray:
        """Finish the Pearson correlation matrix from the merged sums."""
        counts = self.counts
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_i = self.sums / counts
            mean_j = self.sums.T / counts
            cov = self.cross_sums / counts - mean_i * mean_j
            var_i = self.square_sums / counts - mean_i ** 2
            var_j = self.square_sums.T / counts - mean_j ** 2
            denominator = np.sqrt(var_i * var_j)
            matrix = np.where(denominator > 0, cov / denominator, np.nan)
        matrix = np.clip(matrix, -1.0, 1.0)
        np.fill_diagonal(matrix, 1.0)
        matrix[counts < 2] = np.nan
        np.fill_diagonal(matrix, 1.0)
        return matrix


def pearson_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pearson correlation matrix with pairwise missing-value deletion."""
    return PearsonPartial.from_matrix(matrix).finalize()


def _rank_with_ties(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties, NaN kept as NaN."""
    ranks = np.full(values.shape, np.nan)
    finite = np.isfinite(values)
    if finite.sum():
        ranks[finite] = scipy_stats.rankdata(values[finite])
    return ranks


def spearman_matrix(matrix: np.ndarray) -> np.ndarray:
    """Spearman rank correlation matrix (pairwise deletion)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    n_columns = matrix.shape[1]
    result = np.eye(n_columns)
    for i in range(n_columns):
        for j in range(i + 1, n_columns):
            both = np.isfinite(matrix[:, i]) & np.isfinite(matrix[:, j])
            if both.sum() < 2:
                value = np.nan
            else:
                ranks_i = scipy_stats.rankdata(matrix[both, i])
                ranks_j = scipy_stats.rankdata(matrix[both, j])
                value = _pearson_of(ranks_i, ranks_j)
            result[i, j] = result[j, i] = value
    return result


def kendall_tau_matrix(matrix: np.ndarray, max_rows: int = 10_000,
                       seed: int = 0) -> np.ndarray:
    """Kendall's tau-b correlation matrix (pairwise deletion).

    Kendall's tau is O(n log n) per pair; rows beyond *max_rows* are sampled
    to keep overview correlation analysis interactive, mirroring the paper's
    sampling discussion for expensive statistics.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape[0] > max_rows:
        rng = np.random.default_rng(seed)
        keep = rng.choice(matrix.shape[0], size=max_rows, replace=False)
        matrix = matrix[keep]
    n_columns = matrix.shape[1]
    result = np.eye(n_columns)
    for i in range(n_columns):
        for j in range(i + 1, n_columns):
            both = np.isfinite(matrix[:, i]) & np.isfinite(matrix[:, j])
            if both.sum() < 2:
                value = np.nan
            else:
                value, _ = scipy_stats.kendalltau(matrix[both, i], matrix[both, j])
            result[i, j] = result[j, i] = value
    return result


def _pearson_of(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two 1-D arrays without missing values."""
    if x.size < 2:
        return float("nan")
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denominator = np.sqrt((x_centered ** 2).sum() * (y_centered ** 2).sum())
    if denominator == 0:
        return float("nan")
    return float(np.clip((x_centered * y_centered).sum() / denominator, -1.0, 1.0))


def correlation_matrix(matrix: np.ndarray, method: str = "pearson",
                       max_kendall_rows: int = 10_000) -> np.ndarray:
    """Correlation matrix of a dense float matrix (NaN = missing)."""
    if method not in METHODS:
        raise EDAError(f"unknown correlation method {method!r}; expected one of {METHODS}")
    if method == "pearson":
        return pearson_matrix(matrix)
    if method == "spearman":
        return spearman_matrix(matrix)
    return kendall_tau_matrix(matrix, max_rows=max_kendall_rows)


def top_correlated_pairs(matrix: np.ndarray, names: Sequence[str],
                         threshold: float = 0.5) -> List[Tuple[str, str, float]]:
    """Column pairs whose absolute correlation exceeds *threshold*."""
    pairs: List[Tuple[str, str, float]] = []
    n_columns = matrix.shape[0]
    for i in range(n_columns):
        for j in range(i + 1, n_columns):
            value = matrix[i, j]
            if np.isfinite(value) and abs(value) >= threshold:
                pairs.append((names[i], names[j], float(value)))
    pairs.sort(key=lambda item: -abs(item[2]))
    return pairs
