"""Quantile-based statistics: approximate quantiles, normal Q-Q, box plots."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import EDAError
from repro.stats.histogram import Histogram


def quantiles_from_histogram(histogram: Histogram,
                             probabilities: Sequence[float]) -> np.ndarray:
    """Approximate quantiles from a fine-grained histogram.

    Uses linear interpolation of the cumulative distribution across bins.
    With the 512-bin histogram the compute module uses, the error is bounded
    by one bin width — more than adequate for plotting and insights, and it
    keeps the quantile computation mergeable across partitions.
    """
    probabilities = np.asarray(list(probabilities), dtype=np.float64)
    if np.any((probabilities < 0) | (probabilities > 1)):
        raise EDAError("quantile probabilities must be within [0, 1]")
    total = histogram.total
    if total == 0:
        return np.full(probabilities.shape, np.nan)
    cumulative = np.concatenate([[0], np.cumsum(histogram.counts)]) / total
    return np.interp(probabilities, cumulative, histogram.edges)


def normal_qq_points(quantiles: np.ndarray, mean: float, std: float,
                     probabilities: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Points of a normal Q-Q plot.

    *quantiles* are the sample quantiles at *probabilities*; the theoretical
    axis is the normal distribution with the sample's mean and std.  Returns
    ``(theoretical, sample)`` arrays.
    """
    probabilities = np.asarray(list(probabilities), dtype=np.float64)
    if not np.isfinite(std) or std <= 0:
        std = 1.0
    if not np.isfinite(mean):
        mean = 0.0
    theoretical = scipy_stats.norm.ppf(probabilities, loc=mean, scale=std)
    return theoretical, np.asarray(quantiles, dtype=np.float64)


@dataclass
class BoxPlotStats:
    """The five-number summary plus outlier info for a box plot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    lower_whisker: float
    upper_whisker: float
    outlier_count: int
    outlier_samples: List[float]

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form used by the render layer."""
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "lower_whisker": self.lower_whisker,
            "upper_whisker": self.upper_whisker,
            "iqr": self.iqr,
            "outliers": self.outlier_count,
        }


def box_plot_stats(quantiles: Dict[float, float], minimum: float, maximum: float,
                   histogram: Histogram, whisker: float = 1.5,
                   max_outlier_samples: int = 100) -> BoxPlotStats:
    """Box-plot statistics from shared quantile / histogram intermediates.

    *quantiles* must contain the 0.25, 0.5 and 0.75 probabilities.  The
    outlier count is estimated from the histogram mass outside the whiskers;
    representative outlier sample positions are taken at the affected bin
    centers (enough for plotting dots on the box plot).
    """
    for needed in (0.25, 0.5, 0.75):
        if needed not in quantiles:
            raise EDAError(f"box_plot_stats requires the {needed} quantile")
    q1, median, q3 = quantiles[0.25], quantiles[0.5], quantiles[0.75]
    iqr = q3 - q1
    lower = q1 - whisker * iqr
    upper = q3 + whisker * iqr
    if not math.isfinite(minimum):
        minimum = lower
    if not math.isfinite(maximum):
        maximum = upper
    lower_whisker = max(lower, minimum)
    upper_whisker = min(upper, maximum)

    centers = histogram.centers
    below = centers < lower
    above = centers > upper
    outlier_count = int(histogram.counts[below].sum() + histogram.counts[above].sum())
    outlier_positions = centers[below | above]
    outlier_samples = outlier_positions[:max_outlier_samples].tolist()
    return BoxPlotStats(
        minimum=float(minimum), q1=float(q1), median=float(median), q3=float(q3),
        maximum=float(maximum), lower_whisker=float(lower_whisker),
        upper_whisker=float(upper_whisker), outlier_count=outlier_count,
        outlier_samples=[float(value) for value in outlier_samples])
