"""``create_report(df)``: the profile-report functionality of DataPrep.EDA.

The report has the same five sections as the baseline profiler (Overview,
Variables, Interactions, Correlations, Missing Values) so the two tools are
directly comparable — this is the workload of Table 2 and Figure 6(b).

Unlike the baseline, every section is computed through the shared
:class:`~repro.eda.compute.base.ComputeContext`: the per-column summaries,
histograms, correlation partials and missing-value mask all reuse the same
partition scans inside one engine, which is where the measured speedup comes
from.
"""

from __future__ import annotations

import html as html_module
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.eda.compute import (
    ComputeContext,
    compute_correlation_overview,
    compute_missing_overview,
    compute_overview,
)
from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_frame_types
from repro.eda.intermediates import Intermediates
from repro.errors import EDAError
from repro.frame.frame import DataFrame
from repro.render import render_intermediates
from repro.render.charts import render_scatter, render_stats_table


@dataclass
class Report:
    """A generated profile report."""

    title: str
    sections: Dict[str, Intermediates]
    interactions: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    config: Optional[Config] = None

    @property
    def section_names(self) -> List[str]:
        """Names of the report sections, in display order."""
        return list(self.sections.keys())

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time spent computing the report."""
        return sum(self.timings.values())

    def insights(self) -> List[Any]:
        """All insights across all sections."""
        collected = []
        for intermediates in self.sections.values():
            collected.extend(intermediates.insights)
        return collected

    def to_html(self) -> str:
        """Render the full report as an HTML document body."""
        config = self.config or Config.from_user()
        parts = [f"<h1>{html_module.escape(self.title)}</h1>"]
        for name, intermediates in self.sections.items():
            parts.append(f"<h2>{html_module.escape(name)}</h2>")
            container = render_intermediates(intermediates, config,
                                             call="create_report(df)")
            parts.append(container.to_html())
        if self.interactions:
            parts.append("<h2>Interactions</h2>")
            for pair, data in self.interactions.items():
                parts.append(render_scatter(data, config.get("render.width"),
                                            config.get("render.height"),
                                            title=f"Interaction: {pair}"))
        return "\n".join(parts)

    def save(self, path: str) -> str:
        """Write a standalone HTML report to *path* and return the path."""
        document = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                    f"<title>{html_module.escape(self.title)}</title></head>"
                    f"<body>{self.to_html()}</body></html>")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(document)
        return path

    def __repr__(self) -> str:
        return (f"Report(title={self.title!r}, sections={self.section_names}, "
                f"seconds={self.total_seconds:.2f})")


def create_report(df: DataFrame, config: Optional[Mapping[str, Any]] = None,
                  title: Optional[str] = None) -> Report:
    """Generate a full profile report of *df*.

    The report contains the Overview, Variables, Interactions, Correlations
    and Missing Values sections of the baseline profiler, computed through
    the shared lazy pipeline.
    """
    if not isinstance(df, DataFrame):
        raise EDAError("create_report expects a repro.frame.DataFrame")
    cfg = Config.from_user(config)
    title = title or cfg.get("report.title")
    timings: Dict[str, float] = {}
    context = ComputeContext(df, cfg)

    started = time.perf_counter()
    overview = compute_overview(df, cfg, context=context)
    timings["overview_and_variables"] = time.perf_counter() - started

    started = time.perf_counter()
    interactions = _interactions(df, cfg, context)
    timings["interactions"] = time.perf_counter() - started

    sections: Dict[str, Intermediates] = {"Overview": overview}

    started = time.perf_counter()
    numerical = [name for name, semantic in detect_frame_types(df).items()
                 if semantic is SemanticType.NUMERICAL and
                 df.column(name).dtype.is_numeric]
    if len(numerical) >= 2:
        sections["Correlations"] = compute_correlation_overview(df, cfg,
                                                                context=context)
    timings["correlations"] = time.perf_counter() - started

    started = time.perf_counter()
    sections["Missing Values"] = compute_missing_overview(df, cfg, context=context)
    timings["missing_values"] = time.perf_counter() - started

    return Report(title=title, sections=sections, interactions=interactions,
                  timings=timings, config=cfg)


def _interactions(df: DataFrame, config: Config,
                  context: ComputeContext) -> Dict[str, Any]:
    """Pairwise scatter samples of the leading numerical columns.

    One shared row sample feeds every pair, mirroring how the real system
    shares the sampling computation across the Interactions section.
    """
    types = detect_frame_types(df)
    numerical = [name for name, semantic in types.items()
                 if semantic is SemanticType.NUMERICAL and
                 df.column(name).dtype.is_numeric]
    numerical = numerical[:config.get("report.interactions_max_columns")]
    if len(numerical) < 2:
        return {}
    resolved = context.resolve(
        {"sample": context.sample(numerical, config.get("scatter.sample_size"))},
        stage="graph")
    sample = resolved["sample"]

    interactions: Dict[str, Any] = {}
    for index, first in enumerate(numerical):
        for second in numerical[index + 1:]:
            keep = sample.column(first).notna() & sample.column(second).notna()
            clean = sample.filter(keep)
            interactions[f"{first} x {second}"] = {
                "x": clean.column(first).to_numpy().astype(float).tolist(),
                "y": clean.column(second).to_numpy().astype(float).tolist(),
                "x_label": first,
                "y_label": second,
            }
    return interactions
