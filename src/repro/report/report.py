"""``create_report(df)``: the profile-report functionality of DataPrep.EDA.

The report has the same five sections as the baseline profiler (Overview,
Variables, Interactions, Correlations, Missing Values) so the two tools are
directly comparable — this is the workload of Table 2 and Figure 6(b).

Unlike the baseline, every section is computed through the shared
:class:`~repro.eda.compute.base.ComputeContext`: the per-column summaries,
histograms, correlation partials and missing-value mask all reuse the same
partition scans inside one engine, which is where the measured speedup comes
from.
"""

from __future__ import annotations

import html as html_module
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.eda.compute import (
    ComputeContext,
    compute_correlation_overview,
    compute_missing_overview,
    compute_overview,
)
from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_frame_types
from repro.eda.intermediates import Intermediates
from repro.errors import EDAError, FrameError
from repro.frame.frame import DataFrame
from repro.frame.source import as_source
from repro.render import render_intermediates
from repro.render.charts import render_scatter, render_stats_table


@dataclass
class Report:
    """A generated profile report.

    Besides the rendered sections, the report keeps the per-section
    wall-clock ``timings`` and the engine's ``execution_reports`` — one
    :class:`~repro.graph.engines.ExecutionReport` per resolved graph stage,
    whose ``cache_hits`` field shows how much work the cross-call
    intermediate cache (``cache.enabled``) avoided on repeated runs.
    """

    title: str
    sections: Dict[str, Intermediates]
    interactions: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    config: Optional[Config] = None
    execution_reports: List[Any] = field(default_factory=list)
    #: The projection planner's counters for the whole report (partition
    #: tasks built full-width vs. projected, columns pruned) — see
    #: :meth:`~repro.eda.compute.base.ComputeContext.projection_stats`.
    projection_stats: Dict[str, Any] = field(default_factory=dict)
    #: Predicate-pushdown counters for the whole report (the pushed filter
    #: spec, chunks the zone maps skipped, rows filtered inside the parse)
    #: — see :meth:`~repro.eda.compute.base.ComputeContext.predicate_stats`.
    predicate_stats: Dict[str, Any] = field(default_factory=dict)
    #: Parsed-chunk disk-sidecar counters for the whole report (chunk parses
    #: served from the binary sidecar, parses that decoded CSV, CSV bytes
    #: avoided) — see
    #: :meth:`~repro.eda.compute.base.ComputeContext.sidecar_stats`.
    sidecar_stats: Dict[str, Any] = field(default_factory=dict)
    #: Incremental-refresh counters for the whole report (parse chunks whose
    #: per-chunk-stamp cache keys answered without running, chunks executed,
    #: file bytes those executions read) — see
    #: :meth:`~repro.eda.compute.base.ComputeContext.incremental_stats`.
    incremental_stats: Dict[str, Any] = field(default_factory=dict)
    #: The input handle the report was computed from (pre-``where``), kept
    #: so :meth:`refresh` can re-resolve it against the current file state.
    source: Any = None
    #: The ``where=`` filter the report was computed with, re-applied by
    #: :meth:`refresh`.
    where: Any = None

    def refresh(self) -> "Report":
        """Recompute this report against the source's current on-disk state.

        Re-resolves the input handle (:func:`repro.frame.source.refresh_input`)
        and regenerates the report under the same config, title and
        ``where`` filter.  When the underlying CSVs only *grew*, the old
        chunks keep their per-chunk content stamps — so their partition
        tasks, sketch states and tree-combine ancestors answer from the
        cross-call cache and only the appended chunks execute; the refreshed
        report's :attr:`incremental_stats` records ``chunks_reused`` /
        ``chunks_new`` / ``bytes_reparsed``.  Any other change (shrink,
        mutation) degrades safely to a full recompute.  The original report
        is left untouched; the refreshed one is returned.
        """
        from repro.frame.source import refresh_input
        overrides: Optional[Dict[str, Any]] = None
        if self.config is not None:
            overrides = {key: self.config.values[key]
                         for key in self.config.provided}
        return create_report(refresh_input(self.source), config=overrides,
                             title=self.title, where=self.where)

    @property
    def section_names(self) -> List[str]:
        """Names of the report sections, in display order."""
        return list(self.sections.keys())

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time spent computing the report."""
        return sum(self.timings.values())

    def insights(self) -> List[Any]:
        """All insights across all sections."""
        collected = []
        for intermediates in self.sections.values():
            collected.extend(intermediates.insights)
        return collected

    def to_html(self) -> str:
        """Render the full report as an HTML document body."""
        config = self.config or Config.from_user()
        parts = [f"<h1>{html_module.escape(self.title)}</h1>"]
        for name, intermediates in self.sections.items():
            parts.append(f"<h2>{html_module.escape(name)}</h2>")
            container = render_intermediates(intermediates, config,
                                             call="create_report(df)")
            parts.append(container.to_html())
        if self.interactions:
            parts.append("<h2>Interactions</h2>")
            for pair, data in self.interactions.items():
                parts.append(render_scatter(data, config.get("render.width"),
                                            config.get("render.height"),
                                            title=f"Interaction: {pair}"))
        return "\n".join(parts)

    def save(self, path: str) -> str:
        """Write a standalone HTML report to *path* and return the path."""
        document = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                    f"<title>{html_module.escape(self.title)}</title></head>"
                    f"<body>{self.to_html()}</body></html>")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(document)
        return path

    def __repr__(self) -> str:
        return (f"Report(title={self.title!r}, sections={self.section_names}, "
                f"seconds={self.total_seconds:.2f})")


def create_report(df: DataFrame, config: Optional[Mapping[str, Any]] = None,
                  title: Optional[str] = None, where: Any = None) -> Report:
    """Generate a full profile report of *df*.

    The report contains the Overview, Variables, Interactions, Correlations
    and Missing Values sections of the baseline profiler, computed through
    the shared lazy pipeline: one :class:`ComputeContext` feeds every
    section, so partition scans are shared across sections, and — because
    ``cache.enabled`` defaults to True — with the intermediates computed by
    any earlier ``plot*`` call on the same frame in this process.

    Parameters
    ----------
    df:
        The DataFrame to profile — or any
        :class:`~repro.frame.source.FrameSource`, e.g. a
        :func:`repro.scan_csv` handle over one file, a list of files or a
        glob pattern (the report then streams with bounded memory).
    config:
        Dotted-key overrides, e.g. ``{"hist.bins": 25, "cache.enabled":
        False, "cache.max_bytes": 64 * 1024 * 1024}``.  See
        :func:`repro.eda.config.available_config_keys`.  Over a streaming
        scan, ``{"compute.scheduler": "process"}`` runs the chunk parse +
        sketch work on a multiprocess pool (``compute.max_workers``
        workers) for true multi-core scaling.
    title:
        Report title (defaults to the ``report.title`` config value).
    where:
        Optional row filter applied before every section, exactly as in
        :func:`repro.eda.api.plot` — e.g. ``where=("price", ">", 0)``.
        Pushed-down filters stream with bounded memory and skip chunks via
        zone maps; the resulting counters land in ``Report.predicate_stats``.
    """
    try:
        as_source(df)   # any FrameSource: DataFrame, scan_csv handle, custom
    except FrameError as error:
        raise EDAError(f"create_report expects an EDA input: {error}") from None
    from repro.eda.api import _apply_where
    original = df
    df = _apply_where(df, where)
    cfg = Config.from_user(config)
    title = title or cfg.get("report.title")
    timings: Dict[str, float] = {}
    context = ComputeContext(df, cfg)

    # The context is shared across sections, so each finish() would attach
    # the cumulative report list; re-slice per section so summing over
    # sections never counts a graph stage twice.
    def section_reports(start: int, intermediates: Intermediates) -> Intermediates:
        intermediates.meta["execution_reports"] = list(context.reports[start:])
        return intermediates

    started = time.perf_counter()
    mark = len(context.reports)
    overview = section_reports(mark, compute_overview(df, cfg, context=context))
    timings["overview_and_variables"] = time.perf_counter() - started

    started = time.perf_counter()
    interactions = _interactions(df, cfg, context)
    timings["interactions"] = time.perf_counter() - started

    sections: Dict[str, Intermediates] = {"Overview": overview}

    started = time.perf_counter()
    numerical = [name for name, semantic
                 in detect_frame_types(context.schema_frame).items()
                 if semantic is SemanticType.NUMERICAL and
                 context.column(name).dtype.is_numeric]
    if len(numerical) >= 2:
        mark = len(context.reports)
        sections["Correlations"] = section_reports(
            mark, compute_correlation_overview(df, cfg, context=context))
    timings["correlations"] = time.perf_counter() - started

    started = time.perf_counter()
    mark = len(context.reports)
    sections["Missing Values"] = section_reports(
        mark, compute_missing_overview(df, cfg, context=context))
    timings["missing_values"] = time.perf_counter() - started

    return Report(title=title, sections=sections, interactions=interactions,
                  timings=timings, config=cfg,
                  execution_reports=list(context.reports),
                  projection_stats=context.projection_stats(),
                  predicate_stats=context.predicate_stats(),
                  sidecar_stats=context.sidecar_stats(),
                  incremental_stats=context.incremental_stats(),
                  source=original, where=where)


def _interactions(df: DataFrame, config: Config,
                  context: ComputeContext) -> Dict[str, Any]:
    """Pairwise scatter samples of the leading numerical columns.

    One shared row sample feeds every pair, mirroring how the real system
    shares the sampling computation across the Interactions section.
    """
    types = detect_frame_types(context.schema_frame)
    numerical = [name for name, semantic in types.items()
                 if semantic is SemanticType.NUMERICAL and
                 context.column(name).dtype.is_numeric]
    numerical = numerical[:config.get("report.interactions_max_columns")]
    if len(numerical) < 2:
        return {}
    resolved = context.resolve(
        {"sample": context.sample(numerical, config.get("scatter.sample_size"))},
        stage="graph")
    sample = resolved["sample"]

    interactions: Dict[str, Any] = {}
    for index, first in enumerate(numerical):
        for second in numerical[index + 1:]:
            keep = sample.column(first).notna() & sample.column(second).notna()
            clean = sample.filter(keep)
            interactions[f"{first} x {second}"] = {
                "x": clean.column(first).to_numpy().astype(float).tolist(),
                "y": clean.column(second).to_numpy().astype(float).tolist(),
                "x_label": first,
                "y_label": second,
            }
    return interactions
