"""Report generation (the ``create_report`` functionality compared in Table 2)."""

from repro.report.report import Report, create_report

__all__ = ["Report", "create_report"]
