"""Report generation (the ``create_report`` functionality compared in Table 2).

``create_report(df)`` computes the five profiler sections through one shared
:class:`~repro.eda.compute.base.ComputeContext`, so partition scans are
shared *across sections* and — via the cross-call intermediate cache
(``cache.enabled``, default True; budget ``cache.max_bytes``) — with any
earlier ``plot*`` call on the same frame in this process.  The returned
:class:`~repro.report.report.Report` carries per-section ``timings`` and the
engine ``execution_reports`` whose ``cache_hits`` field quantifies the
avoided work.  Pass ``config={"cache.enabled": False}`` to opt out.
"""

from repro.report.report import Report, create_report

__all__ = ["Report", "create_report"]
