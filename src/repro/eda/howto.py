"""The how-to guide component (Section 4.1, part E of Figure 1).

Every visualization DataPrep.EDA produces carries a small guide describing
which config keys customize it and a copy-pasteable example.  The registry
below maps visualization names to their relevant config keys; the Render
module turns entries into the pop-up panel, and ``how_to_guide()`` exposes
the same information programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eda.config import DEFAULTS

#: visualization name -> config keys that customize it.
GUIDE_KEYS: Dict[str, List[str]] = {
    "histogram": ["hist.bins", "hist.auto_bins"],
    "kde_plot": ["kde.grid_points", "kde.bins"],
    "qq_plot": ["qq.points"],
    "box_plot": ["box.whisker", "box.max_groups"],
    "bar_chart": ["bar.top_words", "bar.sort_descending"],
    "pie_chart": ["pie.slices"],
    "word_frequencies": ["wordfreq.top_words", "wordfreq.lowercase"],
    "scatter_plot": ["scatter.sample_size"],
    "hexbin_plot": ["hexbin.gridsize"],
    "binned_box_plot": ["binnedbox.bins"],
    "nested_bar_chart": ["nested.max_categories"],
    "stacked_bar_chart": ["stacked.max_categories"],
    "heat_map": ["heatmap.max_categories"],
    "multi_line_chart": ["line.max_groups", "line.bins", "line.aggregate"],
    "correlation_matrix": ["correlation.methods", "insight.correlation.threshold"],
    "correlation_scatter": ["correlation.scatter_sample_size"],
    "missing_bar_chart": ["insight.missing.threshold"],
    "missing_spectrum": ["missing.spectrum_bins"],
    "nullity_correlation": ["insight.correlation.threshold"],
    "nullity_dendrogram": [],
    "missing_impact": ["missing.bins", "missing.quantiles"],
    "stats": ["insight.missing.threshold", "insight.skewness.threshold",
              "insight.high_cardinality.threshold"],
}


@dataclass
class HowToEntry:
    """The how-to guide content for one visualization."""

    visualization: str
    keys: List[str]
    defaults: Dict[str, object]
    example: str

    def as_text(self) -> str:
        """Render the guide as plain text (used in reports and the API)."""
        lines = [f"How to customize the {self.visualization.replace('_', ' ')}:"]
        if not self.keys:
            lines.append("  (this visualization has no tunable parameters)")
            return "\n".join(lines)
        for key in self.keys:
            lines.append(f"  {key!r}: default {self.defaults[key]!r}")
        lines.append(f"  example: {self.example}")
        return "\n".join(lines)


def how_to_guide(visualization: str,
                 call: str = 'plot(df, "col")') -> Optional[HowToEntry]:
    """The how-to guide entry for one visualization, or None if unknown."""
    keys = GUIDE_KEYS.get(visualization)
    if keys is None:
        return None
    defaults = {key: DEFAULTS[key] for key in keys}
    if keys:
        first = keys[0]
        example_value = _example_value(DEFAULTS[first])
        example = f'{call[:-1]}, config={{"{first}": {example_value}}})'
    else:
        example = call
    return HowToEntry(visualization=visualization, keys=keys,
                      defaults=defaults, example=example)


def guides_for(visualizations: List[str],
               call: str = 'plot(df, "col")') -> Dict[str, HowToEntry]:
    """How-to guides for every visualization in a container."""
    guides = {}
    for name in visualizations:
        entry = how_to_guide(name, call=call)
        if entry is not None:
            guides[name] = entry
    return guides


def _example_value(default: object) -> str:
    if isinstance(default, bool):
        return "False" if default else "True"
    if isinstance(default, int):
        return str(default * 2)
    if isinstance(default, float):
        return str(default)
    if isinstance(default, tuple):
        return repr(list(default[:1]))
    return repr(default)
