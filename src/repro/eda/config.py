"""The Config Manager (component 1 of the paper's back-end, Figure 3).

Users customize DataPrep.EDA by passing a flat dictionary of dotted keys,
e.g. ``plot(df, "price", config={"hist.bins": 50})``.  The Config Manager
validates the keys (with "did you mean" suggestions), fills in defaults for
everything else, and produces a :class:`Config` object that is passed through
the Compute and Render modules so individual functions never juggle dozens of
keyword arguments.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ConfigError, _closest
from repro.frame.io import DEFAULT_BUDGET_BYTES as _DEFAULT_BUDGET_BYTES
from repro.frame.io import DEFAULT_CHUNK_ROWS as _DEFAULT_CHUNK_ROWS
from repro.frame.sidecar import DEFAULT_DISK_BYTES as _SIDECAR_DEFAULT_BYTES
from repro.graph.cache import DEFAULT_MAX_BYTES as _CACHE_DEFAULT_MAX_BYTES

#: Default values for every configurable parameter, grouped by component.
#: The how-to guide surfaces these keys to the user (Section 4.1).
DEFAULTS: Dict[str, Any] = {
    # Histogram
    "hist.bins": 50,
    "hist.auto_bins": False,
    # Kernel density estimate plot
    "kde.grid_points": 200,
    "kde.bins": 256,
    # Normal Q-Q plot
    "qq.points": 100,
    # Box plot
    "box.whisker": 1.5,
    "box.max_groups": 10,
    # Bar / pie chart for categorical columns
    "bar.top_words": 10,
    "bar.sort_descending": True,
    "pie.slices": 6,
    # Word statistics for categorical columns
    "wordfreq.top_words": 10,
    "wordfreq.lowercase": True,
    # Scatter / hexbin for numerical-numerical bivariate analysis
    "scatter.sample_size": 1000,
    "hexbin.gridsize": 20,
    "binnedbox.bins": 10,
    # Nested / stacked bar charts and heat map for two categorical columns
    "nested.max_categories": 10,
    "stacked.max_categories": 10,
    "heatmap.max_categories": 20,
    # Multi-line chart for categorical-numerical bivariate analysis
    "line.max_groups": 10,
    "line.bins": 20,
    "line.aggregate": "mean",
    # Correlation analysis
    "correlation.methods": ("pearson", "spearman", "kendall"),
    "correlation.kendall_max_rows": 10000,
    "correlation.scatter_sample_size": 1000,
    "correlation.top_k": 5,
    # Missing-value analysis
    "missing.spectrum_bins": 32,
    "missing.bins": 30,
    "missing.quantiles": 100,
    # Insight thresholds (Section 4.2.2: each insight has its own threshold)
    "insight.missing.threshold": 0.1,
    "insight.duplicates.threshold": 0.05,
    "insight.similar_distribution.alpha": 0.05,
    "insight.uniform.alpha": 0.05,
    "insight.normal.alpha": 0.05,
    "insight.skewness.threshold": 1.0,
    "insight.infinity.threshold": 0.0,
    "insight.zeros.threshold": 0.5,
    "insight.negatives.threshold": 0.0,
    "insight.high_cardinality.threshold": 50,
    "insight.constant.enabled": True,
    "insight.outlier.iqr_multiplier": 1.5,
    "insight.outlier.threshold": 0.01,
    "insight.correlation.threshold": 0.8,
    "insight.enabled": True,
    # Compute pipeline
    "compute.partition_rows": 100000,
    "compute.use_graph": "auto",          # "auto" | "always" | "never"
    "compute.small_data_rows": 50000,      # below this, skip the graph stage
    "compute.engine": "lazy",              # see repro.graph.engines
    # Execution backend for the graph stage: "threaded" (default; GIL-shared
    # workers, fine for numpy-dominated tasks), "process" (a true
    # multiprocess pool — scales GIL-bound chunk work such as streaming CSV
    # parsing across cores) or "synchronous" (in-order, single-threaded).
    # The REPRO_SCHEDULER environment variable overrides the default at
    # Config construction time, which is how CI runs the whole suite under
    # the process backend.
    "compute.scheduler": "threaded",
    "compute.max_workers": None,           # respected by all schedulers
    # Remote (socket) backend, compute.scheduler = "remote": a coordinator
    # binds compute.remote.bind (port 0 = any free port; bind a routable
    # address to let workers on other hosts attach with
    # `python -m repro.graph.remote --connect HOST:PORT`), spawns
    # compute.remote.workers local worker processes (None = compute
    # .max_workers, REPRO_REMOTE_WORKERS overrides the default), pings
    # them every compute.remote.heartbeat_s seconds and re-dispatches the
    # bundles of a worker that disconnects or holds an executing bundle
    # longer than compute.remote.timeout_s.  Connections authenticate
    # with an HMAC challenge-response over compute.remote.authkey
    # (REPRO_REMOTE_AUTHKEY overrides the default); None mints a random
    # per-pool secret, which locks the pool to its own spawned workers —
    # attaching workers from other hosts requires an explicit shared key
    # exported as REPRO_REMOTE_AUTHKEY on the worker side.  The key
    # authenticates but does not encrypt: bind routable addresses only on
    # trusted networks.
    "compute.remote.workers": None,
    "compute.remote.bind": "127.0.0.1:0",
    "compute.remote.heartbeat_s": 2.0,
    "compute.remote.timeout_s": 30.0,
    "compute.remote.authkey": None,
    # Projection pushdown: partition tasks parse/slice only the columns the
    # requested reductions declare (e.g. plot(df, "x") over a scanned CSV
    # parses one column per chunk, not the whole table).  Overlapping
    # requests inside one graph are merged into shared projected parses;
    # disable to force every partition task back to full-width
    # materialization (the pre-projection behaviour).
    "compute.projection": True,
    # Predicate pushdown: filtered EDA calls (plot(..., where=...) or a
    # scan indexed with a predicate) ship the compiled filter into the
    # partition parse tasks and consult per-chunk zone-map statistics to
    # skip chunks no matching row can live in.  Disable to parse every
    # chunk and filter inside the parse instead — identical results, no
    # chunk skipping (the equivalence grid pins both modes against
    # in-memory mask filtering).
    "compute.predicates": True,
    "compute.histogram_bins_internal": 512,
    "compute.enable_cse": True,
    "compute.enable_fusion": False,
    # Out-of-core streaming (inputs opened with repro.scan_csv).  A scanned
    # frame is processed chunk by chunk: memory.chunk_rows caps the rows per
    # chunk and memory.budget_bytes caps the estimated peak parse memory
    # across all concurrently in-flight chunks (the effective chunk size is
    # the smaller of the two constraints).
    "memory.chunk_rows": _DEFAULT_CHUNK_ROWS,
    "memory.budget_bytes": _DEFAULT_BUDGET_BYTES,
    # Cross-call intermediate cache (see repro.graph.cache).  When enabled,
    # repeated EDA calls on the same frame reuse partition slices, summaries
    # and histograms computed by earlier calls in this process.
    "cache.enabled": True,
    "cache.max_bytes": _CACHE_DEFAULT_MAX_BYTES,
    # Parsed-chunk disk sidecar (see repro.frame.sidecar).  Scanned CSVs
    # spill each parsed chunk's columns to a binary sidecar next to the
    # file (or under cache.disk_dir when set); warm re-scans — in this
    # process, a later one, or a process-pool worker — load the columns
    # back without decoding CSV.  cache.disk_bytes caps each sidecar
    # directory, evicting least-recently-used chunks.
    "cache.disk_enabled": True,
    "cache.disk_dir": None,
    "cache.disk_bytes": _SIDECAR_DEFAULT_BYTES,
    # Rendering
    "render.width": 640,
    "render.height": 360,
    "render.max_tabs": 12,
    "report.title": "DataPrep.EDA Report",
    "report.sample_rows": 10,
    "report.interactions_max_columns": 10,
}

#: Keys whose value must be a positive integer.
_POSITIVE_INT_KEYS = {
    "hist.bins", "kde.grid_points", "kde.bins", "qq.points", "box.max_groups",
    "bar.top_words", "pie.slices", "wordfreq.top_words", "scatter.sample_size",
    "hexbin.gridsize", "binnedbox.bins", "nested.max_categories",
    "stacked.max_categories", "heatmap.max_categories", "line.max_groups",
    "line.bins", "correlation.kendall_max_rows", "correlation.scatter_sample_size",
    "correlation.top_k", "missing.spectrum_bins", "missing.bins",
    "missing.quantiles", "insight.high_cardinality.threshold",
    "compute.partition_rows", "compute.small_data_rows",
    "compute.histogram_bins_internal", "memory.chunk_rows",
    "memory.budget_bytes", "cache.max_bytes", "cache.disk_bytes",
    "render.width",
    "render.height", "render.max_tabs", "report.sample_rows",
    "report.interactions_max_columns",
}

#: Keys whose value must be a plain boolean.
_BOOL_KEYS = {
    "cache.enabled", "cache.disk_enabled", "hist.auto_bins",
    "bar.sort_descending",
    "wordfreq.lowercase", "insight.constant.enabled", "insight.enabled",
    "compute.enable_cse", "compute.enable_fusion", "compute.projection",
    "compute.predicates",
}

#: Keys whose value must be a float in [0, 1].
_RATE_KEYS = {
    "insight.missing.threshold", "insight.duplicates.threshold",
    "insight.similar_distribution.alpha", "insight.uniform.alpha",
    "insight.normal.alpha", "insight.zeros.threshold",
    "insight.negatives.threshold", "insight.outlier.threshold",
    "insight.infinity.threshold",
}

_VALID_GRAPH_MODES = ("auto", "always", "never")
_VALID_CORRELATION_METHODS = ("pearson", "spearman", "kendall")
_VALID_SCHEDULERS = ("synchronous", "threaded", "process", "remote")


@dataclass
class Config:
    """Validated configuration passed through the Compute and Render modules.

    ``provided`` records which keys the user passed explicitly — even when
    the passed value equals the default — so consumers of process-global
    settings (the intermediate cache budget) can distinguish "the user set
    this" from "this is just the default".
    """

    values: Dict[str, Any] = field(default_factory=dict)
    display: Optional[List[str]] = None
    provided: frozenset = frozenset()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_user(cls, user_config: Optional[Mapping[str, Any]] = None,
                  display: Optional[Sequence[str]] = None) -> "Config":
        """Build a Config from user overrides, validating every key."""
        values = dict(DEFAULTS)
        env_scheduler = os.environ.get("REPRO_SCHEDULER")
        if env_scheduler is not None:
            # Environment default; an explicit user key still wins below.
            values["compute.scheduler"] = env_scheduler
        env_remote_workers = os.environ.get("REPRO_REMOTE_WORKERS")
        if env_remote_workers is not None:
            try:
                values["compute.remote.workers"] = int(env_remote_workers)
            except ValueError:
                raise ConfigError(
                    f"REPRO_REMOTE_WORKERS expects an integer, got "
                    f"{env_remote_workers!r}", key="compute.remote.workers") \
                    from None
        env_authkey = os.environ.get("REPRO_REMOTE_AUTHKEY")
        if env_authkey is not None:
            values["compute.remote.authkey"] = env_authkey
        if user_config:
            for key, value in user_config.items():
                if key not in DEFAULTS:
                    suggestion = _closest(key, DEFAULTS.keys())
                    raise ConfigError(f"unknown config key {key!r}", key=key,
                                      suggestion=suggestion)
                values[key] = _validate(key, value)
        # Scheduler and remote worker-count defaults may come from the
        # REPRO_SCHEDULER / REPRO_REMOTE_WORKERS environment variables;
        # validate them even when the user did not pass the keys, so a
        # typo'd environment fails as loudly as a typo'd config dict.
        values["compute.scheduler"] = _validate("compute.scheduler",
                                                values["compute.scheduler"])
        values["compute.remote.workers"] = _validate(
            "compute.remote.workers", values["compute.remote.workers"])
        values["compute.remote.authkey"] = _validate(
            "compute.remote.authkey", values["compute.remote.authkey"])
        return cls(values=values,
                   display=list(display) if display is not None else None,
                   provided=frozenset(user_config or ()))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Any:
        """Look up a configuration value by dotted key."""
        try:
            return self.values[key]
        except KeyError:
            suggestion = _closest(key, self.values.keys())
            raise ConfigError(f"unknown config key {key!r}", key=key,
                              suggestion=suggestion) from None

    def __getitem__(self, key: str) -> Any:
        return self.get(key)

    def group(self, prefix: str) -> Dict[str, Any]:
        """All values under a prefix, with the prefix stripped.

        ``config.group("hist")`` returns ``{"bins": 50, "auto_bins": False}``.
        """
        prefix_dot = prefix.rstrip(".") + "."
        return {key[len(prefix_dot):]: value
                for key, value in self.values.items() if key.startswith(prefix_dot)}

    def wants(self, chart_name: str) -> bool:
        """Whether the user asked for *chart_name* (all charts by default)."""
        if self.display is None:
            return True
        wanted = {name.lower() for name in self.display}
        return chart_name.lower() in wanted

    def with_overrides(self, overrides: Mapping[str, Any]) -> "Config":
        """Return a copy of this config with extra validated overrides."""
        merged = copy.deepcopy(self.values)
        for key, value in overrides.items():
            if key not in DEFAULTS:
                suggestion = _closest(key, DEFAULTS.keys())
                raise ConfigError(f"unknown config key {key!r}", key=key,
                                  suggestion=suggestion)
            merged[key] = _validate(key, value)
        return Config(values=merged, display=self.display,
                      provided=self.provided | frozenset(overrides))

    def user_overrides(self) -> Dict[str, Any]:
        """The keys whose values differ from the library defaults."""
        return {key: value for key, value in self.values.items()
                if DEFAULTS.get(key) != value}

    def __repr__(self) -> str:
        overrides = self.user_overrides()
        return f"Config(overrides={overrides}, display={self.display})"


def _validate(key: str, value: Any) -> Any:
    """Validate a single override, raising :class:`ConfigError` on bad values."""
    if key in _BOOL_KEYS:
        if not isinstance(value, bool):
            raise ConfigError(f"config key {key!r} expects a boolean, "
                              f"got {value!r}", key=key)
        return value
    if key in _POSITIVE_INT_KEYS:
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ConfigError(f"config key {key!r} expects a positive integer, "
                              f"got {value!r}", key=key)
        return value
    if key in _RATE_KEYS:
        if not isinstance(value, (int, float)) or isinstance(value, bool) or \
                not 0.0 <= float(value) <= 1.0:
            raise ConfigError(f"config key {key!r} expects a number in [0, 1], "
                              f"got {value!r}", key=key)
        return float(value)
    if key == "compute.use_graph":
        if value not in _VALID_GRAPH_MODES:
            raise ConfigError(f"config key {key!r} expects one of "
                              f"{_VALID_GRAPH_MODES}, got {value!r}", key=key)
        return value
    if key == "compute.scheduler":
        if value not in _VALID_SCHEDULERS:
            suggestion = _closest(str(value), _VALID_SCHEDULERS)
            raise ConfigError(f"config key {key!r} expects one of "
                              f"{_VALID_SCHEDULERS}, got {value!r}", key=key,
                              suggestion=suggestion)
        return value
    if key == "correlation.methods":
        methods = tuple(value) if isinstance(value, (list, tuple)) else (value,)
        for method in methods:
            if method not in _VALID_CORRELATION_METHODS:
                raise ConfigError(
                    f"unknown correlation method {method!r}; expected a subset "
                    f"of {_VALID_CORRELATION_METHODS}", key=key)
        if not methods:
            raise ConfigError("correlation.methods must not be empty", key=key)
        return methods
    if key == "line.aggregate":
        from repro.frame.ops import AGGREGATIONS
        if value not in AGGREGATIONS:
            raise ConfigError(f"unknown aggregation {value!r}; expected one of "
                              f"{sorted(AGGREGATIONS)}", key=key)
        return value
    if key == "compute.max_workers":
        if value is not None and (not isinstance(value, int) or value <= 0):
            raise ConfigError(f"config key {key!r} expects None or a positive "
                              f"integer, got {value!r}", key=key)
        return value
    if key == "compute.remote.workers":
        # 0 is meaningful: spawn no local workers and rely entirely on
        # workers attached from other hosts via compute.remote.bind.
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool) or value < 0):
            raise ConfigError(f"config key {key!r} expects None or a "
                              f"non-negative integer, got {value!r}", key=key)
        return value
    if key == "compute.remote.bind":
        if not isinstance(value, str):
            raise ConfigError(f"config key {key!r} expects a 'host:port' "
                              f"string, got {value!r}", key=key)
        from repro.graph.wire import WireError, parse_address
        try:
            parse_address(value)
        except WireError as error:
            raise ConfigError(f"config key {key!r}: {error}", key=key) from None
        return value
    if key == "compute.remote.authkey":
        # None = a random per-pool secret (spawned workers only); attach
        # mode needs an explicit non-empty shared key.
        if value is not None and (not isinstance(value, str) or not value):
            # Deliberately not echoing the value: it is a secret.
            raise ConfigError(f"config key {key!r} expects None or a "
                              f"non-empty secret string", key=key)
        return value
    if key in ("compute.remote.heartbeat_s", "compute.remote.timeout_s"):
        if not isinstance(value, (int, float)) or isinstance(value, bool) or \
                float(value) <= 0.0:
            raise ConfigError(f"config key {key!r} expects a positive number "
                              f"of seconds, got {value!r}", key=key)
        return float(value)
    if key == "cache.disk_dir":
        if value is not None and not isinstance(value, str):
            raise ConfigError(f"config key {key!r} expects None or a directory "
                              f"path string, got {value!r}", key=key)
        return value
    return value


def available_config_keys() -> List[str]:
    """All configurable dotted keys (used by the how-to guide and the docs)."""
    return sorted(DEFAULTS)
