"""The auto-insight component (Section 4.2.2).

A data fact becomes an :class:`Insight` when its value crosses a
user-definable threshold.  The Render module shows a badge on the associated
visualization; the report collects all insights into an alerts section.

Insight families implemented here (matching the paper's list):

* data quality — missing values, infinite values, zeros, negatives,
  constant columns, duplicate rows, high cardinality;
* distribution shape — skewness, uniformity, normality, outliers;
* relationships — high correlation, similar distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.eda.config import Config
from repro.stats.descriptive import CategoricalSummary, NumericSummary
from repro.stats.histogram import Histogram
from repro.stats.tests import chi_square_uniformity, ks_similarity, normality_test


@dataclass
class Insight:
    """One discovered insight.

    Attributes
    ----------
    kind:
        Machine-readable insight family, e.g. ``"missing"`` or ``"skewed"``.
    column:
        The column (or ``"col1 x col2"`` pair) the insight is about.
    item:
        The visualization the badge should be attached to.
    message:
        Human-readable one-liner shown in the UI.
    severity:
        ``"info"`` or ``"warning"`` — warnings are highlighted red in the
        stats table, like the distinct-count example in Figure 1.
    value:
        The underlying measured value that crossed the threshold.
    """

    kind: str
    column: str
    item: str
    message: str
    severity: str = "info"
    value: Optional[float] = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


# --------------------------------------------------------------------------- #
# Numeric column insights
# --------------------------------------------------------------------------- #
def numeric_column_insights(name: str, summary: NumericSummary,
                            histogram: Optional[Histogram],
                            config: Config,
                            sample: Optional[np.ndarray] = None) -> List[Insight]:
    """Insights for one numerical column from its shared intermediates."""
    if not config.get("insight.enabled"):
        return []
    insights: List[Insight] = []
    insights.extend(_missing_insight(name, summary.missing_rate, config, "stats"))

    if summary.total and summary.infinite / max(summary.total, 1) > \
            config.get("insight.infinity.threshold"):
        insights.append(Insight(
            kind="infinite", column=name, item="stats", severity="warning",
            value=float(summary.infinite),
            message=f"{name} has {summary.infinite} infinite values"))

    if summary.count:
        zero_rate = summary.zeros / summary.count
        if zero_rate > config.get("insight.zeros.threshold"):
            insights.append(Insight(
                kind="zeros", column=name, item="histogram",
                value=zero_rate,
                message=f"{name} is {zero_rate:.0%} zeros"))
        negative_rate = summary.negatives / summary.count
        if negative_rate > config.get("insight.negatives.threshold") and summary.negatives:
            insights.append(Insight(
                kind="negatives", column=name, item="histogram",
                value=negative_rate,
                message=f"{name} has {summary.negatives} negative values"))

    skewness = summary.skewness
    if np.isfinite(skewness) and abs(skewness) > config.get("insight.skewness.threshold"):
        insights.append(Insight(
            kind="skewed", column=name, item="histogram", value=float(skewness),
            message=f"{name} is skewed (skewness = {skewness:.2f})"))

    if sample is not None and sample.size:
        normal = normality_test(sample, alpha=config.get("insight.normal.alpha"))
        if normal.passed:
            insights.append(Insight(
                kind="normal", column=name, item="histogram", value=normal.p_value,
                message=f"{name} is normally distributed"))
    if histogram is not None and histogram.total:
        uniform = chi_square_uniformity(histogram.counts,
                                        alpha=config.get("insight.uniform.alpha"))
        if uniform.passed:
            insights.append(Insight(
                kind="uniform", column=name, item="histogram", value=uniform.p_value,
                message=f"{name} is uniformly distributed"))
    return insights


def outlier_insight(name: str, outlier_count: int, total: int,
                    config: Config) -> List[Insight]:
    """Outlier insight from box-plot intermediates."""
    if not config.get("insight.enabled") or total == 0:
        return []
    rate = outlier_count / total
    if rate > config.get("insight.outlier.threshold"):
        return [Insight(kind="outliers", column=name, item="box_plot",
                        severity="warning", value=rate,
                        message=f"{name} has {outlier_count} outliers ({rate:.1%})")]
    return []


# --------------------------------------------------------------------------- #
# Categorical column insights
# --------------------------------------------------------------------------- #
def categorical_column_insights(name: str, summary: CategoricalSummary,
                                config: Config) -> List[Insight]:
    """Insights for one categorical column from its shared intermediates."""
    if not config.get("insight.enabled"):
        return []
    insights: List[Insight] = []
    insights.extend(_missing_insight(name, summary.missing_rate, config, "stats"))

    if summary.distinct > config.get("insight.high_cardinality.threshold"):
        insights.append(Insight(
            kind="high_cardinality", column=name, item="bar_chart",
            severity="warning", value=float(summary.distinct),
            message=f"{name} has a high cardinality: {summary.distinct} distinct values"))

    if config.get("insight.constant.enabled") and summary.distinct == 1:
        insights.append(Insight(
            kind="constant", column=name, item="stats", severity="warning",
            value=1.0, message=f"{name} has a constant value"))

    if summary.distinct >= 2:
        counts = [count for _, count in summary.top_values(1000)]
        uniform = chi_square_uniformity(counts, alpha=config.get("insight.uniform.alpha"))
        if uniform.passed:
            insights.append(Insight(
                kind="uniform", column=name, item="bar_chart", value=uniform.p_value,
                message=f"{name} is uniformly distributed over its categories"))
    return insights


# --------------------------------------------------------------------------- #
# Dataset-level insights
# --------------------------------------------------------------------------- #
def dataset_insights(n_rows: int, duplicate_rows: int, missing_rates: Dict[str, float],
                     config: Config) -> List[Insight]:
    """Dataset-wide insights for the overview task and the report."""
    if not config.get("insight.enabled"):
        return []
    insights: List[Insight] = []
    if n_rows:
        duplicate_rate = duplicate_rows / n_rows
        if duplicate_rate > config.get("insight.duplicates.threshold"):
            insights.append(Insight(
                kind="duplicates", column="(dataset)", item="overview",
                severity="warning", value=duplicate_rate,
                message=f"dataset has {duplicate_rows} duplicate rows "
                        f"({duplicate_rate:.1%})"))
    for name, rate in missing_rates.items():
        insights.extend(_missing_insight(name, rate, config, "overview"))
    return insights


def correlation_insights(names: Sequence[str], matrix: np.ndarray, method: str,
                         config: Config) -> List[Insight]:
    """High-correlation insights from a correlation matrix."""
    if not config.get("insight.enabled"):
        return []
    threshold = config.get("insight.correlation.threshold")
    insights: List[Insight] = []
    n_columns = len(names)
    for i in range(n_columns):
        for j in range(i + 1, n_columns):
            value = matrix[i, j]
            if np.isfinite(value) and abs(value) >= threshold:
                insights.append(Insight(
                    kind="high_correlation", column=f"{names[i]} x {names[j]}",
                    item=f"correlation_{method}", severity="info", value=float(value),
                    message=(f"{names[i]} and {names[j]} are highly correlated "
                             f"({method} = {value:.2f})")))
    return insights


def similarity_insight(column: str, item: str, sample_with: np.ndarray,
                       sample_without: np.ndarray, config: Config) -> List[Insight]:
    """Insight on whether dropping missing rows changed a distribution."""
    if not config.get("insight.enabled"):
        return []
    result = ks_similarity(sample_with, sample_without,
                           alpha=config.get("insight.similar_distribution.alpha"))
    if result.passed:
        message = (f"dropping the missing values does not change the "
                   f"distribution of {column}")
        severity = "info"
    else:
        message = (f"dropping the missing values changes the distribution "
                   f"of {column}")
        severity = "warning"
    return [Insight(kind="similar_distribution", column=column, item=item,
                    severity=severity, value=result.p_value, message=message)]


def _missing_insight(name: str, missing_rate: float, config: Config,
                     item: str) -> List[Insight]:
    if missing_rate > config.get("insight.missing.threshold"):
        return [Insight(kind="missing", column=name, item=item, severity="warning",
                        value=missing_rate,
                        message=f"{name} has {missing_rate:.1%} missing values")]
    return []
