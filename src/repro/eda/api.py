"""The task-centric API: ``plot``, ``plot_correlation`` and ``plot_missing``.

Each function implements one row family of the Figure 2 mapping rules and
follows the common signature ``plot_tasktype(df, col_list, config)``: no
columns means overview analysis, one or two columns mean detailed analysis.

Every call returns a :class:`~repro.render.container.Container` — the tabbed
layout of charts, statistics, insights and how-to guides — unless
``mode="intermediates"`` is passed.

The ``mode="intermediates"`` escape hatch
-----------------------------------------
With ``mode="intermediates"`` the call skips rendering and returns the raw
:class:`~repro.eda.intermediates.Intermediates` — every computed value the
charts would be drawn from (histogram counts and edges, summary statistics,
correlation matrices, ...) — for use with any other plotting library.  The
returned object also carries ``timings`` (seconds per pipeline stage) and
``meta["execution_reports"]`` (one
:class:`~repro.graph.engines.ExecutionReport` per graph stage, including
cache hits), which is how the benchmarks observe the pipeline.

Interactive sessions and the ``cache.*`` config keys
----------------------------------------------------
Repeated calls on the same frame — the paper's interactive usage pattern,
``plot(df)`` then ``plot(df, "x")`` then ``plot_correlation(df)`` — share a
process-wide content-addressed cache of intermediates
(:mod:`repro.graph.cache`), so later calls skip the partition slices,
summaries and histograms earlier calls already computed.  Two dotted config
keys control it:

* ``cache.enabled`` (default ``True``) — attach the cross-call cache; set
  to ``False`` to recompute everything from scratch on every call.
* ``cache.max_bytes`` (default 256 MiB) — LRU byte budget.  The cache is
  process-wide, so explicitly passing this key resizes the shared budget
  (pass the default value to restore it); calls that omit it never
  resize, and it has no effect in a call that also sets
  ``cache.enabled`` to ``False``.

Example: ``plot(df, "x", config={"cache.enabled": False})``.  Inspect or
reset the cache with :func:`repro.cache_stats` / :func:`repro.clear_cache`.

Execution backend: the ``compute.scheduler`` config key
-------------------------------------------------------
The graph stage runs on a pluggable scheduler: ``"threaded"`` (default),
``"process"`` (a true multiprocess pool — the only backend that scales
GIL-bound chunk work such as streaming CSV parsing across cores; pair it
with ``scan_csv`` inputs) or ``"synchronous"``.  ``compute.max_workers``
bounds the worker count for every backend.  Example:
``plot(df, config={"compute.scheduler": "process"})``.  All three backends
produce identical results for every compute kind.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

from repro.eda.compute import (
    compute_bivariate,
    compute_correlation_overview,
    compute_correlation_pair,
    compute_correlation_single,
    compute_missing_overview,
    compute_missing_pair,
    compute_missing_single,
    compute_overview,
    compute_univariate,
)
from repro.eda.config import Config
from repro.eda.intermediates import Intermediates
from repro.errors import EDAError, FrameError
from repro.frame.frame import DataFrame
from repro.frame.source import as_source

_VALID_MODES = ("container", "intermediates")


def _prepare(df: DataFrame, config: Optional[Mapping[str, Any]],
             display: Optional[Sequence[str]], mode: str) -> Config:
    try:
        as_source(df)   # any FrameSource: DataFrame, scan_csv handle, custom
    except FrameError as error:
        raise EDAError(f"the first argument must be an EDA input: {error}") \
            from None
    if mode not in _VALID_MODES:
        raise EDAError(f"mode must be one of {_VALID_MODES}, got {mode!r}")
    return Config.from_user(config, display=display)


def _finish(intermediates: Intermediates, config: Config, call: str, mode: str):
    if mode == "intermediates":
        return intermediates
    from repro.render import render_intermediates
    return render_intermediates(intermediates, config, call=call)


def plot(df: DataFrame, col1: Optional[str] = None, col2: Optional[str] = None,
         *, config: Optional[Mapping[str, Any]] = None,
         display: Optional[Sequence[str]] = None,
         mode: str = "container"):
    """Overview, univariate or bivariate analysis (Figure 2, rows 1-3).

    * ``plot(df)`` — "I want an overview of the dataset."
    * ``plot(df, col1)`` — "I want to understand col1."
    * ``plot(df, col1, col2)`` — "I want to understand the relationship
      between col1 and col2."

    Parameters
    ----------
    df:
        The DataFrame to analyse — or any
        :class:`~repro.frame.source.FrameSource`, e.g. a
        :func:`repro.scan_csv` handle over one file, a list of files or a
        glob pattern, in which case the computation streams over the
        file(s) chunk by chunk with peak memory bounded by the
        ``memory.chunk_rows`` / ``memory.budget_bytes`` config keys instead
        of the data size.
    col1, col2:
        Optional column names selecting the finer-grained task.
    config:
        Dotted-key overrides, e.g. ``{"hist.bins": 200}`` or
        ``{"cache.enabled": False}`` (see the module docstring for the
        cache keys; :func:`repro.eda.config.available_config_keys` lists
        everything).
    display:
        Restrict the produced visualizations, e.g. ``["histogram"]``.
    mode:
        ``"container"`` (default) returns the rendered tabbed layout;
        ``"intermediates"`` returns the raw computed values plus stage
        timings and execution reports (see the module docstring).
    """
    cfg = _prepare(df, config, display, mode)
    if col1 is None and col2 is not None:
        raise EDAError("col1 must be provided when col2 is given")
    if col1 is None:
        intermediates = compute_overview(df, cfg)
        call = "plot(df)"
    elif col2 is None:
        intermediates = compute_univariate(df, col1, cfg)
        call = f'plot(df, "{col1}")'
    else:
        intermediates = compute_bivariate(df, col1, col2, cfg)
        call = f'plot(df, "{col1}", "{col2}")'
    return _finish(intermediates, cfg, call, mode)


def plot_correlation(df: DataFrame, col1: Optional[str] = None,
                     col2: Optional[str] = None, *,
                     config: Optional[Mapping[str, Any]] = None,
                     display: Optional[Sequence[str]] = None,
                     mode: str = "container"):
    """Correlation analysis (Figure 2, rows 4-6).

    * ``plot_correlation(df)`` — correlation matrices of all numerical columns
      (Pearson, Spearman, Kendall tau).
    * ``plot_correlation(df, col1)`` — correlation of ``col1`` against every
      other numerical column.
    * ``plot_correlation(df, col1, col2)`` — scatter plot with a regression
      line for the two columns.
    """
    cfg = _prepare(df, config, display, mode)
    if col1 is None and col2 is not None:
        raise EDAError("col1 must be provided when col2 is given")
    if col1 is None:
        intermediates = compute_correlation_overview(df, cfg)
        call = "plot_correlation(df)"
    elif col2 is None:
        intermediates = compute_correlation_single(df, col1, cfg)
        call = f'plot_correlation(df, "{col1}")'
    else:
        intermediates = compute_correlation_pair(df, col1, col2, cfg)
        call = f'plot_correlation(df, "{col1}", "{col2}")'
    return _finish(intermediates, cfg, call, mode)


def plot_missing(df: DataFrame, col1: Optional[str] = None,
                 col2: Optional[str] = None, *,
                 config: Optional[Mapping[str, Any]] = None,
                 display: Optional[Sequence[str]] = None,
                 mode: str = "container"):
    """Missing-value analysis (Figure 2, rows 7-9).

    * ``plot_missing(df)`` — overview: missing bar chart, missing spectrum,
      nullity correlation heat map, nullity dendrogram.
    * ``plot_missing(df, col1)`` — the impact of dropping the rows where
      ``col1`` is missing on every other column.
    * ``plot_missing(df, col1, col2)`` — the impact of dropping the rows where
      ``col1`` is missing on the distribution of ``col2``.
    """
    cfg = _prepare(df, config, display, mode)
    if col1 is None and col2 is not None:
        raise EDAError("col1 must be provided when col2 is given")
    if col1 is None:
        intermediates = compute_missing_overview(df, cfg)
        call = "plot_missing(df)"
    elif col2 is None:
        intermediates = compute_missing_single(df, col1, cfg)
        call = f'plot_missing(df, "{col1}")'
    else:
        intermediates = compute_missing_pair(df, col1, col2, cfg)
        call = f'plot_missing(df, "{col1}", "{col2}")'
    return _finish(intermediates, cfg, call, mode)
