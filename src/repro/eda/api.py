"""The task-centric API: ``plot``, ``plot_correlation`` and ``plot_missing``.

Each function implements one row family of the Figure 2 mapping rules and
follows the common signature ``plot_tasktype(df, col_list, config)``: no
columns means overview analysis, one or two columns mean detailed analysis.

Every call returns a :class:`~repro.render.container.Container` — the tabbed
layout of charts, statistics, insights and how-to guides — unless
``mode="intermediates"`` is passed.

The ``mode="intermediates"`` escape hatch
-----------------------------------------
With ``mode="intermediates"`` the call skips rendering and returns the raw
:class:`~repro.eda.intermediates.Intermediates` — every computed value the
charts would be drawn from (histogram counts and edges, summary statistics,
correlation matrices, ...) — for use with any other plotting library.  The
returned object also carries ``timings`` (seconds per pipeline stage) and
``meta["execution_reports"]`` (one
:class:`~repro.graph.engines.ExecutionReport` per graph stage, including
cache hits), which is how the benchmarks observe the pipeline.

Interactive sessions and the ``cache.*`` config keys
----------------------------------------------------
Repeated calls on the same frame — the paper's interactive usage pattern,
``plot(df)`` then ``plot(df, "x")`` then ``plot_correlation(df)`` — share a
process-wide content-addressed cache of intermediates
(:mod:`repro.graph.cache`), so later calls skip the partition slices,
summaries and histograms earlier calls already computed.  Two dotted config
keys control it:

* ``cache.enabled`` (default ``True``) — attach the cross-call cache; set
  to ``False`` to recompute everything from scratch on every call.
* ``cache.max_bytes`` (default 256 MiB) — LRU byte budget.  The cache is
  process-wide, so explicitly passing this key resizes the shared budget
  (pass the default value to restore it); calls that omit it never
  resize, and it has no effect in a call that also sets
  ``cache.enabled`` to ``False``.

Example: ``plot(df, "x", config={"cache.enabled": False})``.  Inspect or
reset the cache with :func:`repro.cache_stats` / :func:`repro.clear_cache`.

Execution backend: the ``compute.scheduler`` config key
-------------------------------------------------------
The graph stage runs on a pluggable scheduler: ``"threaded"`` (default),
``"process"`` (a true multiprocess pool — the only backend that scales
GIL-bound chunk work such as streaming CSV parsing across cores; pair it
with ``scan_csv`` inputs) or ``"synchronous"``.  ``compute.max_workers``
bounds the worker count for every backend.  Example:
``plot(df, config={"compute.scheduler": "process"})``.  All three backends
produce identical results for every compute kind.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.eda.compute import (
    compute_bivariate,
    compute_correlation_overview,
    compute_correlation_pair,
    compute_correlation_single,
    compute_missing_overview,
    compute_missing_pair,
    compute_missing_single,
    compute_overview,
    compute_univariate,
)
from repro.eda.config import Config
from repro.eda.intermediates import Intermediates
from repro.errors import EDAError, FrameError
from repro.frame.frame import DataFrame
from repro.frame.predicate import PredicateError, compile_predicate
from repro.frame.source import FilteredSource, as_source

_VALID_MODES = ("container", "intermediates")


def _prepare(df: DataFrame, config: Optional[Mapping[str, Any]],
             display: Optional[Sequence[str]], mode: str) -> Config:
    try:
        as_source(df)   # any FrameSource: DataFrame, scan_csv handle, custom
    except FrameError as error:
        raise EDAError(f"the first argument must be an EDA input: {error}") \
            from None
    if mode not in _VALID_MODES:
        raise EDAError(f"mode must be one of {_VALID_MODES}, got {mode!r}")
    return Config.from_user(config, display=display)


def _apply_where(df: Any, where: Any) -> Any:
    """Resolve the ``where=`` filter against the input before computing.

    A filter that compiles to the predicate IR (a ``(column, op, literal)``
    triple, a list of such triples ANDed together, a
    :class:`~repro.frame.predicate.Predicate`, or a comparison built from a
    scan's column expression like ``scan.price > 0``) is **pushed down**:
    in-memory frames are filtered eagerly with one vectorized boolean mask,
    while streaming sources are wrapped in a
    :class:`~repro.frame.source.FilteredSource` so the filter runs inside
    every chunk's parse task and the zone maps can skip whole chunks.

    Anything else the IR cannot express — a callable ``frame -> bool
    mask``, or a precomputed boolean array — still works, but cannot be
    pushed into the scan: the input is materialized in full (announced with
    a :class:`UserWarning`) and filtered in memory.
    """
    if where is None:
        return df
    source = as_source(df)
    try:
        predicate = compile_predicate(where)
    except PredicateError as error:
        return _fallback_filter(source, where, error)
    if source.capabilities.exact:
        frame = source.to_frame()
        return frame.filter(predicate.mask(frame))
    return FilteredSource(source, predicate)


def _fallback_filter(source: Any, where: Any, error: PredicateError):
    """Materialize-and-filter for ``where=`` shapes the IR cannot push."""
    if not callable(where) and not isinstance(where, np.ndarray):
        raise EDAError(
            f"unsupported where= filter: {error}; pass a (column, op, "
            f"literal) triple, a list of triples, a Predicate, a callable "
            f"frame -> boolean mask, or a boolean numpy array") from None
    if not source.capabilities.exact:
        warnings.warn(
            "this where= filter cannot be pushed into the scan (it is not "
            "a column-vs-literal predicate): materializing the full input "
            "to apply it — peak memory is no longer bounded for this call",
            UserWarning, stacklevel=3)
    frame = source.to_frame()
    mask = np.asarray(where(frame) if callable(where) else where)
    if mask.dtype != np.bool_ or mask.shape != (len(frame),):
        raise EDAError(
            f"a where= callable/array must produce a boolean mask of "
            f"length {len(frame)}; got dtype={mask.dtype}, "
            f"shape={mask.shape}")
    return frame.filter(mask)


def _finish(intermediates: Intermediates, config: Config, call: str, mode: str):
    if mode == "intermediates":
        return intermediates
    from repro.render import render_intermediates
    return render_intermediates(intermediates, config, call=call)


def plot(df: DataFrame, col1: Optional[str] = None, col2: Optional[str] = None,
         *, config: Optional[Mapping[str, Any]] = None,
         display: Optional[Sequence[str]] = None,
         mode: str = "container", where: Any = None):
    """Overview, univariate or bivariate analysis (Figure 2, rows 1-3).

    * ``plot(df)`` — "I want an overview of the dataset."
    * ``plot(df, col1)`` — "I want to understand col1."
    * ``plot(df, col1, col2)`` — "I want to understand the relationship
      between col1 and col2."

    Parameters
    ----------
    df:
        The DataFrame to analyse — or any
        :class:`~repro.frame.source.FrameSource`, e.g. a
        :func:`repro.scan_csv` handle over one file, a list of files or a
        glob pattern, in which case the computation streams over the
        file(s) chunk by chunk with peak memory bounded by the
        ``memory.chunk_rows`` / ``memory.budget_bytes`` config keys instead
        of the data size.
    col1, col2:
        Optional column names selecting the finer-grained task.
    config:
        Dotted-key overrides, e.g. ``{"hist.bins": 200}`` or
        ``{"cache.enabled": False}`` (see the module docstring for the
        cache keys; :func:`repro.eda.config.available_config_keys` lists
        everything).
    display:
        Restrict the produced visualizations, e.g. ``["histogram"]``.
    mode:
        ``"container"`` (default) returns the rendered tabbed layout;
        ``"intermediates"`` returns the raw computed values plus stage
        timings and execution reports (see the module docstring).
    where:
        Optional row filter applied before any analysis, e.g.
        ``where=("price", ">", 0)`` or ``where=scan.price > 0``.  Triples
        (and lists of triples, ANDed) are pushed down: streaming sources
        filter inside each chunk's parse and skip whole chunks via zone
        maps (see the ``compute.predicates`` config key); in-memory frames
        apply one vectorized mask.  A callable ``frame -> bool mask`` or a
        boolean array also works but materializes the input (with a
        :class:`UserWarning` on scans).  Results are identical to calling
        ``plot`` on the pre-filtered frame.
    """
    cfg = _prepare(df, config, display, mode)
    df = _apply_where(df, where)
    if col1 is None and col2 is not None:
        raise EDAError("col1 must be provided when col2 is given")
    if col1 is None:
        intermediates = compute_overview(df, cfg)
        call = "plot(df)"
    elif col2 is None:
        intermediates = compute_univariate(df, col1, cfg)
        call = f'plot(df, "{col1}")'
    else:
        intermediates = compute_bivariate(df, col1, col2, cfg)
        call = f'plot(df, "{col1}", "{col2}")'
    return _finish(intermediates, cfg, call, mode)


def plot_correlation(df: DataFrame, col1: Optional[str] = None,
                     col2: Optional[str] = None, *,
                     config: Optional[Mapping[str, Any]] = None,
                     display: Optional[Sequence[str]] = None,
                     mode: str = "container", where: Any = None):
    """Correlation analysis (Figure 2, rows 4-6).

    * ``plot_correlation(df)`` — correlation matrices of all numerical columns
      (Pearson, Spearman, Kendall tau).
    * ``plot_correlation(df, col1)`` — correlation of ``col1`` against every
      other numerical column.
    * ``plot_correlation(df, col1, col2)`` — scatter plot with a regression
      line for the two columns.

    ``where=`` filters rows before the analysis exactly as in :func:`plot`.
    """
    cfg = _prepare(df, config, display, mode)
    df = _apply_where(df, where)
    if col1 is None and col2 is not None:
        raise EDAError("col1 must be provided when col2 is given")
    if col1 is None:
        intermediates = compute_correlation_overview(df, cfg)
        call = "plot_correlation(df)"
    elif col2 is None:
        intermediates = compute_correlation_single(df, col1, cfg)
        call = f'plot_correlation(df, "{col1}")'
    else:
        intermediates = compute_correlation_pair(df, col1, col2, cfg)
        call = f'plot_correlation(df, "{col1}", "{col2}")'
    return _finish(intermediates, cfg, call, mode)


def plot_missing(df: DataFrame, col1: Optional[str] = None,
                 col2: Optional[str] = None, *,
                 config: Optional[Mapping[str, Any]] = None,
                 display: Optional[Sequence[str]] = None,
                 mode: str = "container", where: Any = None):
    """Missing-value analysis (Figure 2, rows 7-9).

    * ``plot_missing(df)`` — overview: missing bar chart, missing spectrum,
      nullity correlation heat map, nullity dendrogram.
    * ``plot_missing(df, col1)`` — the impact of dropping the rows where
      ``col1`` is missing on every other column.
    * ``plot_missing(df, col1, col2)`` — the impact of dropping the rows where
      ``col1`` is missing on the distribution of ``col2``.

    ``where=`` filters rows before the analysis exactly as in :func:`plot`.
    """
    cfg = _prepare(df, config, display, mode)
    df = _apply_where(df, where)
    if col1 is None and col2 is not None:
        raise EDAError("col1 must be provided when col2 is given")
    if col1 is None:
        intermediates = compute_missing_overview(df, cfg)
        call = "plot_missing(df)"
    elif col2 is None:
        intermediates = compute_missing_single(df, col1, cfg)
        call = f'plot_missing(df, "{col1}")'
    else:
        intermediates = compute_missing_pair(df, col1, col2, cfg)
        call = f'plot_missing(df, "{col1}", "{col2}")'
    return _finish(intermediates, cfg, call, mode)
