"""Semantic type detection used by the Figure 2 mapping rules.

The mapping rules dispatch on whether a column is *Numerical* (N) or
*Categorical* (C).  The storage dtype alone is not enough: an integer column
with three distinct values behaves like a category, and a constant column is
uninteresting for most plots.  This module implements the detection rules.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.frame.column import Column
from repro.frame.dtypes import DType


class SemanticType(enum.Enum):
    """Semantic (analysis-level) type of a column."""

    NUMERICAL = "numerical"
    CATEGORICAL = "categorical"
    DATETIME = "datetime"
    CONSTANT = "constant"

    @property
    def short(self) -> str:
        """Single-letter code used in the Figure 2 mapping table (N/C/D/K)."""
        return {"numerical": "N", "categorical": "C",
                "datetime": "D", "constant": "K"}[self.value]


#: Integer columns with at most this many distinct values are treated as
#: categorical (e.g. a 0/1 encoded flag or a 1-5 rating).
LOW_CARDINALITY_INT_THRESHOLD = 10


def detect_semantic_type(column: Column,
                         low_cardinality_threshold: int = LOW_CARDINALITY_INT_THRESHOLD,
                         nunique: Optional[int] = None) -> SemanticType:
    """Detect the semantic type of a column.

    Rules, in order:

    1. A column with at most one distinct present value is CONSTANT.
    2. Datetime storage is DATETIME.
    3. Strings and booleans are CATEGORICAL.
    4. Floats are NUMERICAL.
    5. Integers are CATEGORICAL when their distinct count is at most
       *low_cardinality_threshold*, otherwise NUMERICAL.

    *nunique* can be passed when the caller has already computed the distinct
    count (the compute module shares it), avoiding a second pass.
    """
    if nunique is None:
        nunique = column.nunique()
    if nunique <= 1:
        return SemanticType.CONSTANT
    if column.dtype is DType.DATETIME:
        return SemanticType.DATETIME
    if column.dtype in (DType.STRING, DType.BOOL):
        return SemanticType.CATEGORICAL
    if column.dtype is DType.FLOAT:
        return SemanticType.NUMERICAL
    if column.dtype is DType.INT:
        if nunique <= low_cardinality_threshold:
            return SemanticType.CATEGORICAL
        return SemanticType.NUMERICAL
    return SemanticType.CATEGORICAL


def detect_frame_types(frame, sample_rows: int = 10_000,
                       low_cardinality_threshold: int = LOW_CARDINALITY_INT_THRESHOLD
                       ) -> dict:
    """Semantic type of every column in a DataFrame.

    Detection runs on a row prefix (at most *sample_rows* rows) so it stays
    cheap even for very large frames; the EDA compute functions call this
    before deciding which mapping rule of Figure 2 applies.
    """
    preview = frame.head(sample_rows) if len(frame) > sample_rows else frame
    types = {}
    for name in frame.columns:
        types[name] = detect_semantic_type(
            preview.column(name),
            low_cardinality_threshold=low_cardinality_threshold)
    return types


def is_numerical(column: Column, **kwargs) -> bool:
    """Shorthand: does the column map to N in the Figure 2 rules?"""
    return detect_semantic_type(column, **kwargs) is SemanticType.NUMERICAL


def is_categorical(column: Column, **kwargs) -> bool:
    """Shorthand: does the column map to C in the Figure 2 rules?"""
    return detect_semantic_type(column, **kwargs) in (SemanticType.CATEGORICAL,
                                                      SemanticType.CONSTANT)
