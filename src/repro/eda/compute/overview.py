"""Overview analysis: ``plot(df)`` (row 1 of Figure 2).

Produces dataset statistics plus a histogram for every numerical column and
a bar chart for every categorical column.  All per-column summaries go into
ONE task graph so partition scans are shared across columns — this is the
main computation-sharing win the paper measures against Pandas-profiling.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.eda.compute.base import ComputeContext
from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_frame_types
from repro.eda.insights import dataset_insights
from repro.eda.intermediates import Intermediates
from repro.frame.frame import DataFrame
from repro.stats.descriptive import CategoricalSummary, NumericSummary

#: Above this row count the exact duplicate-row scan is skipped for
#: in-memory sources (it is a python-level pass; the paper's overview does
#: not require it).  Streaming sources count duplicates through a bounded
#: row-hash sketch regardless of length — see ComputeContext.duplicate_rows.
MAX_ROWS_FOR_DUPLICATE_SCAN = 200_000


def compute_overview(frame: DataFrame, config: Config,
                     context: Optional[ComputeContext] = None) -> Intermediates:
    """Compute the intermediates of ``plot(df)``.

    Works unchanged on any :class:`~repro.frame.source.FrameSource` (e.g. a
    ``scan_csv`` handle): every summary below is a mergeable reduction, so
    streaming sources flow through chunk by chunk.  The duplicate-row hash
    reads whole rows, so the projection planner correctly collapses this
    task's stage-1 batch onto full-width parses (the per-column summaries
    union to the whole table anyway); stage 2's histograms then reuse those
    parses instead of fragmenting them per column.
    """
    context = context or ComputeContext(frame, config)
    semantic_types = detect_frame_types(context.schema_frame)

    numerical = [name for name, semantic in semantic_types.items()
                 if semantic is SemanticType.NUMERICAL and
                 context.column(name).dtype.is_numeric]
    categorical = [name for name in context.column_names if name not in numerical]

    # Stage 1 (graph): every per-column summary in one shared graph, plus
    # the duplicate-row count (exact scan or hash sketch, planner's choice).
    requested: Dict[str, Any] = {
        "n_rows": context.row_count(),
        "duplicates": context.duplicate_rows(MAX_ROWS_FOR_DUPLICATE_SCAN),
    }
    for name in numerical:
        requested[f"numeric::{name}"] = context.numeric_summary(name)
    for name in categorical:
        requested[f"categorical::{name}"] = context.categorical_summary(name)
    stage1 = context.resolve(requested, stage="graph")

    numeric_summaries: Dict[str, NumericSummary] = {
        name: stage1[f"numeric::{name}"] for name in numerical}
    categorical_summaries: Dict[str, CategoricalSummary] = {
        name: stage1[f"categorical::{name}"] for name in categorical}

    # Stage 2 (graph): per-column histograms over the now-known ranges.
    bins = config.get("hist.bins")
    stage2_request: Dict[str, Any] = {}
    for name, summary in numeric_summaries.items():
        if summary.count:
            stage2_request[f"hist::{name}"] = context.histogram(
                name, bins, summary.minimum, summary.maximum)
    stage2 = context.resolve(stage2_request, stage="graph") if stage2_request else {}

    # Local stage: assemble dataset statistics and per-column chart data.
    started = time.perf_counter()
    n_rows = int(stage1["n_rows"])
    n_columns = context.n_columns
    missing_cells = sum(summary.missing for summary in numeric_summaries.values())
    missing_cells += sum(summary.missing for summary in categorical_summaries.values())
    total_cells = max(n_rows * n_columns, 1)

    # Exact scan (in-memory, below the cutoff), sketch count (streaming,
    # exact while distinct rows fit the sketch capacity), or None.
    duplicate_rows = stage1["duplicates"]
    if duplicate_rows is not None:
        duplicate_rows = int(duplicate_rows)

    dataset_stats = {
        "n_rows": n_rows,
        "n_columns": n_columns,
        "n_numerical": len(numerical),
        "n_categorical": len(categorical),
        "missing_cells": int(missing_cells),
        "missing_cells_rate": missing_cells / total_cells,
        "duplicate_rows": duplicate_rows,
        "memory_bytes": context.total_memory_bytes(),
    }

    variables: Dict[str, Dict[str, Any]] = {}
    items: Dict[str, Any] = {"overview": dataset_stats}
    for name in context.column_names:
        if name in numeric_summaries:
            summary = numeric_summaries[name]
            entry: Dict[str, Any] = {
                "type": SemanticType.NUMERICAL.value,
                "stats": summary.as_dict(),
            }
            histogram = stage2.get(f"hist::{name}")
            if histogram is not None and config.wants("histogram"):
                entry["histogram"] = {
                    "counts": histogram.counts.tolist(),
                    "edges": histogram.edges.tolist(),
                }
        else:
            summary = categorical_summaries[name]
            top = summary.top_values(config.get("bar.top_words"))
            entry = {
                "type": semantic_types[name].value,
                "stats": summary.as_dict(),
            }
            if config.wants("bar_chart"):
                entry["bar_chart"] = {
                    "categories": [value for value, _ in top],
                    "counts": [count for _, count in top],
                    "total_categories": summary.distinct,
                }
        variables[name] = entry
    items["variables"] = variables

    missing_rates = {name: entry["stats"]["missing_rate"]
                     for name, entry in variables.items()}
    intermediates = Intermediates(
        task="overview", columns=[], items=items, stats=dataset_stats,
        timings=dict(context.timings),
        meta={"semantic_types": {name: semantic.value
                                 for name, semantic in semantic_types.items()}})
    intermediates.add_insights(dataset_insights(
        n_rows, duplicate_rows or 0, missing_rates, config))
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)
