"""Univariate analysis: ``plot(df, col)`` (row 2 of Figure 2).

* Numerical column  -> column statistics, histogram, KDE plot, normal Q-Q
  plot, box plot.
* Categorical column -> column statistics, bar chart, pie chart, word cloud
  weights, word frequencies.
"""

from __future__ import annotations

import re
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.eda.compute.base import ComputeContext
from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_semantic_type
from repro.eda.insights import (
    categorical_column_insights,
    numeric_column_insights,
    outlier_insight,
)
from repro.eda.intermediates import Intermediates
from repro.frame.frame import DataFrame
from repro.stats.descriptive import CategoricalSummary, NumericSummary
from repro.stats.histogram import Histogram, freedman_diaconis_bins
from repro.stats.kde import gaussian_kde_curve
from repro.stats.qq import box_plot_stats, normal_qq_points, quantiles_from_histogram

_WORD_PATTERN = re.compile(r"[A-Za-z0-9']+")


def compute_univariate(frame: DataFrame, column: str, config: Config,
                       context: Optional[ComputeContext] = None) -> Intermediates:
    """Compute the intermediates of ``plot(df, col)``.

    Source-agnostic: every intermediate below is built through the context's
    reduction planner, so a streaming :class:`~repro.frame.source.FrameSource`
    flows through bounded sketches (reservoir sample, bounded value counts)
    while an in-memory frame keeps the exact reductions.  Every reduction
    here declares *column* as its required column set, so over a scanned
    CSV the planner emits single-column projected parses — this task costs
    one column per chunk, not the table width.
    """
    context = context or ComputeContext(frame, config)
    target = context.column(column)
    semantic = detect_semantic_type(target)

    if semantic in (SemanticType.NUMERICAL, SemanticType.DATETIME) and \
            target.dtype.is_numeric:
        return _numerical_univariate(context, column, config)
    return _categorical_univariate(context, column, config, semantic)


# --------------------------------------------------------------------------- #
# Numerical columns
# --------------------------------------------------------------------------- #
def _numerical_univariate(context: ComputeContext, column: str,
                          config: Config) -> Intermediates:
    # Stage 1 (graph): the shared numeric summary.
    stage1 = context.resolve({"summary": context.numeric_summary(column)},
                             stage="graph")
    summary: NumericSummary = stage1["summary"]

    # Stage 2 (graph): histograms over the now-known range plus a sample for
    # the normality insight.  Both histograms, the summary-derived quantiles
    # and the sample are shared by several visualizations downstream.
    low = summary.minimum if summary.count else 0.0
    high = summary.maximum if summary.count else 1.0
    display_bins = _display_bins(summary, config)
    internal_bins = config.get("compute.histogram_bins_internal")
    stage2 = context.resolve({
        "histogram": context.histogram(column, display_bins, low, high),
        "fine_histogram": context.histogram(column, internal_bins, low, high),
        "sample": context.sample([column], 5000),
    }, stage="graph")

    # Local stage ("Pandas computation"): derive everything plot-ready.
    started = time.perf_counter()
    histogram: Histogram = stage2["histogram"]
    fine: Histogram = stage2["fine_histogram"]
    sample_frame: DataFrame = stage2["sample"]
    sample = sample_frame.column(column).to_numpy(drop_missing=True).astype(np.float64)

    quantile_probabilities = [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99]
    quantile_values = quantiles_from_histogram(fine, quantile_probabilities)
    quantiles = dict(zip(quantile_probabilities, map(float, quantile_values)))

    qq_probabilities = np.linspace(0.01, 0.99, config.get("qq.points"))
    qq_sample = quantiles_from_histogram(fine, qq_probabilities)
    theoretical, sample_q = normal_qq_points(qq_sample, summary.mean, summary.std,
                                             qq_probabilities)

    kde_grid, kde_density = gaussian_kde_curve(
        fine, summary.std, grid_points=config.get("kde.grid_points"))

    box = box_plot_stats(quantiles, summary.minimum, summary.maximum, fine,
                         whisker=config.get("box.whisker"))

    stats = summary.as_dict()
    stats.update({
        "q1": quantiles[0.25],
        "median": quantiles[0.5],
        "q3": quantiles[0.75],
        "iqr": quantiles[0.75] - quantiles[0.25],
        "p5": quantiles[0.05],
        "p95": quantiles[0.95],
    })

    items: Dict[str, Any] = {}
    if config.wants("stats"):
        items["stats"] = stats
    if config.wants("histogram"):
        items["histogram"] = {
            "counts": histogram.counts.tolist(),
            "edges": histogram.edges.tolist(),
            "bins": histogram.n_bins,
        }
    if config.wants("kde_plot"):
        items["kde_plot"] = {
            "grid": kde_grid.tolist(),
            "density": kde_density.tolist(),
            "histogram_density": histogram.density().tolist(),
            "edges": histogram.edges.tolist(),
        }
    if config.wants("qq_plot"):
        items["qq_plot"] = {
            "theoretical": theoretical.tolist(),
            "sample": sample_q.tolist(),
            "mean": summary.mean,
            "std": summary.std,
        }
    if config.wants("box_plot"):
        items["box_plot"] = box.as_dict() | {"outlier_samples": box.outlier_samples}

    intermediates = Intermediates(
        task="univariate", columns=[column], items=items, stats=stats,
        timings=dict(context.timings),
        meta={"semantic_type": SemanticType.NUMERICAL.value,
              "n_rows": context.known_n_rows})
    intermediates.add_insights(numeric_column_insights(
        column, summary, histogram, config, sample=sample))
    intermediates.add_insights(outlier_insight(
        column, box.outlier_count, summary.count, config))
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def _display_bins(summary: NumericSummary, config: Config) -> int:
    if not config.get("hist.auto_bins"):
        return config.get("hist.bins")
    return freedman_diaconis_bins(
        summary.count,
        q25=summary.mean - 0.6745 * summary.std if np.isfinite(summary.std) else summary.mean,
        q75=summary.mean + 0.6745 * summary.std if np.isfinite(summary.std) else summary.mean,
        minimum=summary.minimum, maximum=summary.maximum,
        fallback=config.get("hist.bins"))


# --------------------------------------------------------------------------- #
# Categorical columns
# --------------------------------------------------------------------------- #
def _categorical_univariate(context: ComputeContext, column: str, config: Config,
                            semantic: SemanticType) -> Intermediates:
    stage1 = context.resolve({"summary": context.categorical_summary(column)},
                             stage="graph")
    summary: CategoricalSummary = stage1["summary"]

    started = time.perf_counter()
    top_bar = summary.top_values(config.get("bar.top_words"))
    pie = _pie_slices(summary, config.get("pie.slices"))
    words = _word_frequencies(summary, config)

    stats = summary.as_dict()
    items: Dict[str, Any] = {}
    if config.wants("stats"):
        items["stats"] = stats
    if config.wants("bar_chart"):
        items["bar_chart"] = {
            "categories": [value for value, _ in top_bar],
            "counts": [count for _, count in top_bar],
            "total_categories": summary.distinct,
        }
    if config.wants("pie_chart"):
        items["pie_chart"] = {
            "labels": [label for label, _ in pie],
            "counts": [count for _, count in pie],
        }
    if config.wants("word_frequencies"):
        items["word_frequencies"] = {
            "words": [word for word, _ in words],
            "counts": [count for _, count in words],
        }
    if config.wants("word_cloud"):
        items["word_cloud"] = {
            "words": [word for word, _ in words],
            "weights": _word_weights(words),
        }

    intermediates = Intermediates(
        task="univariate", columns=[column], items=items, stats=stats,
        timings=dict(context.timings),
        meta={"semantic_type": semantic.value, "n_rows": context.known_n_rows})
    intermediates.add_insights(categorical_column_insights(column, summary, config))
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def _pie_slices(summary: CategoricalSummary, slices: int) -> List[Tuple[str, int]]:
    top = summary.top_values(slices)
    covered = sum(count for _, count in top)
    remainder = summary.count - covered
    if remainder > 0:
        top = top + [("(other)", remainder)]
    return top


def _word_frequencies(summary: CategoricalSummary, config: Config
                      ) -> List[Tuple[str, int]]:
    lowercase = config.get("wordfreq.lowercase")
    counts: Dict[str, int] = {}
    for value, frequency in summary.counts.items():
        for word in _WORD_PATTERN.findall(value):
            token = word.lower() if lowercase else word
            counts[token] = counts.get(token, 0) + frequency
    ordered = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    return ordered[:config.get("wordfreq.top_words")]


def _word_weights(words: List[Tuple[str, int]]) -> List[float]:
    if not words:
        return []
    maximum = max(count for _, count in words)
    if maximum == 0:
        return [0.0 for _ in words]
    return [count / maximum for _, count in words]
