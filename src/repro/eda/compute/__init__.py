"""The Compute module (component 2 of the paper's back-end, Figure 3).

Each submodule computes the ``Intermediates`` of one EDA task family by
building lazy reductions over a partitioned frame (the "Dask computation"
stage) and finishing with small local post-processing (the "Pandas
computation" stage), exactly mirroring Figure 4 of the paper.
"""

from repro.eda.compute.base import ComputeContext
from repro.eda.compute.overview import compute_overview
from repro.eda.compute.univariate import compute_univariate
from repro.eda.compute.bivariate import compute_bivariate
from repro.eda.compute.correlation import (
    compute_correlation_overview,
    compute_correlation_pair,
    compute_correlation_single,
)
from repro.eda.compute.missing import (
    compute_missing_overview,
    compute_missing_pair,
    compute_missing_single,
)

__all__ = [
    "ComputeContext",
    "compute_bivariate",
    "compute_correlation_overview",
    "compute_correlation_pair",
    "compute_correlation_single",
    "compute_missing_overview",
    "compute_missing_pair",
    "compute_missing_single",
    "compute_overview",
    "compute_univariate",
]
