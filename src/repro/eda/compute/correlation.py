"""Correlation analysis: ``plot_correlation(...)`` (rows 4-6 of Figure 2).

* ``plot_correlation(df)``            -> correlation matrices (Pearson,
  Spearman, Kendall tau).
* ``plot_correlation(df, col1)``       -> correlation vector of ``col1``
  against every other numerical column, for all three methods.
* ``plot_correlation(df, col1, col2)`` -> scatter plot with a regression line.

Pearson is computed in the graph stage from mergeable partial sums; Spearman
and Kendall are rank statistics and are computed in the local stage from a
(possibly sampled) dense matrix — the same Dask-stage / Pandas-stage split
the paper describes for ``plot_correlation(df)``.  Both stages are
source-agnostic: the partial sums merge over any
:class:`~repro.frame.source.FrameSource` partitioning, and the dense matrix
is built from the planner-chosen sample (reservoir sketch on streams), so
correlation never materializes a scanned input.  Both reductions declare
the numerical column tuple as their requirement, so over a scanned CSV the
planner projects every chunk parse onto the numerical columns — string
columns of a mixed table are never parsed here.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.eda.compute.base import ComputeContext
from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_frame_types
from repro.eda.insights import correlation_insights
from repro.eda.intermediates import Intermediates
from repro.errors import EDAError
from repro.frame.frame import DataFrame
from repro.stats.correlation import (
    kendall_tau_matrix,
    spearman_matrix,
    top_correlated_pairs,
)


def _numerical_columns(context: ComputeContext) -> List[str]:
    types = detect_frame_types(context.schema_frame)
    return [name for name, semantic in types.items()
            if semantic is SemanticType.NUMERICAL and
            context.column(name).dtype.is_numeric]


def compute_correlation_overview(frame: DataFrame, config: Config,
                                 context: Optional[ComputeContext] = None
                                 ) -> Intermediates:
    """Intermediates of ``plot_correlation(df)``."""
    context = context or ComputeContext(frame, config)
    columns = _numerical_columns(context)
    if len(columns) < 2:
        raise EDAError("correlation analysis requires at least two numerical columns")

    methods = config.get("correlation.methods")
    sample_size = max(config.get("correlation.kendall_max_rows"), 10_000)

    stage1 = context.resolve({
        "pearson": context.pearson_partial(columns),
        "sample": context.sample(columns, sample_size),
    }, stage="graph")

    started = time.perf_counter()
    matrices: Dict[str, np.ndarray] = {}
    if "pearson" in methods:
        matrices["pearson"] = stage1["pearson"].finalize()

    dense = _dense_matrix(stage1["sample"], columns)
    if "spearman" in methods:
        matrices["spearman"] = spearman_matrix(dense)
    if "kendall" in methods:
        matrices["kendall"] = kendall_tau_matrix(
            dense, max_rows=config.get("correlation.kendall_max_rows"))

    items: Dict[str, Any] = {}
    insights = []
    for method, matrix in matrices.items():
        items[f"correlation_{method}"] = {
            "columns": columns,
            "matrix": np.round(matrix, 6).tolist(),
            "method": method,
        }
        insights.extend(correlation_insights(columns, matrix, method, config))

    top_pairs = top_correlated_pairs(
        matrices.get("pearson", next(iter(matrices.values()))), columns,
        threshold=config.get("insight.correlation.threshold"))
    stats = {
        "columns": len(columns),
        "methods": list(matrices.keys()),
        "highly_correlated_pairs": len(top_pairs),
    }
    items["stats"] = stats
    items["top_pairs"] = [
        {"col1": first, "col2": second, "correlation": value}
        for first, second, value in top_pairs[:config.get("correlation.top_k")]]

    intermediates = Intermediates(
        task="correlation", columns=[], items=items, stats=stats,
        meta={"numerical_columns": columns})
    intermediates.add_insights(insights)
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def compute_correlation_single(frame: DataFrame, column: str, config: Config,
                               context: Optional[ComputeContext] = None
                               ) -> Intermediates:
    """Intermediates of ``plot_correlation(df, col1)``."""
    context = context or ComputeContext(frame, config)
    columns = _numerical_columns(context)
    if column not in columns:
        raise EDAError(f"column {column!r} must be numerical for correlation analysis")
    if len(columns) < 2:
        raise EDAError("correlation analysis requires at least two numerical columns")

    overview = compute_correlation_overview(frame, config, context=context)
    started = time.perf_counter()
    others = [name for name in columns if name != column]
    target_index = columns.index(column)

    vectors: Dict[str, Dict[str, float]] = {}
    items: Dict[str, Any] = {}
    for method in config.get("correlation.methods"):
        key = f"correlation_{method}"
        if key not in overview.items:
            continue
        matrix = np.asarray(overview[key]["matrix"])
        vector = {other: float(matrix[target_index, columns.index(other)])
                  for other in others}
        vectors[method] = vector
        items[key] = {
            "column": column,
            "others": others,
            "values": [vector[other] for other in others],
            "method": method,
        }

    first_method = next(iter(vectors), None)
    strongest = None
    if first_method:
        strongest = max(vectors[first_method].items(),
                        key=lambda pair: abs(pair[1]))
    stats = {
        "column": column,
        "compared_against": len(others),
        "strongest_partner": strongest[0] if strongest else None,
        "strongest_correlation": strongest[1] if strongest else None,
    }
    items["stats"] = stats

    intermediates = Intermediates(
        task="correlation", columns=[column], items=items, stats=stats,
        meta={"numerical_columns": columns})
    intermediates.add_insights(overview.insights)
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def compute_correlation_pair(frame: DataFrame, col1: str, col2: str, config: Config,
                             context: Optional[ComputeContext] = None
                             ) -> Intermediates:
    """Intermediates of ``plot_correlation(df, col1, col2)``."""
    context = context or ComputeContext(frame, config)
    for name in (col1, col2):
        if not context.column(name).dtype.is_numeric:
            raise EDAError(f"column {name!r} must be numerical for correlation analysis")

    stage1 = context.resolve({
        "pearson": context.pearson_partial([col1, col2]),
        "sample": context.sample([col1, col2],
                                 config.get("correlation.scatter_sample_size")),
    }, stage="graph")

    started = time.perf_counter()
    correlation = float(stage1["pearson"].finalize()[0, 1])
    sample: DataFrame = stage1["sample"]
    keep = sample.column(col1).notna() & sample.column(col2).notna()
    clean = sample.filter(keep)
    x = clean.column(col1).to_numpy().astype(np.float64)
    y = clean.column(col2).to_numpy().astype(np.float64)
    limit = config.get("correlation.scatter_sample_size")
    if x.size > limit:
        x, y = x[:limit], y[:limit]

    slope, intercept = _least_squares(x, y)
    stats = {
        "pearson_correlation": correlation,
        "regression_slope": slope,
        "regression_intercept": intercept,
        "sampled_points": int(x.size),
    }
    items: Dict[str, Any] = {
        "stats": stats,
        "correlation_scatter": {
            "x": x.tolist(), "y": y.tolist(),
            "x_label": col1, "y_label": col2,
            "slope": slope, "intercept": intercept,
            "correlation": correlation,
        },
    }

    intermediates = Intermediates(
        task="correlation", columns=[col1, col2], items=items, stats=stats,
        meta={"combination": "NN"})
    intermediates.add_insights(correlation_insights(
        [col1, col2], np.array([[1.0, correlation], [correlation, 1.0]]),
        "pearson", config))
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def _dense_matrix(sample: DataFrame, columns: List[str]) -> np.ndarray:
    """Dense float matrix (NaN = missing) of the sampled numeric columns."""
    arrays = []
    for name in columns:
        column = sample.column(name)
        values = column.to_numpy(drop_missing=False).astype(np.float64)
        values[column.isna()] = np.nan
        arrays.append(values)
    return np.column_stack(arrays) if arrays else np.zeros((0, 0))


def _least_squares(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    """Slope and intercept of the least-squares regression line."""
    if x.size < 2:
        return 0.0, float(y.mean()) if y.size else 0.0
    x_mean, y_mean = float(x.mean()), float(y.mean())
    denominator = float(((x - x_mean) ** 2).sum())
    if denominator == 0:
        return 0.0, y_mean
    slope = float(((x - x_mean) * (y - y_mean)).sum()) / denominator
    return slope, y_mean - slope * x_mean
