"""Bivariate analysis: ``plot(df, col1, col2)`` (row 3 of Figure 2).

* Numerical x Numerical   -> scatter plot, hexbin plot, binned box plot.
* Numerical x Categorical -> categorical box plot, multi-line chart.
* Categorical x Categorical -> nested bar chart, stacked bar chart, heat map.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.eda.compute.base import ComputeContext
from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_semantic_type
from repro.eda.insights import Insight
from repro.eda.intermediates import Intermediates
from repro.frame.frame import DataFrame
from repro.stats.correlation import PearsonPartial
from repro.stats.histogram import compute_histogram
from repro.stats.qq import box_plot_stats, quantiles_from_histogram


def compute_bivariate(frame: DataFrame, col1: str, col2: str, config: Config,
                      context: Optional[ComputeContext] = None) -> Intermediates:
    """Compute the intermediates of ``plot(df, col1, col2)``.

    Source-agnostic: row alignment happens on the planner-chosen sample
    (exact fraction sample in memory, reservoir sketch over a streaming
    source) and the pair-count tables are capacity-bounded on streams, so
    no combination materializes a scanned input.  Every reduction of a
    combination declares ``{col1, col2}`` (or a subset) as its column
    requirement, so a bivariate task over a scanned CSV parses exactly two
    columns per chunk.
    """
    context = context or ComputeContext(frame, config)
    first = context.column(col1)
    second = context.column(col2)
    type1 = detect_semantic_type(first)
    type2 = detect_semantic_type(second)

    numeric1 = type1 is SemanticType.NUMERICAL and first.dtype.is_numeric
    numeric2 = type2 is SemanticType.NUMERICAL and second.dtype.is_numeric

    if numeric1 and numeric2:
        return _numerical_numerical(context, col1, col2, config)
    if numeric1 or numeric2:
        categorical, numerical = (col2, col1) if numeric1 else (col1, col2)
        return _categorical_numerical(context, categorical, numerical,
                                      config, [col1, col2])
    return _categorical_categorical(context, col1, col2, config)


# --------------------------------------------------------------------------- #
# Numerical x Numerical
# --------------------------------------------------------------------------- #
def _numerical_numerical(context: ComputeContext, col1: str, col2: str,
                         config: Config) -> Intermediates:
    stage1 = context.resolve({
        "summary1": context.numeric_summary(col1),
        "summary2": context.numeric_summary(col2),
        "pearson": context.pearson_partial([col1, col2]),
        "sample": context.sample([col1, col2], config.get("scatter.sample_size")),
    }, stage="graph")

    started = time.perf_counter()
    sample: DataFrame = stage1["sample"]
    pearson: PearsonPartial = stage1["pearson"]
    correlation = float(pearson.finalize()[0, 1])

    keep = sample.column(col1).notna() & sample.column(col2).notna()
    clean = sample.filter(keep)
    x = clean.column(col1).to_numpy().astype(np.float64)
    y = clean.column(col2).to_numpy().astype(np.float64)
    limit = config.get("scatter.sample_size")
    if x.size > limit:
        x, y = x[:limit], y[:limit]

    hexbin = _hexbin(x, y, config.get("hexbin.gridsize"))
    binned_box = _binned_box(x, y, config.get("binnedbox.bins"),
                             whisker=config.get("box.whisker"))

    stats = {
        "pearson_correlation": correlation,
        f"{col1}_mean": stage1["summary1"].mean,
        f"{col2}_mean": stage1["summary2"].mean,
        "sampled_points": int(x.size),
    }
    items: Dict[str, Any] = {}
    if config.wants("stats"):
        items["stats"] = stats
    if config.wants("scatter_plot"):
        items["scatter_plot"] = {"x": x.tolist(), "y": y.tolist(),
                                 "x_label": col1, "y_label": col2}
    if config.wants("hexbin_plot"):
        items["hexbin_plot"] = hexbin
    if config.wants("binned_box_plot"):
        items["binned_box_plot"] = binned_box

    intermediates = Intermediates(
        task="bivariate", columns=[col1, col2], items=items, stats=stats,
        meta={"combination": "NN"})
    if abs(correlation) >= config.get("insight.correlation.threshold"):
        intermediates.add_insights([Insight(
            kind="high_correlation", column=f"{col1} x {col2}", item="scatter_plot",
            value=correlation,
            message=f"{col1} and {col2} are highly correlated "
                    f"(pearson = {correlation:.2f})")])
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def _hexbin(x: np.ndarray, y: np.ndarray, gridsize: int) -> Dict[str, Any]:
    """2-D histogram intermediates used to draw a hexbin-style density plot."""
    if x.size == 0:
        return {"counts": [], "x_edges": [], "y_edges": [], "gridsize": gridsize}
    counts, x_edges, y_edges = np.histogram2d(x, y, bins=gridsize)
    return {
        "counts": counts.astype(int).tolist(),
        "x_edges": x_edges.tolist(),
        "y_edges": y_edges.tolist(),
        "gridsize": gridsize,
    }


def _binned_box(x: np.ndarray, y: np.ndarray, bins: int,
                whisker: float) -> Dict[str, Any]:
    """Box-plot statistics of ``y`` within equal-width bins of ``x``."""
    if x.size == 0:
        return {"bins": [], "boxes": []}
    edges = np.linspace(x.min(), x.max(), bins + 1)
    labels: List[str] = []
    boxes: List[Dict[str, float]] = []
    for index in range(bins):
        low, high = edges[index], edges[index + 1]
        mask = (x >= low) & (x <= high if index == bins - 1 else x < high)
        values = y[mask]
        if values.size < 2:
            continue
        quantile_values = np.quantile(values, [0.25, 0.5, 0.75])
        histogram = compute_histogram(values, max(8, min(64, values.size)))
        box = box_plot_stats(
            {0.25: float(quantile_values[0]), 0.5: float(quantile_values[1]),
             0.75: float(quantile_values[2])},
            float(values.min()), float(values.max()), histogram, whisker=whisker)
        labels.append(f"[{low:.2f}, {high:.2f}]")
        boxes.append(box.as_dict())
    return {"bins": labels, "boxes": boxes}


# --------------------------------------------------------------------------- #
# Categorical x Numerical
# --------------------------------------------------------------------------- #
def _categorical_numerical(context: ComputeContext, categorical: str, numerical: str,
                           config: Config, requested_order: List[str]) -> Intermediates:
    stage1 = context.resolve({
        "summary": context.numeric_summary(numerical),
        "categories": context.categorical_summary(categorical),
        "sample": context.sample([categorical, numerical], 50_000),
    }, stage="graph")

    started = time.perf_counter()
    sample: DataFrame = stage1["sample"]
    keep = sample.column(categorical).notna() & sample.column(numerical).notna()
    clean = sample.filter(keep)
    groups = [str(value) for value in clean.column(categorical).to_list()]
    values = clean.column(numerical).to_numpy().astype(np.float64)

    max_groups = config.get("box.max_groups")
    top_categories = [value for value, _ in
                      stage1["categories"].top_values(max_groups)]
    grouped: Dict[str, List[float]] = {category: [] for category in top_categories}
    for group, value in zip(groups, values):
        if group in grouped:
            grouped[group].append(value)

    boxes = []
    for category in top_categories:
        samples = np.asarray(grouped[category], dtype=np.float64)
        if samples.size < 2:
            continue
        quantile_values = np.quantile(samples, [0.25, 0.5, 0.75])
        histogram = compute_histogram(samples, max(8, min(64, samples.size)))
        box = box_plot_stats(
            {0.25: float(quantile_values[0]), 0.5: float(quantile_values[1]),
             0.75: float(quantile_values[2])},
            float(samples.min()), float(samples.max()), histogram,
            whisker=config.get("box.whisker"))
        boxes.append({"category": category, **box.as_dict()})

    line = _multi_line(grouped, top_categories, config)

    stats = {
        "categories_shown": len(boxes),
        "total_categories": stage1["categories"].distinct,
        f"{numerical}_mean": stage1["summary"].mean,
    }
    items: Dict[str, Any] = {}
    if config.wants("stats"):
        items["stats"] = stats
    if config.wants("box_plot"):
        items["box_plot"] = {"boxes": boxes, "value_label": numerical,
                             "category_label": categorical}
    if config.wants("multi_line_chart"):
        items["multi_line_chart"] = line

    intermediates = Intermediates(
        task="bivariate", columns=requested_order, items=items, stats=stats,
        meta={"combination": "CN", "categorical": categorical, "numerical": numerical})
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def _multi_line(grouped: Dict[str, List[float]], categories: List[str],
                config: Config) -> Dict[str, Any]:
    """Per-category aggregate of the numeric column across value bins."""
    all_values = np.concatenate([np.asarray(values) for values in grouped.values()
                                 if values]) if any(grouped.values()) else np.array([])
    if all_values.size == 0:
        return {"bins": [], "series": {}}
    bins = config.get("line.bins")
    edges = np.linspace(all_values.min(), all_values.max(), bins + 1)
    centers = ((edges[:-1] + edges[1:]) / 2).tolist()
    series: Dict[str, List[float]] = {}
    max_groups = config.get("line.max_groups")
    for category in categories[:max_groups]:
        values = np.asarray(grouped.get(category, []), dtype=np.float64)
        counts, _ = np.histogram(values, bins=edges)
        series[category] = counts.astype(int).tolist()
    return {"bins": centers, "series": series}


# --------------------------------------------------------------------------- #
# Categorical x Categorical
# --------------------------------------------------------------------------- #
def _categorical_categorical(context: ComputeContext, col1: str, col2: str,
                             config: Config) -> Intermediates:
    stage1 = context.resolve({
        "pairs": context.pair_counts(col1, col2),
        "summary1": context.categorical_summary(col1),
        "summary2": context.categorical_summary(col2),
    }, stage="graph")

    started = time.perf_counter()
    pair_counts: Dict[Tuple[str, str], int] = stage1["pairs"]
    limit_nested = config.get("nested.max_categories")
    limit_heat = config.get("heatmap.max_categories")

    top1 = [value for value, _ in stage1["summary1"].top_values(limit_nested)]
    top2 = [value for value, _ in stage1["summary2"].top_values(limit_nested)]
    heat1 = [value for value, _ in stage1["summary1"].top_values(limit_heat)]
    heat2 = [value for value, _ in stage1["summary2"].top_values(limit_heat)]

    nested = _nested_counts(pair_counts, top1, top2)
    heat_matrix = _matrix_counts(pair_counts, heat1, heat2)

    stats = {
        f"{col1}_categories": stage1["summary1"].distinct,
        f"{col2}_categories": stage1["summary2"].distinct,
        "observed_pairs": len(pair_counts),
    }
    items: Dict[str, Any] = {}
    if config.wants("stats"):
        items["stats"] = stats
    if config.wants("nested_bar_chart"):
        items["nested_bar_chart"] = nested
    if config.wants("stacked_bar_chart"):
        items["stacked_bar_chart"] = nested
    if config.wants("heat_map"):
        items["heat_map"] = {
            "x_categories": heat1, "y_categories": heat2,
            "counts": heat_matrix.astype(int).tolist(),
            "x_label": col1, "y_label": col2,
        }

    intermediates = Intermediates(
        task="bivariate", columns=[col1, col2], items=items, stats=stats,
        meta={"combination": "CC"})
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def _nested_counts(pair_counts: Dict[Tuple[str, str], int], top1: List[str],
                   top2: List[str]) -> Dict[str, Any]:
    groups = []
    for outer in top1:
        inner_counts = [int(pair_counts.get((outer, inner), 0)) for inner in top2]
        groups.append({"category": outer, "inner_categories": top2,
                       "counts": inner_counts})
    return {"groups": groups, "outer_categories": top1, "inner_categories": top2}


def _matrix_counts(pair_counts: Dict[Tuple[str, str], int], categories1: List[str],
                   categories2: List[str]) -> np.ndarray:
    matrix = np.zeros((len(categories1), len(categories2)), dtype=np.int64)
    index1 = {value: position for position, value in enumerate(categories1)}
    index2 = {value: position for position, value in enumerate(categories2)}
    for (first, second), count in pair_counts.items():
        if first in index1 and second in index2:
            matrix[index1[first], index2[second]] = count
    return matrix
