"""Missing-value analysis: ``plot_missing(...)`` (rows 7-9 of Figure 2).

* ``plot_missing(df)``            -> missing bar chart, missing spectrum,
  nullity correlation heat map, nullity dendrogram.
* ``plot_missing(df, col1)``       -> the impact of dropping rows where
  ``col1`` is missing on the distribution of every other column (histogram
  or bar chart, before vs after).
* ``plot_missing(df, col1, col2)`` -> the impact of dropping ``col1``-missing
  rows on ``col2``: histogram, PDF, CDF and box plot, before vs after.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.eda.compute.base import ComputeContext
from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_frame_types, detect_semantic_type
from repro.eda.insights import Insight, similarity_insight
from repro.eda.intermediates import Intermediates
from repro.errors import EDAError
from repro.frame.frame import DataFrame
from repro.stats.association import nullity_dendrogram_from_distances
from repro.stats.histogram import compute_histogram
from repro.stats.qq import box_plot_stats
from repro.stats.sketches import NullitySketch


def compute_missing_overview(frame: DataFrame, config: Config,
                             context: Optional[ComputeContext] = None
                             ) -> Intermediates:
    """Intermediates of ``plot_missing(df)``.

    One :class:`NullitySketch` reduction serves every source kind: the
    sketch's closed-form finalizers reproduce the mask-based statistics
    exactly (pinned by the streaming-equivalence suite), the O(rows x
    columns) mask is never materialized, and streaming sources flow through
    with chunk-bounded memory.  The sketch reads every column's nullity, so
    it declares no column projection — the planner keeps this task's chunk
    parses full-width, as the overview genuinely needs.  The bar chart and spectrum come straight
    from the sketch counts, the nullity correlation from the closed-form
    Pearson over ``(n, S_i, S_ij)``, and the dendrogram from the
    count-derived Euclidean distances.
    """
    context = context or ComputeContext(frame, config)
    stage1 = context.resolve({
        "sketch": context.nullity_sketch(config.get("missing.spectrum_bins")),
    }, stage="graph")

    started = time.perf_counter()
    sketch: NullitySketch = stage1["sketch"]
    columns = list(sketch.columns)
    n_rows = sketch.n_rows_seen
    has_cells = bool(n_rows and columns)

    missing_per_column = sketch.missing_per_column() if has_cells else \
        {name: 0 for name in columns}
    spectrum_item = None if not has_cells else {
        "columns": columns,
        "bin_edges": sketch.bin_edges.tolist(),
        "densities": sketch.spectrum_densities().tolist(),
    }
    kept, nullity_matrix = sketch.nullity_correlation() if has_cells \
        else ([], np.zeros((0, 0)))
    dendro_labels, dendro_nodes = \
        nullity_dendrogram_from_distances(sketch.nullity_distances(), columns) \
        if has_cells else (columns, [])

    intermediates = _assemble_missing_overview(
        config, columns, n_rows, missing_per_column, spectrum_item,
        kept, nullity_matrix, dendro_labels, dendro_nodes)
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)


def _assemble_missing_overview(config: Config, columns: List[str], n_rows: int,
                               missing_per_column: Dict[str, int],
                               spectrum_item: Optional[Dict[str, Any]],
                               kept: List[str], nullity_matrix: np.ndarray,
                               dendro_labels: List[str],
                               dendro_nodes: List[Any]) -> Intermediates:
    """Shared stats/items/insights assembly of the missing overview.

    Kept separate from the sketch finalization so the payload shapes and
    insight thresholds have exactly one home — which is what the
    streaming-equivalence suite pins across source kinds.
    """
    total_missing = sum(missing_per_column.values())
    stats = {
        "n_rows": n_rows,
        "n_columns": len(columns),
        "missing_cells": total_missing,
        "missing_rate": total_missing / max(n_rows * len(columns), 1),
        "columns_with_missing": sum(1 for count in missing_per_column.values() if count),
    }

    items: Dict[str, Any] = {"stats": stats}
    if config.wants("missing_bar_chart"):
        items["missing_bar_chart"] = {
            "columns": columns,
            "missing_counts": [missing_per_column[name] for name in columns],
            "present_counts": [n_rows - missing_per_column[name] for name in columns],
        }
    if spectrum_item is not None and config.wants("missing_spectrum"):
        items["missing_spectrum"] = spectrum_item
    if config.wants("nullity_correlation"):
        items["nullity_correlation"] = {
            "columns": kept,
            "matrix": np.round(nullity_matrix, 6).tolist() if len(kept) else [],
        }
    if config.wants("nullity_dendrogram"):
        items["nullity_dendrogram"] = {
            "labels": dendro_labels,
            "linkage": [{"left": node.left, "right": node.right,
                         "distance": node.distance, "size": node.size}
                        for node in dendro_nodes],
        }

    intermediates = Intermediates(
        task="missing", columns=[], items=items, stats=stats,
        meta={"missing_per_column": missing_per_column})
    insights = []
    threshold = config.get("insight.missing.threshold")
    for name, count in missing_per_column.items():
        rate = count / n_rows if n_rows else 0.0
        if rate > threshold:
            insights.append(Insight(
                kind="missing", column=name, item="missing_bar_chart",
                severity="warning", value=rate,
                message=f"{name} has {rate:.1%} missing values"))
    intermediates.add_insights(insights)
    return intermediates


def compute_missing_single(frame: DataFrame, column: str, config: Config,
                           context: Optional[ComputeContext] = None
                           ) -> Intermediates:
    """Intermediates of ``plot_missing(df, col1)``.

    For every *other* column the frequency distribution is computed twice —
    on all rows and on the rows that remain after dropping the rows where
    *column* is missing — which is why the paper reports this as the most
    computationally intensive fine-grained task (Figure 5).

    This fine-grained task aligns rows across columns, so a streaming
    source is materialized here (the overview task streams; this one
    cannot) — announced with a ``UserWarning`` carrying the estimated
    materialization size, since it breaks the bounded-memory guarantee.
    """
    context = context or ComputeContext(frame, config)
    if column not in context.column_names:
        context.column(column)  # raises ColumnNotFoundError with suggestions
    started_total = time.perf_counter()

    frame = context.frame
    target_missing = frame.column(column).isna()
    dropped = frame.filter(~target_missing)
    types = detect_frame_types(frame)

    bins = config.get("missing.bins")
    top = config.get("bar.top_words")
    impact: Dict[str, Any] = {}
    insights: List[Insight] = []
    for other in frame.columns:
        if other == column:
            continue
        before_column = frame.column(other)
        after_column = dropped.column(other)
        if types[other] is SemanticType.NUMERICAL and before_column.dtype.is_numeric:
            before_values = before_column.to_numpy(drop_missing=True).astype(np.float64)
            after_values = after_column.to_numpy(drop_missing=True).astype(np.float64)
            if before_values.size == 0:
                continue
            low, high = float(before_values.min()), float(before_values.max())
            before_hist = compute_histogram(before_values, bins, (low, high))
            after_hist = compute_histogram(after_values, bins, (low, high))
            impact[other] = {
                "type": "numerical",
                "edges": before_hist.edges.tolist(),
                "before_counts": before_hist.counts.tolist(),
                "after_counts": after_hist.counts.tolist(),
            }
            insights.extend(similarity_insight(
                other, "missing_impact", before_values, after_values, config))
        else:
            before_counts = dict(before_column.value_counts()[:top])
            after_counts = dict(after_column.value_counts())
            categories = list(before_counts.keys())
            impact[other] = {
                "type": "categorical",
                "categories": [str(category) for category in categories],
                "before_counts": [int(before_counts[category]) for category in categories],
                "after_counts": [int(after_counts.get(category, 0))
                                 for category in categories],
            }

    n_missing = int(target_missing.sum())
    stats = {
        "column": column,
        "missing_rows": n_missing,
        "missing_rate": n_missing / max(len(frame), 1),
        "rows_after_drop": len(dropped),
        "columns_compared": len(impact),
    }
    items = {"stats": stats, "missing_impact": impact}
    intermediates = Intermediates(
        task="missing", columns=[column], items=items, stats=stats,
        meta={"semantic_types": {name: semantic.value for name, semantic in types.items()}})
    intermediates.add_insights(insights)
    context.record_local_stage(time.perf_counter() - started_total)
    return context.finish(intermediates)


def compute_missing_pair(frame: DataFrame, col1: str, col2: str, config: Config,
                         context: Optional[ComputeContext] = None
                         ) -> Intermediates:
    """Intermediates of ``plot_missing(df, col1, col2)``.

    Like :func:`compute_missing_single`, this aligns rows across columns,
    so a streaming source is materialized here (with the same warning).
    """
    context = context or ComputeContext(frame, config)
    for name in (col1, col2):
        if name not in context.column_names:
            context.column(name)
    started = time.perf_counter()

    frame = context.frame
    target_missing = frame.column(col1).isna()
    dropped = frame.filter(~target_missing)
    impacted = frame.column(col2)
    impacted_after = dropped.column(col2)
    semantic = detect_semantic_type(impacted)

    items: Dict[str, Any]
    insights: List[Insight] = []
    if semantic is SemanticType.NUMERICAL and impacted.dtype.is_numeric:
        before = impacted.to_numpy(drop_missing=True).astype(np.float64)
        after = impacted_after.to_numpy(drop_missing=True).astype(np.float64)
        if before.size == 0:
            raise EDAError(f"column {col2!r} has no present values to compare")
        low, high = float(before.min()), float(before.max())
        bins = config.get("missing.bins")
        before_hist = compute_histogram(before, bins, (low, high))
        after_hist = compute_histogram(after, bins, (low, high))

        before_density = before_hist.density()
        after_density = after_hist.density()
        before_cdf = np.cumsum(before_hist.counts) / max(before_hist.total, 1)
        after_cdf = np.cumsum(after_hist.counts) / max(after_hist.total, 1)

        boxes = []
        for label, values, histogram in (("all rows", before, before_hist),
                                         ("after drop", after, after_hist)):
            if values.size < 2:
                continue
            quantile_values = np.quantile(values, [0.25, 0.5, 0.75])
            box = box_plot_stats(
                {0.25: float(quantile_values[0]), 0.5: float(quantile_values[1]),
                 0.75: float(quantile_values[2])},
                float(values.min()), float(values.max()), histogram,
                whisker=config.get("box.whisker"))
            boxes.append({"label": label, **box.as_dict()})

        items = {
            "missing_impact": {
                "type": "numerical",
                "edges": before_hist.edges.tolist(),
                "before_counts": before_hist.counts.tolist(),
                "after_counts": after_hist.counts.tolist(),
            },
            "pdf": {"edges": before_hist.edges.tolist(),
                    "before": before_density.tolist(),
                    "after": after_density.tolist()},
            "cdf": {"edges": before_hist.edges.tolist(),
                    "before": before_cdf.tolist(),
                    "after": after_cdf.tolist()},
            "box_plot": {"boxes": boxes, "value_label": col2},
        }
        insights.extend(similarity_insight(col2, "missing_impact", before, after, config))
    else:
        top = config.get("bar.top_words")
        before_counts = dict(impacted.value_counts()[:top])
        after_counts = dict(impacted_after.value_counts())
        categories = [str(category) for category in before_counts]
        items = {
            "missing_impact": {
                "type": "categorical",
                "categories": categories,
                "before_counts": [int(count) for count in before_counts.values()],
                "after_counts": [int(after_counts.get(category, 0))
                                 for category in before_counts],
            },
        }

    n_missing = int(target_missing.sum())
    stats = {
        "column": col1,
        "impacted_column": col2,
        "missing_rows": n_missing,
        "missing_rate": n_missing / max(len(frame), 1),
        "rows_after_drop": len(dropped),
    }
    items["stats"] = stats
    intermediates = Intermediates(
        task="missing", columns=[col1, col2], items=items, stats=stats,
        meta={"impacted_type": semantic.value})
    intermediates.add_insights(insights)
    context.record_local_stage(time.perf_counter() - started)
    return context.finish(intermediates)
