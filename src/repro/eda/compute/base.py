"""Shared plumbing of the Compute module.

:class:`ComputeContext` decides whether an EDA task runs through the lazy
task graph ("graph stage", the paper's Dask computation) or directly on the
in-memory frame ("local stage", the paper's Pandas computation), builds the
lazy reductions, and resolves many of them together against one merged,
optimized graph so shared work (partition slices, summaries, histograms) is
computed once.

The context also owns the out-of-core streaming mode: when the input is a
:class:`~repro.frame.io.ScannedFrame` (from :func:`repro.scan_csv`), every
intermediate is produced by per-partition sketch + tree-merge reductions over
lazily parsed CSV chunks, schema questions are answered from the scan's
bounded preview, and the schedulers release each chunk as soon as its
sketches have consumed it — so peak memory tracks ``memory.chunk_rows`` /
``memory.budget_bytes``, not the file size.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.eda.intermediates import Intermediates

from repro.eda.config import Config
from repro.errors import EDAError
from repro.frame.column import Column
from repro.frame.frame import DataFrame
from repro.frame.io import ScannedFrame, default_worker_count
from repro.graph.cache import TaskCache, get_global_cache
from repro.graph.delayed import Delayed
from repro.graph.engines import Engine, ExecutionReport, get_engine
from repro.graph.partition import PartitionedFrame
from repro.stats.correlation import PearsonPartial
from repro.stats.descriptive import CategoricalSummary, NumericSummary
from repro.stats.histogram import Histogram, compute_histogram
from repro.stats.sketches import (
    NullitySketch,
    ReservoirSketch,
    StreamingHistogram,
    merge_all,
)

#: Bound on the per-chunk categorical value-count table in streaming mode; a
#: high-cardinality column cannot grow a chunk's state past this many
#: entries (the distinct sketch keeps the cardinality estimate honest).
STREAMING_CATEGORY_CAPACITY = 50_000


# --------------------------------------------------------------------------- #
# Module-level chunk/combine functions.
#
# They must be module-level (not lambdas) so the optimizer's CSE pass can
# recognise two identical computations built independently.
# --------------------------------------------------------------------------- #
def _chunk_numeric_summary(partition: DataFrame, column: str) -> NumericSummary:
    return NumericSummary.from_column(partition.column(column))


def _combine_numeric_summaries(partials: List[NumericSummary]) -> NumericSummary:
    return NumericSummary.merge_all(partials)


def _chunk_categorical_summary(partition: DataFrame, column: str) -> CategoricalSummary:
    return CategoricalSummary.from_column(partition.column(column))


def _combine_categorical_summaries(partials: List[CategoricalSummary]) -> CategoricalSummary:
    return CategoricalSummary.merge_all(partials)


def _chunk_histogram(partition: DataFrame, column: str, bins: int,
                     low: float, high: float) -> Histogram:
    values = partition.column(column).to_numpy(drop_missing=True).astype(np.float64)
    return StreamingHistogram.from_values(values, bins, low, high)


def _combine_histograms(partials: List[Histogram]) -> Histogram:
    return Histogram.merge_all(partials)


def _chunk_pearson(partition: DataFrame, columns: Tuple[str, ...]) -> PearsonPartial:
    matrix = np.column_stack([
        partition.column(name).to_numpy(drop_missing=False).astype(np.float64)
        if partition.column(name).dtype.is_numeric
        else np.full(len(partition), np.nan)
        for name in columns])
    # Mark missing entries as NaN for non-float numerics.
    for index, name in enumerate(columns):
        column = partition.column(name)
        if column.dtype.is_numeric:
            matrix[column.isna(), index] = np.nan
    return PearsonPartial.from_matrix(matrix)


def _combine_pearson(partials: List[PearsonPartial]) -> PearsonPartial:
    return PearsonPartial.merge_all(partials)


def _chunk_missing_mask(partition: DataFrame) -> np.ndarray:
    return partition.missing_mask()


def _combine_missing_masks(partials: List[np.ndarray]) -> np.ndarray:
    non_empty = [mask for mask in partials if mask.size]
    if not non_empty:
        return partials[0]
    return np.vstack(non_empty)


def _chunk_row_count(partition: DataFrame) -> int:
    return len(partition)


def _combine_counts(partials: List[int]) -> int:
    return int(sum(partials))


def _chunk_sample(partition: DataFrame, columns: Tuple[str, ...], fraction: float,
                  seed: int) -> DataFrame:
    subset = partition.select(list(columns))
    size = max(1, int(round(len(subset) * fraction))) if len(subset) else 0
    if size >= len(subset):
        return subset
    return subset.sample(size, seed=seed)


def _combine_samples(partials: List[DataFrame]) -> DataFrame:
    from repro.frame.frame import concat_rows
    non_empty = [frame for frame in partials if len(frame)]
    if not non_empty:
        return partials[0]
    return concat_rows(non_empty)


def _chunk_pair_counts(partition: DataFrame, col1: str, col2: str) -> Dict[Tuple[str, str], int]:
    first = partition.column(col1)
    second = partition.column(col2)
    keep = first.notna() & second.notna()
    counts: Dict[Tuple[str, str], int] = {}
    for a, b in zip(first.filter(keep).to_list(), second.filter(keep).to_list()):
        key = (str(a), str(b))
        counts[key] = counts.get(key, 0) + 1
    return counts


def _combine_pair_counts(partials: List[Dict[Tuple[str, str], int]]
                         ) -> Dict[Tuple[str, str], int]:
    merged: Dict[Tuple[str, str], int] = {}
    for partial in partials:
        for key, count in partial.items():
            merged[key] = merged.get(key, 0) + count
    return merged


# --------------------------------------------------------------------------- #
# Streaming-mode chunk/combine functions (sketch-based).
# --------------------------------------------------------------------------- #
def _chunk_categorical_summary_bounded(partition: DataFrame, column: str,
                                       capacity: int) -> CategoricalSummary:
    return CategoricalSummary.from_column(partition.column(column),
                                          capacity=capacity)


def _prune_pair_counts(counts: Dict[Tuple[str, str], int],
                       capacity: int) -> Dict[Tuple[str, str], int]:
    """Keep the *capacity* most frequent pairs (deterministic tie-break)."""
    if len(counts) <= capacity:
        return counts
    ordered = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    return dict(ordered[:capacity])


def _chunk_pair_counts_bounded(partition: DataFrame, col1: str, col2: str,
                               capacity: int) -> Dict[Tuple[str, str], int]:
    return _prune_pair_counts(_chunk_pair_counts(partition, col1, col2),
                              capacity)


def _combine_pair_counts_bounded(partials: List[Dict[Tuple[str, str], int]]
                                 ) -> Dict[Tuple[str, str], int]:
    # Combine functions receive only the partial list, so the bound is the
    # module-level streaming capacity rather than a parameter.
    return _prune_pair_counts(_combine_pair_counts(partials),
                              STREAMING_CATEGORY_CAPACITY)


def _chunk_reservoir(partition: DataFrame, columns: Tuple[str, ...],
                     capacity: int, seed: int) -> ReservoirSketch:
    return ReservoirSketch.from_frame(partition.select(list(columns)),
                                      capacity, seed=seed)


def _combine_reservoirs(partials: List[ReservoirSketch]) -> ReservoirSketch:
    return merge_all(partials)


def _finalize_reservoir(sketch: ReservoirSketch) -> DataFrame:
    return sketch.frame


def _chunk_nullity(partition: DataFrame, start: int, stop: int,
                   columns: Tuple[str, ...], n_rows_total: int,
                   n_bins: int) -> NullitySketch:
    return NullitySketch.from_mask(partition.select(list(columns)).missing_mask(),
                                   columns, start, n_rows_total, n_bins)


def _combine_nullity(partials: List[NullitySketch]) -> NullitySketch:
    return merge_all(partials)


class ComputeContext:
    """Execution context for one EDA task.

    The context owns the partitioned frame, the engine and the timing
    bookkeeping.  Compute functions ask it for lazy (or, on tiny data, eager)
    intermediates and then call :meth:`resolve` once per pipeline stage so
    every requested value lands in the same optimized graph.
    """

    def __init__(self, frame: Union[DataFrame, ScannedFrame], config: Config,
                 engine: Optional[Engine] = None):
        if isinstance(frame, ScannedFrame):
            self.scan: Optional[ScannedFrame] = frame
            self._frame: Optional[DataFrame] = None
        else:
            self.scan = None
            self._frame = frame
        self.config = config
        self.timings: Dict[str, float] = {}
        self.reports: List[ExecutionReport] = []
        self._partitioned: Optional[PartitionedFrame] = None
        self.use_graph = self._decide_graph_mode()
        self.cache = self._decide_cache()
        if engine is not None:
            self.engine = engine
        else:
            self.engine = get_engine(
                config.get("compute.engine"),
                **self._engine_kwargs(config.get("compute.engine")))

    # ------------------------------------------------------------------ #
    # Input access (in-memory frame vs. out-of-core scan)
    # ------------------------------------------------------------------ #
    @property
    def is_streaming(self) -> bool:
        """True when the input is a :class:`ScannedFrame` (out-of-core)."""
        return self.scan is not None

    @property
    def frame(self) -> DataFrame:
        """The full in-memory frame.

        Streaming-capable compute paths never touch this.  For the few
        fine-grained tasks that genuinely need all rows at once (bivariate
        row alignment, missing-value drop comparisons), a scanned input is
        materialized here once — losing the bounded-memory guarantee for
        that call, which is documented on the corresponding ``plot`` kinds.
        """
        if self._frame is None:
            self._frame = self.scan.to_frame()
        return self._frame

    @property
    def schema_frame(self) -> DataFrame:
        """A bounded frame for schema questions (dtypes, semantic types).

        The in-memory frame itself, or the scan's preview rows; semantic
        type detection samples a row prefix in both cases, so the two modes
        agree whenever the preview is representative.
        """
        if self.scan is not None:
            return self.scan.preview
        return self._frame

    @property
    def known_n_rows(self) -> int:
        """Total row count, known without materializing a scan."""
        if self.scan is not None:
            return self.scan.n_rows
        return len(self._frame)

    @property
    def column_names(self) -> List[str]:
        """Column names of the input."""
        if self.scan is not None:
            return self.scan.columns
        return self._frame.columns

    @property
    def n_columns(self) -> int:
        """Number of columns of the input."""
        return len(self.column_names)

    def total_memory_bytes(self) -> int:
        """In-memory footprint of a frame, or on-disk size of a scan."""
        if self.scan is not None:
            return self.scan.file_size
        return self._frame.memory_bytes()

    def duplicate_row_count(self, max_rows: int) -> Optional[int]:
        """Exact duplicate rows, or None when the scan would need full data."""
        if self.scan is not None or self.known_n_rows > max_rows:
            return None
        return self._frame.duplicate_row_count()

    def _decide_cache(self) -> Optional[TaskCache]:
        """The process-wide intermediate cache, or None when disabled.

        ``cache.enabled`` (default True) attaches the shared cross-call
        cache so repeated EDA calls on the same frame reuse partition
        slices, summaries and histograms.  The budget is process-global
        state: only a call that explicitly passes ``cache.max_bytes``
        (even the default value, to restore it) resizes the shared cache;
        default-config calls never shrink — and thereby evict — a cache
        another call configured.  A call that disables the cache detaches
        entirely and never resizes, even if it also passes a budget.
        """
        if not self.config.get("cache.enabled"):
            return None
        cache = get_global_cache()
        if "cache.max_bytes" in self.config.provided:
            cache.resize(self.config.get("cache.max_bytes"))
        return cache

    def _engine_kwargs(self, engine_name: str) -> Dict[str, Any]:
        if engine_name == "lazy":
            return {
                "max_workers": self.config.get("compute.max_workers"),
                "enable_cse": self.config.get("compute.enable_cse"),
                "enable_fusion": self.config.get("compute.enable_fusion"),
                "cache": self.cache,
            }
        if engine_name == "eager":
            return {"max_workers": self.config.get("compute.max_workers"),
                    "cache": self.cache}
        if engine_name == "cluster-rpc":
            return {"cache": self.cache}
        return {}

    def _decide_graph_mode(self) -> bool:
        if self.is_streaming:
            # A scan must never be materialized wholesale; the graph (chunked)
            # path is the only one with a bounded footprint.
            return True
        mode = self.config.get("compute.use_graph")
        if mode == "always":
            return True
        if mode == "never":
            return False
        return self.known_n_rows >= self.config.get("compute.small_data_rows")

    def _effective_workers(self) -> int:
        workers = self.config.get("compute.max_workers")
        if workers is None:
            workers = default_worker_count()
        return int(workers)

    # ------------------------------------------------------------------ #
    # Partitioning (the chunk-size precompute stage)
    # ------------------------------------------------------------------ #
    @property
    def partitioned(self) -> PartitionedFrame:
        """The partitioned frame, built on first use with precomputed chunks.

        For a scanned input the partitions are lazy byte-range parse tasks;
        the chunk granularity honours ``memory.chunk_rows`` and shrinks
        further if ``memory.budget_bytes`` cannot hold one chunk per
        scheduler worker concurrently.
        """
        if self._partitioned is None:
            started = time.perf_counter()
            if self.scan is not None:
                scan = self.scan
                target = scan.chunk_rows
                # The scan's own chunking already satisfies the budget it was
                # created with; only constrain further for settings the user
                # explicitly overrides (or a worker count the scan did not
                # assume).  Anything else would silently override an explicit
                # scan_csv(chunk_rows=...) choice with the config default and
                # pay a needless full-file layout rescan.
                if "memory.chunk_rows" in self.config.provided:
                    target = min(target, self.config.get("memory.chunk_rows"))
                budget = scan.budget_bytes
                if "memory.budget_bytes" in self.config.provided:
                    budget = self.config.get("memory.budget_bytes")
                workers = self._effective_workers()
                if budget != scan.budget_bytes or \
                        workers != scan.budget_concurrency:
                    target = min(target, scan.chunk_rows_for_budget(
                        budget, concurrency=workers))
                if target < scan.chunk_rows:
                    scan = scan.rechunk(target)
                self._partitioned = PartitionedFrame.from_scan(scan)
            else:
                self._partitioned = PartitionedFrame.from_frame(
                    self.frame,
                    partition_rows=self.config.get("compute.partition_rows"))
            self.timings["precompute_chunk_sizes"] = time.perf_counter() - started
        return self._partitioned

    # ------------------------------------------------------------------ #
    # Intermediate builders (lazy in graph mode, eager otherwise)
    # ------------------------------------------------------------------ #
    def numeric_summary(self, column: str) -> Union[Delayed, NumericSummary]:
        """Mergeable numeric summary of one column."""
        if not self.use_graph:
            return NumericSummary.from_column(self.frame.column(column))
        return self.partitioned.reduction(
            _chunk_numeric_summary, _combine_numeric_summaries,
            chunk_args=(column,))

    def categorical_summary(self, column: str) -> Union[Delayed, CategoricalSummary]:
        """Mergeable categorical summary of one column.

        In streaming mode the per-chunk value-count table is bounded
        (:data:`STREAMING_CATEGORY_CAPACITY`) so cardinality cannot defeat
        the memory budget; counts stay exact below the bound.
        """
        if not self.use_graph:
            return CategoricalSummary.from_column(self.frame.column(column))
        if self.is_streaming:
            return self.partitioned.reduction(
                _chunk_categorical_summary_bounded,
                _combine_categorical_summaries,
                chunk_args=(column, STREAMING_CATEGORY_CAPACITY))
        return self.partitioned.reduction(
            _chunk_categorical_summary, _combine_categorical_summaries,
            chunk_args=(column,))

    def histogram(self, column: str, bins: int, low: float,
                  high: float) -> Union[Delayed, Histogram]:
        """Mergeable histogram of one column over a fixed range."""
        if not self.use_graph:
            values = self.frame.column(column).to_numpy(drop_missing=True)
            return compute_histogram(values.astype(np.float64), bins, (low, high))
        return self.partitioned.reduction(
            _chunk_histogram, _combine_histograms,
            chunk_args=(column, bins, float(low), float(high)))

    def pearson_partial(self, columns: Sequence[str]) -> Union[Delayed, PearsonPartial]:
        """Mergeable Pearson partial sums over the given numeric columns."""
        columns = tuple(columns)
        if not self.use_graph:
            return _chunk_pearson(self.frame, columns)
        return self.partitioned.reduction(
            _chunk_pearson, _combine_pearson, chunk_args=(columns,))

    def missing_mask(self) -> Union[Delayed, np.ndarray]:
        """Full boolean missing mask (rows x columns).

        The mask is O(rows x columns); a scanned input must use
        :meth:`nullity_sketch` instead, which holds only per-column and
        per-bin counts.
        """
        if self.is_streaming:
            raise EDAError("a scanned frame has no materialized missing mask; "
                           "use nullity_sketch() instead")
        if not self.use_graph:
            return self.frame.missing_mask()
        return self.partitioned.reduction(_chunk_missing_mask, _combine_missing_masks)

    def nullity_sketch(self, n_bins: int) -> Union[Delayed, NullitySketch]:
        """Mergeable missing-value sketch over all columns.

        Carries everything ``plot_missing(df)`` renders — per-column missing
        counts, pairwise co-missing counts and the row-binned missing
        spectrum — in a few small arrays per chunk.
        """
        columns = tuple(self.column_names)
        total = self.known_n_rows
        if not self.use_graph:
            return NullitySketch.from_mask(self.frame.missing_mask(), columns,
                                           0, total, n_bins)
        return self.partitioned.reduction_indexed(
            _chunk_nullity, _combine_nullity,
            chunk_args=(columns, total, n_bins))

    def row_count(self) -> Union[Delayed, int]:
        """Total number of rows."""
        if self.is_streaming:
            return self.known_n_rows      # precomputed by the layout scan
        if not self.use_graph:
            return len(self.frame)
        return self.partitioned.reduction(_chunk_row_count, _combine_counts)

    def sample(self, columns: Sequence[str], size: int,
               seed: int = 0) -> Union[Delayed, DataFrame]:
        """A uniform row sample of the given columns (about *size* rows).

        Streaming inputs sample through a mergeable reservoir sketch, so the
        retained rows never exceed *size* no matter the file length — and
        while the whole file fits the capacity the "sample" is exact, which
        is what pins the streaming results to the in-memory ones on small
        data.
        """
        columns = tuple(columns)
        if not self.use_graph:
            return self.frame.select(list(columns)).sample(size, seed=seed)
        if self.is_streaming:
            return self.partitioned.reduction(
                _chunk_reservoir, _combine_reservoirs,
                finalize=_finalize_reservoir,
                chunk_args=(columns, int(size), seed))
        total = max(self.known_n_rows, 1)
        fraction = min(1.0, size / total)
        return self.partitioned.reduction(
            _chunk_sample, _combine_samples,
            chunk_args=(columns, fraction, seed))

    def pair_counts(self, col1: str, col2: str) -> Union[Delayed, Dict[Tuple[str, str], int]]:
        """Joint value counts of two categorical columns.

        In streaming mode the pair table is pruned to the
        :data:`STREAMING_CATEGORY_CAPACITY` most frequent pairs at every
        chunk and merge step, so two high-cardinality columns cannot defeat
        the memory budget; exact below the bound (the downstream charts only
        consume the top few dozen pairs).
        """
        if not self.use_graph:
            return _chunk_pair_counts(self.frame, col1, col2)
        if self.is_streaming:
            return self.partitioned.reduction(
                _chunk_pair_counts_bounded, _combine_pair_counts_bounded,
                chunk_args=(col1, col2, STREAMING_CATEGORY_CAPACITY))
        return self.partitioned.reduction(
            _chunk_pair_counts, _combine_pair_counts, chunk_args=(col1, col2))

    # ------------------------------------------------------------------ #
    # Resolution (one merged graph per stage)
    # ------------------------------------------------------------------ #
    def resolve(self, requested: Dict[str, Any], stage: str = "graph") -> Dict[str, Any]:
        """Compute all Delayed values in *requested* against one shared graph.

        Non-Delayed values pass through untouched, so compute functions can
        freely mix lazy and already-known values.  Timing and execution
        reports are recorded per stage for the benchmarks.
        """
        started = time.perf_counter()
        keys = [key for key, value in requested.items() if isinstance(value, Delayed)]
        resolved = dict(requested)
        if keys:
            values, report = self.engine.compute_with_report(
                [requested[key] for key in keys])
            self.reports.append(report)
            for key, value in zip(keys, values):
                resolved[key] = value
        elapsed = time.perf_counter() - started
        self.timings[stage] = self.timings.get(stage, 0.0) + elapsed
        return resolved

    def record_local_stage(self, seconds: float) -> None:
        """Record time spent in the local ("Pandas computation") stage."""
        self.timings["local"] = self.timings.get("local", 0.0) + seconds

    def finish(self, intermediates: "Intermediates") -> "Intermediates":
        """Attach this context's timings and execution reports to a result.

        Every compute function calls this last, so callers (and the
        interactive-session benchmark) can read per-stage timings and the
        engine's :class:`~repro.graph.engines.ExecutionReport` list —
        including cache hits — from ``intermediates.meta``.
        """
        intermediates.timings = dict(self.timings)
        intermediates.meta["execution_reports"] = list(self.reports)
        return intermediates

    def column(self, name: str) -> Column:
        """A column for schema/semantic-type inspection (validates the name).

        For an in-memory frame this is the full column; for a scan it is the
        preview's column — compute paths must go through the sketch
        reductions for actual data, so this accessor never parses the file.
        """
        if self.scan is not None:
            return self.scan.preview.column(name)
        return self.frame.column(name)
