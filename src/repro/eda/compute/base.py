"""Shared plumbing of the Compute module.

:class:`ComputeContext` decides whether an EDA task runs through the lazy
task graph ("graph stage", the paper's Dask computation) or directly on the
in-memory frame ("local stage", the paper's Pandas computation), builds the
lazy reductions, and resolves many of them together against one merged,
optimized graph so shared work (partition slices, summaries, histograms) is
computed once.

Input is any :class:`~repro.frame.source.FrameSource` (a ``DataFrame`` and a
``scan_csv`` handle are adapted automatically): the source supplies schema,
precomputed partitions and :class:`~repro.frame.source.SourceCapabilities`,
and the **reduction planner** in this module (:data:`REDUCTION_KINDS` +
:meth:`ComputeContext._reduce`) picks, per compute kind, the exact
chunk/combine/finalize triple for exact-capable sources or the
bounded-memory sketch triple for streaming ones.  That single dispatch
point is the only place the pipeline distinguishes in-memory from
out-of-core execution — every compute function upstream is source-agnostic,
and the schedulers release each chunk as soon as its sketches have consumed
it, so streaming peak memory tracks ``memory.chunk_rows`` /
``memory.budget_bytes``, not the file size.

The planner also performs **projection pushdown**: every
:class:`ReductionKind` declares the column set its chunk functions read,
builders return :class:`PendingReduction` requests, and
:meth:`ComputeContext.resolve` merges the overlapping requirements of a
batch into shared *projected* partition tasks — ``plot(df, "x")`` over a
40-column ``scan_csv`` then parses one column per chunk instead of 40
(see ``docs/architecture.md`` § Planning & projection).
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.eda.intermediates import Intermediates

from dataclasses import dataclass

from repro.eda.config import Config
from repro.errors import EDAError
from repro.frame.column import Column
from repro.frame.frame import DataFrame
from repro.frame.sidecar import SidecarRoute, stats_snapshot as _sidecar_snapshot
from repro.frame.source import FilteredSource, FrameSource, as_source
from repro.graph.cache import TaskCache, get_global_cache
from repro.graph.delayed import Delayed
from repro.graph.engines import Engine, ExecutionReport, get_engine
from repro.graph.partition import PartitionedFrame
from repro.stats.correlation import PearsonPartial
from repro.stats.descriptive import CategoricalSummary, NumericSummary
from repro.stats.histogram import Histogram, compute_histogram
from repro.stats.sketches import (
    DUPLICATE_SKETCH_CAPACITY,
    DuplicateSketch,
    NullitySketch,
    ReservoirSketch,
    StreamingHistogram,
    merge_all,
)
from repro.utils import default_worker_count

#: Bound on the per-chunk categorical value-count table in streaming mode; a
#: high-cardinality column cannot grow a chunk's state past this many
#: entries (the distinct sketch keeps the cardinality estimate honest).
STREAMING_CATEGORY_CAPACITY = 50_000

#: Sentinel distinguishing "no reusable projection found" from a legitimate
#: None (= full-width) reuse candidate.
_UNSET = object()


# --------------------------------------------------------------------------- #
# Module-level chunk/combine functions.
#
# They must be module-level (not lambdas) so the optimizer's CSE pass can
# recognise two identical computations built independently.
# --------------------------------------------------------------------------- #
def _chunk_numeric_summary(partition: DataFrame, column: str) -> NumericSummary:
    return NumericSummary.from_column(partition.column(column))


def _combine_numeric_summaries(partials: List[NumericSummary]) -> NumericSummary:
    return NumericSummary.merge_all(partials)


def _chunk_categorical_summary(partition: DataFrame, column: str) -> CategoricalSummary:
    return CategoricalSummary.from_column(partition.column(column))


def _combine_categorical_summaries(partials: List[CategoricalSummary]) -> CategoricalSummary:
    return CategoricalSummary.merge_all(partials)


def _chunk_histogram(partition: DataFrame, column: str, bins: int,
                     low: float, high: float) -> Histogram:
    values = partition.column(column).to_numpy(drop_missing=True).astype(np.float64)
    return StreamingHistogram.from_values(values, bins, low, high)


def _combine_histograms(partials: List[Histogram]) -> Histogram:
    return Histogram.merge_all(partials)


def _chunk_pearson(partition: DataFrame, columns: Tuple[str, ...]) -> PearsonPartial:
    matrix = np.column_stack([
        partition.column(name).to_numpy(drop_missing=False).astype(np.float64)
        if partition.column(name).dtype.is_numeric
        else np.full(len(partition), np.nan)
        for name in columns])
    # Mark missing entries as NaN for non-float numerics.
    for index, name in enumerate(columns):
        column = partition.column(name)
        if column.dtype.is_numeric:
            matrix[column.isna(), index] = np.nan
    return PearsonPartial.from_matrix(matrix)


def _combine_pearson(partials: List[PearsonPartial]) -> PearsonPartial:
    return PearsonPartial.merge_all(partials)


def _chunk_missing_mask(partition: DataFrame) -> np.ndarray:
    return partition.missing_mask()


def _combine_missing_masks(partials: List[np.ndarray]) -> np.ndarray:
    non_empty = [mask for mask in partials if mask.size]
    if not non_empty:
        return partials[0]
    return np.vstack(non_empty)


def _chunk_row_count(partition: DataFrame) -> int:
    return len(partition)


def _combine_counts(partials: List[int]) -> int:
    return int(sum(partials))


def _chunk_sample(partition: DataFrame, columns: Tuple[str, ...], fraction: float,
                  seed: int) -> DataFrame:
    subset = partition.select(list(columns))
    size = max(1, int(round(len(subset) * fraction))) if len(subset) else 0
    if size >= len(subset):
        return subset
    return subset.sample(size, seed=seed)


def _combine_samples(partials: List[DataFrame]) -> DataFrame:
    from repro.frame.frame import concat_rows
    non_empty = [frame for frame in partials if len(frame)]
    if not non_empty:
        return partials[0]
    return concat_rows(non_empty)


def _chunk_pair_counts(partition: DataFrame, col1: str, col2: str) -> Dict[Tuple[str, str], int]:
    first = partition.column(col1)
    second = partition.column(col2)
    keep = first.notna() & second.notna()
    if first.is_dictionary and second.is_dictionary:
        # Fuse both code arrays into one integer key and count with a
        # single bincount/unique pass — no per-row python pairs.
        width = max(int(second.dictionary.size), 1)
        fused = (first.codes[keep].astype(np.int64) * width
                 + second.codes[keep].astype(np.int64))
        if fused.size == 0:
            return {}
        span = int(first.dictionary.size) * width
        if span <= (1 << 22):
            tallies = np.bincount(fused, minlength=span)
            keys = np.flatnonzero(tallies)
            tallies = tallies[keys]
        else:       # too sparse for a dense bincount table
            keys, tallies = np.unique(fused, return_counts=True)
        left, right = first.dictionary, second.dictionary
        return {(str(left[key // width]), str(right[key % width])): int(count)
                for key, count in zip(keys.tolist(), tallies.tolist())}
    counts: Dict[Tuple[str, str], int] = {}
    for a, b in zip(first.filter(keep).to_list(), second.filter(keep).to_list()):
        key = (str(a), str(b))
        counts[key] = counts.get(key, 0) + 1
    return counts


def _combine_pair_counts(partials: List[Dict[Tuple[str, str], int]]
                         ) -> Dict[Tuple[str, str], int]:
    merged: Dict[Tuple[str, str], int] = {}
    for partial in partials:
        for key, count in partial.items():
            merged[key] = merged.get(key, 0) + count
    return merged


# --------------------------------------------------------------------------- #
# Streaming-mode chunk/combine functions (sketch-based).
# --------------------------------------------------------------------------- #
def _chunk_categorical_summary_bounded(partition: DataFrame, column: str,
                                       capacity: int) -> CategoricalSummary:
    return CategoricalSummary.from_column(partition.column(column),
                                          capacity=capacity)


def _prune_pair_counts(counts: Dict[Tuple[str, str], int],
                       capacity: int) -> Dict[Tuple[str, str], int]:
    """Keep the *capacity* most frequent pairs (deterministic tie-break)."""
    if len(counts) <= capacity:
        return counts
    ordered = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    return dict(ordered[:capacity])


def _chunk_pair_counts_bounded(partition: DataFrame, col1: str, col2: str,
                               capacity: int) -> Dict[Tuple[str, str], int]:
    return _prune_pair_counts(_chunk_pair_counts(partition, col1, col2),
                              capacity)


def _combine_pair_counts_bounded(partials: List[Dict[Tuple[str, str], int]]
                                 ) -> Dict[Tuple[str, str], int]:
    # Combine functions receive only the partial list, so the bound is the
    # module-level streaming capacity rather than a parameter.
    return _prune_pair_counts(_combine_pair_counts(partials),
                              STREAMING_CATEGORY_CAPACITY)


def _chunk_reservoir(partition: DataFrame, columns: Tuple[str, ...],
                     capacity: int, seed: int) -> ReservoirSketch:
    return ReservoirSketch.from_frame(partition.select(list(columns)),
                                      capacity, seed=seed)


def _combine_reservoirs(partials: List[ReservoirSketch]) -> ReservoirSketch:
    return merge_all(partials)


def _finalize_reservoir(sketch: ReservoirSketch) -> DataFrame:
    return sketch.frame


def _chunk_nullity(partition: DataFrame, start: int, stop: int,
                   columns: Tuple[str, ...], n_rows_total: int,
                   n_bins: int) -> NullitySketch:
    return NullitySketch.from_mask(partition.select(list(columns)).missing_mask(),
                                   columns, start, n_rows_total, n_bins)


def _combine_nullity(partials: List[NullitySketch]) -> NullitySketch:
    return merge_all(partials)


def _chunk_duplicates(partition: DataFrame, capacity: int) -> DuplicateSketch:
    return DuplicateSketch.from_frame(partition, capacity)


def _combine_duplicates(partials: List[DuplicateSketch]) -> DuplicateSketch:
    return merge_all(partials)


def _finalize_duplicates(sketch: DuplicateSketch) -> Optional[int]:
    return sketch.duplicate_count()


# --------------------------------------------------------------------------- #
# The reduction planner.
#
# One declarative table maps every compute kind to its exact plan (in-memory
# sources — unbounded per-value state, results pinned by the equivalence
# suite) and its sketch plan (streaming sources — bounded state).  Sources
# select between them through SourceCapabilities.exact; nothing outside this
# module ever branches on the input flavour.
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReductionPlan:
    """One chunk/combine/finalize triple plus how to call it.

    ``adapt(context, args)`` turns the caller's kind-level arguments into
    the chunk function's positional tail (e.g. appending a capacity bound,
    or converting a target sample size into a per-partition fraction);
    ``indexed`` selects :meth:`PartitionedFrame.reduction_indexed`, whose
    chunk functions also receive their global row range.
    """

    chunk: Callable[..., Any]
    combine: Callable[[List[Any]], Any]
    finalize: Optional[Callable[[Any], Any]] = None
    indexed: bool = False
    adapt: Optional[Callable[["ComputeContext", Tuple[Any, ...]],
                             Tuple[Any, ...]]] = None


@dataclass(frozen=True)
class ReductionKind:
    """Exact and sketch plans of one compute kind.

    ``sketch=None`` means the exact plan is already bounded (pure mergeable
    partials like numeric summaries) and serves every source;
    ``exact_only=True`` marks kinds whose state is inherently O(rows) (the
    full missing mask) — requesting them on a streaming source raises.

    ``columns(context, kind_args)`` declares the column set this kind's
    chunk functions read, as a tuple of names — the projection-pushdown
    contract.  ``None`` (the default, and the return value of
    :func:`_requires_all_columns`) means the kind reads the whole row, so
    its partitions must materialize every column.  The declaration operates
    on the *kind-level* arguments (before ``adapt``), so both the exact and
    the sketch plan share it.
    """

    name: str
    exact: ReductionPlan
    sketch: Optional[ReductionPlan] = None
    exact_only: bool = False
    columns: Optional[Callable[["ComputeContext", Tuple[Any, ...]],
                               Optional[Tuple[str, ...]]]] = None

    def required_columns(self, context: "ComputeContext",
                         args: Tuple[Any, ...]) -> Optional[Tuple[str, ...]]:
        """Column names this reduction reads (None = every column)."""
        if self.columns is None:
            return None
        return self.columns(context, args)


# --------------------------------------------------------------------------- #
# Column-requirement declarations (the projection-pushdown contract).
# --------------------------------------------------------------------------- #
def _requires_first_arg_column(context: "ComputeContext",
                               args: Tuple[Any, ...]) -> Tuple[str, ...]:
    return (args[0],)


def _requires_column_tuple(context: "ComputeContext",
                           args: Tuple[Any, ...]) -> Tuple[str, ...]:
    return tuple(args[0])


def _requires_column_pair(context: "ComputeContext",
                          args: Tuple[Any, ...]) -> Tuple[str, ...]:
    return (args[0], args[1])


def _sample_exact_args(context: "ComputeContext",
                       args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    columns, size, seed = args
    total = max(context.known_n_rows, 1)
    return (columns, min(1.0, size / total), seed)


def _append_category_capacity(context: "ComputeContext",
                              args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return args + (STREAMING_CATEGORY_CAPACITY,)


def _append_duplicate_capacity(context: "ComputeContext",
                               args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return args + (DUPLICATE_SKETCH_CAPACITY,)


def _nullity_args(context: "ComputeContext",
                  args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    (n_bins,) = args
    return (tuple(context.column_names), context.known_n_rows, n_bins)


REDUCTION_KINDS: Dict[str, ReductionKind] = {
    "numeric_summary": ReductionKind(
        "numeric_summary",
        exact=ReductionPlan(_chunk_numeric_summary, _combine_numeric_summaries),
        columns=_requires_first_arg_column),
    "categorical_summary": ReductionKind(
        "categorical_summary",
        exact=ReductionPlan(_chunk_categorical_summary,
                            _combine_categorical_summaries),
        sketch=ReductionPlan(_chunk_categorical_summary_bounded,
                             _combine_categorical_summaries,
                             adapt=_append_category_capacity),
        columns=_requires_first_arg_column),
    "histogram": ReductionKind(
        "histogram",
        exact=ReductionPlan(_chunk_histogram, _combine_histograms),
        columns=_requires_first_arg_column),
    "pearson": ReductionKind(
        "pearson",
        exact=ReductionPlan(_chunk_pearson, _combine_pearson),
        columns=_requires_column_tuple),
    "missing_mask": ReductionKind(
        "missing_mask",
        exact=ReductionPlan(_chunk_missing_mask, _combine_missing_masks),
        exact_only=True),                 # reads the whole row: no projection
    "nullity": ReductionKind(
        "nullity",
        exact=ReductionPlan(_chunk_nullity, _combine_nullity, indexed=True,
                            adapt=_nullity_args)),  # spans every column
    # row_count only ever reduces on exact (in-memory) sources — streaming
    # sources answer it from the layout scan — where the planner keeps
    # full-width slices anyway, so it declares no projection.
    "row_count": ReductionKind(
        "row_count",
        exact=ReductionPlan(_chunk_row_count, _combine_counts)),
    "sample": ReductionKind(
        "sample",
        exact=ReductionPlan(_chunk_sample, _combine_samples,
                            adapt=_sample_exact_args),
        sketch=ReductionPlan(_chunk_reservoir, _combine_reservoirs,
                             finalize=_finalize_reservoir),
        columns=_requires_column_tuple),
    "pair_counts": ReductionKind(
        "pair_counts",
        exact=ReductionPlan(_chunk_pair_counts, _combine_pair_counts),
        sketch=ReductionPlan(_chunk_pair_counts_bounded,
                             _combine_pair_counts_bounded,
                             adapt=_append_category_capacity),
        columns=_requires_column_pair),
    "duplicates": ReductionKind(
        "duplicates",
        exact=ReductionPlan(_chunk_duplicates, _combine_duplicates,
                            finalize=_finalize_duplicates,
                            adapt=_append_duplicate_capacity)),
                                          # row hash spans every column
}


@dataclass(frozen=True)
class PendingReduction:
    """A reduction requested from a :class:`ComputeContext` but not yet
    bound to partition tasks.

    Builders (``numeric_summary``, ``histogram``, ...) return these in
    graph mode instead of a ready :class:`~repro.graph.delayed.Delayed`:
    deferring the binding to :meth:`ComputeContext.resolve` lets the
    projection planner see every reduction of a batch at once and merge
    overlapping column requirements into shared projected parse tasks —
    the binding decision needs the whole graph, not one request.
    ``required`` is the declared column set (None = every column).
    """

    kind: str
    args: Tuple[Any, ...]
    required: Optional[Tuple[str, ...]]

    def __repr__(self) -> str:
        columns = "*" if self.required is None else list(self.required)
        return f"PendingReduction(kind={self.kind!r}, columns={columns})"


class ComputeContext:
    """Execution context for one EDA task.

    The context owns the frame source, the partitioned frame, the engine
    and the timing bookkeeping.  Compute functions ask it for lazy (or, on
    tiny data, eager) intermediates and then call :meth:`resolve` once per
    pipeline stage so every requested value lands in the same optimized
    graph.
    """

    def __init__(self, frame: Union[DataFrame, FrameSource, Any], config: Config,
                 engine: Optional[Engine] = None):
        self.source: FrameSource = as_source(frame)
        self.exact_results = self.source.capabilities.exact
        self._frame: Optional[DataFrame] = \
            self.source.to_frame() if self.exact_results else None
        self.config = config
        self.timings: Dict[str, float] = {}
        self.reports: List[ExecutionReport] = []
        self._planned_source: Optional[FrameSource] = None
        self._projected_partitions: Dict[Optional[Tuple[str, ...]],
                                         PartitionedFrame] = {}
        self._used_projections: List[Optional[Tuple[str, ...]]] = []
        self.use_graph = self._decide_graph_mode()
        self.cache = self._decide_cache()
        #: Projection pushdown is active only when the user has not disabled
        #: it, the source's partition tasks accept a column subset, and the
        #: source actually pays per column to materialize (streaming
        #: parses).  In-memory slices are zero-copy views whichever columns
        #: they carry, so projecting them would buy nothing while
        #: fragmenting the cross-call cache (a full slice built by
        #: ``plot(df)`` could no longer serve ``plot_correlation(df)``).
        self.projection_enabled = bool(
            config.get("compute.projection") and
            getattr(self.source.capabilities, "projection", False) and
            not self.exact_results)
        #: Predicate pushdown: a filtered streaming source carries its
        #: compiled predicate into every partition task (rows are dropped
        #: inside the parse, before coercion feeds the sketches), and the
        #: zone-map planner may skip whole chunks before reading bytes.
        #: In-memory filtered inputs are materialized eagerly at the API
        #: layer, so an exact source never reaches this path with a
        #: predicate attached.
        self._predicate = self.source.predicate \
            if isinstance(self.source, FilteredSource) else None
        self.predicate_enabled = bool(
            self._predicate is not None and not self.exact_results)
        self._predicate_spec = self._predicate.spec() \
            if self.predicate_enabled else None
        self._rows_audit_done = False
        #: Planning-side projection/predicate counters: partition tasks
        #: built per kind, columns whose parse/slice was avoided altogether,
        #: chunks the zone maps dropped and rows the pushed-down filter
        #: removed from the chunks that did parse.
        self.parse_plan: Dict[str, int] = {
            "projected_parse_tasks": 0,
            "full_parse_tasks": 0,
            "columns_pruned": 0,
            "chunks_skipped": 0,
            "rows_filtered": 0,
        }
        #: Parsed-chunk disk sidecar: streaming sources whose partition
        #: tasks accept a sidecar route spill each parsed chunk to a binary
        #: sidecar and serve warm re-scans from it without decoding CSV.
        #: In-memory sources never parse, so they get no route.  The
        #: counters accumulate per-call deltas of the sidecar module's
        #: process-local totals (coordinator process only — process-pool
        #: workers keep their own counts, so these are a lower bound under
        #: the process scheduler).
        self.sidecar_route: Optional[SidecarRoute] = None
        if (config.get("cache.disk_enabled") and not self.exact_results
                and getattr(self.source.capabilities, "chunk_sidecar", False)):
            self.sidecar_route = SidecarRoute(
                directory=config.get("cache.disk_dir"),
                budget_bytes=int(config.get("cache.disk_bytes")))
        self.sidecar_counts: Dict[str, int] = {
            "sidecar_hits": 0,
            "sidecar_misses": 0,
            "bytes_decoded_avoided": 0,
        }
        #: Incremental-refresh counters accumulated across every resolve():
        #: parse chunks answered by their per-chunk-stamp cache keys,
        #: chunks that executed, and the file bytes those executions read.
        #: After ``refresh()`` of an appended source these show ~old chunks
        #: reused and ~new chunks executed (the delta-merge win).
        self.incremental_counts: Dict[str, int] = {
            "chunks_reused": 0,
            "chunks_new": 0,
            "bytes_reparsed": 0,
        }
        if engine is not None:
            self.engine = engine
        else:
            self.engine = get_engine(
                config.get("compute.engine"),
                **self._engine_kwargs(config.get("compute.engine")))

    # ------------------------------------------------------------------ #
    # Input access (source-mediated)
    # ------------------------------------------------------------------ #
    @property
    def is_streaming(self) -> bool:
        """True when the source streams from storage (sketch reductions)."""
        return not self.exact_results

    @property
    def frame(self) -> DataFrame:
        """The full in-memory frame.

        Streaming-capable compute paths never touch this.  For the few
        fine-grained tasks that genuinely need all rows at once (bivariate
        row alignment, missing-value drop comparisons), a streaming source
        is materialized here once — losing the bounded-memory guarantee for
        that call, which is documented on the corresponding ``plot`` kinds
        and announced with a :class:`UserWarning` carrying the estimated
        materialization size.
        """
        if self._frame is None:
            estimated = self.source.materialization_bytes()
            warnings.warn(
                f"this fine-grained task aligns rows across columns and "
                f"cannot stream: materializing the scanned input "
                f"(~{estimated / 1e6:.1f} MB estimated) — peak memory is no "
                f"longer bounded by memory.budget_bytes for this call",
                UserWarning, stacklevel=3)
            self._frame = self.source.to_frame()
        return self._frame

    @property
    def schema_frame(self) -> DataFrame:
        """A bounded frame for schema questions (dtypes, semantic types).

        The in-memory frame itself, or the scan's preview rows; semantic
        type detection samples a row prefix in both cases, so the two modes
        agree whenever the preview is representative.
        """
        return self.source.schema_preview()

    @property
    def known_n_rows(self) -> int:
        """Total row count, known from the source without materializing."""
        return self.source.n_rows

    @property
    def column_names(self) -> List[str]:
        """Column names of the input."""
        return self.source.columns

    @property
    def n_columns(self) -> int:
        """Number of columns of the input."""
        return len(self.column_names)

    def total_memory_bytes(self) -> int:
        """In-memory footprint of a frame, or on-disk size of a scan."""
        return self.source.footprint_bytes()

    def duplicate_rows(self, max_rows: int) -> Union[PendingReduction, Optional[int]]:
        """Duplicate-row count, or None when it would be unbounded.

        Exact sources below *max_rows* run the vectorised exact scan;
        larger ones skip (the python-level pass is not worth it, matching
        the seed behaviour).  Streaming sources count through a
        :class:`~repro.stats.sketches.DuplicateSketch` reduction — exact
        while the distinct rows fit the sketch capacity, None beyond.
        """
        if self.exact_results:
            if self.known_n_rows > max_rows:
                return None
            return self.frame.duplicate_row_count()
        return self._reduce("duplicates")

    def _decide_cache(self) -> Optional[TaskCache]:
        """The process-wide intermediate cache, or None when disabled.

        ``cache.enabled`` (default True) attaches the shared cross-call
        cache so repeated EDA calls on the same frame reuse partition
        slices, summaries and histograms.  The budget is process-global
        state: only a call that explicitly passes ``cache.max_bytes``
        (even the default value, to restore it) resizes the shared cache;
        default-config calls never shrink — and thereby evict — a cache
        another call configured.  A call that disables the cache detaches
        entirely and never resizes, even if it also passes a budget.
        """
        if not self.config.get("cache.enabled"):
            return None
        cache = get_global_cache()
        if "cache.max_bytes" in self.config.provided:
            cache.resize(self.config.get("cache.max_bytes"))
        return cache

    def _scheduler_options(self) -> Dict[str, Any]:
        """Backend-specific scheduler kwargs from the ``compute.remote.*``
        keys (empty for the in-process backends)."""
        if self.config.get("compute.scheduler") != "remote":
            return {}
        return {
            "workers": self.config.get("compute.remote.workers"),
            "bind": self.config.get("compute.remote.bind"),
            "heartbeat_s": self.config.get("compute.remote.heartbeat_s"),
            "timeout_s": self.config.get("compute.remote.timeout_s"),
            "authkey": self.config.get("compute.remote.authkey"),
        }

    def _engine_kwargs(self, engine_name: str) -> Dict[str, Any]:
        if engine_name == "lazy":
            return {
                "max_workers": self.config.get("compute.max_workers"),
                "enable_cse": self.config.get("compute.enable_cse"),
                "enable_fusion": self.config.get("compute.enable_fusion"),
                "cache": self.cache,
                "scheduler": self.config.get("compute.scheduler"),
                "scheduler_options": self._scheduler_options(),
            }
        if engine_name == "eager":
            return {"max_workers": self.config.get("compute.max_workers"),
                    "cache": self.cache,
                    "scheduler": self.config.get("compute.scheduler"),
                    "scheduler_options": self._scheduler_options()}
        if engine_name == "cluster-rpc":
            # The cluster-RPC model is defined by its per-task dispatch
            # latency on a synchronous scheduler; compute.scheduler does not
            # apply to it.
            return {"cache": self.cache}
        return {}

    def _decide_graph_mode(self) -> bool:
        if not self.exact_results:
            # A streaming source must never be materialized wholesale; the
            # graph (chunked) path is the only one with a bounded footprint.
            return True
        mode = self.config.get("compute.use_graph")
        if mode == "always":
            return True
        if mode == "never":
            return False
        return self.known_n_rows >= self.config.get("compute.small_data_rows")

    def _effective_workers(self) -> int:
        workers = self.config.get("compute.max_workers")
        if workers is None:
            workers = default_worker_count()
        return int(workers)

    # ------------------------------------------------------------------ #
    # Partitioning (the chunk-size precompute stage)
    # ------------------------------------------------------------------ #
    def _plan_source(self) -> FrameSource:
        """The source with its final partition granularity, planned once.

        In-memory sources honour ``compute.partition_rows``; streaming
        sources honour ``memory.chunk_rows`` / ``memory.budget_bytes`` and
        shrink further if the budget cannot hold one chunk per scheduler
        worker concurrently (only for settings the user explicitly
        overrides, so default-config calls never pay a second layout pass).
        """
        if self._planned_source is None:
            started = time.perf_counter()
            provided = self.config.provided
            if self.exact_results:
                # Pass the config granularity only when the user set it; a
                # source constructed with an explicit partition_rows must
                # not be silently overridden by the config default.
                planned = self.source.with_partitioning(
                    chunk_rows=self.config.get("compute.partition_rows")
                    if "compute.partition_rows" in provided else None)
            else:
                planned = self.source.with_partitioning(
                    chunk_rows=self.config.get("memory.chunk_rows")
                    if "memory.chunk_rows" in provided else None,
                    budget_bytes=self.config.get("memory.budget_bytes")
                    if "memory.budget_bytes" in provided else None,
                    concurrency=self._effective_workers())
            if (self._predicate is not None
                    and not self.config.get("compute.predicates")
                    and hasattr(planned, "without_pruning")):
                # compute.predicates=False disables only the zone-map chunk
                # skipping; the filter itself still runs inside every parse
                # task, so results are identical either way.
                planned = planned.without_pruning()
            self._planned_source = planned
            self.timings["precompute_chunk_sizes"] = time.perf_counter() - started
        return self._planned_source

    @property
    def partitioned(self) -> PartitionedFrame:
        """The full-width partitioned frame (every partition task
        materializes every column)."""
        return self.partitioned_for(None)

    def partitioned_for(self, projection: Optional[Tuple[str, ...]]
                        ) -> PartitionedFrame:
        """The partitioned frame projected onto *projection* (None = full).

        Memoized per column set, so every reduction bound to the same
        projection in this context shares the exact same partition task
        objects — one projected parse per ``(chunk, column set)``.
        Building a projection also records it for the planner's
        superset-reuse pass and updates the planning counters.
        """
        cached = self._projected_partitions.get(projection)
        if cached is not None:
            return cached
        planned = self._plan_source()
        built = PartitionedFrame.from_source(planned, columns=projection,
                                             predicate=self._predicate_spec,
                                             sidecar=self.sidecar_route)
        self._projected_partitions[projection] = built
        self._used_projections.append(projection)
        pruning = getattr(planned, "last_pruning", None)
        if pruning:
            # Counted per newly built partition set: each one re-plans the
            # chunk list, so each one independently avoids these reads.
            self.parse_plan["chunks_skipped"] += pruning.get("chunks_skipped", 0)
        if projection is None:
            self.parse_plan["full_parse_tasks"] += built.npartitions
        else:
            self.parse_plan["projected_parse_tasks"] += built.npartitions
            self.parse_plan["columns_pruned"] += \
                (self.n_columns - len(projection)) * built.npartitions
        return built

    def projection_stats(self) -> Dict[str, Any]:
        """Planning-side projection counters plus the enabled flag."""
        return {"enabled": self.projection_enabled, **self.parse_plan}

    def predicate_stats(self) -> Dict[str, Any]:
        """Predicate-pushdown counters: the pushed spec, chunks the zone
        maps skipped before any bytes were read, and rows the in-parse
        filter removed from the chunks that did parse."""
        return {
            "enabled": self.predicate_enabled,
            "predicate": self._predicate_spec,
            "chunks_skipped": self.parse_plan["chunks_skipped"],
            "rows_filtered": self.parse_plan["rows_filtered"],
        }

    def sidecar_stats(self) -> Dict[str, Any]:
        """Parsed-chunk sidecar counters for this call (plus enabled flag).

        Coordinator-process counts: chunk parses served from the binary
        sidecar, parses that decoded CSV (and stored a sidecar for next
        time), and the CSV bytes the hits avoided.  A lower bound under the
        process scheduler, where workers hit their sidecars in their own
        processes.
        """
        return {"enabled": self.sidecar_route is not None,
                **self.sidecar_counts}

    def incremental_stats(self) -> Dict[str, Any]:
        """Incremental-refresh counters for this call (plus enabled flag).

        Enabled whenever the source streams from storage with a cross-call
        cache attached — that combination gives every chunk a stable
        per-chunk-stamp cache key, which is what makes appended-file
        refreshes reuse the old chunks' sketch states.
        """
        return {"enabled": bool(not self.exact_results
                                and self.cache is not None),
                **self.incremental_counts}

    # ------------------------------------------------------------------ #
    # The planner dispatch
    # ------------------------------------------------------------------ #
    def _plan(self, kind: str) -> ReductionPlan:
        """Pick the exact or sketch plan of *kind* from the capabilities."""
        spec = REDUCTION_KINDS[kind]
        if self.exact_results:
            return spec.exact
        if spec.exact_only:
            raise EDAError(
                f"the {spec.name!r} reduction holds O(rows) state and is "
                f"not available on a streaming source; use its sketch "
                f"counterpart instead")
        return spec.sketch or spec.exact

    def _reduce(self, kind: str, args: Tuple[Any, ...] = ()) -> PendingReduction:
        """Request the lazy reduction of *kind* for this context's source.

        Returns a :class:`PendingReduction` carrying the kind's declared
        column requirement; :meth:`resolve` binds every pending reduction of
        a batch to (possibly projected) partition tasks at once, so
        overlapping column requirements end up sharing parse tasks.
        """
        self._plan(kind)        # validates kind/capabilities eagerly
        spec = REDUCTION_KINDS[kind]
        required = spec.required_columns(self, args) \
            if self.projection_enabled else None
        return PendingReduction(kind, args, required)

    def _bind_reduction(self, pending: PendingReduction,
                        projection: Optional[Tuple[str, ...]]) -> Delayed:
        """Bind one pending reduction to partition tasks of *projection*."""
        plan = self._plan(pending.kind)
        chunk_args = plan.adapt(self, pending.args) \
            if plan.adapt is not None else pending.args
        partitioned = self.partitioned_for(projection)
        if plan.indexed:
            return partitioned.reduction_indexed(
                plan.chunk, plan.combine, finalize=plan.finalize,
                chunk_args=chunk_args)
        return partitioned.reduction(
            plan.chunk, plan.combine, finalize=plan.finalize,
            chunk_args=chunk_args)

    def _plan_projections(self, pendings: List[PendingReduction]
                          ) -> List[Optional[Tuple[str, ...]]]:
        """Choose the partition projection for every reduction of a batch.

        Overlapping column requirements are merged into shared groups
        (union of the overlapping sets), so e.g. ``plot(df, "x")``'s
        summary, histograms and sample all consume one single-column parse
        per chunk, while a batch containing any whole-row reduction (the
        nullity sketch, the duplicate hash) collapses onto the full parse.
        Genuinely *disjoint* groups stay separate and each tokenizes the
        chunk bytes once — every shipped compute shape either carries a
        linking reduction that merges the batch or reuses an earlier
        stage's superset, but a custom batch of disjoint single-column
        requests over a narrow table can pay more byte-tokenization than
        one full parse (coercion work never exceeds it).  A group covering
        every column, a source without projection support, or
        ``compute.projection=False`` yields None (full-width tasks).
        """
        full = set(self.column_names)
        if not self.projection_enabled or len(full) <= 1:
            return [None] * len(pendings)
        requirement_sets: List[set] = []
        for pending in pendings:
            if pending.required is None:
                requirement_sets.append(set(full))
                continue
            needed = set(pending.required)
            if not needed or not needed <= full:
                # Unknown names: parse everything so the error surfaces in
                # the chunk function exactly as it did before projection.
                needed = set(full)
            requirement_sets.append(needed)
        groups: List[Tuple[set, List[int]]] = []
        for index, needed in enumerate(requirement_sets):
            touching = [group for group in groups if group[0] & needed]
            if touching:
                merged_set, members = touching[0]
                merged_set.update(needed)
                members.append(index)
                for other in touching[1:]:
                    merged_set.update(other[0])
                    members.extend(other[1])
                    groups.remove(other)
            else:
                groups.append((needed, [index]))
        projections: List[Optional[Tuple[str, ...]]] = [None] * len(pendings)
        for needed, members in groups:
            chosen = self._select_projection(needed, full)
            for index in members:
                projections[index] = chosen
        return projections

    def _select_projection(self, needed: set,
                           full: set) -> Optional[Tuple[str, ...]]:
        """The projection tuple serving *needed*, reusing earlier parses.

        An already-built projection covering *needed* is preferred over a
        fresh narrower parse — the narrowest such superset wins.  An exact
        match reuses the very same partition task objects; a strict
        superset reuses chunks the cache has (or is about to have), and
        with the cache disabled it re-executes tasks the earlier stage
        already paid for once — exactly the pre-projection cost, whereas a
        brand-new narrow projection would tokenize every chunk's bytes
        again on top of it (e.g. the overview's stage-2 histograms would
        otherwise fragment the stage-1 full parse into one parse set per
        column).  Projections are emitted in source column order, which
        keeps them canonical across stages and calls (stable cache keys).
        """
        if needed >= full:
            return None
        best: Any = _UNSET
        best_width = None
        for used in self._used_projections:
            used_set = full if used is None else set(used)
            if needed == used_set:
                return used
            if needed < used_set:
                width = len(used_set)
                if best_width is None or width < best_width:
                    best, best_width = used, width
        if best is not _UNSET:
            return best
        return tuple(name for name in self.column_names if name in needed)

    # ------------------------------------------------------------------ #
    # Intermediate builders (lazy in graph mode, eager otherwise)
    # ------------------------------------------------------------------ #
    def numeric_summary(self, column: str) -> Union[PendingReduction, NumericSummary]:
        """Mergeable numeric summary of one column."""
        if not self.use_graph:
            return NumericSummary.from_column(self.frame.column(column))
        return self._reduce("numeric_summary", (column,))

    def categorical_summary(self, column: str) -> Union[PendingReduction, CategoricalSummary]:
        """Mergeable categorical summary of one column.

        On streaming sources the per-chunk value-count table is bounded
        (:data:`STREAMING_CATEGORY_CAPACITY`) so cardinality cannot defeat
        the memory budget; counts stay exact below the bound.
        """
        if not self.use_graph:
            return CategoricalSummary.from_column(self.frame.column(column))
        return self._reduce("categorical_summary", (column,))

    def histogram(self, column: str, bins: int, low: float,
                  high: float) -> Union[PendingReduction, Histogram]:
        """Mergeable histogram of one column over a fixed range."""
        if not self.use_graph:
            values = self.frame.column(column).to_numpy(drop_missing=True)
            return compute_histogram(values.astype(np.float64), bins, (low, high))
        return self._reduce("histogram", (column, bins, float(low), float(high)))

    def pearson_partial(self, columns: Sequence[str]) -> Union[PendingReduction, PearsonPartial]:
        """Mergeable Pearson partial sums over the given numeric columns."""
        columns = tuple(columns)
        if not self.use_graph:
            return _chunk_pearson(self.frame, columns)
        return self._reduce("pearson", (columns,))

    def missing_mask(self) -> Union[PendingReduction, np.ndarray]:
        """Full boolean missing mask (rows x columns).

        The mask is O(rows x columns); a streaming source must use
        :meth:`nullity_sketch` instead, which holds only per-column and
        per-bin counts.
        """
        if not self.use_graph:
            return self.frame.missing_mask()
        return self._reduce("missing_mask")

    def nullity_sketch(self, n_bins: int) -> Union[PendingReduction, NullitySketch]:
        """Mergeable missing-value sketch over all columns.

        Carries everything ``plot_missing(df)`` renders — per-column missing
        counts, pairwise co-missing counts and the row-binned missing
        spectrum — in a few small arrays per chunk, for every source kind.
        """
        if not self.use_graph or self._predicate_spec is not None:
            # The nullity reduction is indexed (chunks place themselves by
            # their precomputed global row range), but a filtered partition
            # compacts rows, so those pre-filter positions would be wrong.
            # Fall back to the local path — for a streaming source this
            # materializes (with the documented UserWarning) and filters.
            frame = self.frame
            return NullitySketch.from_mask(
                frame.missing_mask(), tuple(self.column_names),
                0, len(frame), n_bins)
        return self._reduce("nullity", (n_bins,))

    def row_count(self) -> Union[PendingReduction, int]:
        """Total number of rows (post-filter when a predicate is pushed)."""
        if not self.exact_results:
            if self._predicate_spec is not None:
                # The layout scan counts pre-filter rows; only the filtered
                # parses know how many survive, so count through them.
                return self._reduce("row_count")
            return self.known_n_rows      # precomputed by the layout scan
        if not self.use_graph:
            return len(self.frame)
        return self._reduce("row_count")

    def sample(self, columns: Sequence[str], size: int,
               seed: int = 0) -> Union[PendingReduction, DataFrame]:
        """A uniform row sample of the given columns (about *size* rows).

        Streaming sources sample through a mergeable reservoir sketch, so
        the retained rows never exceed *size* no matter the data length —
        and while the whole input fits the capacity the "sample" is exact,
        which is what pins the streaming results to the in-memory ones on
        small data.
        """
        columns = tuple(columns)
        if not self.use_graph:
            return self.frame.select(list(columns)).sample(size, seed=seed)
        return self._reduce("sample", (columns, int(size), seed))

    def pair_counts(self, col1: str, col2: str) -> Union[PendingReduction, Dict[Tuple[str, str], int]]:
        """Joint value counts of two categorical columns.

        On streaming sources the pair table is pruned to the
        :data:`STREAMING_CATEGORY_CAPACITY` most frequent pairs at every
        chunk and merge step, so two high-cardinality columns cannot defeat
        the memory budget; exact below the bound (the downstream charts only
        consume the top few dozen pairs).
        """
        if not self.use_graph:
            return _chunk_pair_counts(self.frame, col1, col2)
        return self._reduce("pair_counts", (col1, col2))

    # ------------------------------------------------------------------ #
    # Resolution (one merged graph per stage)
    # ------------------------------------------------------------------ #
    def resolve(self, requested: Dict[str, Any], stage: str = "graph") -> Dict[str, Any]:
        """Compute all lazy values in *requested* against one shared graph.

        Pending reductions are first bound to partition tasks: the
        projection planner sees the whole batch at once, merges overlapping
        column requirements and emits one shared (possibly projected) parse
        task per ``(chunk, column set)`` — this is the point where
        ``plot(df, "x")`` over a wide scan becomes a single-column parse.
        Plain values pass through untouched, so compute functions can
        freely mix lazy and already-known values.  Timing and execution
        reports are recorded per stage for the benchmarks.
        """
        started = time.perf_counter()
        resolved = dict(requested)
        pruned_before = self.parse_plan["columns_pruned"]
        chunks_before = self.parse_plan["chunks_skipped"]
        rows_before = self.parse_plan["rows_filtered"]
        pending_keys = [key for key, value in requested.items()
                        if isinstance(value, PendingReduction)]
        audit_key: Optional[str] = None
        planned_rows = 0
        if pending_keys:
            projections = self._plan_projections(
                [requested[key] for key in pending_keys])
            for key, projection in zip(pending_keys, projections):
                resolved[key] = self._bind_reduction(requested[key], projection)
            if self._predicate_spec is not None and not self._rows_audit_done:
                # One hidden row-count audit per context measures how many
                # rows the pushed-down filter removed.  It rides along the
                # first batch's first projection, so CSE folds it onto
                # parse tasks the batch builds anyway — no extra reads.
                self._rows_audit_done = True
                audit_key = "__predicate_rows_audit__"
                while audit_key in resolved:
                    audit_key += "_"
                resolved[audit_key] = self._bind_reduction(
                    PendingReduction("row_count", (), None), projections[0])
                planned_rows = sum(
                    stop - start for start, stop
                    in self.partitioned_for(projections[0]).boundaries)
        keys = [key for key, value in resolved.items() if isinstance(value, Delayed)]
        if keys:
            sidecar_before = _sidecar_snapshot()
            values, report = self.engine.compute_with_report(
                [resolved[key] for key in keys])
            for key, value in zip(keys, values):
                resolved[key] = value
            if audit_key is not None:
                kept = resolved.pop(audit_key)
                self.parse_plan["rows_filtered"] += \
                    max(0, planned_rows - int(kept))
            report.columns_pruned = \
                self.parse_plan["columns_pruned"] - pruned_before
            report.chunks_skipped = \
                self.parse_plan["chunks_skipped"] - chunks_before
            report.rows_filtered = \
                self.parse_plan["rows_filtered"] - rows_before
            sidecar_after = _sidecar_snapshot()
            report.sidecar_hits = \
                sidecar_after["hits"] - sidecar_before["hits"]
            report.sidecar_misses = \
                sidecar_after["misses"] - sidecar_before["misses"]
            report.bytes_decoded_avoided = \
                sidecar_after["bytes_decoded_avoided"] - \
                sidecar_before["bytes_decoded_avoided"]
            self.sidecar_counts["sidecar_hits"] += report.sidecar_hits
            self.sidecar_counts["sidecar_misses"] += report.sidecar_misses
            self.sidecar_counts["bytes_decoded_avoided"] += \
                report.bytes_decoded_avoided
            self.incremental_counts["chunks_reused"] += report.chunks_reused
            self.incremental_counts["chunks_new"] += report.chunks_new
            self.incremental_counts["bytes_reparsed"] += report.bytes_reparsed
            last_run = getattr(getattr(self.engine, "scheduler", None),
                               "last_run", None)
            if last_run is not None:
                last_run.chunks_skipped += report.chunks_skipped
                last_run.rows_filtered += report.rows_filtered
                last_run.sidecar_hits += report.sidecar_hits
                last_run.sidecar_misses += report.sidecar_misses
                last_run.bytes_decoded_avoided += report.bytes_decoded_avoided
            self.reports.append(report)
        elapsed = time.perf_counter() - started
        self.timings[stage] = self.timings.get(stage, 0.0) + elapsed
        return resolved

    def record_local_stage(self, seconds: float) -> None:
        """Record time spent in the local ("Pandas computation") stage."""
        self.timings["local"] = self.timings.get("local", 0.0) + seconds

    def finish(self, intermediates: "Intermediates") -> "Intermediates":
        """Attach this context's timings and execution reports to a result.

        Every compute function calls this last, so callers (and the
        interactive-session benchmark) can read per-stage timings and the
        engine's :class:`~repro.graph.engines.ExecutionReport` list —
        including cache hits — from ``intermediates.meta``.
        ``meta["projection"]`` carries the projection planner's counters
        (partition tasks built per kind, columns pruned), which is how the
        benchmarks assert that a single-column task parsed a single column.
        """
        intermediates.timings = dict(self.timings)
        intermediates.meta["execution_reports"] = list(self.reports)
        intermediates.meta["projection"] = self.projection_stats()
        intermediates.meta["predicate"] = self.predicate_stats()
        intermediates.meta["sidecar"] = self.sidecar_stats()
        intermediates.meta["incremental"] = self.incremental_stats()
        return intermediates

    def column(self, name: str) -> Column:
        """A column for schema/semantic-type inspection (validates the name).

        For an in-memory source this is the full column; for a streaming
        source it is the preview's column — compute paths must go through
        the sketch reductions for actual data, so this accessor never
        parses the file.
        """
        return self.source.schema_preview().column(name)
