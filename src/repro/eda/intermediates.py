"""The Intermediates container produced by the Compute module.

``Intermediates`` holds every computed result an EDA task needs to render its
visualizations — and nothing about how to draw them.  Exposing this object to
users (Section 4.2, second benefit of the Compute/Render split) lets them
re-plot the same numbers with the plotting library of their choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.eda.insights import Insight


@dataclass
class Intermediates:
    """Computed results of one EDA task.

    Attributes
    ----------
    task:
        Which task produced this (e.g. ``"univariate"``, ``"correlation"``).
    columns:
        The columns the task was about (empty for overview tasks).
    items:
        Mapping from visualization name (e.g. ``"histogram"``) to its data.
    stats:
        The task-level statistics table (shown on the Stats tab).
    insights:
        Insights discovered while computing (Section 4.2.2).
    timings:
        Wall-clock seconds per pipeline stage, for the benchmarks.
    meta:
        Anything else the Render module needs (semantic types, row counts).
    """

    task: str
    columns: List[str] = field(default_factory=list)
    items: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)
    insights: List[Insight] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __contains__(self, name: object) -> bool:
        return name in self.items

    def __getitem__(self, name: str) -> Any:
        return self.items[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Item lookup with a default, mirroring ``dict.get``."""
        return self.items.get(name, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self.items)

    def visualization_names(self) -> List[str]:
        """Names of the visualizations whose data is present."""
        return list(self.items.keys())

    def insights_for(self, item: str) -> List[Insight]:
        """Insights attached to one visualization."""
        return [insight for insight in self.insights if insight.item == item]

    def add_insights(self, insights: List[Insight]) -> None:
        """Append newly discovered insights."""
        self.insights.extend(insights)

    def summary(self) -> Dict[str, Any]:
        """Small dictionary used by ``__repr__`` and logging."""
        return {
            "task": self.task,
            "columns": self.columns,
            "visualizations": self.visualization_names(),
            "insights": len(self.insights),
        }

    def __repr__(self) -> str:
        return (f"Intermediates(task={self.task!r}, columns={self.columns}, "
                f"items={self.visualization_names()}, insights={len(self.insights)})")
