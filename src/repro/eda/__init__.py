"""Task-centric EDA layer: the paper's primary contribution.

The public entry points are the three task-centric functions of Figure 2:

* :func:`~repro.eda.api.plot` — overview, univariate and bivariate analysis.
* :func:`~repro.eda.api.plot_correlation` — correlation analysis.
* :func:`~repro.eda.api.plot_missing` — missing-value analysis.

Each call flows through the back-end of Figure 3: the Config Manager builds
a validated :class:`~repro.eda.config.Config`, the Compute module produces
:class:`~repro.eda.intermediates.Intermediates` via the lazy task graph, and
the Render module (:mod:`repro.render`) turns the intermediates into a tabbed
HTML container with insight badges and how-to guides.
"""

from repro.eda.config import Config
from repro.eda.dtypes import SemanticType, detect_semantic_type
from repro.eda.intermediates import Intermediates
from repro.eda.insights import Insight
from repro.eda.api import plot, plot_correlation, plot_missing

__all__ = [
    "Config",
    "Insight",
    "Intermediates",
    "SemanticType",
    "detect_semantic_type",
    "plot",
    "plot_correlation",
    "plot_missing",
]
