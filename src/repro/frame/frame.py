"""The DataFrame type: an ordered collection of equal-length columns."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ColumnNotFoundError, FrameError, LengthMismatchError
from repro.frame.column import Column
from repro.frame.dtypes import DType, unify_dictionaries


class DataFrame:
    """A small columnar DataFrame.

    A DataFrame is an ordered mapping from column name to
    :class:`~repro.frame.column.Column`, all of the same length.  It supports
    the subset of operations the EDA layer needs: column selection, boolean
    filtering, row slicing (for partitioning), per-column summaries, missing
    value handling, sampling and row-wise concatenation.

    Construction accepts either a mapping from name to values (lists, numpy
    arrays or Columns) or a list of Columns.
    """

    def __init__(self, data: Union[Mapping[str, Any], Sequence[Column], None] = None):
        self._columns: Dict[str, Column] = {}
        self._length = 0
        self._fingerprint: Optional[str] = None
        if data is None:
            return
        if isinstance(data, Mapping):
            items: Iterable[Tuple[str, Any]] = data.items()
        else:
            items = ((column.name, column) for column in data)
        for name, values in items:
            column = values if isinstance(values, Column) else Column(str(name), values)
            if column.name != str(name):
                column = column.rename(str(name))
            self._add_column(column)

    def _add_column(self, column: Column) -> None:
        if self._columns and len(column) != self._length:
            raise LengthMismatchError(
                f"column {column.name!r} has length {len(column)}, "
                f"expected {self._length}")
        if not self._columns:
            self._length = len(column)
        if column.name in self._columns:
            raise FrameError(f"duplicate column name {column.name!r}")
        self._columns[column.name] = column
        self._fingerprint = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> List[str]:
        """Column names in insertion order."""
        return list(self._columns.keys())

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_columns)``."""
        return (self._length, len(self._columns))

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._length

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def dtypes(self) -> Dict[str, DType]:
        """Mapping from column name to storage dtype."""
        return {name: column.dtype for name, column in self._columns.items()}

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __repr__(self) -> str:
        return f"DataFrame(rows={self._length}, columns={self.columns})"

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        if self.columns != other.columns or len(self) != len(other):
            return False
        return all(self._columns[name] == other._columns[name] for name in self.columns)

    def __hash__(self) -> int:
        raise TypeError("DataFrame objects are unhashable")

    def fingerprint(self) -> str:
        """Structural content fingerprint used by the intermediate cache.

        Combines the frame's shape with every column's fingerprint (name,
        dtype, sampled content hash — see :mod:`repro.frame.fingerprint`).
        The value is cached; any frame-building operation returns a new
        DataFrame with a fresh fingerprint, so two frames with equal content
        share a fingerprint while any visible mutation changes it.  After
        mutating a column's numpy buffers in place, call
        :meth:`invalidate_fingerprint` to bump it.
        """
        if self._fingerprint is None:
            from repro.frame.fingerprint import fingerprint_frame
            self._fingerprint = fingerprint_frame(self)
        return self._fingerprint

    def invalidate_fingerprint(self) -> None:
        """Drop cached fingerprints after an in-place buffer mutation."""
        self._fingerprint = None
        for column in self._columns.values():
            column.invalidate_fingerprint()

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def __getitem__(self, item: Union[str, Sequence[str], np.ndarray, slice]) -> Any:
        if isinstance(item, str):
            return self.column(item)
        if isinstance(item, slice):
            return self.slice(item.start or 0, item.stop if item.stop is not None else len(self))
        if isinstance(item, np.ndarray) and item.dtype == np.bool_:
            return self.filter(item)
        if isinstance(item, (list, tuple)):
            return self.select(list(item))
        raise FrameError(f"unsupported indexer: {item!r}")

    def __getattr__(self, name: str) -> Column:
        # Attribute access falls back to column lookup (``df.price``), so
        # ``df[df.price > 0]`` reads naturally; only called when normal
        # attribute resolution fails.  Bypass during unpickling / partial
        # construction, when _columns itself is not set yet.
        if not name.startswith("_"):
            columns = self.__dict__.get("_columns")
            if columns is not None and name in columns:
                return columns[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def column(self, name: str) -> Column:
        """Return a single column by name (raises ColumnNotFoundError)."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.columns) from None

    def select(self, names: Sequence[str]) -> "DataFrame":
        """Return a new DataFrame containing only the requested columns."""
        return DataFrame([self.column(name) for name in names])

    def drop(self, names: Union[str, Sequence[str]]) -> "DataFrame":
        """Return a new DataFrame without the named columns."""
        dropped = {names} if isinstance(names, str) else set(names)
        missing = dropped - set(self.columns)
        if missing:
            raise ColumnNotFoundError(sorted(missing)[0], self.columns)
        return DataFrame([column for name, column in self._columns.items()
                          if name not in dropped])

    def with_column(self, column: Column) -> "DataFrame":
        """Return a new DataFrame with *column* appended or replaced."""
        columns = []
        replaced = False
        for name, existing in self._columns.items():
            if name == column.name:
                columns.append(column)
                replaced = True
            else:
                columns.append(existing)
        if not replaced:
            columns.append(column)
        return DataFrame(columns)

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        """Return a new DataFrame with columns renamed via *mapping*."""
        columns = []
        for name, column in self._columns.items():
            columns.append(column.rename(mapping.get(name, name)))
        return DataFrame(columns)

    # ------------------------------------------------------------------ #
    # Row operations
    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: int) -> "DataFrame":
        """Return rows in ``[start, stop)`` as a new DataFrame.

        The result's columns are zero-copy views into this frame's buffers
        (see :meth:`~repro.frame.column.Column.slice_view`), which is what
        keeps in-memory partitioning allocation-free.
        """
        return DataFrame([column.slice_view(start, stop)
                          for column in self._columns.values()])

    def head(self, n: int = 5) -> "DataFrame":
        """Return the first *n* rows."""
        return self.slice(0, min(n, len(self)))

    def tail(self, n: int = 5) -> "DataFrame":
        """Return the last *n* rows."""
        return self.slice(max(0, len(self) - n), len(self))

    def take(self, indices: Sequence[int]) -> "DataFrame":
        """Return the rows selected by integer positions."""
        return DataFrame([column.take(indices) for column in self._columns.values()])

    def filter(self, predicate: np.ndarray) -> "DataFrame":
        """Return the rows where the boolean *predicate* array is True."""
        keep = np.asarray(predicate, dtype=np.bool_)
        if keep.shape[0] != len(self):
            raise FrameError("predicate length does not match frame length")
        return DataFrame([column.filter(keep) for column in self._columns.values()])

    def sample(self, n: int, seed: Optional[int] = None) -> "DataFrame":
        """Return *n* rows sampled uniformly without replacement."""
        if n >= len(self):
            return self.copy()
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(self), size=n, replace=False)
        indices.sort()
        return self.take(indices)

    def dropna(self, subset: Optional[Sequence[str]] = None) -> "DataFrame":
        """Drop rows containing a missing value in any of the *subset* columns.

        When *subset* is None all columns are considered.
        """
        names = list(subset) if subset is not None else self.columns
        if not names:
            return self.copy()
        keep = np.ones(len(self), dtype=np.bool_)
        for name in names:
            keep &= self.column(name).notna()
        return self.filter(keep)

    def copy(self) -> "DataFrame":
        """Return a deep copy of the DataFrame."""
        return DataFrame([column.copy() for column in self._columns.values()])

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, List[Any]]:
        """Return ``{column name: list of python scalars}`` (None = missing)."""
        return {name: column.to_list() for name, column in self._columns.items()}

    def to_rows(self) -> List[Dict[str, Any]]:
        """Return the DataFrame as a list of per-row dictionaries."""
        lists = self.to_dict()
        return [{name: lists[name][index] for name in self.columns}
                for index in range(len(self))]

    def row(self, index: int) -> Dict[str, Any]:
        """Return a single row as a dictionary."""
        return {name: column[index] for name, column in self._columns.items()}

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def missing_counts(self) -> Dict[str, int]:
        """Missing-value count per column."""
        return {name: column.missing_count() for name, column in self._columns.items()}

    def missing_mask(self) -> np.ndarray:
        """2-D boolean array of shape ``(n_rows, n_columns)``; True = missing."""
        if not self._columns:
            return np.zeros((0, 0), dtype=np.bool_)
        return np.column_stack([column.isna() for column in self._columns.values()])

    def duplicate_row_count(self) -> int:
        """Number of rows that are exact duplicates of an earlier row.

        Rows are compared by value with missing entries treated as equal to
        each other.  The comparison works on per-column integer codes so the
        scan is vectorised.
        """
        if len(self) == 0 or not self._columns:
            return 0
        codes = []
        for column in self._columns.values():
            if column.is_dictionary:
                # Dictionary codes already give equal values equal codes.
                inverse = column.codes.astype(np.int64)
            else:
                if column.dtype is DType.STRING:
                    values = column.data.astype(str)
                else:
                    values = column.data
                _, inverse = np.unique(values, return_inverse=True)
                inverse = inverse.astype(np.int64)
            inverse[column.mask] = -1
            codes.append(inverse)
        stacked = np.column_stack(codes)
        unique_rows = np.unique(stacked, axis=0).shape[0]
        return int(len(self) - unique_rows)

    def memory_bytes(self) -> int:
        """Approximate memory footprint of all columns."""
        return sum(column.memory_bytes() for column in self._columns.values())

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Per-column summary statistics keyed by column name."""
        return {name: column.describe() for name, column in self._columns.items()}

    def numeric_columns(self) -> List[str]:
        """Names of the columns with numeric storage dtypes."""
        return [name for name, column in self._columns.items() if column.dtype.is_numeric]

    def string_columns(self) -> List[str]:
        """Names of the columns stored as strings."""
        return [name for name, column in self._columns.items()
                if column.dtype is DType.STRING]


def concat_rows(frames: Sequence[DataFrame]) -> DataFrame:
    """Concatenate DataFrames row-wise.

    All inputs must have identical column names (in the same order) and
    matching dtypes per column.
    """
    frames = [frame for frame in frames if frame.n_columns > 0 or len(frame) > 0]
    if not frames:
        return DataFrame()
    first = frames[0]
    for frame in frames[1:]:
        if frame.columns != first.columns:
            raise FrameError("cannot concatenate frames with different columns")
    columns = []
    for name in first.columns:
        parts = [frame.column(name) for frame in frames]
        dtype = _common_dtype([part.dtype for part in parts])
        parts = [part if part.dtype is dtype else part.astype(dtype) for part in parts]
        mask = np.concatenate([part.mask for part in parts])
        if dtype is DType.STRING and all(part.is_dictionary for part in parts):
            # Unify the per-chunk dictionaries instead of materializing the
            # object arrays: the result is the encoding of the concatenation.
            codes, dictionary = unify_dictionaries(
                [(part.codes, part.dictionary) for part in parts])
            columns.append(Column.from_codes(name, codes, dictionary, mask))
            continue
        data = np.concatenate([part.data for part in parts])
        column = Column(name, data, dtype, mask)
        if dtype is DType.STRING:
            column = column.dictionary_encode()
        columns.append(column)
    return DataFrame(columns)


def _common_dtype(dtypes: Sequence[DType]) -> DType:
    """Resolve a common storage dtype for concatenation."""
    unique = set(dtypes)
    if len(unique) == 1:
        return dtypes[0]
    if unique <= {DType.INT, DType.FLOAT, DType.BOOL}:
        return DType.FLOAT
    return DType.STRING


