"""Per-chunk zone maps: the statistics behind predicate chunk skipping.

A *zone map* records, for every chunk of a chunked CSV scan and every
column, the minimum, maximum, null count and a (bounded) distinct-value
estimate of that chunk.  Given a pushdown predicate
(:mod:`repro.frame.predicate`), the planner tests each conjunct against the
chunk's min/max range and drops chunks that cannot possibly contain a
matching row — before a single data byte of the chunk is read.

Pruning is deliberately one-sided: a kept chunk may still contain zero
matching rows (the residual per-chunk filter handles that), but a skipped
chunk must provably contain none.  The rules encode the same SQL-like
missing semantics as the predicate evaluator — a missing value never
matches — so a chunk whose values are all missing for a filtered column is
always skippable.

Zone maps are persisted as a JSON *sidecar* next to the CSV
(``<file>.zones.json``) holding one entry per chunk *byte range*, each
validated by that chunk's ``(head_crc, tail_crc)`` content stamp
(:func:`repro.frame.io.compute_chunk_stamps`).  Appending to the CSV leaves
the old chunks' byte ranges and stamps untouched, so their entries answer
verbatim after a refresh and only the appended chunks parse to build their
statistics; a mutated chunk fails its stamp probe and rebuilds
individually.  Different chunk granularities coexist naturally — their byte
ranges differ, so their entries occupy distinct keys.  Building a zone map
costs one parse of the chunks that lack entries, so it happens lazily on
the first *filtered* plan over a scan and is amortized across every later
filtered call in any process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame.dtypes import parse_datetime
from repro.frame.sidecar import atomic_replace

#: Distinct-value estimates saturate here; beyond this a chunk is simply
#: "high cardinality" and the exact count stops being useful for planning.
DISTINCT_CAP = 256

#: Sidecar schema version; bump on incompatible format changes.  Version 2
#: replaced the whole-file-stamp grids with per-chunk byte-range entries so
#: appends keep the old chunks' statistics warm.
SIDECAR_VERSION = 2

#: Per-column stat vectors, one entry per chunk.
ColumnStats = Dict[str, List[Any]]


@dataclass
class ZoneMap:
    """Chunk statistics for one file at one chunk granularity."""

    stamp: Tuple[int, int]          # (st_size, st_mtime_ns) of the CSV
    chunk_rows: int                 # granularity the chunks were cut at
    n_chunks: int
    #: column name -> {"min": [...], "max": [...], "nulls": [...],
    #: "distinct": [...], "values": [...]}, each list indexed by chunk.
    #: ``values`` holds the chunk's exact distinct-value list for
    #: dictionary-encoded string columns (None when unbounded/unknown).
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def chunk_may_match(self, index: int,
                        spec: Sequence[Tuple[str, str, Any]]) -> bool:
        """Whether chunk *index* could contain a row matching *spec*.

        Conservative in every uncertain case (unknown column, incomparable
        types): only a provable miss returns False.
        """
        for column, op, value in spec:
            stats = self.columns.get(column)
            if stats is None:
                continue
            vmin = stats["min"][index]
            vmax = stats["max"][index]
            if vmin is None:
                # Every value in this chunk is missing; missing never
                # matches any comparison, so no conjunct can hold.
                return False
            values_lists = stats.get("values")
            chunk_values = values_lists[index] if values_lists else None
            if chunk_values is not None and isinstance(value, str) and \
                    op == "==" and value not in chunk_values:
                # Exact distinct set (dictionary-encoded string column):
                # an absent literal provably matches no row in the chunk.
                return False
            if isinstance(vmin, np.datetime64) and \
                    not isinstance(value, np.datetime64):
                # Datetime literals travel through specs as ISO strings
                # (picklable, tokenizable); numpy refuses to compare
                # datetime64 against str, which would silently land in the
                # TypeError no-prune path below — revive the literal so
                # time-window filters actually skip chunks.
                revived = parse_datetime(value)
                if revived is None:
                    continue    # unparseable literal: cannot prune on it
                value = revived
            try:
                if not _range_may_match(vmin, vmax, op, value):
                    return False
            except TypeError:
                continue    # incomparable literal: cannot prune on it
        return True

    def keep_flags(self, spec: Sequence[Tuple[str, str, Any]]) -> List[bool]:
        """Per-chunk keep/skip decisions for *spec*."""
        return [self.chunk_may_match(index, spec)
                for index in range(self.n_chunks)]


def _range_may_match(vmin: Any, vmax: Any, op: str, value: Any) -> bool:
    """Whether any point in [vmin, vmax] can satisfy ``point <op> value``."""
    if op == ">":
        return vmax > value
    if op == ">=":
        return vmax >= value
    if op == "<":
        return vmin < value
    if op == "<=":
        return vmin <= value
    if op == "==":
        return vmin <= value <= vmax
    if op == "!=":
        return not (vmin == vmax == value)
    return True     # unknown operator: never prune


def _scalar(value: Any) -> Any:
    """Canonical scalar form of a chunk statistic.

    Numpy numerics become plain Python (JSON- and pickle-friendly);
    datetimes stay ``numpy.datetime64`` — normalized to second precision —
    because the comparison rules need a real datetime, and the JSON
    boundary tag-encodes them separately (:func:`_encode_stat`).
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.datetime64):
        return value.astype("datetime64[s]")
    return value


def _encode_stat(value: Any) -> Any:
    """JSON-safe form of one min/max statistic.

    ``numpy.datetime64`` is not JSON-serializable — an untagged save used
    to crash ``json.dump`` with a ``TypeError`` for any CSV holding a
    datetime column.  Datetimes are written as a tagged pair
    ``["dt", "2021-01-01T00:00:00"]``; the tag is unambiguous because
    statistics scalars are never lists.
    """
    if isinstance(value, np.datetime64):
        if np.isnat(value):
            return None
        return ["dt", str(value.astype("datetime64[s]"))]
    return value


def _decode_stat(value: Any) -> Any:
    """Revive a tagged min/max statistic from its JSON form."""
    if isinstance(value, list) and len(value) == 2 and value[0] == "dt":
        return np.datetime64(value[1], "s")
    return value


def chunk_column_stats(frame: Any) -> Dict[str, Tuple[Any, ...]]:
    """``(min, max, nulls, distinct[, values])`` per column of one chunk.

    ``min``/``max`` are None when the chunk has no present values for the
    column; ``distinct`` saturates at :data:`DISTINCT_CAP`.  For
    dictionary-encoded string columns whose distinct count fits the cap,
    a fifth element lists the exact distinct values (sorted) — the
    membership set behind string-equality chunk skipping; it is None
    whenever the exact set is unknown or too large.
    """
    stats: Dict[str, Tuple[Any, ...]] = {}
    for name in frame.columns:
        column = frame.column(name)
        present = column.notna()
        nulls = int(len(column) - present.sum())
        if nulls == len(column):
            stats[name] = (None, None, nulls, 0, None)
            continue
        if getattr(column, "is_dictionary", False):
            used = np.unique(column.codes[present])
            dictionary = column.dictionary
            distinct = int(used.size)
            values_set = [str(dictionary[code]) for code in used] \
                if distinct <= DISTINCT_CAP else None
            stats[name] = (str(dictionary[used[0]]),
                           str(dictionary[used[-1]]),
                           nulls, min(distinct, DISTINCT_CAP), values_set)
            continue
        values = column.to_numpy()[present]
        try:
            distinct = min(int(np.unique(values).size), DISTINCT_CAP)
        except TypeError:       # mixed unhashable/unsortable objects
            distinct = DISTINCT_CAP
        stats[name] = (_scalar(values.min()), _scalar(values.max()),
                       nulls, distinct, None)
    return stats


def build_zone_map(chunks: Iterable[Any], stamp: Tuple[int, int],
                   chunk_rows: int) -> ZoneMap:
    """Build a :class:`ZoneMap` from an iterable of parsed chunk frames."""
    return zone_map_from_stats([chunk_column_stats(frame) for frame in chunks],
                               stamp, chunk_rows)


def zone_map_from_stats(stats_list: Sequence[Dict[str, Tuple[Any, ...]]],
                        stamp: Tuple[int, int],
                        chunk_rows: int) -> ZoneMap:
    """Assemble a :class:`ZoneMap` from per-chunk statistics dictionaries.

    *stats_list* holds one :func:`chunk_column_stats`-shaped mapping per
    chunk, in chunk order — what the incremental build collects from a mix
    of sidecar hits and fresh parses.  Entries may be 4-tuples (pre-distinct
    -set sidecars) or 5-tuples; a missing value set just means no membership
    pruning for that chunk.  Only columns present in *every* chunk's
    statistics enter the map: a column with gaps cannot be safely indexed
    per chunk, and dropping it merely disables pruning on it.
    """
    columns: Dict[str, ColumnStats] = {}
    shared: Optional[set] = None
    for per_column in stats_list:
        names = set(per_column)
        shared = names if shared is None else (shared & names)
    for per_column in stats_list:
        for name in (shared or ()):
            vmin, vmax, nulls, distinct = per_column[name][:4]
            values = per_column[name][4] if len(per_column[name]) > 4 else None
            entry = columns.setdefault(
                name, {"min": [], "max": [], "nulls": [], "distinct": [],
                       "values": []})
            entry["min"].append(vmin)
            entry["max"].append(vmax)
            entry["nulls"].append(nulls)
            entry["distinct"].append(distinct)
            entry["values"].append(values)
    return ZoneMap(stamp=(int(stamp[0]), int(stamp[1])),
                   chunk_rows=int(chunk_rows), n_chunks=len(stats_list),
                   columns=columns)


# --------------------------------------------------------------------------- #
# Sidecar persistence.
# --------------------------------------------------------------------------- #
def sidecar_path(csv_path: str) -> str:
    """Where the zone-map sidecar for *csv_path* lives."""
    return csv_path + ".zones.json"


def chunk_key(byte_start: int, byte_stop: int) -> str:
    """The sidecar key of one chunk byte range."""
    return f"{int(byte_start)}-{int(byte_stop)}"


def encode_zone_entry(stats: Dict[str, Tuple[Any, ...]],
                      stamp: Tuple[int, int]) -> Dict[str, Any]:
    """JSON form of one chunk's statistics, guarded by its content stamp.

    The distinct-value set, when present, is written as a fifth element —
    a plain JSON list of strings, unambiguous next to the tagged-pair
    datetime encoding because those always have exactly two elements with
    a ``"dt"`` head.
    """
    encoded: Dict[str, List[Any]] = {}
    for name, packed in stats.items():
        vmin, vmax, nulls, distinct = packed[:4]
        entry = [_encode_stat(vmin), _encode_stat(vmax),
                 int(nulls), int(distinct)]
        values = packed[4] if len(packed) > 4 else None
        if values is not None:
            entry.append([str(value) for value in values])
        encoded[name] = entry
    return {"stamp": [int(stamp[0]), int(stamp[1])], "columns": encoded}


def decode_zone_entry(entry: Any, stamp: Tuple[int, int]
                      ) -> Optional[Dict[str, Tuple[Any, Any, int, int]]]:
    """Revive one chunk's statistics; None on stamp mismatch or bad shape.

    The stamp check is what invalidates a mutated chunk: its head/tail CRC
    probes change, the persisted entry stops answering, and the caller
    re-parses that chunk alone.
    """
    if not isinstance(entry, dict):
        return None
    try:
        if tuple(entry["stamp"]) != (int(stamp[0]), int(stamp[1])):
            return None
        stats: Dict[str, Tuple[Any, ...]] = {}
        for name, packed in entry["columns"].items():
            if len(packed) not in (4, 5):
                return None
            vmin, vmax, nulls, distinct = packed[:4]
            values = packed[4] if len(packed) > 4 else None
            if values is not None and not (
                    isinstance(values, list) and
                    all(isinstance(value, str) for value in values)):
                return None
            stats[name] = (_decode_stat(vmin), _decode_stat(vmax),
                           int(nulls), int(distinct), values)
        return stats
    except (KeyError, TypeError, ValueError):
        return None


def load_zone_entries(csv_path: str) -> Dict[str, Any]:
    """All persisted chunk entries of *csv_path* (empty on any problem)."""
    try:
        with open(sidecar_path(csv_path), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or \
            payload.get("version") != SIDECAR_VERSION or \
            not isinstance(payload.get("chunks"), dict):
        return {}
    return payload["chunks"]


def save_zone_entries(csv_path: str, entries: Dict[str, Any]) -> bool:
    """Merge *entries* into the sidecar's chunk table.

    Entries already on disk are kept (stale byte ranges are harmless — the
    table is a cache probed by byte range *and* content stamp, so they are
    simply never consulted again).  Returns False — without raising — when
    the directory is not writable or an entry does not serialize; zone
    maps are a cache, never a correctness requirement.
    """
    merged = load_zone_entries(csv_path)
    merged.update(entries)
    try:
        serialized = json.dumps(
            {"version": SIDECAR_VERSION, "chunks": merged}).encode("utf-8")
    except (TypeError, ValueError):
        # Last-resort guard: a statistic the encoder does not know (e.g. a
        # future dtype) must degrade to "no sidecar", not crash the scan.
        return False
    return atomic_replace(sidecar_path(csv_path), serialized)


__all__ = [
    "DISTINCT_CAP",
    "ZoneMap",
    "build_zone_map",
    "chunk_column_stats",
    "chunk_key",
    "decode_zone_entry",
    "encode_zone_entry",
    "load_zone_entries",
    "save_zone_entries",
    "sidecar_path",
    "zone_map_from_stats",
]
