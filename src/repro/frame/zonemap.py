"""Per-chunk zone maps: the statistics behind predicate chunk skipping.

A *zone map* records, for every chunk of a chunked CSV scan and every
column, the minimum, maximum, null count and a (bounded) distinct-value
estimate of that chunk.  Given a pushdown predicate
(:mod:`repro.frame.predicate`), the planner tests each conjunct against the
chunk's min/max range and drops chunks that cannot possibly contain a
matching row — before a single data byte of the chunk is read.

Pruning is deliberately one-sided: a kept chunk may still contain zero
matching rows (the residual per-chunk filter handles that), but a skipped
chunk must provably contain none.  The rules encode the same SQL-like
missing semantics as the predicate evaluator — a missing value never
matches — so a chunk whose values are all missing for a filtered column is
always skippable.

Zone maps are persisted as a JSON *sidecar* next to the CSV
(``<file>.zones.json``), keyed by the same ``(size, mtime_ns)`` stamp the
scan layout uses, plus the chunk granularity: a sidecar written for one
``chunk_rows`` does not answer for another, and any change to the file
invalidates every grid at once.  Building a zone map costs one parse of the
file, so it happens lazily on the first *filtered* plan over a scan and is
amortized across every later filtered call in any process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame.dtypes import parse_datetime
from repro.frame.sidecar import atomic_replace

#: Distinct-value estimates saturate here; beyond this a chunk is simply
#: "high cardinality" and the exact count stops being useful for planning.
DISTINCT_CAP = 256

#: Sidecar schema version; bump on incompatible format changes.
SIDECAR_VERSION = 1

#: Per-column stat vectors, one entry per chunk.
ColumnStats = Dict[str, List[Any]]


@dataclass
class ZoneMap:
    """Chunk statistics for one file at one chunk granularity."""

    stamp: Tuple[int, int]          # (st_size, st_mtime_ns) of the CSV
    chunk_rows: int                 # granularity the chunks were cut at
    n_chunks: int
    #: column name -> {"min": [...], "max": [...], "nulls": [...],
    #: "distinct": [...]}, each list indexed by chunk.
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def chunk_may_match(self, index: int,
                        spec: Sequence[Tuple[str, str, Any]]) -> bool:
        """Whether chunk *index* could contain a row matching *spec*.

        Conservative in every uncertain case (unknown column, incomparable
        types): only a provable miss returns False.
        """
        for column, op, value in spec:
            stats = self.columns.get(column)
            if stats is None:
                continue
            vmin = stats["min"][index]
            vmax = stats["max"][index]
            if vmin is None:
                # Every value in this chunk is missing; missing never
                # matches any comparison, so no conjunct can hold.
                return False
            if isinstance(vmin, np.datetime64) and \
                    not isinstance(value, np.datetime64):
                # Datetime literals travel through specs as ISO strings
                # (picklable, tokenizable); numpy refuses to compare
                # datetime64 against str, which would silently land in the
                # TypeError no-prune path below — revive the literal so
                # time-window filters actually skip chunks.
                revived = parse_datetime(value)
                if revived is None:
                    continue    # unparseable literal: cannot prune on it
                value = revived
            try:
                if not _range_may_match(vmin, vmax, op, value):
                    return False
            except TypeError:
                continue    # incomparable literal: cannot prune on it
        return True

    def keep_flags(self, spec: Sequence[Tuple[str, str, Any]]) -> List[bool]:
        """Per-chunk keep/skip decisions for *spec*."""
        return [self.chunk_may_match(index, spec)
                for index in range(self.n_chunks)]


def _range_may_match(vmin: Any, vmax: Any, op: str, value: Any) -> bool:
    """Whether any point in [vmin, vmax] can satisfy ``point <op> value``."""
    if op == ">":
        return vmax > value
    if op == ">=":
        return vmax >= value
    if op == "<":
        return vmin < value
    if op == "<=":
        return vmin <= value
    if op == "==":
        return vmin <= value <= vmax
    if op == "!=":
        return not (vmin == vmax == value)
    return True     # unknown operator: never prune


def _scalar(value: Any) -> Any:
    """Canonical scalar form of a chunk statistic.

    Numpy numerics become plain Python (JSON- and pickle-friendly);
    datetimes stay ``numpy.datetime64`` — normalized to second precision —
    because the comparison rules need a real datetime, and the JSON
    boundary tag-encodes them separately (:func:`_encode_stat`).
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.datetime64):
        return value.astype("datetime64[s]")
    return value


def _encode_stat(value: Any) -> Any:
    """JSON-safe form of one min/max statistic.

    ``numpy.datetime64`` is not JSON-serializable — an untagged save used
    to crash ``json.dump`` with a ``TypeError`` for any CSV holding a
    datetime column.  Datetimes are written as a tagged pair
    ``["dt", "2021-01-01T00:00:00"]``; the tag is unambiguous because
    statistics scalars are never lists.
    """
    if isinstance(value, np.datetime64):
        if np.isnat(value):
            return None
        return ["dt", str(value.astype("datetime64[s]"))]
    return value


def _decode_stat(value: Any) -> Any:
    """Revive a tagged min/max statistic from its JSON form."""
    if isinstance(value, list) and len(value) == 2 and value[0] == "dt":
        return np.datetime64(value[1], "s")
    return value


def _encode_columns(columns: Dict[str, ColumnStats]) -> Dict[str, ColumnStats]:
    """Tag-encode the min/max lists of every column for JSON."""
    return {name: {"min": [_encode_stat(v) for v in stats["min"]],
                   "max": [_encode_stat(v) for v in stats["max"]],
                   "nulls": list(stats["nulls"]),
                   "distinct": list(stats["distinct"])}
            for name, stats in columns.items()}


def _decode_columns(columns: Dict[str, ColumnStats]) -> Dict[str, ColumnStats]:
    """Revive the tagged min/max lists of every column from JSON."""
    return {name: {"min": [_decode_stat(v) for v in stats["min"]],
                   "max": [_decode_stat(v) for v in stats["max"]],
                   "nulls": list(stats["nulls"]),
                   "distinct": list(stats["distinct"])}
            for name, stats in columns.items()}


def chunk_column_stats(frame: Any) -> Dict[str, Tuple[Any, Any, int, int]]:
    """``(min, max, nulls, distinct)`` per column of one parsed chunk.

    ``min``/``max`` are None when the chunk has no present values for the
    column; ``distinct`` saturates at :data:`DISTINCT_CAP`.
    """
    stats: Dict[str, Tuple[Any, Any, int, int]] = {}
    for name in frame.columns:
        column = frame.column(name)
        present = column.notna()
        nulls = int(len(column) - present.sum())
        if nulls == len(column):
            stats[name] = (None, None, nulls, 0)
            continue
        values = column.to_numpy()[present]
        try:
            distinct = min(int(np.unique(values).size), DISTINCT_CAP)
        except TypeError:       # mixed unhashable/unsortable objects
            distinct = DISTINCT_CAP
        stats[name] = (_scalar(values.min()), _scalar(values.max()),
                       nulls, distinct)
    return stats


def build_zone_map(chunks: Iterable[Any], stamp: Tuple[int, int],
                   chunk_rows: int) -> ZoneMap:
    """Build a :class:`ZoneMap` from an iterable of parsed chunk frames."""
    columns: Dict[str, ColumnStats] = {}
    n_chunks = 0
    for frame in chunks:
        per_column = chunk_column_stats(frame)
        for name, (vmin, vmax, nulls, distinct) in per_column.items():
            entry = columns.setdefault(
                name, {"min": [], "max": [], "nulls": [], "distinct": []})
            entry["min"].append(vmin)
            entry["max"].append(vmax)
            entry["nulls"].append(nulls)
            entry["distinct"].append(distinct)
        n_chunks += 1
    return ZoneMap(stamp=(int(stamp[0]), int(stamp[1])),
                   chunk_rows=int(chunk_rows), n_chunks=n_chunks,
                   columns=columns)


# --------------------------------------------------------------------------- #
# Sidecar persistence.
# --------------------------------------------------------------------------- #
def sidecar_path(csv_path: str) -> str:
    """Where the zone-map sidecar for *csv_path* lives."""
    return csv_path + ".zones.json"


def _load_sidecar(csv_path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(sidecar_path(csv_path), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or \
            payload.get("version") != SIDECAR_VERSION:
        return None
    return payload


def load_zone_map(csv_path: str, stamp: Tuple[int, int],
                  chunk_rows: int) -> Optional[ZoneMap]:
    """Load the persisted zone map for *(csv_path, stamp, chunk_rows)*.

    Returns None when there is no sidecar, the sidecar's ``(size,
    mtime_ns)`` stamp does not match (the file changed), or no grid exists
    at this chunk granularity — the caller then rebuilds from the data.
    """
    payload = _load_sidecar(csv_path)
    if payload is None:
        return None
    if tuple(payload.get("stamp", ())) != (int(stamp[0]), int(stamp[1])):
        return None
    grid = payload.get("grids", {}).get(str(int(chunk_rows)))
    if not isinstance(grid, dict):
        return None
    try:
        return ZoneMap(stamp=(int(stamp[0]), int(stamp[1])),
                       chunk_rows=int(chunk_rows),
                       n_chunks=int(grid["n_chunks"]),
                       columns=_decode_columns(grid["columns"]))
    except (KeyError, TypeError, ValueError):
        return None


def save_zone_map(csv_path: str, zone_map: ZoneMap) -> bool:
    """Persist *zone_map* into the sidecar, merging other granularities.

    Grids from a different stamp are discarded (the file changed, so they
    are stale).  Returns False — without raising — when the directory is
    not writable; zone maps are a cache, never a correctness requirement.
    """
    payload = _load_sidecar(csv_path)
    stamp = [int(zone_map.stamp[0]), int(zone_map.stamp[1])]
    if payload is None or payload.get("stamp") != stamp:
        payload = {"version": SIDECAR_VERSION, "stamp": stamp, "grids": {}}
    payload["grids"][str(zone_map.chunk_rows)] = {
        "n_chunks": zone_map.n_chunks,
        # Grids already on disk are in JSON form; only the grid being
        # written needs encoding (load decodes the grid it extracts).
        "columns": _encode_columns(zone_map.columns),
    }
    try:
        serialized = json.dumps(payload).encode("utf-8")
    except (TypeError, ValueError):
        # Last-resort guard: a statistic the encoder does not know (e.g. a
        # future dtype) must degrade to "no sidecar", not crash the scan.
        return False
    return atomic_replace(sidecar_path(csv_path), serialized)


__all__ = [
    "DISTINCT_CAP",
    "ZoneMap",
    "build_zone_map",
    "chunk_column_stats",
    "load_zone_map",
    "save_zone_map",
    "sidecar_path",
]
