"""Per-chunk zone maps: the statistics behind predicate chunk skipping.

A *zone map* records, for every chunk of a chunked CSV scan and every
column, the minimum, maximum, null count and a (bounded) distinct-value
estimate of that chunk.  Given a pushdown predicate
(:mod:`repro.frame.predicate`), the planner tests each conjunct against the
chunk's min/max range and drops chunks that cannot possibly contain a
matching row — before a single data byte of the chunk is read.

Pruning is deliberately one-sided: a kept chunk may still contain zero
matching rows (the residual per-chunk filter handles that), but a skipped
chunk must provably contain none.  The rules encode the same SQL-like
missing semantics as the predicate evaluator — a missing value never
matches — so a chunk whose values are all missing for a filtered column is
always skippable.

Zone maps are persisted as a JSON *sidecar* next to the CSV
(``<file>.zones.json``), keyed by the same ``(size, mtime_ns)`` stamp the
scan layout uses, plus the chunk granularity: a sidecar written for one
``chunk_rows`` does not answer for another, and any change to the file
invalidates every grid at once.  Building a zone map costs one parse of the
file, so it happens lazily on the first *filtered* plan over a scan and is
amortized across every later filtered call in any process.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Distinct-value estimates saturate here; beyond this a chunk is simply
#: "high cardinality" and the exact count stops being useful for planning.
DISTINCT_CAP = 256

#: Sidecar schema version; bump on incompatible format changes.
SIDECAR_VERSION = 1

#: Per-column stat vectors, one entry per chunk.
ColumnStats = Dict[str, List[Any]]


@dataclass
class ZoneMap:
    """Chunk statistics for one file at one chunk granularity."""

    stamp: Tuple[int, int]          # (st_size, st_mtime_ns) of the CSV
    chunk_rows: int                 # granularity the chunks were cut at
    n_chunks: int
    #: column name -> {"min": [...], "max": [...], "nulls": [...],
    #: "distinct": [...]}, each list indexed by chunk.
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def chunk_may_match(self, index: int,
                        spec: Sequence[Tuple[str, str, Any]]) -> bool:
        """Whether chunk *index* could contain a row matching *spec*.

        Conservative in every uncertain case (unknown column, incomparable
        types): only a provable miss returns False.
        """
        for column, op, value in spec:
            stats = self.columns.get(column)
            if stats is None:
                continue
            vmin = stats["min"][index]
            vmax = stats["max"][index]
            if vmin is None:
                # Every value in this chunk is missing; missing never
                # matches any comparison, so no conjunct can hold.
                return False
            try:
                if not _range_may_match(vmin, vmax, op, value):
                    return False
            except TypeError:
                continue    # incomparable literal: cannot prune on it
        return True

    def keep_flags(self, spec: Sequence[Tuple[str, str, Any]]) -> List[bool]:
        """Per-chunk keep/skip decisions for *spec*."""
        return [self.chunk_may_match(index, spec)
                for index in range(self.n_chunks)]


def _range_may_match(vmin: Any, vmax: Any, op: str, value: Any) -> bool:
    """Whether any point in [vmin, vmax] can satisfy ``point <op> value``."""
    if op == ">":
        return vmax > value
    if op == ">=":
        return vmax >= value
    if op == "<":
        return vmin < value
    if op == "<=":
        return vmin <= value
    if op == "==":
        return vmin <= value <= vmax
    if op == "!=":
        return not (vmin == vmax == value)
    return True     # unknown operator: never prune


def _scalar(value: Any) -> Any:
    """Plain-Python form of a chunk statistic (JSON- and pickle-friendly)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def chunk_column_stats(frame: Any) -> Dict[str, Tuple[Any, Any, int, int]]:
    """``(min, max, nulls, distinct)`` per column of one parsed chunk.

    ``min``/``max`` are None when the chunk has no present values for the
    column; ``distinct`` saturates at :data:`DISTINCT_CAP`.
    """
    stats: Dict[str, Tuple[Any, Any, int, int]] = {}
    for name in frame.columns:
        column = frame.column(name)
        present = column.notna()
        nulls = int(len(column) - present.sum())
        if nulls == len(column):
            stats[name] = (None, None, nulls, 0)
            continue
        values = column.to_numpy()[present]
        try:
            distinct = min(int(np.unique(values).size), DISTINCT_CAP)
        except TypeError:       # mixed unhashable/unsortable objects
            distinct = DISTINCT_CAP
        stats[name] = (_scalar(values.min()), _scalar(values.max()),
                       nulls, distinct)
    return stats


def build_zone_map(chunks: Iterable[Any], stamp: Tuple[int, int],
                   chunk_rows: int) -> ZoneMap:
    """Build a :class:`ZoneMap` from an iterable of parsed chunk frames."""
    columns: Dict[str, ColumnStats] = {}
    n_chunks = 0
    for frame in chunks:
        per_column = chunk_column_stats(frame)
        for name, (vmin, vmax, nulls, distinct) in per_column.items():
            entry = columns.setdefault(
                name, {"min": [], "max": [], "nulls": [], "distinct": []})
            entry["min"].append(vmin)
            entry["max"].append(vmax)
            entry["nulls"].append(nulls)
            entry["distinct"].append(distinct)
        n_chunks += 1
    return ZoneMap(stamp=(int(stamp[0]), int(stamp[1])),
                   chunk_rows=int(chunk_rows), n_chunks=n_chunks,
                   columns=columns)


# --------------------------------------------------------------------------- #
# Sidecar persistence.
# --------------------------------------------------------------------------- #
def sidecar_path(csv_path: str) -> str:
    """Where the zone-map sidecar for *csv_path* lives."""
    return csv_path + ".zones.json"


def _load_sidecar(csv_path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(sidecar_path(csv_path), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or \
            payload.get("version") != SIDECAR_VERSION:
        return None
    return payload


def load_zone_map(csv_path: str, stamp: Tuple[int, int],
                  chunk_rows: int) -> Optional[ZoneMap]:
    """Load the persisted zone map for *(csv_path, stamp, chunk_rows)*.

    Returns None when there is no sidecar, the sidecar's ``(size,
    mtime_ns)`` stamp does not match (the file changed), or no grid exists
    at this chunk granularity — the caller then rebuilds from the data.
    """
    payload = _load_sidecar(csv_path)
    if payload is None:
        return None
    if tuple(payload.get("stamp", ())) != (int(stamp[0]), int(stamp[1])):
        return None
    grid = payload.get("grids", {}).get(str(int(chunk_rows)))
    if not isinstance(grid, dict):
        return None
    try:
        return ZoneMap(stamp=(int(stamp[0]), int(stamp[1])),
                       chunk_rows=int(chunk_rows),
                       n_chunks=int(grid["n_chunks"]),
                       columns=dict(grid["columns"]))
    except (KeyError, TypeError, ValueError):
        return None


def save_zone_map(csv_path: str, zone_map: ZoneMap) -> bool:
    """Persist *zone_map* into the sidecar, merging other granularities.

    Grids from a different stamp are discarded (the file changed, so they
    are stale).  Returns False — without raising — when the directory is
    not writable; zone maps are a cache, never a correctness requirement.
    """
    payload = _load_sidecar(csv_path)
    stamp = [int(zone_map.stamp[0]), int(zone_map.stamp[1])]
    if payload is None or payload.get("stamp") != stamp:
        payload = {"version": SIDECAR_VERSION, "stamp": stamp, "grids": {}}
    payload["grids"][str(zone_map.chunk_rows)] = {
        "n_chunks": zone_map.n_chunks,
        "columns": zone_map.columns,
    }
    target = sidecar_path(csv_path)
    temporary = target + ".tmp"
    try:
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temporary, target)
    except OSError:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        return False
    return True


__all__ = [
    "DISTINCT_CAP",
    "ZoneMap",
    "build_zone_map",
    "chunk_column_stats",
    "load_zone_map",
    "save_zone_map",
    "sidecar_path",
]
