"""Parsed-chunk binary sidecar cache: parse a CSV chunk once, ever.

Even after projection and predicate pushdown, a *warm* re-scan of an
out-of-core CSV still pays full CSV decoding in every process whose
in-memory :class:`~repro.graph.cache.TaskCache` has not seen the chunk —
which is every ``ProcessScheduler`` worker on every run, since that cache
is per-process.  This module spills each parsed, dtype-coerced chunk to a
compact binary file next to the CSV (``<file>.chunks/``) so any later scan
— same process, another process, another session — loads the coerced
arrays directly and decodes zero CSV bytes.

Keying mirrors the zone-map sidecar (:mod:`repro.frame.zonemap`): a chunk
file answers only for the exact content stamp — the chunk's per-range
``(head_crc, tail_crc)`` probe pair from
:func:`repro.frame.io.compute_chunk_stamps` — byte range, delimiter and
per-column dtypes it was written under, so an overwritten file can never
serve stale rows.  The stamp is opaque two-int data to this module; keying
per chunk rather than per file is what lets an *append* keep every old
chunk's binary sidecar valid (their byte ranges and probes are untouched)
while a mutated chunk fails its probe and re-parses.  Like zone maps, the
sidecar is a cache, never a correctness requirement — every read or write
failure degrades to "parse the CSV again".

On-disk format (version :data:`SIDECAR_VERSION`)::

    b"RPCH" | uint32-LE header length | header JSON | column payload

The header records the stamp, row count, delimiter and, per column, the
dtype plus ``[payload-relative offset, byte length]`` of each buffer.
Fixed-width columns (bool/int/float/datetime) store their raw array bytes
and load zero-copy through ``numpy.memmap``.  Since format version 2,
string columns store their dictionary encoding — an ``int32`` code array
(``-1`` = missing, loaded zero-copy like the fixed-width dtypes) plus the
dictionary as an ``int64`` offset array over a UTF-8 blob — so a
low-cardinality string column costs 4 bytes per row on disk instead of its
repeated text.  Version-1 files (per-row offset arrays) simply miss and
re-parse.  Writes are atomic — a uniquely named temp file (pid + random suffix, so
concurrent writers never collide) is ``os.replace``\\d over the target —
and a byte budget is enforced per chunk directory by evicting the
least-recently-*read* files (atime LRU; every hit touches the file).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.frame.column import Column
from repro.frame.dtypes import DType
from repro.frame.frame import DataFrame

#: Leading magic of every chunk file; anything else is not ours.
MAGIC = b"RPCH"

#: Chunk-file schema version; bump on incompatible format changes.
#: Version 2 switched string columns to dictionary encoding (int32 codes +
#: dictionary blob); v1 files fail the version check and re-parse once.
SIDECAR_VERSION = 2

#: Default per-directory byte budget (``cache.disk_bytes``).
DEFAULT_DISK_BYTES = 512 * 1024 * 1024


class SidecarRoute(NamedTuple):
    """Where one scan's chunk sidecars live and how large they may grow.

    A ``NamedTuple`` rather than a dataclass on purpose: the route travels
    as a task keyword argument into worker processes, and the executor's
    payload gate (:func:`repro.graph.executor.can_run_in_worker`) admits
    tuples of plain scalars — a custom class would silently pin every
    parse task to the coordinator.
    """

    #: Directory override (``cache.disk_dir``); None puts the sidecar next
    #: to the CSV as ``<file>.chunks/``.
    directory: Optional[str] = None
    #: Byte budget for the chunk directory; least-recently-read files are
    #: evicted after every store until the directory fits.
    budget_bytes: int = DEFAULT_DISK_BYTES


# --------------------------------------------------------------------------- #
# Work-avoidance counters.
#
# Module-level and process-local: the coordinator's counters cover every
# task it executed itself (threaded/synchronous schedulers and unshippable
# tasks), while ProcessScheduler workers accumulate their own counters in
# their own processes — lost to the coordinator, which therefore reports a
# lower bound under the process backend.  Tests and benchmarks that assert
# exact counts use the threaded/synchronous schedulers (or read the
# counters inside the worker, as the cross-process warm-start test does).
# --------------------------------------------------------------------------- #
_STATS: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "stores": 0,
    "bytes_decoded_avoided": 0,
    "csv_bytes_decoded": 0,
}
_STATS_LOCK = threading.Lock()


def record_hit(csv_bytes: int) -> None:
    """Count one chunk served from the sidecar instead of the CSV."""
    with _STATS_LOCK:
        _STATS["hits"] += 1
        _STATS["bytes_decoded_avoided"] += int(csv_bytes)


def record_miss(csv_bytes: int) -> None:
    """Count one chunk that had to decode its CSV byte range."""
    with _STATS_LOCK:
        _STATS["misses"] += 1
        _STATS["csv_bytes_decoded"] += int(csv_bytes)


def stats_snapshot() -> Dict[str, int]:
    """A point-in-time copy of this process's sidecar counters."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_stats() -> None:
    """Zero the counters (test and benchmark isolation)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


# --------------------------------------------------------------------------- #
# Paths.
# --------------------------------------------------------------------------- #
def chunk_dir(csv_path: str, route: SidecarRoute) -> str:
    """The directory holding *csv_path*'s chunk files under *route*.

    With a directory override the per-file subdirectory is named by a hash
    of the absolute CSV path, so two files with the same basename cannot
    collide inside a shared cache directory.
    """
    if route.directory:
        digest = hashlib.sha1(
            os.path.abspath(csv_path).encode("utf-8")).hexdigest()[:16]
        return os.path.join(route.directory, digest + ".chunks")
    return csv_path + ".chunks"


def chunk_path(csv_path: str, route: SidecarRoute,
               byte_start: int, byte_stop: int) -> str:
    """The chunk file for one byte range of *csv_path*."""
    return os.path.join(chunk_dir(csv_path, route),
                        f"chunk-{int(byte_start)}-{int(byte_stop)}.bin")


# --------------------------------------------------------------------------- #
# Atomic writes (shared with the zone-map sidecar).
# --------------------------------------------------------------------------- #
def atomic_replace(target: str, payload: bytes) -> bool:
    """Atomically write *payload* to *target*; False (never raise) on failure.

    The temp name carries the pid plus a random suffix so two processes
    writing the same target never race on one temp path, and every failure
    path removes the temp file so a crashed write cannot leak it.
    """
    temporary = f"{target}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
    try:
        with open(temporary, "wb") as handle:
            handle.write(payload)
        os.replace(temporary, target)
    except OSError:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        return False
    return True


# --------------------------------------------------------------------------- #
# Encoding.
# --------------------------------------------------------------------------- #
def _encode_frame(frame: DataFrame, stamp: Tuple[int, int], n_rows: int,
                  delimiter: str) -> bytes:
    """Serialize *frame* into the chunk-file byte layout."""
    header_columns: Dict[str, Dict[str, Any]] = {}
    payload_parts: List[bytes] = []
    offset = 0

    def append(raw: bytes) -> Tuple[int, int]:
        nonlocal offset
        payload_parts.append(raw)
        span = (offset, len(raw))
        offset += len(raw)
        return span

    for name in frame.columns:
        column = frame.column(name)
        entry: Dict[str, Any] = {"dtype": column.dtype.value}
        if column.dtype is DType.STRING:
            encoded_column = column.dictionary_encode()
            codes = np.ascontiguousarray(encoded_column.codes, dtype=np.int32)
            dictionary = encoded_column.dictionary
            offsets = np.zeros(dictionary.size + 1, dtype=np.int64)
            blobs: List[bytes] = []
            total = 0
            for index, value in enumerate(dictionary.tolist()):
                encoded = str(value).encode("utf-8")
                blobs.append(encoded)
                total += len(encoded)
                offsets[index + 1] = total
            entry["codes"] = list(append(codes.tobytes()))
            entry["dict_offsets"] = list(append(offsets.tobytes()))
            entry["dict_data"] = list(append(b"".join(blobs)))
        else:
            entry["data"] = list(append(
                np.ascontiguousarray(column.data).tobytes()))
        entry["mask"] = list(append(
            np.ascontiguousarray(column.mask.astype(np.bool_)).tobytes()))
        header_columns[name] = entry

    header = {
        "version": SIDECAR_VERSION,
        "stamp": [int(stamp[0]), int(stamp[1])],
        "n_rows": int(n_rows),
        "delimiter": delimiter,
        "columns": header_columns,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    return (MAGIC + len(header_bytes).to_bytes(4, "little") + header_bytes
            + b"".join(payload_parts))


# --------------------------------------------------------------------------- #
# Decoding.
# --------------------------------------------------------------------------- #
def _read_header(handle: Any) -> Optional[Tuple[Dict[str, Any], int]]:
    """``(header, payload base offset)`` of an open chunk file, or None."""
    magic = handle.read(4)
    if magic != MAGIC:
        return None
    raw_length = handle.read(4)
    if len(raw_length) != 4:
        return None
    header_length = int.from_bytes(raw_length, "little")
    header_bytes = handle.read(header_length)
    if len(header_bytes) != header_length:
        return None
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(header, dict) or \
            header.get("version") != SIDECAR_VERSION:
        return None
    return header, 8 + header_length


def _read_span(handle: Any, base: int, span: Sequence[int]) -> Optional[bytes]:
    handle.seek(base + int(span[0]))
    raw = handle.read(int(span[1]))
    return raw if len(raw) == int(span[1]) else None


def _decode_column(path: str, handle: Any, base: int, name: str,
                   entry: Dict[str, Any], n_rows: int) -> Optional[Column]:
    """Rebuild one column from its header entry, or None on any mismatch."""
    try:
        dtype = DType(entry["dtype"])
    except (KeyError, ValueError):
        return None
    mask_raw = _read_span(handle, base, entry["mask"])
    if mask_raw is None or len(mask_raw) != n_rows:
        return None
    mask = np.frombuffer(mask_raw, dtype=np.bool_)
    if dtype.is_fixed_width:
        numpy_dtype = dtype.numpy_dtype()
        span = entry["data"]
        if int(span[1]) != n_rows * numpy_dtype.itemsize:
            return None
        if n_rows == 0:
            data: np.ndarray = np.empty(0, dtype=numpy_dtype)
        else:
            try:
                data = np.memmap(path, dtype=numpy_dtype, mode="r",
                                 offset=base + int(span[0]), shape=(n_rows,))
            except (OSError, ValueError):
                raw = _read_span(handle, base, span)
                if raw is None:
                    return None
                data = np.frombuffer(raw, dtype=numpy_dtype)
        return Column.from_storage(name, data, dtype, mask)
    codes_span = entry["codes"]
    if int(codes_span[1]) != n_rows * np.dtype(np.int32).itemsize:
        return None
    if n_rows == 0:
        codes: np.ndarray = np.empty(0, dtype=np.int32)
    else:
        try:
            codes = np.memmap(path, dtype=np.int32, mode="r",
                              offset=base + int(codes_span[0]),
                              shape=(n_rows,))
        except (OSError, ValueError):
            codes_raw = _read_span(handle, base, codes_span)
            if codes_raw is None:
                return None
            codes = np.frombuffer(codes_raw, dtype=np.int32)
    offsets_raw = _read_span(handle, base, entry["dict_offsets"])
    if offsets_raw is None or len(offsets_raw) < np.dtype(np.int64).itemsize \
            or len(offsets_raw) % np.dtype(np.int64).itemsize:
        return None
    offsets = np.frombuffer(offsets_raw, dtype=np.int64)
    blob = _read_span(handle, base, entry["dict_data"])
    if blob is None or int(offsets[-1]) != len(blob):
        return None
    size = offsets.size - 1
    dictionary = np.empty(size, dtype=object)
    for index in range(size):
        dictionary[index] = blob[offsets[index]:offsets[index + 1]].decode("utf-8")
    if codes.size and (int(codes.max()) >= size or
                       bool(((codes < 0) != mask).any())):
        return None
    return Column.from_codes(name, codes, dictionary, mask)


def _load_payload(path: str, stamp: Tuple[int, int],
                  expected_rows: Optional[int], delimiter: Optional[str],
                  columns: Optional[Sequence[str]],
                  dtypes: Optional[Dict[str, DType]]
                  ) -> Optional[DataFrame]:
    """Load *columns* (None = all stored) from one chunk file, or None.

    Every validation failure — wrong stamp, wrong row count, a needed
    column absent or stored under a different dtype — returns None so the
    caller falls back to the CSV parse.
    """
    try:
        with open(path, "rb") as handle:
            parsed = _read_header(handle)
            if parsed is None:
                return None
            header, base = parsed
            if tuple(header.get("stamp", ())) != \
                    (int(stamp[0]), int(stamp[1])):
                return None
            n_rows = header.get("n_rows")
            if not isinstance(n_rows, int) or n_rows < 0:
                return None
            if expected_rows is not None and n_rows != expected_rows:
                return None
            if delimiter is not None and \
                    header.get("delimiter") != delimiter:
                return None
            stored = header.get("columns")
            if not isinstance(stored, dict):
                return None
            wanted = list(stored) if columns is None else list(columns)
            built: List[Column] = []
            for name in wanted:
                entry = stored.get(name)
                if not isinstance(entry, dict):
                    return None
                declared = dtypes.get(name) if dtypes else None
                if declared is not None and entry.get("dtype") != \
                        declared.value:
                    return None
                column = _decode_column(path, handle, base, name, entry,
                                        n_rows)
                if column is None:
                    return None
                built.append(column)
            return DataFrame(built)
    except (OSError, KeyError, TypeError, ValueError):
        return None


# --------------------------------------------------------------------------- #
# The public cache operations.
# --------------------------------------------------------------------------- #
def load_chunk(csv_path: str, byte_start: int, byte_stop: int,
               stamp: Tuple[int, int], columns: Sequence[str],
               dtypes: Dict[str, DType], expected_rows: Optional[int],
               route: Sequence[Any],
               delimiter: str = ",") -> Optional[DataFrame]:
    """The parsed chunk for one byte range, or None (= parse the CSV).

    A hit touches the file's atime so the byte-budget eviction is LRU by
    last *read*, not last write.
    """
    resolved = SidecarRoute(*route)
    path = chunk_path(csv_path, resolved, byte_start, byte_stop)
    frame = _load_payload(path, stamp, expected_rows, delimiter, columns,
                          dtypes)
    if frame is None:
        return None
    try:
        os.utime(path)
    except OSError:
        pass
    return frame


def store_chunk(csv_path: str, byte_start: int, byte_stop: int,
                stamp: Tuple[int, int], frame: DataFrame,
                route: Sequence[Any], delimiter: str = ",") -> bool:
    """Best-effort spill of one parsed (pre-filter) chunk; never raises.

    An existing chunk file under the same stamp is *merged*: columns it
    holds that *frame* does not (written by a differently-projected scan)
    are carried over, so projections accumulate into one file instead of
    clobbering each other.  Writes always store the pre-filter rows — one
    entry serves filtered, unfiltered and any projection of the chunk.
    """
    resolved = SidecarRoute(*route)
    directory = chunk_dir(csv_path, resolved)
    target = chunk_path(csv_path, resolved, byte_start, byte_stop)
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError:
        return False
    merged = frame
    existing = _load_payload(target, stamp, len(frame), delimiter, None, None)
    if existing is not None:
        carried = [existing.column(name) for name in existing.columns
                   if name not in set(frame.columns)]
        if carried:
            merged = DataFrame([frame.column(name)
                                for name in frame.columns] + carried)
    try:
        payload = _encode_frame(merged, stamp, len(frame), delimiter)
    except (TypeError, ValueError, OverflowError):
        return False
    if not atomic_replace(target, payload):
        return False
    with _STATS_LOCK:
        _STATS["stores"] += 1
    _evict(directory, resolved.budget_bytes)
    return True


def _evict(directory: str, budget_bytes: int) -> None:
    """Delete least-recently-read chunk files until the budget holds."""
    try:
        names = [name for name in os.listdir(directory)
                 if name.endswith(".bin")]
    except OSError:
        return
    entries: List[Tuple[float, int, str]] = []
    total = 0
    for name in names:
        path = os.path.join(directory, name)
        try:
            status = os.stat(path)
        except OSError:
            continue
        entries.append((status.st_atime, status.st_size, path))
        total += status.st_size
    if total <= budget_bytes:
        return
    entries.sort()
    for _, size, path in entries:
        if total <= budget_bytes:
            break
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size


__all__ = [
    "DEFAULT_DISK_BYTES",
    "MAGIC",
    "SIDECAR_VERSION",
    "SidecarRoute",
    "atomic_replace",
    "chunk_dir",
    "chunk_path",
    "load_chunk",
    "record_hit",
    "record_miss",
    "reset_stats",
    "stats_snapshot",
    "store_chunk",
]
