"""The ``FrameSource`` protocol: source-agnostic input to the EDA pipeline.

The compute layer (Section 5.2 of the paper) is one lazy partitioned
pipeline — per-partition work, tree merge, finalize — regardless of where
the bytes come from.  This module defines the contract a data source must
satisfy to feed that pipeline, plus the three built-in implementations:

* :class:`InMemorySource` — wraps a materialized :class:`DataFrame`;
  partitions are lazy row slices and every reduction may use the exact
  (unbounded per-value memory) finalizers.
* :class:`CsvSource` — wraps one :class:`~repro.frame.io.ScannedFrame`
  (the quote-aware CSV layout scan); partitions parse record-aligned byte
  ranges lazily, so reductions must use bounded-memory sketches.
* :class:`MultiFileCsvSource` — several per-file layout scans concatenated
  into one logical frame.  ``repro.scan_csv`` returns one for a list or
  glob of paths.  All files share the first file's inferred dtypes (plus
  user overrides) so every partition agrees on storage types, and the
  fingerprint covers every file's ``(path, size, mtime_ns, content CRC)``
  stamp so the cross-call intermediate cache stays warm across sessions as
  long as the files are unchanged.

Sources are *refreshable*: ``refreshed()`` re-resolves the on-disk state
and returns an updated source (or ``self`` when nothing changed).  CSV
appends are recognised as growth — the old chunks keep their byte ranges
and per-chunk content stamps, so their partition tasks' cross-call cache
keys survive and only the appended chunks execute on the next EDA call.
:func:`refresh_input` is the user-facing dispatcher over any handle.

A source declares :class:`SourceCapabilities`; the reduction planner in
:mod:`repro.eda.compute.base` picks exact vs. sketch chunk/combine/finalize
triples from them, which is what lets a new backend (compressed CSV,
columnar files, remote objects) land as one source class instead of a new
fork through every compute module.

Implementing a custom source
----------------------------
Provide the :class:`FrameSource` members: schema (``columns`` /``dtypes`` /
``n_rows`` / ``schema_preview``), a content ``fingerprint`` (stable across
processes for unchanged data — it feeds cross-call cache keys), and
``partitions()`` returning :class:`SourcePartition` rows-ranges whose
``func``/``args`` lazily materialize each chunk.  ``func`` must be a
module-level function and every argument fingerprintable (paths, numbers,
tuples, dtype enums), otherwise the partition tasks are excluded from the
cross-call cache.  Declare ``capabilities.exact=False`` unless the whole
dataset may safely coexist in memory.  Declare
``capabilities.projection=True`` only when the partition ``func`` accepts a
``columns=`` keyword naming a column subset and materializes just those
columns — the EDA planner then pushes each reduction's required-column set
down into the partition tasks (``materialize(columns=...)``).  See
``docs/architecture.md`` for a worked example.
"""

from __future__ import annotations

import glob as glob_module
import inspect
import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.errors import FrameError
from repro.frame.dtypes import DType
from repro.frame.fingerprint import fingerprint_file_stamps
from repro.frame.frame import DataFrame, concat_rows
from repro.frame.io import ScannedFrame, _scan_csv_file, parse_csv_range
from repro.frame.predicate import ColumnExpr, Predicate, apply_predicate_spec
from repro.frame.sidecar import (
    SidecarRoute,
    load_chunk,
    record_hit,
    record_miss,
    store_chunk,
)
from repro.utils import filtered_prefix, projected_prefix

#: Default number of rows per in-memory partition (mirrors the graph layer).
DEFAULT_PARTITION_ROWS = 100_000


# --------------------------------------------------------------------------- #
# Partition task functions.
#
# Module-level (never lambdas) so the optimizer's CSE pass and the cross-call
# cache can fingerprint them; the graph layer wraps them with ``delayed``.
# --------------------------------------------------------------------------- #
def _slice_frame(frame: DataFrame, start: int, stop: int,
                 columns: Optional[Tuple[str, ...]] = None,
                 predicate: Optional[Tuple[Tuple[str, str, Any], ...]] = None
                 ) -> DataFrame:
    """Materialize one row partition of an in-memory frame.

    *columns* projects the partition onto a column subset.  Both the
    projected and the full slice are zero-copy: every partition column is a
    view into the source frame's buffers
    (:meth:`~repro.frame.column.Column.slice_view`), so slicing costs
    O(columns kept), never O(rows).

    *predicate* (a :meth:`~repro.frame.predicate.Predicate.spec` tuple)
    filters the partition's rows.  The slice views stay zero-copy; the mask
    is evaluated over the views and only the surviving rows are copied out,
    so the cost is O(rows kept), never O(table).
    """
    names = frame.columns if columns is None else list(columns)
    if predicate is None:
        return DataFrame([frame.column(name).slice_view(start, stop)
                          for name in names])
    wanted = set(names)
    needed = names + [column for column, _, _ in predicate
                      if column in frame.columns and column not in wanted]
    view = DataFrame([frame.column(name).slice_view(start, stop)
                      for name in needed])
    filtered = apply_predicate_spec(view, predicate)
    return filtered[list(names)] if len(needed) != len(names) else filtered


def _read_csv_slice(path: str, byte_start: int, byte_stop: int,
                    column_names: Tuple[str, ...], dtypes: dict,
                    file_stamp: Tuple[int, int] = (0, 0),
                    delimiter: str = ",",
                    expected_rows: Optional[int] = None,
                    columns: Optional[Tuple[str, ...]] = None,
                    predicate: Optional[Tuple[Tuple[str, str, Any], ...]] = None,
                    sidecar: Optional[Tuple[Any, ...]] = None
                    ) -> DataFrame:
    """Parse one byte range of a CSV file into a DataFrame partition.

    *file_stamp* is the chunk's content stamp — the ``(head_crc, tail_crc)``
    probe pair captured at scan time (see
    :func:`repro.frame.io.compute_chunk_stamps`).  It is not parsed here —
    it exists so the task's cross-call cache key changes when the chunk's
    bytes change, even with identical byte boundaries, while *surviving*
    file growth: an append leaves the old chunks' byte ranges and probes
    untouched, so their cache keys (and any tree-combine ancestors built
    purely from them) stay warm and a refresh re-executes only the new
    chunks.  The binary chunk sidecar validates the same opaque pair.

    *columns* projects the parse onto a column subset: the other columns'
    cells are skipped before collection and dtype coercion (the hot path of
    a streaming scan), so a single-column reduction over a wide file pays
    for one column, not the whole table.  The projection is an explicit
    task argument, which is what makes projected and full parses occupy
    distinct cross-call cache keys — a cached single-column partition can
    never be served where a full-table partition is needed.

    *predicate* (a :meth:`~repro.frame.predicate.Predicate.spec` tuple)
    filters the parsed rows before they reach any downstream sketch.  A
    predicate column missing from the projection is parsed additionally —
    cells the filter reads but the reductions do not — and dropped again
    after filtering, so the output keeps exactly the projected columns.
    Like the projection, the predicate is an explicit task argument and so
    part of the cache key: a filtered partition can never be served where
    the unfiltered rows are needed, and vice versa.

    When *expected_rows* is given (the layout scan's record count for this
    range) a mismatch raises instead of letting every downstream statistic
    silently disagree with the row boundaries: it means the file's quoting
    defies record-aligned chunking — e.g. a stray unpaired quote inside an
    unquoted field, which RFC 4180 forbids but ``csv.reader`` tolerates.
    The check runs against the pre-filter parse count — the layout scan
    knows nothing about predicates.

    *sidecar* (a :class:`~repro.frame.sidecar.SidecarRoute` tuple) enables
    the parsed-chunk binary cache: the sidecar is consulted before any CSV
    byte is decoded — a hit loads the already-coerced arrays and skips the
    parse entirely — and after a successful parse the pre-filter frame is
    spilled best-effort, so any later scan (this process, a
    ``ProcessScheduler`` worker, another session) hits.  The route is
    configuration, not semantics: the returned rows are identical with or
    without it, which is why the graph layer excludes the keyword from CSE
    tokens and cross-call cache keys (``NON_SEMANTIC_KWARGS``).
    """
    parse_columns = columns
    if predicate is not None and columns is not None:
        wanted = set(columns)
        filter_columns = {column for column, _, _ in predicate}
        parse_columns = tuple(name for name in column_names
                              if name in wanted or name in filter_columns)
    frame = None
    if sidecar is not None:
        needed = parse_columns if parse_columns is not None \
            else tuple(column_names)
        frame = load_chunk(path, byte_start, byte_stop, file_stamp, needed,
                           dtypes, expected_rows, sidecar,
                           delimiter=delimiter)
        if frame is not None:
            record_hit(byte_stop - byte_start)
    if frame is None:
        frame = parse_csv_range(path, byte_start, byte_stop,
                                list(column_names), dtypes,
                                delimiter=delimiter, usecols=parse_columns)
        if expected_rows is not None and len(frame) != expected_rows:
            raise FrameError(
                f"CSV chunk at bytes [{byte_start}, {byte_stop}) of {path!r} "
                f"parsed {len(frame)} rows where the layout scan counted "
                f"{expected_rows}; the file's quoting defies record-aligned "
                f"chunking (e.g. an unpaired quote in an unquoted field) — "
                f"read it with repro.read_csv instead of scan_csv")
        if sidecar is not None:
            record_miss(byte_stop - byte_start)
            # Spill the pre-filter rows: one entry serves filtered,
            # unfiltered and any projection of this chunk.
            store_chunk(path, byte_start, byte_stop, file_stamp, frame,
                        sidecar, delimiter=delimiter)
    if predicate is not None:
        frame = apply_predicate_spec(frame, predicate)
        if columns is not None and parse_columns != columns:
            wanted = set(columns)
            frame = frame[[name for name in frame.columns if name in wanted]]
    return frame


#: Memoized "does this partition func accept this keyword" checks.
#: Only module-level functions enter the cache — they are process-permanent,
#: so a strong reference costs nothing — while per-call closures/partials
#: (which the protocol allows, at the price of never being cached across
#: calls) are re-inspected each time rather than pinned forever.
_KEYWORD_SUPPORT: Dict[Tuple[Callable[..., Any], str], bool] = {}


def _accepts_keyword(func: Callable[..., Any], keyword: str) -> bool:
    """Whether *func* can receive *keyword* as a keyword argument."""
    qualname = getattr(func, "__qualname__", "")
    memoizable = bool(getattr(func, "__module__", None)) and \
        qualname and "<" not in qualname
    if memoizable:
        cached = _KEYWORD_SUPPORT.get((func, keyword))
        if cached is not None:
            return cached
    try:
        parameters = inspect.signature(func).parameters
    except (TypeError, ValueError):         # builtins without signatures
        accepts = False
    else:
        accepts = keyword in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values())
    if memoizable:
        _KEYWORD_SUPPORT[(func, keyword)] = accepts
    return accepts


def _accepts_columns(func: Callable[..., Any]) -> bool:
    """Whether *func* can receive the ``columns=`` projection keyword."""
    return _accepts_keyword(func, "columns")


# --------------------------------------------------------------------------- #
# The protocol
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SourceCapabilities:
    """What the reduction planner may assume about a source.

    ``exact``
        True when the whole dataset may safely coexist in memory, so every
        reduction may use the exact finalizers (full value-count tables,
        fraction-based row samples, the exact duplicate scan).  False means
        the source streams from storage and reductions must use the
        bounded-memory sketch variants instead.
    ``projection``
        True when the source's partition task functions accept a
        ``columns=`` keyword and materialize only that column subset
        (see :meth:`SourcePartition.materialize`).  The planner then pushes
        each reduction's required-column set down into the partition tasks.
        Defaults to False so a pre-existing custom source keeps its
        full-materialization behaviour until it opts in.
    ``predicates``
        True when the source's partition task functions accept a
        ``predicate=`` keyword (a
        :meth:`~repro.frame.predicate.Predicate.spec` tuple) and filter the
        partition's rows before returning them.  The planner then pushes a
        filtered call's predicate down into the partition tasks — and, for
        chunked file scans, consults the per-chunk zone maps
        (:mod:`repro.frame.zonemap`) to skip whole chunks first.  Defaults
        to False, so a custom source keeps full materialization plus an
        eager post-filter until it opts in.
    ``chunk_sidecar``
        True when the source's partition task functions accept a
        ``sidecar=`` keyword (a :class:`~repro.frame.sidecar.SidecarRoute`
        tuple) and consult/maintain the parsed-chunk binary cache — warm
        re-scans then skip CSV decoding entirely.  Only meaningful for
        sources that pay a real parse per chunk; defaults to False so
        in-memory and custom sources are unaffected until they opt in.
    """

    exact: bool = True
    projection: bool = False
    predicates: bool = False
    chunk_sidecar: bool = False


@dataclass(frozen=True)
class SourcePartition:
    """One lazily-materialized row chunk of a source.

    ``start`` / ``stop`` are precomputed global row boundaries (the paper's
    "precompute chunk sizes" stage), known before any lazy graph is built.
    ``func(*args)`` materializes the chunk as a :class:`DataFrame`; the
    graph layer wraps it in a task, so *func* must be module-level and
    *args* fingerprintable for the partition to be cacheable across calls.
    """

    start: int
    stop: int
    func: Callable[..., DataFrame]
    args: Tuple[Any, ...]
    prefix: str = "partition"

    @property
    def n_rows(self) -> int:
        """Number of rows in this partition (known without materializing)."""
        return self.stop - self.start

    def task_spec(self, columns: Optional[Sequence[str]] = None,
                  predicate: Optional[Sequence[Tuple[str, str, Any]]] = None,
                  sidecar: Optional[Sequence[Any]] = None
                  ) -> Tuple[Callable[..., DataFrame], Tuple[Any, ...],
                             Dict[str, Any], str]:
        """``(func, args, kwargs, key prefix)`` of this partition's task.

        With *columns* the task materializes only that column subset:
        the projection travels as an explicit ``columns=`` keyword (so
        cache keys and CSE tokens incorporate it) and the key prefix gains
        the projected marker (so run statistics can count projected vs.
        full parses).  Only sources declaring
        ``capabilities.projection=True`` support a non-None projection; a
        partition whose func takes no ``columns=`` keyword is rejected
        here with a clear error rather than a ``TypeError`` from deep
        inside the func at execution time.

        With *predicate* (a :meth:`~repro.frame.predicate.Predicate.spec`
        tuple) the task additionally filters the partition's rows.  The
        predicate travels as an explicit ``predicate=`` keyword of plain
        nested tuples — the graph layer tokenizes those structurally, so
        filtered tasks get their own CSE tokens and cross-call cache keys,
        and the payload stays picklable for process-pool shipping — and
        the key prefix gains the filtered marker.  Requires
        ``capabilities.predicates=True`` (a func without the keyword is
        rejected here, mirroring the projection contract).

        With *sidecar* (a :class:`~repro.frame.sidecar.SidecarRoute`
        tuple) the task consults and maintains the parsed-chunk binary
        cache.  Unlike projection and predicate, the route is
        *non-semantic* — it changes where the bytes come from, never what
        the task returns — so the prefix stays unchanged and the graph
        layer excludes the keyword from CSE tokens and cross-call cache
        keys: a cached result from a sidecar-less run serves a
        sidecar-enabled one and vice versa.  Requires
        ``capabilities.chunk_sidecar=True`` (a func without the keyword is
        rejected here like the other pushdowns).
        """
        kwargs: Dict[str, Any] = {}
        prefix = self.prefix
        if columns is not None:
            if not _accepts_columns(self.func):
                raise FrameError(
                    f"partition func "
                    f"{getattr(self.func, '__name__', self.func)!r} "
                    f"takes no columns= keyword; this source does not support "
                    f"column projection (declare capabilities.projection=True "
                    f"only once its partition funcs accept a column subset)")
            kwargs["columns"] = tuple(columns)
            prefix = projected_prefix(prefix)
        if predicate is not None:
            if not _accepts_keyword(self.func, "predicate"):
                raise FrameError(
                    f"partition func "
                    f"{getattr(self.func, '__name__', self.func)!r} "
                    f"takes no predicate= keyword; this source does not "
                    f"support predicate pushdown (declare "
                    f"capabilities.predicates=True only once its partition "
                    f"funcs accept a predicate spec)")
            kwargs["predicate"] = tuple(tuple(entry) for entry in predicate)
            prefix = filtered_prefix(prefix)
        if sidecar is not None:
            if not _accepts_keyword(self.func, "sidecar"):
                raise FrameError(
                    f"partition func "
                    f"{getattr(self.func, '__name__', self.func)!r} "
                    f"takes no sidecar= keyword; this source does not "
                    f"support the parsed-chunk sidecar cache (declare "
                    f"capabilities.chunk_sidecar=True only once its "
                    f"partition funcs accept a sidecar route)")
            # Ship a plain tuple, not the SidecarRoute NamedTuple: the graph
            # layer's container walkers rebuild tuples as type(value)(items),
            # which would feed a NamedTuple its fields as one argument.  The
            # constructor call validates the route's arity/field order.
            kwargs["sidecar"] = tuple(SidecarRoute(*sidecar))
        return self.func, self.args, kwargs, prefix

    def materialize(self, columns: Optional[Sequence[str]] = None,
                    predicate: Optional[Sequence[Tuple[str, str, Any]]] = None,
                    sidecar: Optional[Sequence[Any]] = None
                    ) -> DataFrame:
        """Eagerly materialize the chunk (tests and non-graph callers).

        *columns* restricts the materialization to a column subset for
        projection-capable sources — zero-copy views for
        :class:`InMemorySource`, a projected byte-range parse for the CSV
        sources.  *predicate* filters the chunk's rows for
        predicate-capable sources.  *sidecar* routes the materialization
        through the parsed-chunk cache for sidecar-capable sources.
        """
        func, args, kwargs, _ = self.task_spec(columns, predicate, sidecar)
        return func(*args, **kwargs)


@runtime_checkable
class FrameSource(Protocol):
    """Anything the EDA pipeline can partition and stream.

    See the module docstring for the contract; :func:`as_source` adapts the
    user-facing input types (``DataFrame``, ``ScannedFrame``) onto it.
    """

    @property
    def columns(self) -> List[str]: ...          # pragma: no cover - protocol

    @property
    def dtypes(self) -> Dict[str, DType]: ...    # pragma: no cover - protocol

    @property
    def n_rows(self) -> int: ...                 # pragma: no cover - protocol

    @property
    def capabilities(self) -> SourceCapabilities: ...  # pragma: no cover

    def schema_preview(self) -> DataFrame: ...   # pragma: no cover - protocol

    def fingerprint(self) -> str: ...            # pragma: no cover - protocol

    def footprint_bytes(self) -> int: ...        # pragma: no cover - protocol

    def materialization_bytes(self) -> int: ...  # pragma: no cover - protocol

    def partitions(self) -> List[SourcePartition]: ...  # pragma: no cover

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "FrameSource":
        ...                                      # pragma: no cover - protocol

    def to_frame(self) -> DataFrame: ...         # pragma: no cover - protocol


# --------------------------------------------------------------------------- #
# In-memory frames
# --------------------------------------------------------------------------- #
class InMemorySource:
    """A :class:`FrameSource` over a materialized :class:`DataFrame`.

    Partitions are lazy row slices over the already-resident arrays, so the
    source declares ``capabilities.exact=True``: reductions keep today's
    exact results, pinned by the streaming-equivalence suite.
    """

    def __init__(self, frame: DataFrame, partition_rows: Optional[int] = None):
        if not isinstance(frame, DataFrame):
            raise FrameError("InMemorySource expects a repro.frame.DataFrame")
        if partition_rows is not None and partition_rows <= 0:
            raise FrameError("partition_rows must be positive")
        self._frame = frame
        self._partition_rows = partition_rows

    @property
    def frame(self) -> DataFrame:
        """The wrapped frame (the exact object, not a copy)."""
        return self._frame

    @property
    def columns(self) -> List[str]:
        return self._frame.columns

    @property
    def dtypes(self) -> Dict[str, DType]:
        return self._frame.dtypes

    @property
    def n_rows(self) -> int:
        return len(self._frame)

    @property
    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(exact=True, projection=True, predicates=True)

    def schema_preview(self) -> DataFrame:
        """Schema questions may read the whole frame — it is already resident."""
        return self._frame

    def fingerprint(self) -> str:
        return self._frame.fingerprint()

    def footprint_bytes(self) -> int:
        return self._frame.memory_bytes()

    def materialization_bytes(self) -> int:
        return self._frame.memory_bytes()

    def partitions(self) -> List[SourcePartition]:
        rows = self._partition_rows or DEFAULT_PARTITION_ROWS
        return [SourcePartition(start, stop, _slice_frame,
                                (self._frame, start, stop), prefix="partition")
                for start, stop in _row_boundaries(len(self._frame), rows)]

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "InMemorySource":
        """Re-plan the partition granularity (the budget is irrelevant here)."""
        if chunk_rows is None or chunk_rows == self._partition_rows:
            return self
        return InMemorySource(self._frame, partition_rows=chunk_rows)

    def refreshed(self) -> "InMemorySource":
        """In-memory data has no on-disk state to re-resolve."""
        return self

    def to_frame(self) -> DataFrame:
        return self._frame

    def __repr__(self) -> str:
        return (f"InMemorySource(rows={len(self._frame)}, "
                f"columns={self._frame.columns})")


def _row_boundaries(n_rows: int, partition_rows: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` ranges covering ``[0, n_rows)``."""
    if partition_rows <= 0:
        raise FrameError("partition_rows must be positive")
    if n_rows == 0:
        return [(0, 0)]
    return [(start, min(start + partition_rows, n_rows))
            for start in range(0, n_rows, partition_rows)]


# --------------------------------------------------------------------------- #
# CSV scans
# --------------------------------------------------------------------------- #
def _scan_partitions(scan: ScannedFrame, offset: int) -> List[SourcePartition]:
    """Partition tasks of one layout scan, shifted to global *offset* rows.

    Each task carries its chunk's *own* content stamp (the head/tail CRC
    probe pair) instead of the whole-file stamp: appending to the file
    leaves the old chunks' args — and therefore their cross-call cache
    keys — byte-identical, which is what lets a refresh reuse every
    already-sketched chunk and execute only the appended ones.
    """
    columns = tuple(scan.columns)
    dtypes = scan.dtypes
    stamps = scan.chunk_stamps
    return [SourcePartition(offset + start, offset + stop, _read_csv_slice,
                            (scan.path, byte_start, byte_stop, columns, dtypes,
                             stamp, scan.delimiter, stop - start),
                            prefix="read_csv_partition")
            for (byte_start, byte_stop), (start, stop), stamp
            in zip(scan.byte_ranges, scan.boundaries, stamps)]


def _rechunk_scan(scan: ScannedFrame, chunk_rows: Optional[int],
                  budget_bytes: Optional[int],
                  concurrency: int) -> ScannedFrame:
    """Shrink a scan's chunking for an explicit budget/chunk-rows override.

    The scan's own chunking already satisfies the budget it was created
    with; only constrain further for settings the caller explicitly
    overrides (or a worker count the scan did not assume).  Anything else
    would silently override an explicit ``scan_csv(chunk_rows=...)`` choice
    and pay a needless full-file layout rescan.
    """
    target = scan.chunk_rows
    if chunk_rows is not None:
        target = min(target, chunk_rows)
    budget = budget_bytes if budget_bytes is not None else scan.budget_bytes
    if budget != scan.budget_bytes or concurrency != scan.budget_concurrency:
        target = min(target, scan.chunk_rows_for_budget(
            budget, concurrency=concurrency))
    if target < scan.chunk_rows:
        return scan.rechunk(target)
    return scan


class CsvSource:
    """A :class:`FrameSource` over one scanned CSV file.

    Absorbs the :class:`~repro.frame.io.ScannedFrame` layout scan: schema
    and row counts come from the scan metadata, partitions are lazy
    byte-range parse tasks, and ``capabilities.exact=False`` routes every
    reduction through the bounded-memory sketch finalizers.
    """

    def __init__(self, scan: ScannedFrame):
        if not isinstance(scan, ScannedFrame):
            raise FrameError("CsvSource expects a ScannedFrame (from scan_csv)")
        self._scan = scan

    @property
    def scan(self) -> ScannedFrame:
        """The underlying layout scan handle."""
        return self._scan

    @property
    def columns(self) -> List[str]:
        return self._scan.columns

    @property
    def dtypes(self) -> Dict[str, DType]:
        return self._scan.dtypes

    @property
    def n_rows(self) -> int:
        return self._scan.n_rows

    @property
    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(exact=False, projection=True,
                                  predicates=True, chunk_sidecar=True)

    def schema_preview(self) -> DataFrame:
        return self._scan.preview

    def fingerprint(self) -> str:
        return self._scan.fingerprint()

    def footprint_bytes(self) -> int:
        return self._scan.file_size

    def materialization_bytes(self) -> int:
        preview = self._scan.preview
        if not len(preview):
            return self._scan.file_size
        per_row = preview.memory_bytes() / len(preview)
        return int(per_row * self._scan.n_rows)

    def partitions(self) -> List[SourcePartition]:
        return _scan_partitions(self._scan, 0)

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "CsvSource":
        rechunked = _rechunk_scan(self._scan, chunk_rows, budget_bytes,
                                  concurrency)
        return self if rechunked is self._scan else CsvSource(rechunked)

    def refreshed(self) -> "CsvSource":
        """Re-resolve the scan against the file's current on-disk state.

        Returns ``self`` when the file is unchanged; an appended file
        yields a source whose old chunks keep their stamps (and cache
        keys) with only the new bytes layout-scanned.
        """
        scan = self._scan.refreshed()
        return self if scan is self._scan else CsvSource(scan)

    def to_frame(self) -> DataFrame:
        return self._scan.to_frame()

    def __getitem__(self, item: Any) -> Any:
        """``source["x"]`` / ``source[pred]``: lazy filter building."""
        return _source_getitem(self, item)

    def __repr__(self) -> str:
        return f"CsvSource({self._scan!r})"


class MultiFileCsvSource:
    """Several scanned CSV files concatenated into one logical frame.

    Built by ``repro.scan_csv`` from a list or glob of paths.  Every file
    gets its own quote-aware layout scan; the per-file chunk partitions are
    concatenated with shifted global row offsets, so the downstream pipeline
    sees one frame and never learns about file boundaries.  Dtypes are
    pinned to the first file's inference (plus user overrides) so all
    partitions agree on storage types; files whose header disagrees with
    the first file's columns are rejected up front.
    """

    def __init__(self, scans: Sequence[ScannedFrame],
                 pattern: Optional[str] = None,
                 scan_kwargs: Optional[Dict[str, Any]] = None):
        scans = list(scans)
        if not scans:
            raise FrameError("MultiFileCsvSource requires at least one file")
        for scan in scans:
            if not isinstance(scan, ScannedFrame):
                raise FrameError("MultiFileCsvSource expects ScannedFrame parts")
            if scan.columns != scans[0].columns:
                raise FrameError(
                    f"CSV files disagree on columns: {scans[0].path!r} has "
                    f"{scans[0].columns} but {scan.path!r} has {scan.columns}")
            if scan.delimiter != scans[0].delimiter:
                raise FrameError("CSV files disagree on the delimiter")
        self._scans = scans
        #: The glob pattern this source was built from, when it was — a
        #: refresh re-expands it and absorbs newly matching files as
        #: appended partitions.  None for explicit path lists (closed set).
        self._pattern = pattern
        #: The scan_csv keyword arguments, so absorbed files are scanned
        #: with the same chunking/budget/inference settings.
        self._scan_kwargs = dict(scan_kwargs or {})

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def scan(cls, paths: Sequence[Union[str, os.PathLike]],
             chunk_rows: Optional[int] = None,
             budget_bytes: Optional[int] = None,
             dtypes: Optional[Dict[str, DType]] = None,
             inference_rows: int = 10_000,
             delimiter: str = ",",
             pattern: Optional[str] = None) -> "MultiFileCsvSource":
        """Layout-scan every file, sharing the first file's inferred dtypes.

        The first file is scanned with normal preview inference (plus any
        user *dtypes* overrides); the resulting full dtype map is forced on
        every later file, so a column whose type is ambiguous in file N
        cannot silently diverge from file 1 and break partition merges.
        """
        if not paths:
            raise FrameError("scan_csv received an empty list of paths")
        first = _scan_csv_file(paths[0], chunk_rows=chunk_rows,
                                 budget_bytes=budget_bytes, dtypes=dtypes,
                                 inference_rows=inference_rows,
                                 delimiter=delimiter)
        shared_dtypes = first.dtypes
        rest = [_scan_csv_file(path, chunk_rows=chunk_rows,
                                 budget_bytes=budget_bytes,
                                 dtypes=shared_dtypes,
                                 inference_rows=inference_rows,
                                 delimiter=delimiter,
                                 validate_dtype_keys=False)
                for path in paths[1:]]
        scan_kwargs = {"chunk_rows": chunk_rows, "budget_bytes": budget_bytes,
                       "inference_rows": inference_rows,
                       "delimiter": delimiter}
        return cls([first] + rest, pattern=pattern, scan_kwargs=scan_kwargs)

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    @property
    def scans(self) -> List[ScannedFrame]:
        """The per-file layout scans, in concatenation order."""
        return list(self._scans)

    @property
    def paths(self) -> List[str]:
        """The file paths, in concatenation order."""
        return [scan.path for scan in self._scans]

    @property
    def columns(self) -> List[str]:
        return self._scans[0].columns

    @property
    def dtypes(self) -> Dict[str, DType]:
        return self._scans[0].dtypes

    @property
    def n_rows(self) -> int:
        return sum(scan.n_rows for scan in self._scans)

    @property
    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(exact=False, projection=True,
                                  predicates=True, chunk_sidecar=True)

    def schema_preview(self) -> DataFrame:
        return self._scans[0].preview

    def fingerprint(self) -> str:
        """Stable across processes while every file's content is unchanged.

        Folds each file's content CRC in next to its size/mtime stamp, so
        an in-place rewrite that preserves both (the stamp-granularity
        hazard) still changes the fingerprint.
        """
        return fingerprint_file_stamps(
            [(scan.path, scan.file_stamp[0], scan.file_stamp[1],
              scan.content_crc())
             for scan in self._scans])

    def footprint_bytes(self) -> int:
        return sum(scan.file_size for scan in self._scans)

    def materialization_bytes(self) -> int:
        return sum(CsvSource(scan).materialization_bytes()
                   for scan in self._scans)

    def partitions(self) -> List[SourcePartition]:
        parts: List[SourcePartition] = []
        offset = 0
        for scan in self._scans:
            parts.extend(_scan_partitions(scan, offset))
            offset += scan.n_rows
        return parts

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "MultiFileCsvSource":
        rechunked = [_rechunk_scan(scan, chunk_rows, budget_bytes, concurrency)
                     for scan in self._scans]
        if all(new is old for new, old in zip(rechunked, self._scans)):
            return self
        return MultiFileCsvSource(rechunked, pattern=self._pattern,
                                  scan_kwargs=self._scan_kwargs)

    def refreshed(self) -> "MultiFileCsvSource":
        """Re-resolve every file and absorb newly matching glob files.

        Each existing scan refreshes individually (appends extend, other
        changes rescan).  When this source was built from a glob pattern,
        the pattern is re-expanded and previously unseen files are scanned
        — pinned to the first file's *current* dtype map, like any later
        file at cold-scan time — and appended in sorted order as new
        partitions.  Returns ``self`` when nothing changed.
        """
        refreshed = [scan.refreshed() for scan in self._scans]
        new_scans: List[ScannedFrame] = []
        if self._pattern:
            known = {scan.path for scan in self._scans}
            try:
                matches = sorted(glob_module.glob(self._pattern))
            except OSError:
                matches = []
            shared_dtypes = refreshed[0].dtypes
            for path in matches:
                if str(path) in known or _is_bytecode_artifact(path):
                    continue
                new_scans.append(_scan_csv_file(
                    path, dtypes=shared_dtypes, validate_dtype_keys=False,
                    **self._scan_kwargs))
        if not new_scans and \
                all(new is old for new, old in zip(refreshed, self._scans)):
            return self
        return MultiFileCsvSource(refreshed + new_scans,
                                  pattern=self._pattern,
                                  scan_kwargs=self._scan_kwargs)

    def to_frame(self) -> DataFrame:
        """Materialize every file (escape hatch; needs the full memory)."""
        return concat_rows([scan.to_frame() for scan in self._scans])

    def __getitem__(self, item: Any) -> Any:
        """``source["x"]`` / ``source[pred]``: lazy filter building."""
        return _source_getitem(self, item)

    def __repr__(self) -> str:
        return (f"MultiFileCsvSource(files={len(self._scans)}, "
                f"rows={self.n_rows}, columns={self.columns})")


def _source_getitem(source: "FrameSource", item: Any) -> Any:
    """Shared ``source[...]`` behaviour of the streaming sources.

    A column name returns a symbolic
    :class:`~repro.frame.predicate.ColumnExpr` (whose comparisons build
    predicates); a :class:`~repro.frame.predicate.Predicate` returns a lazy
    :class:`FilteredSource` — no data bytes are read either way.
    """
    if isinstance(item, str):
        if item not in source.columns:
            raise FrameError(f"unknown column {item!r}; available: "
                             f"{source.columns}")
        return ColumnExpr(item)
    if isinstance(item, Predicate):
        return FilteredSource(source, item)
    raise FrameError(
        f"{type(source).__name__} accepts a column name or a Predicate, "
        f"got {type(item).__name__}")


# --------------------------------------------------------------------------- #
# Filtered views
# --------------------------------------------------------------------------- #
def _inner_scans(source: Any) -> Optional[List[Tuple[ScannedFrame, int]]]:
    """``(scan, global row offset)`` pairs of a chunked CSV source, or None.

    Zone-map pruning needs per-chunk statistics, which only the file scans
    maintain; any other predicate-capable source simply gets no pruning
    (every chunk parses and filters, results unchanged).
    """
    if isinstance(source, CsvSource):
        return [(source.scan, 0)]
    if isinstance(source, MultiFileCsvSource):
        pairs: List[Tuple[ScannedFrame, int]] = []
        offset = 0
        for scan in source.scans:
            pairs.append((scan, offset))
            offset += scan.n_rows
        return pairs
    return None


def _zone_keep_flags(scan: ScannedFrame,
                     spec: Tuple[Tuple[str, str, Any], ...]
                     ) -> Optional[List[bool]]:
    """Per-chunk keep/skip flags from the scan's zone map, or None.

    None (no pruning) on any failure — zone maps are an optimization, never
    a correctness requirement, so an unreadable sidecar or a parse problem
    during the statistics build must degrade to "parse every chunk".
    """
    try:
        zone_map = scan.zone_map()
    except (OSError, FrameError):
        return None
    if zone_map is None or zone_map.n_chunks != len(scan.boundaries):
        return None
    return zone_map.keep_flags(spec)


class FilteredSource:
    """A :class:`FrameSource` view applying a row predicate to a source.

    This is what a filtered EDA call plans against: ``scan[scan["x"] > 0]``
    and ``plot(..., where=...)`` over a streaming input both produce one.
    The wrapper delegates schema and partitioning to the inner source and
    adds two things:

    * **chunk skipping** — ``partitions()`` consults the per-chunk zone
      maps of chunked CSV scans (:mod:`repro.frame.zonemap`) and drops
      chunks whose min/max ranges prove no row can match, recording the
      decision in :attr:`last_pruning`;
    * **the predicate itself** — exposed as :attr:`predicate` so the
      reduction planner pushes its spec into the surviving partition tasks
      (each chunk parse then filters rows before coercion and sketching).

    ``capabilities.exact`` is always False: the post-filter row count is
    unknown before execution, so the planner must use the bounded sketch
    reductions even over an in-memory inner source.  Stacked filters
    flatten: filtering a ``FilteredSource`` ANDs the predicates into one
    wrapper.
    """

    def __init__(self, source: Any, predicate: Predicate, prune: bool = True):
        source = as_source(source)
        if not isinstance(predicate, Predicate):
            raise FrameError("FilteredSource expects a compiled Predicate; "
                             "see repro.frame.predicate.compile_predicate")
        if isinstance(source, FilteredSource):
            predicate = source.predicate & predicate
            prune = prune and source.prune
            source = source.source
        if not source.capabilities.predicates:
            raise FrameError(
                f"{type(source).__name__} does not support row predicates "
                f"(capabilities.predicates is False)")
        unknown = [name for name in predicate.columns
                   if name not in source.columns]
        if unknown:
            raise FrameError(
                f"predicate references unknown column(s) {unknown}; "
                f"available: {source.columns}")
        self._source = source
        self._predicate = predicate
        self._prune = prune
        #: ``{"chunks_total", "chunks_skipped"}`` of the latest
        #: ``partitions()`` call — the planner folds this into its
        #: ``chunks_skipped`` counters.
        self.last_pruning: Dict[str, int] = {"chunks_total": 0,
                                             "chunks_skipped": 0}

    # ------------------------------------------------------------------ #
    # The filtered view
    # ------------------------------------------------------------------ #
    @property
    def source(self) -> FrameSource:
        """The wrapped (unfiltered) source."""
        return self._source

    @property
    def predicate(self) -> Predicate:
        """The row predicate this view applies."""
        return self._predicate

    @property
    def prune(self) -> bool:
        """Whether ``partitions()`` may skip chunks via zone maps."""
        return self._prune

    def without_pruning(self) -> "FilteredSource":
        """The same filtered view with zone-map chunk skipping disabled.

        Every chunk then parses and filters — same results, no skipping —
        which is what ``compute.predicates: False`` selects.
        """
        if not self._prune:
            return self
        return FilteredSource(self._source, self._predicate, prune=False)

    def __getitem__(self, item: Any) -> Any:
        """``filtered["x"]`` names a column; ``filtered[pred]`` stacks."""
        if isinstance(item, str):
            if item not in self._source.columns:
                raise FrameError(f"unknown column {item!r}; available: "
                                 f"{self._source.columns}")
            return ColumnExpr(item)
        if isinstance(item, Predicate):
            return FilteredSource(self, item, prune=self._prune)
        raise FrameError(
            f"a filtered scan accepts a column name or a Predicate, got "
            f"{type(item).__name__}")

    # ------------------------------------------------------------------ #
    # FrameSource protocol, by delegation
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> List[str]:
        return self._source.columns

    @property
    def dtypes(self) -> Dict[str, DType]:
        return self._source.dtypes

    @property
    def n_rows(self) -> int:
        """Pre-filter row count: an upper bound on the filtered rows.

        The true count is only known after execution; the compute layer
        answers ``row_count`` for a filtered source with a real reduction
        instead of this number.
        """
        return self._source.n_rows

    @property
    def capabilities(self) -> SourceCapabilities:
        inner = self._source.capabilities
        return SourceCapabilities(exact=False, projection=inner.projection,
                                  predicates=True,
                                  chunk_sidecar=inner.chunk_sidecar)

    def schema_preview(self) -> DataFrame:
        """A bounded preview of the rows that survive the filter.

        Filtering keeps schema questions (semantic type detection) aligned
        with what an in-memory user would see after masking the same rows.
        A selective filter on data clustered away from the file head can
        annihilate the inner preview (e.g. ``ts >= recent`` over a
        timestamp-ordered log); schema detection over zero rows would then
        misread every column, so in that case matching rows are collected
        from the (zone-map pruned) partitions instead — bounded by the
        inner preview's own size.
        """
        preview = self._source.schema_preview()
        filtered = preview.filter(self._predicate.mask(preview))
        if len(filtered) > 0 or len(preview) == 0:
            return filtered
        target = len(preview)
        spec = self._predicate.spec()
        collected: List[DataFrame] = []
        rows = 0
        for part in self.partitions():
            frame = part.materialize(predicate=spec)
            if len(frame) > 0:
                collected.append(frame)
                rows += len(frame)
            if rows >= target:
                break
        if not collected:
            return filtered
        from repro.frame.frame import concat_rows
        merged = concat_rows(collected)
        return merged.slice(0, target) if len(merged) > target else merged

    def fingerprint(self) -> str:
        import hashlib
        payload = repr((self._source.fingerprint(), self._predicate.spec()))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def footprint_bytes(self) -> int:
        return self._source.footprint_bytes()

    def materialization_bytes(self) -> int:
        """Upper bound: the filter can only shrink the materialization."""
        return self._source.materialization_bytes()

    def partitions(self) -> List[SourcePartition]:
        """The inner partitions minus provably non-matching chunks.

        Chunks are pruned with the zone maps of chunked CSV scans when
        available (and pruning is enabled); row boundaries of the surviving
        partitions keep their original pre-filter global offsets.  When
        every chunk is prunable, the first is kept anyway — it parses and
        filters to zero rows — so downstream planning never sees an empty
        partition list.  Each call records its decision in
        :attr:`last_pruning`.
        """
        spec = self._predicate.spec()
        total = 0
        skipped = 0
        parts: List[SourcePartition] = []
        first_part: Optional[SourcePartition] = None
        scans = _inner_scans(self._source) if self._prune else None
        if scans is None:
            parts = self._source.partitions()
            total = len(parts)
        else:
            for scan, offset in scans:
                scan_parts = _scan_partitions(scan, offset)
                total += len(scan_parts)
                keep = _zone_keep_flags(scan, spec)
                for index, part in enumerate(scan_parts):
                    if first_part is None:
                        first_part = part
                    if keep is None or keep[index]:
                        parts.append(part)
                    else:
                        skipped += 1
            if not parts and first_part is not None:
                parts = [first_part]
                skipped -= 1
        self.last_pruning = {"chunks_total": total, "chunks_skipped": skipped}
        return parts

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "FilteredSource":
        inner = self._source.with_partitioning(chunk_rows=chunk_rows,
                                               budget_bytes=budget_bytes,
                                               concurrency=concurrency)
        if inner is self._source:
            return self
        return FilteredSource(inner, self._predicate, prune=self._prune)

    def refreshed(self) -> "FilteredSource":
        """The same filtered view over the refreshed inner source."""
        inner = refresh_input(self._source)
        if inner is self._source:
            return self
        return FilteredSource(inner, self._predicate, prune=self._prune)

    def to_frame(self) -> DataFrame:
        """Materialize the inner source, then apply the predicate mask."""
        frame = self._source.to_frame()
        return frame.filter(self._predicate.mask(frame))

    def __repr__(self) -> str:
        return (f"FilteredSource({self._source!r}, "
                f"predicate={self._predicate!r})")


# --------------------------------------------------------------------------- #
# Adapters
# --------------------------------------------------------------------------- #
def _is_bytecode_artifact(path: Union[str, os.PathLike]) -> bool:
    """Whether a walked path is Python bytecode litter, never data.

    Every directory walk in this package (glob expansion, glob re-expansion
    on refresh) filters these: a broad user pattern like ``data/*`` must
    not absorb ``__pycache__`` directories or ``.pyc`` files as scan
    members.
    """
    text = str(path)
    return text.endswith(".pyc") or "__pycache__" in text.split(os.sep)


def expand_scan_paths(path: Union[str, os.PathLike, Sequence]) -> List[str]:
    """Resolve a ``scan_csv`` path argument into an explicit file list.

    Lists/tuples pass through; a string containing glob magic (``*``,
    ``?``, ``[``) expands to the sorted matches (bytecode artifacts —
    ``__pycache__``, ``*.pyc`` — are never matched).  Raises when a glob
    matches nothing, so a typo cannot silently scan zero files.
    """
    if isinstance(path, (list, tuple)):
        return [str(item) for item in path]
    text = str(path)
    if glob_module.has_magic(text):
        matches = sorted(match for match in glob_module.glob(text)
                         if not _is_bytecode_artifact(match))
        if not matches:
            raise FrameError(f"glob pattern {text!r} matched no files")
        return matches
    return [text]


def as_source(data: Any) -> FrameSource:
    """Adapt any supported EDA input onto the :class:`FrameSource` protocol.

    ``DataFrame`` becomes an :class:`InMemorySource`, a ``ScannedFrame``
    becomes a :class:`CsvSource`, and objects already satisfying the
    protocol (including custom sources) pass through unchanged.
    """
    if isinstance(data, DataFrame):
        return InMemorySource(data)
    if isinstance(data, ScannedFrame):
        return CsvSource(data)
    if isinstance(data, (InMemorySource, CsvSource, MultiFileCsvSource,
                         FilteredSource)):
        return data
    if isinstance(data, FrameSource):
        return data
    raise FrameError(
        "expected a repro.frame.DataFrame, a scan_csv handle or a "
        f"FrameSource implementation, got {type(data).__name__}")


def refresh_input(data: Any) -> Any:
    """Re-resolve any EDA input handle against its current on-disk state.

    ``ScannedFrame`` handles and the streaming sources return an updated
    handle of the same type (``data`` itself when nothing changed); appends
    are recognised as growth, so the refreshed handle's unchanged chunks
    keep their cross-call cache keys and only new chunks execute.  Inputs
    with no on-disk state (a ``DataFrame``, an :class:`InMemorySource`)
    pass through unchanged.  This is what ``repro.refresh`` and
    ``Report.refresh()`` call.
    """
    if isinstance(data, ScannedFrame):
        return data.refreshed()
    refreshed = getattr(data, "refreshed", None)
    if callable(refreshed):
        return refreshed()
    return data


__all__ = [
    "CsvSource",
    "FilteredSource",
    "FrameSource",
    "InMemorySource",
    "MultiFileCsvSource",
    "SourceCapabilities",
    "SourcePartition",
    "as_source",
    "expand_scan_paths",
    "refresh_input",
]
